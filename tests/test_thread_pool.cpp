// Tests for the util::ThreadPool behind the parallel scenario engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace netrec::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.parallel_for(hits.size(),
                    [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&completed](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Every non-throwing iteration still ran.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ResolveThreadsPrefersExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5u);
}

TEST(ThreadPool, ResolveThreadsRejectsAbsurdCounts) {
  EXPECT_THROW(ThreadPool::resolve_threads(ThreadPool::kMaxThreads + 1),
               std::invalid_argument);
  // A negative --threads cast to size_t lands here too.
  EXPECT_THROW(ThreadPool::resolve_threads(static_cast<std::size_t>(-1)),
               std::invalid_argument);
}

TEST(ThreadPool, AcquirePolicy) {
  std::optional<ThreadPool> storage;
  ThreadPool existing(2);
  EXPECT_EQ(ThreadPool::acquire(storage, 8, &existing), &existing);
  EXPECT_FALSE(storage.has_value());
  EXPECT_EQ(ThreadPool::acquire(storage, 1, nullptr), nullptr);
  EXPECT_FALSE(storage.has_value());
  ThreadPool* owned = ThreadPool::acquire(storage, 3, nullptr);
  ASSERT_TRUE(storage.has_value());
  EXPECT_EQ(owned, &*storage);
  EXPECT_EQ(owned->size(), 3u);
}

TEST(ThreadPool, ResolveThreadsReadsEnvironment) {
  ::setenv("NETREC_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(2), 2u);  // explicit beats env
  ::setenv("NETREC_THREADS", "bogus", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  ::unsetenv("NETREC_THREADS");
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
}

}  // namespace
}  // namespace netrec::util
