// lp::Basis compatibility and degradation paths (SolveOptions::warm_append):
// a feasible warm basis is accepted as-is, appended rows degrade to a
// partial restart (new rows' slacks basic, artificial repair + warm phase 1
// only where violated), rhs drift is repaired instead of rejected, and a
// stale basis (recorded for *more* rows than the model has) falls back to a
// full cold start.  Every path must land on the same optimum as a cold
// solve of the same model; the warm paths must also do fewer simplex
// iterations than their cold counterparts.
#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace {

using namespace netrec;

/// min  x0 + 2 x1   s.t.  x0 + x1 >= 4,  x0 <= 3,  x1 <= 5,  x >= 0.
lp::Model small_model() {
  lp::Model m;
  m.goal = lp::Goal::kMinimize;
  const int x0 = m.add_variable(0.0, 3.0, 1.0);
  const int x1 = m.add_variable(0.0, 5.0, 2.0);
  const int r = m.add_constraint(lp::Sense::kGreaterEqual, 4.0);
  m.set_coefficient(r, x0, 1.0);
  m.set_coefficient(r, x1, 1.0);
  return m;
}

/// A transportation-ish LP with `pairs` equality rows and one shared
/// capacity row — enough structure for warm starts to matter.
lp::Model flow_model(int pairs, double rhs, double capacity) {
  lp::Model m;
  m.goal = lp::Goal::kMinimize;
  const int cap_row = m.add_constraint(lp::Sense::kLessEqual, capacity);
  for (int i = 0; i < pairs; ++i) {
    const int row = m.add_constraint(lp::Sense::kEqual, rhs);
    const int cheap = m.add_variable(0.0, lp::kInfinity, 1.0 + i);
    const int costly = m.add_variable(0.0, lp::kInfinity, 10.0);
    m.set_coefficient(row, cheap, 1.0);
    m.set_coefficient(row, costly, 1.0);
    m.set_coefficient(cap_row, cheap, 1.0);  // cheap route shares capacity
  }
  return m;
}

TEST(SimplexWarm, FeasibleWarmBasisAcceptedAndCheap) {
  lp::Model m = flow_model(6, 2.0, 8.0);
  lp::Basis basis;
  const lp::Solution cold = lp::solve(m, {}, &basis);
  ASSERT_EQ(cold.status, lp::SolveStatus::kOptimal);
  ASSERT_GT(basis.rows, 0) << "basis must be exportable";

  const lp::Solution warm = lp::solve(m, {}, &basis);
  EXPECT_EQ(warm.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(warm.objective, cold.objective);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(SimplexWarm, RowAppendIsPartialNotFullColdStart) {
  lp::SolveOptions warm_opts;
  warm_opts.warm_append = true;

  lp::Model m = flow_model(8, 2.0, 100.0);
  lp::Basis basis;
  ASSERT_EQ(lp::solve(m, warm_opts, &basis).status,
            lp::SolveStatus::kOptimal);

  // Append a violated capacity row over the first pair's cheap variable
  // (optimal at 2.0 so far; the new row allows 1.0).
  const int new_row = m.add_constraint(lp::Sense::kLessEqual, 1.0);
  m.set_coefficient(new_row, 0, 1.0);

  lp::Basis stale_copy = basis;  // for the cold reference below
  const lp::Solution warm = lp::solve(m, warm_opts, &basis);
  ASSERT_EQ(warm.status, lp::SolveStatus::kOptimal);

  const lp::Solution cold = lp::solve(m);
  ASSERT_EQ(cold.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(warm.objective, cold.objective);
  EXPECT_LT(warm.iterations, cold.iterations)
      << "repairing one appended row must beat a full two-phase cold start";

  // Without warm_append the stale-row-count basis must be ignored (cold
  // start) yet still produce the optimum.
  const lp::Solution legacy = lp::solve(m, {}, &stale_copy);
  EXPECT_EQ(legacy.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(legacy.objective, cold.objective);
}

TEST(SimplexWarm, RhsDriftRepairedInPlace) {
  lp::SolveOptions warm_opts;
  warm_opts.warm_append = true;

  lp::Model m = flow_model(6, 2.0, 8.0);
  lp::Basis basis;
  ASSERT_EQ(lp::solve(m, warm_opts, &basis).status,
            lp::SolveStatus::kOptimal);

  // Tighten the shared capacity and shrink one demand: the recorded basis
  // goes primal infeasible; warm_append repairs it with artificials on the
  // violated rows only.
  m.constraint(0).rhs = 3.0;
  m.constraint(1).rhs = 1.0;
  const lp::Solution warm = lp::solve(m, warm_opts, &basis);
  ASSERT_EQ(warm.status, lp::SolveStatus::kOptimal);
  const lp::Solution cold = lp::solve(m);
  ASSERT_EQ(cold.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(warm.objective, cold.objective);
}

TEST(SimplexWarm, StaleDimensionBasisFallsBackToColdStart) {
  lp::SolveOptions warm_opts;
  warm_opts.warm_append = true;

  lp::Model big = flow_model(8, 2.0, 100.0);
  lp::Basis basis;
  ASSERT_EQ(lp::solve(big, warm_opts, &basis).status,
            lp::SolveStatus::kOptimal);
  ASSERT_GT(basis.rows, 1);

  // A model with *fewer* rows than the basis records: the basis must be
  // discarded (there is no meaningful mapping), and the solve must still
  // succeed from cold.
  lp::Model small = small_model();
  const lp::Solution s = lp::solve(small, warm_opts, &basis);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 5.0);  // x0 = 3 (cost 3), x1 = 1 (cost 2)
  // The basis is re-exported for the small model afterwards.
  EXPECT_EQ(basis.rows, small.num_constraints());
}

TEST(SimplexWarm, ColumnAppendStillWarmStarts) {
  lp::SolveOptions warm_opts;
  warm_opts.warm_append = true;

  lp::Model m = flow_model(6, 2.0, 8.0);
  lp::Basis basis;
  const lp::Solution first = lp::solve(m, warm_opts, &basis);
  ASSERT_EQ(first.status, lp::SolveStatus::kOptimal);

  // A cheaper column for the last pair (column generation shape): new
  // variables start nonbasic at bound, so the old basis stays valid.
  const int extra = m.add_variable(0.0, lp::kInfinity, 0.5);
  m.set_coefficient(m.num_constraints() - 1, extra, 1.0);
  const lp::Solution warm = lp::solve(m, warm_opts, &basis);
  ASSERT_EQ(warm.status, lp::SolveStatus::kOptimal);
  const lp::Solution cold = lp::solve(m);
  ASSERT_EQ(cold.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(warm.objective, cold.objective);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(SimplexWarm, EqualityHeavyBasisSurvivesDegenerateArtificials) {
  // Equality-only models routinely finish phase 1 with a degenerate
  // artificial still basic.  Under warm_append the exported basis encodes
  // it as the row's slack, so the *next* solve can still warm-start
  // (legacy export would have discarded the basis: rows == 0).
  lp::SolveOptions warm_opts;
  warm_opts.warm_append = true;

  lp::Model m;
  m.goal = lp::Goal::kMinimize;
  const int x = m.add_variable(0.0, lp::kInfinity, 1.0);
  const int y = m.add_variable(0.0, lp::kInfinity, 1.0);
  const int r0 = m.add_constraint(lp::Sense::kEqual, 2.0);
  const int r1 = m.add_constraint(lp::Sense::kEqual, 2.0);
  m.set_coefficient(r0, x, 1.0);
  m.set_coefficient(r1, x, 1.0);  // r0 and r1 both pinned by x
  m.set_coefficient(r1, y, 0.0);
  lp::Basis basis;
  const lp::Solution first = lp::solve(m, warm_opts, &basis);
  ASSERT_EQ(first.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(basis.rows, m.num_constraints()) << "basis must stay exportable";

  m.constraint(0).rhs = 3.0;
  m.constraint(1).rhs = 3.0;
  const lp::Solution warm = lp::solve(m, warm_opts, &basis);
  ASSERT_EQ(warm.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(warm.objective, 3.0);
  (void)y;
}

}  // namespace
