// Tests for Brandes betweenness and the repair-scheduling module, plus the
// betweenness-ranking ISP ablation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/isp.hpp"
#include "graph/betweenness.hpp"
#include "heuristics/schedule.hpp"
#include "mcf/routing.hpp"
#include "util/rng.hpp"

namespace netrec {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

graph::EdgeWeight unit() {
  return [](EdgeId) { return 1.0; };
}

TEST(Betweenness, PathGraphCenterDominates) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1, 1.0);
  const auto c = graph::betweenness_centrality(g, unit());
  // Known values on P5: endpoints 0, then 3, 4, 3.
  EXPECT_NEAR(c[0], 0.0, 1e-9);
  EXPECT_NEAR(c[1], 3.0, 1e-9);
  EXPECT_NEAR(c[2], 4.0, 1e-9);
  EXPECT_NEAR(c[3], 3.0, 1e-9);
  EXPECT_NEAR(c[4], 0.0, 1e-9);
}

TEST(Betweenness, StarHubTakesEverything) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  for (int leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf, 1.0);
  const auto c = graph::betweenness_centrality(g, unit());
  EXPECT_NEAR(c[0], 6.0, 1e-9);  // C(4,2) leaf pairs
  for (int leaf = 1; leaf < 5; ++leaf) EXPECT_NEAR(c[leaf], 0.0, 1e-9);
}

TEST(Betweenness, SplitsAcrossEqualShortestPaths) {
  // 4-cycle: each pair of opposite nodes has two shortest paths; every node
  // carries half a pair -> betweenness 0.5 each.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  const auto c = graph::betweenness_centrality(g, unit());
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(c[i], 0.5, 1e-9);
}

TEST(Betweenness, RespectsWeightsAndFilters) {
  // Triangle with one heavy edge: shortest 0-2 route goes via 1.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const EdgeId heavy = g.add_edge(0, 2, 1.0);
  auto weights = [&](EdgeId e) { return e == heavy ? 10.0 : 1.0; };
  const auto c = graph::betweenness_centrality(g, weights);
  EXPECT_NEAR(c[1], 1.0, 1e-9);
  // Filtering out the light edges isolates the pairs through `heavy`.
  const auto filtered = graph::betweenness_centrality(
      g, weights, [&](EdgeId e) { return e == heavy; });
  EXPECT_NEAR(filtered[1], 0.0, 1e-9);
}

TEST(IspAblation, BetweennessRankingStillSatisfiesDemand) {
  core::RecoveryProblem p;
  for (int i = 0; i < 6; ++i) p.graph.add_node();
  p.graph.add_edge(0, 2, 20.0);
  p.graph.add_edge(1, 2, 20.0);
  p.graph.add_edge(2, 3, 20.0);
  p.graph.add_edge(3, 4, 20.0);
  p.graph.add_edge(3, 5, 20.0);
  p.graph.break_everything();
  p.demands = {{0, 4, 5.0}, {1, 5, 5.0}};
  core::IspOptions opt;
  opt.use_classic_betweenness = true;
  const auto s = core::IspSolver(p, opt).solve();
  EXPECT_NEAR(s.satisfied_fraction, 1.0, 1e-6);
  EXPECT_TRUE(core::validate_solution(p, s).empty());
}

// --- scheduling -------------------------------------------------------------

core::RecoveryProblem scheduled_instance() {
  core::RecoveryProblem p;
  for (int i = 0; i < 6; ++i) p.graph.add_node("n" + std::to_string(i));
  // Two demands with disjoint 2-hop routes.
  p.graph.add_edge(0, 1, 10.0);
  p.graph.add_edge(1, 2, 10.0);
  p.graph.add_edge(3, 4, 10.0);
  p.graph.add_edge(4, 5, 10.0);
  p.graph.break_everything();
  p.demands = {{0, 2, 8.0}, {3, 5, 2.0}};
  return p;
}

TEST(Schedule, ContainsEveryRepairExactlyOnce) {
  const auto p = scheduled_instance();
  const auto plan = core::IspSolver(p).solve();
  const auto schedule = heuristics::schedule_repairs(p, plan);
  EXPECT_EQ(schedule.steps.size(), plan.total_repairs());
  std::size_t nodes = 0;
  std::size_t edges = 0;
  for (const auto& step : schedule.steps) {
    (step.is_node ? nodes : edges) += 1;
    EXPECT_FALSE(step.label.empty());
  }
  EXPECT_EQ(nodes, plan.repaired_nodes.size());
  EXPECT_EQ(edges, plan.repaired_edges.size());
}

TEST(Schedule, RestorationIsMonotoneAndEndsComplete) {
  const auto p = scheduled_instance();
  const auto plan = core::IspSolver(p).solve();
  heuristics::ScheduleOptions opt;
  opt.exact_scoring = true;
  const auto schedule = heuristics::schedule_repairs(p, plan, opt);
  double prev = 0.0;
  for (const auto& step : schedule.steps) {
    EXPECT_GE(step.restored_after, prev - 1e-9);
    prev = step.restored_after;
  }
  EXPECT_NEAR(schedule.steps.back().restored_after, p.total_demand(), 1e-6);
}

TEST(Schedule, GreedyPrefersTheBiggerDemandFirst) {
  // Both routes cost 5 repairs; demand (0,2)=8 vs (3,5)=2 -> the greedy
  // schedule restores the 8-unit service first.
  const auto p = scheduled_instance();
  const auto plan = core::IspSolver(p).solve();
  heuristics::ScheduleOptions opt;
  opt.exact_scoring = true;
  const auto schedule = heuristics::schedule_repairs(p, plan, opt);
  const std::size_t to_80pct = schedule.steps_to_restore(0.8);
  EXPECT_LE(to_80pct, 5u);  // the first completed route already gives 80%
  // AUC strictly better than the worst possible order (big demand last).
  EXPECT_GT(schedule.restoration_auc(), 0.3);
}

TEST(Schedule, EmptySolutionYieldsEmptySchedule) {
  const auto p = scheduled_instance();
  core::RecoverySolution none;
  core::score_solution(p, none);
  const auto schedule = heuristics::schedule_repairs(p, none);
  EXPECT_TRUE(schedule.steps.empty());
  // An empty plan on a damaged instance restored nothing; the AUC must say
  // so (it used to score the degenerate series as a perfect 1.0).
  EXPECT_DOUBLE_EQ(schedule.restoration_auc(), 0.0);
  EXPECT_EQ(schedule.steps_to_restore(0.5), 1u);
}

TEST(Schedule, AucInUnitInterval) {
  const auto p = scheduled_instance();
  const auto plan = core::IspSolver(p).solve();
  const auto schedule = heuristics::schedule_repairs(p, plan);
  EXPECT_GE(schedule.restoration_auc(), 0.0);
  EXPECT_LE(schedule.restoration_auc(), 1.0);
}

}  // namespace
}  // namespace netrec
