// recovery::Timeline differential harness and engine semantics.
//
// The load-bearing suites:
//   * TimelineDifferential* — the engine in its degenerate one-shot
//     configuration (single stage, unlimited budget, static dynamics,
//     replay policy) must reproduce the one-shot IspSolver +
//     schedule_repairs pipeline bit-identically: same repair order, same
//     per-step routed demand, for both measurement backends
//     (LpReuse::kNone one-shot reference and the kSession default).
//   * TimelineSessionDifferential — kSession vs kNone under *evolving*
//     dynamics (aftershocks, cascades, scripted re-breaks of repaired
//     elements): the persistent session's warm reuse across disruption
//     events — including the epoch-bump reset on non-monotone revival —
//     must not change any recorded number.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "graph/traversal.hpp"
#include "heuristics/schedule.hpp"
#include "recovery/dynamics.hpp"
#include "recovery/policies.hpp"
#include "recovery/timeline.hpp"
#include "scenario/scenario.hpp"
#include "scenario/timeline_runner.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;

/// Broken connected-ish ER instance with far-apart demands (the ISP
/// differential harness's construction).
core::RecoveryProblem er_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 104729 + 13);
  core::RecoveryProblem p;
  topology::ErdosRenyiOptions eopt;
  eopt.nodes = 24;
  eopt.edge_probability = 0.18;
  eopt.capacity = 10.0;
  std::size_t attempts = 0;
  do {
    p.graph = topology::make_topology(eopt, rng);
  } while (graph::hop_diameter(p.graph) < 0 && ++attempts < 50);
  util::Rng demand_rng = rng.fork();
  p.demands = scenario::far_apart_demands(p.graph, 3, 4.0, demand_rng);
  for (std::size_t n = 0; n < p.graph.num_nodes(); ++n) {
    if (rng.chance(0.55)) {
      p.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
    }
  }
  for (std::size_t e = 0; e < p.graph.num_edges(); ++e) {
    if (rng.chance(0.6)) {
      p.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
    }
  }
  return p;
}

/// Bell-Canada under regional or complete destruction.
core::RecoveryProblem bell_canada_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 7907 + 5);
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng demand_rng = rng.fork();
  p.demands = scenario::far_apart_demands(p.graph, 4, 3.0, demand_rng);
  if (seed % 2 == 0) {
    disruption::complete_destruction(p.graph);
  } else {
    for (std::size_t n = 0; n < p.graph.num_nodes(); ++n) {
      if (rng.chance(0.5)) {
        p.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
      }
    }
    for (std::size_t e = 0; e < p.graph.num_edges(); ++e) {
      if (rng.chance(0.5)) {
        p.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
      }
    }
  }
  return p;
}

/// Timeline in the one-shot configuration with the given replay policy.
recovery::TimelineResult run_one_shot(const core::RecoveryProblem& problem,
                                      mcf::LpReuse lp_reuse,
                                      recovery::ReplayPolicy& policy) {
  recovery::StaticDynamics statics;
  recovery::TimelineOptions topt;
  topt.stage_budget = 0;  // unlimited
  topt.lp_reuse = lp_reuse;
  util::Rng rng(0);
  return recovery::Timeline(problem, policy, statics, topt).run(rng);
}

void expect_matches_schedule(const core::RecoveryProblem& problem,
                             mcf::LpReuse lp_reuse,
                             const std::string& label) {
  SCOPED_TRACE(label);
  // Reference: the one-shot pipeline, executed by hand.
  const core::RecoverySolution plan = core::IspSolver(problem).solve();
  heuristics::ScheduleOptions sopt;
  sopt.exact_scoring = true;
  const auto schedule = heuristics::schedule_repairs(problem, plan, sopt);

  recovery::ReplayOptions ropt;
  ropt.schedule.exact_scoring = true;
  recovery::ReplayPolicy policy(ropt);
  const auto result = run_one_shot(problem, lp_reuse, policy);

  // Single stage executed everything; nothing evolved.
  if (!schedule.steps.empty()) {
    ASSERT_EQ(result.stages.size(), 1u);
    EXPECT_EQ(result.stages[0].shock.total(), 0u);
  }
  EXPECT_EQ(result.total_repairs, schedule.steps.size());
  EXPECT_EQ(policy.plan().repaired_nodes, plan.repaired_nodes);
  EXPECT_EQ(policy.plan().repaired_edges, plan.repaired_edges);

  // Repair order: the schedule's, step for step.
  std::vector<recovery::RepairAction> executed;
  for (const auto& rec : result.stages) {
    executed.insert(executed.end(), rec.repairs.begin(), rec.repairs.end());
  }
  ASSERT_EQ(executed.size(), schedule.steps.size());
  for (std::size_t i = 0; i < executed.size(); ++i) {
    EXPECT_EQ(executed[i].is_node, schedule.steps[i].is_node) << "step " << i;
    EXPECT_EQ(executed[i].node, schedule.steps[i].node) << "step " << i;
    EXPECT_EQ(executed[i].edge, schedule.steps[i].edge) << "step " << i;
    EXPECT_EQ(executed[i].label, schedule.steps[i].label) << "step " << i;
  }

  // Per-step routed demand, exact equality (the engine's measurement and
  // the schedule's exact scoring must be the same LP verdicts).
  const auto restored = result.step_series();
  const auto reference = schedule.restored_series();
  ASSERT_EQ(restored.size(), reference.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i], reference[i]) << "step " << i;
  }

  // Derived statistics flow through the same shared helpers.
  EXPECT_EQ(util::restoration_auc(restored, result.total_demand),
            schedule.restoration_auc());
  EXPECT_EQ(util::steps_to_fraction(restored, result.total_demand, 0.5),
            schedule.steps_to_restore(0.5));
}

class TimelineDifferentialEr : public ::testing::TestWithParam<int> {};

TEST_P(TimelineDifferentialEr, OneShotConfigMatchesSchedulePipeline) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto problem = er_scenario(seed);
  expect_matches_schedule(problem, mcf::LpReuse::kNone,
                          "er seed " + std::to_string(seed) + " / one-shot");
  expect_matches_schedule(problem, mcf::LpReuse::kSession,
                          "er seed " + std::to_string(seed) + " / session");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineDifferentialEr,
                         ::testing::Range(1, 9));

class TimelineDifferentialBellCanada : public ::testing::TestWithParam<int> {
};

TEST_P(TimelineDifferentialBellCanada, OneShotConfigMatchesSchedulePipeline) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto problem = bell_canada_scenario(seed);
  expect_matches_schedule(
      problem, mcf::LpReuse::kNone,
      "bell-canada seed " + std::to_string(seed) + " / one-shot");
  expect_matches_schedule(
      problem, mcf::LpReuse::kSession,
      "bell-canada seed " + std::to_string(seed) + " / session");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineDifferentialBellCanada,
                         ::testing::Range(1, 6));

// --- kSession vs kNone under evolving dynamics ------------------------------

void expect_lp_reuse_agrees(const core::RecoveryProblem& problem,
                            const std::function<std::unique_ptr<
                                recovery::Policy>()>& policy_factory,
                            const std::function<std::unique_ptr<
                                recovery::Dynamics>()>& dynamics_factory,
                            recovery::TimelineOptions topt,
                            std::uint64_t rng_seed, const std::string& label) {
  SCOPED_TRACE(label);
  recovery::TimelineResult results[2];
  const mcf::LpReuse modes[2] = {mcf::LpReuse::kSession, mcf::LpReuse::kNone};
  for (int m = 0; m < 2; ++m) {
    auto policy = policy_factory();
    auto dynamics = dynamics_factory();
    topt.lp_reuse = modes[m];
    util::Rng rng(rng_seed);
    results[m] =
        recovery::Timeline(problem, *policy, *dynamics, topt).run(rng);
  }
  const auto& session = results[0];
  const auto& one_shot = results[1];
  EXPECT_EQ(session.initial_routed, one_shot.initial_routed);
  EXPECT_EQ(session.final_routed, one_shot.final_routed);
  EXPECT_EQ(session.total_repairs, one_shot.total_repairs);
  EXPECT_EQ(session.total_repair_cost, one_shot.total_repair_cost);
  EXPECT_EQ(session.shock_breaks, one_shot.shock_breaks);
  ASSERT_EQ(session.stages.size(), one_shot.stages.size());
  for (std::size_t s = 0; s < session.stages.size(); ++s) {
    const auto& a = session.stages[s];
    const auto& b = one_shot.stages[s];
    SCOPED_TRACE("stage " + std::to_string(s));
    ASSERT_EQ(a.repairs.size(), b.repairs.size());
    for (std::size_t i = 0; i < a.repairs.size(); ++i) {
      EXPECT_EQ(a.repairs[i].is_node, b.repairs[i].is_node);
      EXPECT_EQ(a.repairs[i].node, b.repairs[i].node);
      EXPECT_EQ(a.repairs[i].edge, b.repairs[i].edge);
    }
    EXPECT_EQ(a.routed_after, b.routed_after);
    EXPECT_EQ(a.routed_end, b.routed_end);
    EXPECT_EQ(a.shock.broken_nodes, b.shock.broken_nodes);
    EXPECT_EQ(a.shock.broken_edges, b.shock.broken_edges);
    EXPECT_EQ(a.repair_cost, b.repair_cost);
  }
}

recovery::TimelineOptions evolving_options() {
  recovery::TimelineOptions topt;
  topt.stage_budget = 3;
  topt.max_stages = 32;
  return topt;
}

std::unique_ptr<recovery::Dynamics> make_aftershocks() {
  disruption::AftershockOptions opts;
  opts.first.variance = 40.0;
  opts.decay = 0.5;
  opts.max_shocks = 3;
  return std::make_unique<recovery::AftershockDynamics>(opts);
}

std::unique_ptr<recovery::Dynamics> make_cascade() {
  // Tight overload factor so the 3-4 unit demand flows overload the
  // ER/Bell-Canada capacities and the cascade actually fires.
  disruption::CascadeOptions opts;
  opts.overload_factor = 0.15;
  return std::make_unique<recovery::CascadeDynamics>(opts);
}

class TimelineSessionDifferential : public ::testing::TestWithParam<int> {};

TEST_P(TimelineSessionDifferential, SessionMatchesOneShotUnderDynamics) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto make_replan = [] {
    return std::make_unique<recovery::ReplanPolicy>();
  };
  const auto make_list = [] {
    return std::make_unique<recovery::ListOrderPolicy>();
  };
  {
    const auto problem = er_scenario(seed + 40);
    expect_lp_reuse_agrees(problem, make_replan, make_aftershocks,
                           evolving_options(), seed * 31 + 7,
                           "er seed " + std::to_string(seed + 40) +
                               " / replan+aftershock");
    expect_lp_reuse_agrees(problem, make_list, make_cascade,
                           evolving_options(), seed * 31 + 7,
                           "er seed " + std::to_string(seed + 40) +
                               " / list+cascade");
  }
  {
    const auto problem = bell_canada_scenario(seed + 40);
    expect_lp_reuse_agrees(problem, make_replan, make_cascade,
                           evolving_options(), seed * 17 + 3,
                           "bell-canada seed " + std::to_string(seed + 40) +
                               " / replan+cascade");
    expect_lp_reuse_agrees(problem, make_list, make_aftershocks,
                           evolving_options(), seed * 17 + 3,
                           "bell-canada seed " + std::to_string(seed + 40) +
                               " / list+aftershock");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineSessionDifferential,
                         ::testing::Range(1, 4));

// --- non-monotone revival: the scripted re-break torture test ---------------

/// Breaks a scripted set of elements at given stages — deterministic
/// dynamics for exercising the repair → break → repair-again cycle the
/// session's monotone column pool cannot represent without a reset.
class ScriptedDynamics : public recovery::Dynamics {
 public:
  struct Event {
    std::size_t stage;
    bool is_node;
    int id;
  };
  explicit ScriptedDynamics(std::vector<Event> events)
      : events_(std::move(events)) {}
  std::string name() const override { return "scripted"; }
  disruption::DisruptionReport advance(graph::Graph& g,
                                       const std::vector<mcf::Demand>&,
                                       std::size_t stage,
                                       util::Rng&) override {
    disruption::DisruptionReport report;
    for (const Event& event : events_) {
      if (event.stage != stage) continue;
      if (event.is_node) {
        const auto id = static_cast<graph::NodeId>(event.id);
        if (!g.node_broken(id)) {
          g.set_node_broken(id, true);
          ++report.broken_nodes;
        }
      } else {
        const auto id = static_cast<graph::EdgeId>(event.id);
        if (!g.edge_broken(id)) {
          g.set_edge_broken(id, true);
          ++report.broken_edges;
        }
      }
    }
    next_stage_ = stage + 1;
    return report;
  }
  bool exhausted() const override {
    for (const Event& event : events_) {
      if (event.stage >= next_stage_) return false;
    }
    return true;
  }

 private:
  std::vector<Event> events_;
  std::size_t next_stage_ = 0;  ///< first stage whose events have not fired
};

TEST(TimelineRevival, RepairedEdgeRebrokenAndRepairedAgainStaysExact) {
  // s - a - t in series (both edges broken initially) plus a broken 3-hop
  // detour; demand s->t.  Script: the stage after an edge of the short
  // path is repaired, break it again — the repair of the *same* edge later
  // revives a session-dead path, which must trigger the engine's epoch
  // reset rather than a stale dead-column verdict.
  core::RecoveryProblem problem;
  auto& g = problem.graph;
  const auto s = g.add_node("s");
  const auto a = g.add_node("a");
  const auto t = g.add_node("t");
  const auto d1 = g.add_node("d1");
  const auto d2 = g.add_node("d2");
  const auto sa = g.add_edge(s, a, 10.0);
  const auto at = g.add_edge(a, t, 10.0);
  g.add_edge(s, d1, 10.0);
  g.add_edge(d1, d2, 10.0);
  g.add_edge(d2, t, 10.0);
  disruption::complete_destruction(g);
  for (const auto n : {s, a, t, d1, d2}) g.set_node_broken(n, false);
  problem.demands = {{s, t, 5.0}};

  // List order repairs sa then at (stages 0 and 1, budget 1); the script
  // re-breaks sa after stage 1, so stage 2 repairs it again (sa has the
  // lowest edge id among the broken), then the detour edges follow.
  ScriptedDynamics::Event rebreak{1, false, static_cast<int>(sa)};

  recovery::TimelineOptions topt;
  topt.stage_budget = 1;
  recovery::TimelineResult results[2];
  const mcf::LpReuse modes[2] = {mcf::LpReuse::kSession, mcf::LpReuse::kNone};
  for (int m = 0; m < 2; ++m) {
    recovery::ListOrderPolicy policy;
    ScriptedDynamics dynamics({rebreak});
    topt.lp_reuse = modes[m];
    util::Rng rng(1);
    results[m] =
        recovery::Timeline(problem, policy, dynamics, topt).run(rng);
  }
  for (const auto& result : results) {
    // Stage 0: repair sa (still cut).  Stage 1: repair at (routed, then sa
    // re-breaks).  Stage 2: repair sa again — service back.
    ASSERT_GE(result.stages.size(), 3u);
    EXPECT_EQ(result.stages[0].routed_end, 0.0);
    EXPECT_EQ(result.stages[1].routed_after.back(), 5.0);
    EXPECT_EQ(result.stages[1].routed_end, 0.0);  // re-broken
    EXPECT_EQ(result.stages[2].routed_after.back(), 5.0);
    EXPECT_EQ(result.final_routed, 5.0);
    // sa, at, sa again, then the three detour edges.
    EXPECT_EQ(result.total_repairs, 6u);
  }
  EXPECT_EQ(results[0].step_series(), results[1].step_series());
  EXPECT_EQ(results[0].stage_series(), results[1].stage_series());
}

// --- engine semantics --------------------------------------------------------

TEST(Timeline, BudgetPacesRepairsAcrossStages) {
  const auto problem = bell_canada_scenario(2);  // complete destruction
  recovery::ReplayPolicy policy;
  recovery::StaticDynamics statics;
  recovery::TimelineOptions topt;
  topt.stage_budget = 4;
  topt.max_stages = 128;
  util::Rng rng(0);
  const auto result =
      recovery::Timeline(problem, policy, statics, topt).run(rng);
  ASSERT_FALSE(result.stages.empty());
  for (std::size_t s = 0; s + 1 < result.stages.size(); ++s) {
    EXPECT_EQ(result.stages[s].repairs.size(), 4u) << "stage " << s;
  }
  EXPECT_LE(result.stages.back().repairs.size(), 4u);
  EXPECT_EQ(result.total_repairs, policy.plan().total_repairs());
  // Static dynamics: the restoration series is monotone non-decreasing.
  const auto series = result.step_series();
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i], series[i - 1] - 1e-9);
  }
}

TEST(Timeline, StopsImmediatelyWhenNothingIsBroken) {
  core::RecoveryProblem problem;
  problem.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng rng(3);
  problem.demands = scenario::far_apart_demands(problem.graph, 2, 1.0, rng);
  recovery::ListOrderPolicy policy;
  recovery::StaticDynamics statics;
  util::Rng run_rng(0);
  const auto result =
      recovery::Timeline(problem, policy, statics, {}).run(run_rng);
  EXPECT_TRUE(result.stages.empty());
  EXPECT_EQ(result.total_repairs, 0u);
  EXPECT_EQ(result.initial_routed, result.total_demand);
  EXPECT_EQ(result.final_routed, result.total_demand);
  EXPECT_EQ(result.restoration_auc(), 1.0);
}

TEST(Timeline, ShockOnlyStagesRecordAfterPolicyExhausts) {
  // Replay policy under aftershocks: once the (initial-damage) plan is
  // executed the policy idles, but the sequence keeps firing — the engine
  // must keep recording shock-only stages until it exhausts.
  const auto problem = er_scenario(3);
  recovery::ReplayPolicy policy;
  disruption::AftershockOptions aopts;
  aopts.first.variance = 60.0;
  aopts.max_shocks = 6;
  recovery::AftershockDynamics aftershocks(aopts);
  recovery::TimelineOptions topt;
  topt.stage_budget = 0;  // whole plan in stage 0
  util::Rng rng(11);
  const auto result =
      recovery::Timeline(problem, policy, aftershocks, topt).run(rng);
  // All 6 shocks fired: stage 0 (plan + shock 1) plus 5 shock-only stages.
  EXPECT_EQ(result.stages.size(), 6u);
  for (std::size_t s = 1; s < result.stages.size(); ++s) {
    EXPECT_TRUE(result.stages[s].repairs.empty());
  }
}

TEST(Timeline, SeriesHelpersPadAndFlatten) {
  recovery::TimelineResult result;
  result.total_demand = 10.0;
  result.final_routed = 8.0;
  recovery::StageRecord s0;
  s0.routed_after = {2.0, 5.0};
  s0.routed_end = 5.0;
  recovery::StageRecord s1;
  s1.routed_after = {8.0};
  s1.routed_end = 8.0;
  result.stages = {s0, s1};
  EXPECT_EQ(result.step_series(),
            (std::vector<double>{2.0, 5.0, 8.0}));
  EXPECT_EQ(result.stage_series(), (std::vector<double>{5.0, 8.0}));
  EXPECT_EQ(result.stage_series(4),
            (std::vector<double>{5.0, 8.0, 8.0, 8.0}));
  EXPECT_DOUBLE_EQ(result.restoration_auc(4), (0.5 + 3 * 0.8) / 4.0);
  EXPECT_EQ(result.stages_to_restore(0.8), 2u);
}

// --- policies ----------------------------------------------------------------

TEST(Policies, ListOrderCoversEverythingInIdOrder) {
  auto problem = bell_canada_scenario(2);  // complete destruction
  recovery::ListOrderPolicy policy;
  util::Rng rng(0);
  const auto actions = policy.plan_stage(
      problem, 0, static_cast<std::size_t>(-1), rng);
  ASSERT_EQ(actions.size(),
            problem.graph.num_nodes() + problem.graph.num_edges());
  for (std::size_t i = 0; i < problem.graph.num_nodes(); ++i) {
    EXPECT_TRUE(actions[i].is_node);
    EXPECT_EQ(actions[i].node, static_cast<graph::NodeId>(i));
  }
  EXPECT_FALSE(actions[problem.graph.num_nodes()].is_node);
}

TEST(Policies, RandomIsDeterministicPerSeedAndRespectsBudget) {
  auto problem = bell_canada_scenario(2);
  recovery::RandomPolicy policy;
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const auto a = policy.plan_stage(problem, 0, 7, rng_a);
  const auto b = policy.plan_stage(problem, 0, 7, rng_b);
  ASSERT_EQ(a.size(), 7u);
  ASSERT_EQ(b.size(), 7u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_node, b[i].is_node);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].edge, b[i].edge);
  }
}

TEST(Policies, BetweennessGreedyRanksHubsFirst) {
  // Star: the hub dominates betweenness; with everything broken the hub
  // must be the first repair.
  core::RecoveryProblem problem;
  auto& g = problem.graph;
  const auto hub = g.add_node("hub");
  for (int leaf = 0; leaf < 5; ++leaf) {
    const auto n = g.add_node("leaf" + std::to_string(leaf));
    g.add_edge(hub, n, 1.0);
  }
  disruption::complete_destruction(g);
  recovery::BetweennessGreedyPolicy policy;
  util::Rng rng(0);
  const auto actions = policy.plan_stage(problem, 0, 3, rng);
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_TRUE(actions[0].is_node);
  EXPECT_EQ(actions[0].node, hub);
}

TEST(Policies, ReplanAdaptsToDamageTheInitialPlanNeverSaw) {
  // Two disjoint 2-edge routes; only the top one broken initially.  The
  // replay policy plans for the top route; a scripted break then severs the
  // bottom route *after* the plan executes.  Replay strands the demand;
  // replan repairs the new damage and restores it.
  core::RecoveryProblem problem;
  auto& g = problem.graph;
  const auto s = g.add_node("s");
  const auto a = g.add_node("a");
  const auto t = g.add_node("t");
  const auto b = g.add_node("b");
  const auto sa = g.add_edge(s, a, 10.0);
  const auto at = g.add_edge(a, t, 10.0);
  const auto sb = g.add_edge(s, b, 10.0);
  g.add_edge(b, t, 10.0);
  g.set_edge_broken(sa, true);
  g.set_edge_broken(at, true);
  problem.demands = {{s, t, 5.0}};

  // Break sa again and also sb at stage 1 (after the stage-0/1 repairs).
  const std::vector<ScriptedDynamics::Event> script{
      {1, false, static_cast<int>(sa)},
      {1, false, static_cast<int>(sb)},
  };
  recovery::TimelineOptions topt;
  topt.stage_budget = 1;

  util::Rng rng1(1);
  recovery::ReplayPolicy replay;
  ScriptedDynamics dyn1(script);
  const auto stale =
      recovery::Timeline(problem, replay, dyn1, topt).run(rng1);
  EXPECT_LT(stale.final_routed, 5.0);  // the static plan never recovers

  util::Rng rng2(1);
  recovery::ReplanPolicy replan;
  ScriptedDynamics dyn2(script);
  const auto adaptive =
      recovery::Timeline(problem, replan, dyn2, topt).run(rng2);
  EXPECT_EQ(adaptive.final_routed, 5.0);
  EXPECT_GT(adaptive.total_repairs, stale.total_repairs);
}

// --- runner ------------------------------------------------------------------

scenario::ProblemFactory runner_factory() {
  return [](util::Rng& rng) {
    core::RecoveryProblem problem;
    problem.graph = topology::make_topology({topology::BellCanadaOptions{}});
    util::Rng demand_rng = rng.fork();
    problem.demands =
        scenario::far_apart_demands(problem.graph, 3, 3.0, demand_rng);
    disruption::GaussianDisasterOptions gopt;
    gopt.variance = 80.0;
    disruption::gaussian_disaster(problem.graph, gopt, rng);
    return problem;
  };
}

TEST(TimelineRunner, AggregatesAreThreadCountInvariant) {
  std::vector<std::pair<std::string, scenario::PolicyFactory>> policies;
  policies.emplace_back("replay", [] {
    return std::make_unique<recovery::ReplayPolicy>();
  });
  policies.emplace_back("random", [] {
    return std::make_unique<recovery::RandomPolicy>();
  });
  std::vector<std::pair<std::string, scenario::DynamicsFactory>> dynamics;
  dynamics.emplace_back("static", [] {
    return std::make_unique<recovery::StaticDynamics>();
  });
  dynamics.emplace_back("aftershock", [] {
    disruption::AftershockOptions opts;
    opts.first.variance = 30.0;
    opts.max_shocks = 2;
    return std::make_unique<recovery::AftershockDynamics>(opts);
  });

  scenario::TimelineRunnerOptions options;
  options.runs = 3;
  options.seed = 99;
  options.timeline.stage_budget = 5;
  options.timeline.max_stages = 32;

  options.threads = 1;
  const auto serial =
      scenario::run_timelines(runner_factory(), policies, dynamics, options);
  options.threads = 4;
  const auto parallel =
      scenario::run_timelines(runner_factory(), policies, dynamics, options);

  ASSERT_EQ(serial.cell_names, parallel.cell_names);
  ASSERT_EQ(serial.cell_names.size(), 4u);
  EXPECT_EQ(serial.completed_runs, parallel.completed_runs);
  for (const std::string& cell : serial.cell_names) {
    for (const std::string& metric :
         {"restoration_auc", "stages", "total_repairs", "repair_cost",
          "final_pct", "stages_to_90", "shock_breaks"}) {
      EXPECT_EQ(serial.per_cell.at(cell).get(metric).mean(),
                parallel.per_cell.at(cell).get(metric).mean())
          << cell << " / " << metric;
      EXPECT_EQ(serial.per_cell.at(cell).get(metric).stddev(),
                parallel.per_cell.at(cell).get(metric).stddev())
          << cell << " / " << metric;
    }
  }
  // Sanity: every cell aggregated every run.
  for (const std::string& cell : serial.cell_names) {
    EXPECT_EQ(serial.per_cell.at(cell).get("restoration_auc").count(), 3u);
  }
}

}  // namespace
