// serve:: under injected faults — the PR 9 robustness layer.
//
// The load-bearing suites:
//   * ServeChaosMatrix — every serving-path fault site armed in turn
//     against a live server; the service must stay *serviceable*: every
//     request still ends in a 200 within the client's retry budget, and
//     the daemon answers health checks after the faults are disarmed.
//   * ServeRespawn — the "engine.solve" crash site kills workers
//     mid-request; the supervisor must respawn them (worker_restarts
//     counted, /v1/metrics agrees) while clients ride out the resets.
//   * ServeDegrade — the deadline-degradation differential: a degraded
//     response must be byte-identical to PlanningEngine::heuristic_plan,
//     tagged "degraded":true, and must never be served from cache.
//   * ServeShed — admission control: a tiny queue budget plus stalled
//     workers turns excess connections into 503 + Retry-After, counted in
//     shed_total.
//   * ServeShutdown — stop() under load drains within the bounded grace
//     and never wedges on in-flight connections.
//   * ServeClient — the retry/backoff client against a scripted responder:
//     transport errors and 503s are retried, terminal statuses are not.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "topology/generator.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;
namespace fault = netrec::util::fault;

core::RecoveryProblem small_problem() {
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng rng(7);
  p.demands = scenario::far_apart_demands(p.graph, 3, 6.0, rng);
  return p;
}

util::Json plan_body(std::vector<int> nodes, std::vector<int> edges) {
  util::Json body = util::Json::object();
  util::Json n = util::Json::array();
  for (int id : nodes) n.push_back(id);
  util::Json e = util::Json::array();
  for (int id : edges) e.push_back(id);
  body.set("broken_nodes", std::move(n));
  body.set("broken_edges", std::move(e));
  return body;
}

serve::ClientOptions fast_client_options(std::uint64_t seed) {
  serve::ClientOptions copt;
  copt.max_attempts = 6;
  copt.initial_backoff_ms = 1.0;
  copt.max_backoff_ms = 20.0;
  copt.retry_after_cap_ms = 20.0;
  copt.jitter_seed = seed;
  return copt;
}

/// Polls `predicate` until true or ~5s elapse.
bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

/// Extracts the verbatim "result" bytes of a /v1/plan response.
std::string result_bytes(const std::string& response) {
  static const std::string kPrefix = "{\"result\":";
  static const std::string kMeta = ",\"meta\":{\"fingerprint\":";
  EXPECT_EQ(response.rfind(kPrefix, 0), 0u);
  const std::size_t meta = response.rfind(kMeta);
  EXPECT_NE(meta, std::string::npos);
  return response.substr(kPrefix.size(), meta - kPrefix.size());
}

// ---------------------------------------------------------------------------
// Fault matrix: each serving-path site in turn; service stays serviceable.

TEST(ServeChaosMatrix, EverySiteStaysServiceableUnderRetry) {
  const core::RecoveryProblem p = small_problem();
  serve::ServerOptions options;
  options.workers = 2;
  options.engine.solve_threads = 2;  // so pool.task is actually on the path
  options.retry_after_seconds = 0;   // keep retries fast in tests
  serve::Server server(p, options);
  server.start();

  // Triggers chosen so consecutive retries cannot both fail: every2 faults
  // alternate hits, once2 fires a single time.  (pool.task uses once2:
  // with every2 armed, *every* multi-chunk solve would throw.)
  const std::vector<std::string> specs = {
      "serve.recv=every2",        "serve.send=every2",
      "serve.stall=every3",       "serve.cache.find=every2",
      "serve.cache.insert=every2", "pool.task=once2",
      "isp.deadline=every2",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    fault::ScopedArm arm(spec, 11);
    serve::Client client("127.0.0.1", server.port(),
                         fast_client_options(0x5115u));
    for (int i = 0; i < 6; ++i) {
      const serve::ClientResult result = client.request(
          "POST", "/v1/plan", plan_body({i % 8, 9}, {i % 5}).dump());
      EXPECT_EQ(result.response.status, 200)
          << "request " << i << ": " << result.error;
    }
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(client.request("GET", "/v1/health").response.status, 200);
    }
  }

  // All sites disarmed: the daemon must be fully healthy, first try.
  serve::Client client("127.0.0.1", server.port(), fast_client_options(1));
  const serve::ClientResult health = client.request("GET", "/v1/health");
  EXPECT_EQ(health.response.status, 200);
  EXPECT_EQ(health.attempts, 1);
  server.stop();
}

// ---------------------------------------------------------------------------
// Self-healing: worker crashes are respawned and counted.

TEST(ServeRespawn, CrashedWorkersAreRespawnedAndCounted) {
  const core::RecoveryProblem p = small_problem();
  serve::ServerOptions options;
  options.workers = 2;
  options.retry_after_seconds = 0;
  serve::Server server(p, options);
  server.start();
  EXPECT_EQ(server.worker_restarts(), 0u);

  {
    // Every 3rd engine.solve call throws InjectedCrash, which unwinds the
    // whole worker.  Distinct bodies force a fresh solve per request.
    fault::ScopedArm arm("engine.solve=every3", 5);
    serve::Client client("127.0.0.1", server.port(),
                         fast_client_options(0xdeadu));
    for (int i = 0; i < 9; ++i) {
      const serve::ClientResult result = client.request(
          "POST", "/v1/plan", plan_body({i}, {}).dump());
      EXPECT_EQ(result.response.status, 200)
          << "request " << i << ": " << result.error;
    }
  }

  EXPECT_TRUE(eventually([&] { return server.worker_restarts() >= 1; }));

  // The restart counter is exposed on /v1/metrics ("server" section).
  serve::Client client("127.0.0.1", server.port(), fast_client_options(2));
  const serve::ClientResult metrics = client.request("GET", "/v1/metrics");
  ASSERT_EQ(metrics.response.status, 200);
  const util::Json parsed = util::Json::parse(metrics.response.body);
  EXPECT_GE(parsed.at("server").at("worker_restarts").as_number(), 1.0);
  EXPECT_EQ(parsed.at("server").at("workers").as_number(), 2.0);

  // Respawned workers serve with fresh engines.
  const serve::ClientResult after =
      client.request("POST", "/v1/plan", plan_body({1, 2}, {}).dump());
  EXPECT_EQ(after.response.status, 200);
  server.stop();
}

// ---------------------------------------------------------------------------
// Deadline degradation: the differential against the heuristic fallback.

TEST(ServeDegrade, RealDeadlineDegradesToHeuristicBitIdentically) {
  const core::RecoveryProblem p = small_problem();
  serve::PlanRequest request;
  request.broken_nodes = {2, 5, 9};
  request.broken_edges = {3};

  serve::EngineOptions tight;
  tight.deadline_ms = 1e-4;  // expired before the first ISP iteration
  serve::PlanningEngine deadline_engine(p, tight);
  const serve::PlanOutcome outcome = deadline_engine.solve(request);
  EXPECT_TRUE(outcome.degraded);

  serve::PlanningEngine reference(p);
  EXPECT_EQ(outcome.payload.dump(),
            reference.heuristic_plan(request).dump());
  // Degraded twice in a row is still deterministic.
  EXPECT_EQ(deadline_engine.solve(request).payload.dump(),
            outcome.payload.dump());
  // Without a deadline the same request solves fully.
  const serve::PlanOutcome full = reference.solve(request);
  EXPECT_FALSE(full.degraded);
  EXPECT_NE(full.payload.dump(), outcome.payload.dump());
}

TEST(ServeDegrade, TimelineRequestsDegradeToTheIspShapedFallback) {
  const core::RecoveryProblem p = small_problem();
  serve::PlanRequest request;
  request.broken_nodes = {4, 7};
  request.mode = serve::PlanRequest::Mode::kTimeline;

  fault::ScopedArm arm("isp.deadline=every1", 3);
  serve::PlanningEngine engine(p);
  const serve::PlanOutcome outcome = engine.solve(request);
  EXPECT_TRUE(outcome.degraded);
  // The fallback is always isp-shaped, whatever the requested mode
  // (documented in serve_protocol.md).
  EXPECT_EQ(outcome.payload.at("mode").as_string(), "isp");
  fault::disarm_all();
  EXPECT_EQ(engine.heuristic_plan(request).dump(), outcome.payload.dump());
}

TEST(ServeDegrade, DegradedResponsesAreTaggedAndNeverCached) {
  const core::RecoveryProblem p = small_problem();
  serve::ServerOptions options;
  options.workers = 1;
  serve::Server server(p, options);
  server.start();
  const std::string body = plan_body({2, 5, 9}, {3}).dump();

  serve::PlanRequest request;
  request.broken_nodes = {2, 5, 9};
  request.broken_edges = {3};
  serve::PlanningEngine direct(p);
  const std::string expected_degraded = direct.heuristic_plan(request).dump();
  const std::string expected_full = direct.solve(request).payload.dump();

  serve::Client client("127.0.0.1", server.port(), fast_client_options(9));
  {
    fault::ScopedArm arm("isp.deadline=every1", 3);
    for (int i = 0; i < 2; ++i) {
      const serve::ClientResult result =
          client.request("POST", "/v1/plan", body);
      ASSERT_EQ(result.response.status, 200);
      // Tagged degraded, never served from cache (a hit must always be a
      // full solve), and byte-identical to the heuristic fallback.
      EXPECT_NE(result.response.body.find("\"degraded\":true"),
                std::string::npos);
      EXPECT_NE(result.response.body.find("\"cached\":false"),
                std::string::npos);
      EXPECT_EQ(result_bytes(result.response.body), expected_degraded);
    }
    EXPECT_EQ(server.degraded_total(), 2u);
  }

  // Faults gone: the same request now solves fully (fresh, then cached).
  const serve::ClientResult fresh = client.request("POST", "/v1/plan", body);
  ASSERT_EQ(fresh.response.status, 200);
  EXPECT_NE(fresh.response.body.find("\"degraded\":false"),
            std::string::npos);
  EXPECT_NE(fresh.response.body.find("\"cached\":false"), std::string::npos);
  EXPECT_EQ(result_bytes(fresh.response.body), expected_full);

  const serve::ClientResult cached = client.request("POST", "/v1/plan", body);
  ASSERT_EQ(cached.response.status, 200);
  EXPECT_NE(cached.response.body.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(cached.response.body.find("\"degraded\":false"),
            std::string::npos);
  EXPECT_EQ(result_bytes(cached.response.body), expected_full);
  server.stop();
}

// ---------------------------------------------------------------------------
// Admission control: overload is shed with 503 + Retry-After.

TEST(ServeShed, OverloadShedsWith503AndRetryAfter) {
  const core::RecoveryProblem p = small_problem();
  serve::ServerOptions options;
  options.workers = 1;
  options.queue_budget = 1;
  options.retry_after_seconds = 1;
  serve::Server server(p, options);
  server.start();

  // Park the single worker on every request so the queue fills instantly.
  fault::ScopedArm arm("serve.stall=p1", 1);
  const std::string body = plan_body({1}, {}).dump();
  std::atomic<int> shed_seen{0};
  std::atomic<int> ok_seen{0};
  std::atomic<int> retry_after_seen{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      try {
        // Raw fetch, no retries: a shed 503 must reach the caller as-is.
        const serve::HttpResponse response =
            serve::http_fetch("127.0.0.1", server.port(), "POST", "/v1/plan",
                              body);
        if (response.status == 503) {
          ++shed_seen;
          if (response.headers.count("retry-after") > 0 &&
              response.headers.at("retry-after") == "1") {
            ++retry_after_seen;
          }
        } else if (response.status == 200) {
          ++ok_seen;
        }
      } catch (const std::exception&) {
        // A reset during the shed race also counts as load shed away.
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  EXPECT_GE(shed_seen.load(), 1);
  EXPECT_EQ(retry_after_seen.load(), shed_seen.load());
  EXPECT_GE(ok_seen.load(), 1);  // admitted requests still complete
  EXPECT_GE(server.shed_total(), static_cast<std::uint64_t>(shed_seen));
  server.stop();
}

// ---------------------------------------------------------------------------
// Shutdown under load: bounded-grace drain, no wedge.

TEST(ServeShutdown, StopUnderLoadDrainsWithinGrace) {
  const core::RecoveryProblem p = small_problem();
  serve::ServerOptions options;
  options.workers = 2;
  options.shutdown_grace_seconds = 2.0;
  serve::Server server(p, options);
  server.start();

  // Stalled handlers keep connections in flight while stop() runs.
  fault::ScopedArm arm("serve.stall=p1", 1);
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      try {
        serve::http_fetch("127.0.0.1", server.port(), "POST", "/v1/plan",
                          plan_body({c}, {}).dump());
      } catch (const std::exception&) {
        // Flushed with 503 or reset by the grace timeout — both fine; the
        // point is that the call RETURNS.
      }
      ++completed;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(server.running());
  // Bounded: in-flight stalls are ~200ms, well inside the 2s grace; the
  // force-shut path bounds even a pathological stall by grace + join time.
  EXPECT_LT(stop_seconds, 10.0);
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(completed.load(), 6);
}

TEST(ServeShutdown, StopIsIdempotentAndRestartable) {
  const core::RecoveryProblem p = small_problem();
  serve::Server server(p, {});
  server.start();
  serve::Client client("127.0.0.1", server.port(), fast_client_options(3));
  EXPECT_EQ(client.request("GET", "/v1/health").response.status, 200);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------------
// The retrying client against a scripted responder.

TEST(ServeClient, RetriesTransportErrorsAnd503ThenSucceeds) {
  const int listen_fd = serve::listen_on("127.0.0.1", 0);
  const int port = serve::bound_port(listen_fd);
  std::thread responder([listen_fd] {
    // Connection 1: reset without a response (transport error).
    int fd = ::accept(listen_fd, nullptr, nullptr);
    ::close(fd);
    // Connection 2: overloaded, advertise an immediate retry.
    fd = ::accept(listen_fd, nullptr, nullptr);
    serve::HttpRequest request;
    serve::read_http_request(fd, request);
    serve::write_http_response(fd, 503, "application/json", "{}",
                               {{"Retry-After", "0"}});
    ::close(fd);
    // Connection 3: healthy.
    fd = ::accept(listen_fd, nullptr, nullptr);
    serve::read_http_request(fd, request);
    serve::write_http_response(fd, 200, "application/json", "{\"ok\":true}");
    ::close(fd);
  });

  serve::Client client("127.0.0.1", port, fast_client_options(0xbac0ffu));
  const serve::ClientResult result = client.request("GET", "/v1/health");
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.transient_errors, 2);
  EXPECT_TRUE(result.ok());
  responder.join();
  ::close(listen_fd);
}

TEST(ServeClient, DoesNotRetryTerminalStatuses) {
  const int listen_fd = serve::listen_on("127.0.0.1", 0);
  const int port = serve::bound_port(listen_fd);
  std::thread responder([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    serve::HttpRequest request;
    serve::read_http_request(fd, request);
    serve::write_http_response(fd, 500, "application/json", "{}");
    ::close(fd);
  });
  serve::Client client("127.0.0.1", port, fast_client_options(4));
  const serve::ClientResult result = client.request("GET", "/x");
  EXPECT_EQ(result.response.status, 500);
  EXPECT_EQ(result.attempts, 1);  // 500 is an answer, not an outage
  EXPECT_EQ(result.transient_errors, 0);
  EXPECT_FALSE(result.ok());
  responder.join();
  ::close(listen_fd);
}

TEST(ServeClient, ReportsExhaustionAfterMaxAttempts) {
  const int listen_fd = serve::listen_on("127.0.0.1", 0);
  const int port = serve::bound_port(listen_fd);
  serve::ClientOptions copt = fast_client_options(5);
  copt.max_attempts = 3;
  std::thread responder([listen_fd] {
    for (int i = 0; i < 3; ++i) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      ::close(fd);  // every attempt resets
    }
  });
  serve::Client client("127.0.0.1", port, copt);
  const serve::ClientResult result = client.request("GET", "/v1/health");
  EXPECT_EQ(result.response.status, 0);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.transient_errors, 3);
  EXPECT_FALSE(result.error.empty());
  EXPECT_FALSE(result.ok());
  responder.join();
  ::close(listen_fd);
}

}  // namespace
