// ISP differential harness: the ViewCache-backed engine must be
// bit-identical to the graph::legacy-backed reference across seeded broken
// scenarios and every option combination — repair sequences (order
// included), traced event streams (prune/split amounts, i.e. the flows the
// engine committed), referee routing and objective values, all compared
// with exact equality.  This is the executable form of the cache's
// invalidation audit: any stale view, missed invalidation or over-eager
// rebuild shows up as a diverging action sequence.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/isp.hpp"
#include "core/problem.hpp"
#include "disruption/disruption.hpp"
#include "graph/traversal.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;

/// Broken connected-ish ER instance with far-apart demands.
core::RecoveryProblem er_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 104729 + 13);
  core::RecoveryProblem p;
  topology::ErdosRenyiOptions eopt;
  eopt.nodes = 24;
  eopt.edge_probability = 0.18;
  eopt.capacity = 10.0;
  std::size_t attempts = 0;
  do {
    p.graph = topology::make_topology(eopt, rng);
  } while (graph::hop_diameter(p.graph) < 0 && ++attempts < 50);
  util::Rng demand_rng = rng.fork();
  p.demands = scenario::far_apart_demands(p.graph, 3, 4.0, demand_rng);
  // Heavy but not complete destruction, so prune bubbles exist.
  for (std::size_t n = 0; n < p.graph.num_nodes(); ++n) {
    if (rng.chance(0.55)) {
      p.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
    }
  }
  for (std::size_t e = 0; e < p.graph.num_edges(); ++e) {
    if (rng.chance(0.6)) {
      p.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
    }
  }
  return p;
}

/// Bell-Canada under regional or complete destruction.
core::RecoveryProblem bell_canada_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 7907 + 5);
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng demand_rng = rng.fork();
  p.demands = scenario::far_apart_demands(p.graph, 4, 3.0, demand_rng);
  if (seed % 2 == 0) {
    disruption::complete_destruction(p.graph);
  } else {
    for (std::size_t n = 0; n < p.graph.num_nodes(); ++n) {
      if (rng.chance(0.5)) {
        p.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
      }
    }
    for (std::size_t e = 0; e < p.graph.num_edges(); ++e) {
      if (rng.chance(0.5)) {
        p.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
      }
    }
  }
  return p;
}

void expect_same_events(const std::vector<core::IspEvent>& cached,
                        const std::vector<core::IspEvent>& reference) {
  ASSERT_EQ(cached.size(), reference.size()) << "event counts diverge";
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].kind, reference[i].kind) << "event " << i;
    EXPECT_EQ(cached[i].demand, reference[i].demand) << "event " << i;
    EXPECT_EQ(cached[i].node, reference[i].node) << "event " << i;
    EXPECT_EQ(cached[i].edge, reference[i].edge) << "event " << i;
    EXPECT_EQ(cached[i].amount, reference[i].amount)
        << "event " << i << " (" << cached[i].to_string() << " vs "
        << reference[i].to_string() << ")";
  }
}

/// Runs the solver under two option sets on the same problem and asserts
/// bitwise-identical behaviour: repair lists in decision order, event
/// trace, iteration and action counters, referee routing and objective
/// values.
void expect_options_agree(const core::RecoveryProblem& problem,
                          const core::IspOptions& candidate,
                          const core::IspOptions& reference_options,
                          const std::string& label) {
  core::IspSolver cached_solver(problem, candidate);
  cached_solver.set_trace(true);
  const core::RecoverySolution cached = cached_solver.solve();

  core::IspSolver reference_solver(problem, reference_options);
  reference_solver.set_trace(true);
  const core::RecoverySolution reference = reference_solver.solve();

  SCOPED_TRACE(label);
  // Repair sequences: identical elements in the identical decision order.
  EXPECT_EQ(cached.repaired_nodes, reference.repaired_nodes);
  EXPECT_EQ(cached.repaired_edges, reference.repaired_edges);
  // Objectives and referee scoring, exact.
  EXPECT_EQ(cached.repair_cost, reference.repair_cost);
  EXPECT_EQ(cached.satisfied_fraction, reference.satisfied_fraction);
  EXPECT_EQ(cached.instance_feasible, reference.instance_feasible);
  EXPECT_EQ(cached.iterations, reference.iterations);
  // Referee routing (the flows scored against the solution).
  EXPECT_EQ(cached.routing.total_routed, reference.routing.total_routed);
  EXPECT_EQ(cached.routing.routed, reference.routing.routed);
  // Engine action counters.
  EXPECT_EQ(cached_solver.stats().prunes, reference_solver.stats().prunes);
  EXPECT_EQ(cached_solver.stats().splits, reference_solver.stats().splits);
  EXPECT_EQ(cached_solver.stats().direct_edge_repairs,
            reference_solver.stats().direct_edge_repairs);
  EXPECT_EQ(cached_solver.stats().watchdog_activations,
            reference_solver.stats().watchdog_activations);
  // The full action stream, amounts included (prune flows, split dx).
  expect_same_events(cached_solver.stats().events,
                     reference_solver.stats().events);
}

/// ViewCache backend (with its default LpReuse::kSession) against the
/// graph::legacy reference.
void expect_backends_agree(const core::RecoveryProblem& problem,
                           core::IspOptions options,
                           const std::string& label) {
  core::IspOptions cached = options;
  cached.backend = core::IspBackend::kViewCache;
  core::IspOptions reference = options;
  reference.backend = core::IspBackend::kLegacy;
  expect_options_agree(problem, cached, reference, label);
}

/// LpReuse::kSession against LpReuse::kNone, both on the ViewCache
/// backend: isolates the PathLpSession machinery (pooled columns, warm
/// bases, appended-row partial restarts, session-only centrality/flow
/// shortcuts) as the only difference under test.
void expect_lp_reuse_agrees(const core::RecoveryProblem& problem,
                            core::IspOptions options,
                            const std::string& label) {
  options.backend = core::IspBackend::kViewCache;
  core::IspOptions session = options;
  session.lp_reuse = mcf::LpReuse::kSession;
  core::IspOptions one_shot = options;
  one_shot.lp_reuse = mcf::LpReuse::kNone;
  expect_options_agree(problem, session, one_shot, label);
}

/// The option matrix: default engine, both centrality modes, the LP in
/// eager and lazy capacity-row regimes, prune/direct-repair ablations and
/// jittered metrics.
std::vector<std::pair<std::string, core::IspOptions>> option_combos() {
  std::vector<std::pair<std::string, core::IspOptions>> combos;
  combos.emplace_back("default", core::IspOptions{});
  {
    core::IspOptions o;
    o.use_classic_betweenness = true;
    combos.emplace_back("classic-betweenness", o);
  }
  {
    core::IspOptions o;
    o.lp.eager_capacity_threshold = 0;  // force lazy capacity rows
    combos.emplace_back("lp-lazy-rows", o);
  }
  {
    core::IspOptions o;
    o.lp.seed_paths_per_demand = 0;  // LP starts from an empty column pool
    combos.emplace_back("lp-no-seeds", o);
  }
  {
    core::IspOptions o;
    o.enable_prune = false;
    combos.emplace_back("no-prune", o);
  }
  {
    core::IspOptions o;
    o.enable_direct_edge_repair = false;
    combos.emplace_back("no-direct-repair", o);
  }
  {
    core::IspOptions o;
    o.length_jitter = 0.15;
    o.jitter_seed = 99;
    combos.emplace_back("jittered-metric", o);
  }
  return combos;
}

// ≥ 20 seeded scenarios under the default options: 12 ER + 8 Bell-Canada.

class IspDifferentialEr : public ::testing::TestWithParam<int> {};

TEST_P(IspDifferentialEr, CachedMatchesLegacyReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_backends_agree(er_scenario(seed), core::IspOptions{},
                        "er seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspDifferentialEr, ::testing::Range(1, 13));

class IspDifferentialBellCanada : public ::testing::TestWithParam<int> {};

TEST_P(IspDifferentialBellCanada, CachedMatchesLegacyReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_backends_agree(bell_canada_scenario(seed), core::IspOptions{},
                        "bell-canada seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspDifferentialBellCanada,
                         ::testing::Range(1, 9));

// Every option combination over a rotating subset of both families.

class IspDifferentialOptions : public ::testing::TestWithParam<int> {};

TEST_P(IspDifferentialOptions, AllCombosMatchLegacyReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& [name, options] : option_combos()) {
    expect_backends_agree(er_scenario(seed + 100), options,
                          "er seed " + std::to_string(seed + 100) + " / " +
                              name);
    expect_backends_agree(bell_canada_scenario(seed + 100), options,
                          "bell-canada seed " + std::to_string(seed + 100) +
                              " / " + name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspDifferentialOptions,
                         ::testing::Range(1, 4));

// PathLpSession vs one-shot PathLp (LpReuse::kSession vs kNone, both on
// the ViewCache backend) across >= 20 seeded scenarios: 12 ER + 8
// Bell-Canada under default options, plus every option combination on a
// rotating subset.  Pins the session's column pool, warm-basis reuse and
// invalidation hooks bit-identical to the per-iteration reference.

class IspSessionDifferentialEr : public ::testing::TestWithParam<int> {};

TEST_P(IspSessionDifferentialEr, SessionMatchesOneShotReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_lp_reuse_agrees(er_scenario(seed), core::IspOptions{},
                         "er seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspSessionDifferentialEr,
                         ::testing::Range(1, 13));

class IspSessionDifferentialBellCanada
    : public ::testing::TestWithParam<int> {};

TEST_P(IspSessionDifferentialBellCanada, SessionMatchesOneShotReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_lp_reuse_agrees(bell_canada_scenario(seed), core::IspOptions{},
                         "bell-canada seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspSessionDifferentialBellCanada,
                         ::testing::Range(1, 9));

class IspSessionDifferentialOptions : public ::testing::TestWithParam<int> {};

TEST_P(IspSessionDifferentialOptions, AllCombosMatchOneShotReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& [name, options] : option_combos()) {
    expect_lp_reuse_agrees(er_scenario(seed + 200), options,
                           "er seed " + std::to_string(seed + 200) + " / " +
                               name);
    expect_lp_reuse_agrees(bell_canada_scenario(seed + 200), options,
                           "bell-canada seed " + std::to_string(seed + 200) +
                               " / " + name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspSessionDifferentialOptions,
                         ::testing::Range(1, 4));

}  // namespace
