// Tests for the minimal JSON writer/parser behind structured sweep output.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace netrec::util {
namespace {

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(-2.5).dump(), "-2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringsAreEscaped) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json obj = Json::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  obj.set("zeta", 9);  // overwrite keeps the original position
  EXPECT_EQ(obj.dump(), "{\"zeta\":9,\"alpha\":2,\"mid\":3}");
}

TEST(Json, ParseRoundTripsNestedDocuments) {
  Json doc = Json::object();
  doc.set("name", "sweep");
  doc.set("count", 20);
  doc.set("exact", 0.1);
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner.set("mean", 13.25);
  arr.push_back(inner);
  doc.set("items", arr);

  const Json parsed = Json::parse(doc.dump());
  EXPECT_TRUE(parsed == doc);
  const Json pretty_parsed = Json::parse(doc.dump(2));
  EXPECT_TRUE(pretty_parsed == doc);
  EXPECT_EQ(parsed.at("items").at(2).at("mean").as_number(), 13.25);
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double v : {0.0, -0.0, 1.0 / 3.0, 1e-9, 123456789.123456,
                         -2.2250738585072014e-308, 9007199254740993.0}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_EQ(parsed.as_number(), v) << "value " << v;
  }
}

TEST(Json, ParseHandlesWhitespaceAndEscapes) {
  const Json parsed =
      Json::parse("  { \"a\\u0041\" : [ true , null ] }  ");
  EXPECT_TRUE(parsed.contains("aA"));
  EXPECT_EQ(parsed.at("aA").size(), 2u);
  EXPECT_TRUE(parsed.at("aA").at(0).as_bool());
  EXPECT_TRUE(parsed.at("aA").at(1).is_null());
}

TEST(Json, SurrogatePairsDecodeToAstralCodePoints) {
  // U+1F600 (😀) arrives as the UTF-16 pair D83D DE00 and must decode to
  // the 4-byte UTF-8 sequence F0 9F 98 80.
  const Json grin = Json::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(grin.as_string(), "\xf0\x9f\x98\x80");
  // Uppercase hex, pair embedded in surrounding text.
  const Json mixed = Json::parse("\"a\\uD83D\\uDE00b\"");
  EXPECT_EQ(mixed.as_string(), "a\xf0\x9f\x98\x80"
                               "b");
  // U+10000, the first astral code point (pair D800 DC00).
  EXPECT_EQ(Json::parse("\"\\ud800\\udc00\"").as_string(),
            "\xf0\x90\x80\x80");
  // The writer emits raw UTF-8, so the decoded value round-trips.
  EXPECT_EQ(Json::parse(grin.dump()).as_string(), grin.as_string());
  EXPECT_EQ(Json::parse(mixed.dump()), mixed);
}

TEST(Json, LoneSurrogatesAreRejected) {
  // Unpaired high surrogate: end of string, non-escape follow-up, or an
  // escape that is not a low surrogate.
  EXPECT_THROW(Json::parse("\"\\ud800\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\ud83dx\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\ud83d\\n\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\ud83d\\u0041\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\ud800\\ud800\""), std::runtime_error);
  // Unpaired low surrogate.
  EXPECT_THROW(Json::parse("\"\\udc00\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\ude00abc\""), std::runtime_error);
  // BMP escapes on the surrogate-range boundaries still work.
  EXPECT_EQ(Json::parse("\"\\ud7ff\"").as_string(), "\xed\x9f\xbf");
  EXPECT_EQ(Json::parse("\"\\ue000\"").as_string(), "\xee\x80\x80");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).as_string(), std::runtime_error);
  EXPECT_THROW(Json("x").as_number(), std::runtime_error);
  EXPECT_THROW(Json(true).at("k"), std::runtime_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.at("missing"), std::runtime_error);
}

TEST(Json, FileRoundTrip) {
  Json doc = Json::object();
  doc.set("answer", 42);
  const std::string path =
      ::testing::TempDir() + "netrec_json_roundtrip.json";
  write_json_file(path, doc);
  const Json loaded = read_json_file(path);
  EXPECT_TRUE(loaded == doc);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netrec::util
