// ISP algorithm tests (paper Section IV-V).
//
// Correctness invariants asserted here:
//  * on feasible instances ISP satisfies the full demand (Theorem 4 +
//    "no demand loss" claims in Section VII);
//  * repairs are a subset of broken elements and the routing referee
//    validates end to end;
//  * ISP repairs (weakly) less than repairing everything and concentrates
//    shared demand, matching the Section IV design intent;
//  * termination within the iteration budget across a randomised sweep.
#include <gtest/gtest.h>

#include "core/isp.hpp"
#include "core/problem.hpp"
#include "mcf/routing.hpp"
#include "util/rng.hpp"

namespace netrec::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

RecoveryProblem destroyed_path(int n, double cap, double demand) {
  RecoveryProblem p;
  for (int i = 0; i < n; ++i) p.graph.add_node();
  for (int i = 0; i + 1 < n; ++i) p.graph.add_edge(i, i + 1, cap);
  p.graph.break_everything();
  p.demands = {{0, static_cast<NodeId>(n - 1), demand}};
  return p;
}

TEST(Isp, RepairsExactlyThePathOnALine) {
  RecoveryProblem p = destroyed_path(4, 10.0, 5.0);
  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_TRUE(s.instance_feasible);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_EQ(s.repaired_nodes.size(), 4u);
  EXPECT_EQ(s.repaired_edges.size(), 3u);
  EXPECT_TRUE(validate_solution(p, s).empty());
}

TEST(Isp, NoRepairsWhenNetworkIsIntact) {
  RecoveryProblem p = destroyed_path(4, 10.0, 5.0);
  p.graph.repair_everything();
  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_EQ(s.total_repairs(), 0u);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
}

TEST(Isp, ReusesWorkingIslandInTheMiddle) {
  // 0-1-2-3-4 destroyed except node 2 and nothing else: ISP must still
  // repair the rest; but if edges 1-2,2-3 and nodes 1,2,3 work, only the
  // outer pieces are repaired.
  RecoveryProblem p = destroyed_path(5, 10.0, 5.0);
  p.graph.set_node_broken(1, false);
  p.graph.set_node_broken(2, false);
  p.graph.set_node_broken(3, false);
  p.graph.set_edge_broken(1, false);  // 1-2
  p.graph.set_edge_broken(2, false);  // 2-3
  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_EQ(s.repaired_nodes.size(), 2u);  // 0 and 4
  EXPECT_EQ(s.repaired_edges.size(), 2u);  // 0-1 and 3-4
  EXPECT_TRUE(validate_solution(p, s).empty());
}

TEST(Isp, ConcentratesTwoDemandsOnSharedCorridor) {
  //  0          5
  //   \        /
  //    2 ---- 3          All broken.  Demands (0,4) and (1,5), 5 units each,
  //   /        \         corridor capacity 20: sharing 2-3 is optimal
  //  1          4        (7 nodes... 6 nodes + 5 edges around the corridor).
  RecoveryProblem p;
  for (int i = 0; i < 6; ++i) p.graph.add_node();
  p.graph.add_edge(0, 2, 20.0);
  p.graph.add_edge(1, 2, 20.0);
  p.graph.add_edge(2, 3, 20.0);
  p.graph.add_edge(3, 4, 20.0);
  p.graph.add_edge(3, 5, 20.0);
  // Expensive private bypass that a naive shortest-path approach might use.
  p.graph.add_edge(0, 4, 20.0);
  p.graph.set_edge_repair_cost(5, 10.0);
  p.graph.break_everything();
  p.demands = {{0, 4, 5.0}, {1, 5, 5.0}};

  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(validate_solution(p, s).empty());
  // Shared corridor solution: 6 nodes + 5 edges = 11 repairs, cost 11.
  // Using the bypass instead costs >= 19.
  EXPECT_LE(s.repair_cost, 11.0 + 1e-9);
  EXPECT_EQ(s.total_repairs(), 11u);
}

TEST(Isp, SplitsDemandAcrossParallelRoutesWhenCapacityForces) {
  // Demand 15 exceeds any single route (capacity 10): ISP must split.
  RecoveryProblem p;
  for (int i = 0; i < 4; ++i) p.graph.add_node();
  p.graph.add_edge(0, 1, 10.0);
  p.graph.add_edge(1, 3, 10.0);
  p.graph.add_edge(0, 2, 10.0);
  p.graph.add_edge(2, 3, 10.0);
  p.graph.break_everything();
  p.demands = {{0, 3, 15.0}};
  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(validate_solution(p, s).empty());
  // Needs both routes: all 4 nodes + all 4 edges.
  EXPECT_EQ(s.total_repairs(), 8u);
}

TEST(Isp, PrunesDemandsSatisfiedByWorkingNetwork) {
  // Network intact except one far-away broken node irrelevant to the demand.
  RecoveryProblem p = destroyed_path(4, 10.0, 5.0);
  p.graph.repair_everything();
  p.graph.add_node();                    // node 4, isolated & broken
  p.graph.set_node_broken(4, true);
  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_EQ(s.total_repairs(), 0u);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_GE(solver.stats().prunes + 1, 1u);  // pruned or routable directly
}

TEST(Isp, InfeasibleInstanceIsFlaggedAndBestEffort) {
  RecoveryProblem p = destroyed_path(3, 2.0, 5.0);  // demand > capacity
  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_FALSE(s.instance_feasible);
  EXPECT_LT(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(validate_solution(p, s).empty());  // still a valid partial
}

TEST(Isp, RepairsNothingForEmptyDemand) {
  RecoveryProblem p = destroyed_path(4, 10.0, 5.0);
  p.demands.clear();
  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_EQ(s.total_repairs(), 0u);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
}

TEST(Isp, TraceRecordsActions) {
  RecoveryProblem p = destroyed_path(4, 10.0, 5.0);
  IspSolver solver(p);
  solver.set_trace(true);
  (void)solver.solve();
  EXPECT_FALSE(solver.stats().events.empty());
  for (const auto& ev : solver.stats().events) {
    EXPECT_FALSE(ev.to_string().empty());
  }
}

// --- randomised sweep: ISP invariants on feasible instances ---------------

class IspRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(IspRandomSweep, FeasibleInstancesAreFullySatisfied) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  // Random connected graph with generous capacities.
  const int n = static_cast<int>(rng.uniform_int(6, 14));
  RecoveryProblem p;
  for (int i = 0; i < n; ++i) p.graph.add_node();
  for (int i = 1; i < n; ++i) {
    // Random spanning tree + extra edges.
    const auto parent = static_cast<NodeId>(rng.uniform_int(0, i - 1));
    p.graph.add_edge(parent, i, rng.uniform(8.0, 20.0));
  }
  for (int extra = 0; extra < n; ++extra) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (a != b && p.graph.find_edge(a, b) == graph::kInvalidEdge) {
      p.graph.add_edge(a, b, rng.uniform(8.0, 20.0));
    }
  }
  // Random disruption (possibly total).
  const double destroy = rng.uniform(0.3, 1.0);
  for (std::size_t i = 0; i < p.graph.num_nodes(); ++i) {
    if (rng.chance(destroy)) p.graph.set_node_broken(static_cast<NodeId>(i), true);
  }
  for (std::size_t e = 0; e < p.graph.num_edges(); ++e) {
    if (rng.chance(destroy)) p.graph.set_edge_broken(static_cast<EdgeId>(e), true);
  }
  // A few small far-apart demands (kept below min capacity so instances stay
  // feasible by construction).
  const int pairs = static_cast<int>(rng.uniform_int(1, 3));
  for (int k = 0; k < pairs; ++k) {
    const auto s = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto t = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (s != t) p.demands.push_back({s, t, rng.uniform(1.0, 3.0)});
  }
  if (p.demands.empty()) return;
  ASSERT_TRUE(p.feasible_when_fully_repaired());

  IspSolver solver(p);
  const RecoverySolution s = solver.solve();
  EXPECT_TRUE(s.instance_feasible);
  EXPECT_NEAR(s.satisfied_fraction, 1.0, 1e-6)
      << "seed " << GetParam() << ": ISP lost demand on feasible instance";
  EXPECT_TRUE(validate_solution(p, s).empty());
  EXPECT_LE(s.total_repairs(),
            p.graph.num_broken_nodes() + p.graph.num_broken_edges());
  EXPECT_LT(solver.stats().iterations, 5000u);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, IspRandomSweep,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace netrec::core
