// ViewCache contract tests: after any interleaving of repair / capacity
// mutations and invalidation events, a cached view must agree arc-for-arc
// (CSR offsets, targets, edge ids, lengths, capacities, usability bits)
// with a GraphView built fresh from the same configuration — bitwise, not
// approximately.  Randomised over broken Erdős–Rényi draws and the
// Bell-Canada topology, mirroring the PR-2 GraphView equivalence style.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/repair_state.hpp"
#include "graph/view.hpp"
#include "graph/view_cache.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;

graph::Graph broken_er(std::uint64_t seed, std::size_t nodes = 30,
                       double p = 0.15) {
  util::Rng rng(seed);
  topology::ErdosRenyiOptions options;
  options.nodes = nodes;
  options.edge_probability = p;
  options.capacity = 8.0;
  graph::Graph g = topology::make_topology(options, rng);
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    if (rng.chance(0.2)) g.set_node_broken(static_cast<graph::NodeId>(n), true);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (rng.chance(0.3)) g.set_edge_broken(static_cast<graph::EdgeId>(e), true);
  }
  return g;
}

/// Exact structural equality: offsets, arc records, per-edge metric arrays
/// and both usability bitsets.
void expect_same_view(const graph::GraphView& cached,
                      const graph::GraphView& fresh) {
  ASSERT_EQ(cached.num_nodes(), fresh.num_nodes());
  ASSERT_EQ(cached.num_edges(), fresh.num_edges());
  ASSERT_EQ(cached.num_arcs(), fresh.num_arcs());
  for (std::size_t n = 0; n < cached.num_nodes(); ++n) {
    const auto id = static_cast<graph::NodeId>(n);
    EXPECT_EQ(cached.node_in_view(id), fresh.node_in_view(id));
    ASSERT_EQ(cached.arcs_begin(id), fresh.arcs_begin(id))
        << "offset mismatch at node " << n;
    ASSERT_EQ(cached.arcs_end(id), fresh.arcs_end(id));
    for (graph::ArcId a = cached.arcs_begin(id); a < cached.arcs_end(id);
         ++a) {
      EXPECT_EQ(cached.arc_target(a), fresh.arc_target(a));
      EXPECT_EQ(cached.arc_edge(a), fresh.arc_edge(a));
      EXPECT_EQ(cached.arc_length(a), fresh.arc_length(a));
      EXPECT_EQ(cached.arc_capacity(a), fresh.arc_capacity(a));
    }
  }
  for (std::size_t e = 0; e < cached.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    EXPECT_EQ(cached.edge_in_view(id), fresh.edge_in_view(id))
        << "usability mismatch on edge " << e;
    EXPECT_EQ(cached.edge_passes_filter(id), fresh.edge_passes_filter(id));
    EXPECT_EQ(cached.edge_length(id), fresh.edge_length(id))
        << "length mismatch on edge " << e;
    EXPECT_EQ(cached.edge_capacity(id), fresh.edge_capacity(id))
        << "capacity mismatch on edge " << e;
  }
}

/// ISP-shaped mutable state driving the cached configs.
struct MutableState {
  explicit MutableState(const graph::Graph& graph)
      : g(graph), repairs(graph), residual(graph.num_edges()) {
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      residual[e] = g.edge_capacity(static_cast<graph::EdgeId>(e));
    }
  }

  double metric(graph::EdgeId e) const {
    const auto [eu, ev] = g.edge_endpoints(e);
    double k = 1.0;
    if (g.edge_broken(e) && !repairs.edge_repaired(e)) k += g.edge_repair_cost(e);
    if (g.node_broken(eu) && !repairs.node_repaired(eu)) k += 0.5;
    if (g.node_broken(ev) && !repairs.node_repaired(ev)) k += 0.5;
    return k / std::max(residual[static_cast<std::size_t>(e)], 1e-6);
  }

  const graph::Graph& g;
  core::RepairState repairs;
  std::vector<double> residual;
};

/// The three ISP-style configurations over `state`.
std::vector<graph::ViewConfig> configs(MutableState& state) {
  graph::ViewConfig working;
  working.edge_ok = [&state](graph::EdgeId e) {
    return state.repairs.edge_ok(e);
  };
  working.capacity = [&state](graph::EdgeId e) {
    return state.residual[static_cast<std::size_t>(e)];
  };
  graph::ViewConfig metric;  // full graph, dynamic lengths
  metric.length = [&state](graph::EdgeId e) { return state.metric(e); };
  metric.capacity = working.capacity;
  graph::ViewConfig usable;  // residual-positive membership
  usable.edge_ok = [&state](graph::EdgeId e) {
    return state.residual[static_cast<std::size_t>(e)] > 1e-9;
  };
  usable.length = metric.length;
  return {working, metric, usable};
}

TEST(ViewCache, RandomInterleavingsMatchFreshBuilds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const graph::Graph g = broken_er(seed);
    if (g.num_edges() == 0) continue;
    MutableState state(g);
    auto slot_configs = configs(state);

    graph::ViewCache cache(g);
    for (std::size_t s = 0; s < slot_configs.size(); ++s) {
      cache.add_config("slot" + std::to_string(s), slot_configs[s]);
    }
    state.repairs.publish_to(&cache);

    util::Rng rng(seed * 7919 + 3);
    const auto m = static_cast<std::int64_t>(g.num_edges());
    const auto n = static_cast<std::int64_t>(g.num_nodes());
    for (int step = 0; step < 120; ++step) {
      const auto op = rng.uniform_int(0, 5);
      if (op <= 1) {  // consume residual (half the time down to zero)
        const auto e =
            static_cast<graph::EdgeId>(rng.uniform_int(0, m - 1));
        auto& r = state.residual[static_cast<std::size_t>(e)];
        r = rng.chance(0.5) ? 0.0 : r * 0.5;
        cache.invalidate_edge(e);
      } else if (op == 2) {  // repair an edge (publishes automatically)
        state.repairs.repair_edge(
            static_cast<graph::EdgeId>(rng.uniform_int(0, m - 1)));
      } else if (op == 3) {  // repair a node
        state.repairs.repair_node(
            static_cast<graph::NodeId>(rng.uniform_int(0, n - 1)));
      } else if (op == 4 && rng.chance(0.2)) {  // occasional full bump
        cache.bump_epoch();
      }
      // Not every mutation is followed by a read; let dirt accumulate.
      if (!rng.chance(0.6)) continue;
      for (std::size_t s = 0; s < slot_configs.size(); ++s) {
        expect_same_view(cache.view(s),
                         graph::GraphView::build(g, slot_configs[s]));
      }
    }
    // Final sync after the last mutations.
    for (std::size_t s = 0; s < slot_configs.size(); ++s) {
      expect_same_view(cache.view(s),
                       graph::GraphView::build(g, slot_configs[s]));
    }
  }
}

TEST(ViewCache, BellCanadaRepairSweepMatchesFreshBuilds) {
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  g.break_everything();
  MutableState state(g);
  auto slot_configs = configs(state);
  graph::ViewCache cache(g);
  for (std::size_t s = 0; s < slot_configs.size(); ++s) {
    cache.add_config("slot" + std::to_string(s), slot_configs[s]);
  }
  state.repairs.publish_to(&cache);

  util::Rng rng(17);
  // Repair everything in random order, draining a random edge between
  // repairs; verify after every event.
  std::vector<graph::EdgeId> edges(g.num_edges());
  std::vector<graph::NodeId> nodes(g.num_nodes());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    edges[e] = static_cast<graph::EdgeId>(e);
  }
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    nodes[n] = static_cast<graph::NodeId>(n);
  }
  std::shuffle(edges.begin(), edges.end(), rng);
  std::shuffle(nodes.begin(), nodes.end(), rng);
  std::size_t ei = 0;
  std::size_t ni = 0;
  while (ei < edges.size() || ni < nodes.size()) {
    if (ei < edges.size() && (ni >= nodes.size() || rng.chance(0.6))) {
      state.repairs.repair_edge(edges[ei++]);
    } else {
      state.repairs.repair_node(nodes[ni++]);
    }
    const auto drain = static_cast<graph::EdgeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1));
    state.residual[static_cast<std::size_t>(drain)] *= 0.25;
    cache.invalidate_edge(drain);
    for (std::size_t s = 0; s < slot_configs.size(); ++s) {
      expect_same_view(cache.view(s),
                       graph::GraphView::build(g, slot_configs[s]));
    }
  }
}

TEST(ViewCache, ResidualOnlyUpdatesRefreshNotRebuild) {
  const graph::Graph g = broken_er(4);
  MutableState state(g);
  graph::ViewConfig working;  // filter ignores residuals
  working.edge_ok = [&state](graph::EdgeId e) {
    return state.repairs.edge_ok(e);
  };
  working.capacity = [&state](graph::EdgeId e) {
    return state.residual[static_cast<std::size_t>(e)];
  };
  graph::ViewCache cache(g);
  const auto slot = cache.add_config("working", working);
  (void)cache.view(slot);
  ASSERT_EQ(cache.stats().builds, 1u);

  // Draining capacity — even to zero — must refresh in place.
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto e = static_cast<graph::EdgeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.num_edges()) - 1));
    state.residual[static_cast<std::size_t>(e)] = 0.0;
    cache.invalidate_edge(e);
    (void)cache.view(slot);
    EXPECT_EQ(cache.stats().builds, 1u) << "residual update forced a rebuild";
  }
  EXPECT_GT(cache.stats().refreshes, 0u);

  // A repair flips the working filter verdict: now a rebuild is required.
  graph::EdgeId broken = graph::kInvalidEdge;
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    if (g.edge_broken(id)) {
      broken = id;
      break;
    }
  }
  ASSERT_NE(broken, graph::kInvalidEdge);
  state.repairs.publish_to(&cache);
  ASSERT_TRUE(state.repairs.repair_edge(broken));
  (void)cache.view(slot);
  EXPECT_EQ(cache.stats().builds, 2u);
  expect_same_view(cache.view(slot), graph::GraphView::build(g, working));
}

TEST(ViewCache, UnchangedViewIsServedWithoutWork) {
  const graph::Graph g = broken_er(6);
  graph::ViewCache cache(g);
  graph::ViewConfig config;
  config.edge_ok = graph::working_edge_filter(g);
  const auto slot = cache.add_config("working", config);
  const graph::GraphView& first = cache.view(slot);
  const graph::GraphView& second = cache.view(slot);
  EXPECT_EQ(&first, &second);  // address-stable
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ViewCache, SurvivesEdgesAddedAfterConstruction) {
  graph::Graph g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto c = g.add_node();
  g.add_edge(a, b, 5.0);
  std::vector<double> residual = {5.0};
  graph::ViewCache cache(g);
  graph::ViewConfig config;
  config.capacity = [&residual](graph::EdgeId e) {
    return residual[static_cast<std::size_t>(e)];
  };
  const auto slot = cache.add_config("full", config);
  (void)cache.view(slot);

  // Topology edit: the documented recipe is bump_epoch, after which the
  // new edge must be invalidatable without touching stale bitmaps.
  const auto added = g.add_edge(b, c, 7.0);
  residual.push_back(7.0);
  cache.bump_epoch();
  EXPECT_EQ(cache.view(slot).num_edges(), 2u);
  residual[static_cast<std::size_t>(added)] = 3.0;
  cache.invalidate_edge(added);
  EXPECT_EQ(cache.view(slot).edge_capacity(added), 3.0);
  expect_same_view(cache.view(slot), graph::GraphView::build(g, config));

  // Even without bump_epoch, invalidating a newer edge must escalate to a
  // rebuild rather than index a stale view out of range.
  const auto later = g.add_edge(a, c, 9.0);
  residual.push_back(9.0);
  cache.invalidate_edge(later);
  EXPECT_EQ(cache.view(slot).num_edges(), 3u);
  expect_same_view(cache.view(slot), graph::GraphView::build(g, config));
}

TEST(ViewCache, EpochAdvancesOnEveryMutation) {
  const graph::Graph g = broken_er(7);
  graph::ViewCache cache(g);
  const auto e0 = cache.epoch();
  cache.invalidate_edge(0);
  EXPECT_EQ(cache.epoch(), e0 + 1);
  cache.invalidate_node(0);
  EXPECT_EQ(cache.epoch(), e0 + 2);
  cache.bump_epoch();
  EXPECT_EQ(cache.epoch(), e0 + 3);
}

TEST(ViewCache, NamedLookupAndErrors) {
  const graph::Graph g = broken_er(8);
  graph::ViewCache cache(g);
  graph::ViewConfig config;
  const auto slot = cache.add_config("full", config);
  EXPECT_EQ(&cache.view("full"), &cache.view(slot));
  EXPECT_EQ(cache.slot_name(slot), "full");
  EXPECT_THROW(cache.view("nope"), std::invalid_argument);
  EXPECT_THROW(cache.view(slot + 1), std::invalid_argument);
  EXPECT_THROW(cache.invalidate_edge(static_cast<graph::EdgeId>(
                   g.num_edges())),
               std::invalid_argument);
  EXPECT_THROW(cache.invalidate_node(static_cast<graph::NodeId>(
                   g.num_nodes())),
               std::invalid_argument);
}

}  // namespace
