// Baseline heuristics + OPT driver tests, including cross-algorithm
// dominance properties from the paper's evaluation: OPT <= ISP <= GRD-NC in
// repairs on shared-corridor families; GRD-NC never loses demand on feasible
// instances; SRT can lose demand when shortest paths saturate.
#include <gtest/gtest.h>

#include "core/isp.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/local_search.hpp"
#include "heuristics/multicommodity.hpp"
#include "heuristics/opt.hpp"
#include "util/rng.hpp"

namespace netrec::heuristics {
namespace {

using core::RecoveryProblem;
using core::RecoverySolution;
using graph::EdgeId;
using graph::NodeId;

RecoveryProblem destroyed_square_with_diagonal() {
  RecoveryProblem p;
  for (int i = 0; i < 4; ++i) p.graph.add_node();
  p.graph.add_edge(0, 1, 10.0);
  p.graph.add_edge(1, 2, 10.0);
  p.graph.add_edge(2, 3, 10.0);
  p.graph.add_edge(3, 0, 10.0);
  p.graph.add_edge(0, 2, 3.0);
  p.graph.break_everything();
  p.demands = {{0, 2, 8.0}};
  return p;
}

TEST(All, RepairsEverythingAndSatisfiesFeasibleDemand) {
  RecoveryProblem p = destroyed_square_with_diagonal();
  const RecoverySolution s = solve_all(p);
  EXPECT_EQ(s.total_repairs(), 4u + 5u);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(core::validate_solution(p, s).empty());
}

TEST(Srt, RepairsShortestPathsPerDemand) {
  RecoveryProblem p = destroyed_square_with_diagonal();
  const RecoverySolution s = solve_srt(p);
  // Demand 8 > diagonal capacity 3: SRT needs the diagonal (1 hop) plus one
  // two-hop path.
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(core::validate_solution(p, s).empty());
  EXPECT_LE(s.total_repairs(), 7u);
}

TEST(Srt, LosesDemandWhenShortestPathsOverlap) {
  // Two demands whose unique shortest paths share a saturated edge:
  //   0-1-2 is shortest for (0,2); (0,1) also needs edge 0-1.
  //   A long detour exists but SRT never looks at it for (0,1)... actually
  //   SRT covers each demand independently, so it sees full capacity twice.
  RecoveryProblem p;
  for (int i = 0; i < 5; ++i) p.graph.add_node();
  p.graph.add_edge(0, 1, 10.0);
  p.graph.add_edge(1, 2, 10.0);
  // Long detour 0-3-4-2 with ample capacity.
  p.graph.add_edge(0, 3, 10.0);
  p.graph.add_edge(3, 4, 10.0);
  p.graph.add_edge(4, 2, 10.0);
  p.graph.break_everything();
  p.demands = {{0, 2, 8.0}, {0, 1, 8.0}};
  const RecoverySolution s = solve_srt(p);
  // Both demands' shortest paths want edge 0-1 (16 > 10): loss expected.
  EXPECT_LT(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(core::validate_solution(p, s).empty());
}

TEST(GrdNc, NeverLosesDemandOnFeasibleInstances) {
  RecoveryProblem p = destroyed_square_with_diagonal();
  const RecoverySolution s = solve_grd_nc(p);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(core::validate_solution(p, s).empty());
}

TEST(GrdCom, RepairsAndRoutesSimpleInstance) {
  RecoveryProblem p = destroyed_square_with_diagonal();
  p.demands = {{0, 2, 3.0}};  // fits the cheapest single path
  const RecoverySolution s = solve_grd_com(p);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
  EXPECT_TRUE(core::validate_solution(p, s).empty());
}

TEST(LocalSearch, DropsRedundantRepairs) {
  RecoveryProblem p = destroyed_square_with_diagonal();
  const RecoverySolution all = solve_all(p);
  const RecoverySolution reduced = reduce_repairs(p, all);
  EXPECT_DOUBLE_EQ(reduced.satisfied_fraction, 1.0);
  EXPECT_LT(reduced.total_repairs(), all.total_repairs());
  EXPECT_TRUE(core::validate_solution(p, reduced).empty());
  // Demand 8 needs one 10-capacity route: 2 edges + 3 nodes = 5 repairs.
  EXPECT_EQ(reduced.total_repairs(), 5u);
}

TEST(LocalSearch, LeavesLossyInputAlone) {
  RecoveryProblem p = destroyed_square_with_diagonal();
  RecoverySolution nothing;
  nothing.algorithm = "NOOP";
  core::score_solution(p, nothing);
  const RecoverySolution reduced = reduce_repairs(p, nothing);
  EXPECT_EQ(reduced.total_repairs(), 0u);
}

TEST(Opt, SteinerEngineOnConnectivityOnlyInstance) {
  // Unit demand, huge capacities: connectivity-only.
  RecoveryProblem p;
  for (int i = 0; i < 5; ++i) p.graph.add_node();
  p.graph.add_edge(0, 1, 100.0);
  p.graph.add_edge(1, 2, 100.0);
  p.graph.add_edge(2, 3, 100.0);
  p.graph.add_edge(3, 4, 100.0);
  p.graph.add_edge(0, 4, 100.0);  // shortcut!
  p.graph.break_everything();
  p.demands = {{0, 4, 1.0}};
  ASSERT_TRUE(is_connectivity_only(p));
  const OptOutcome r = solve_opt(p);
  EXPECT_STREQ(r.engine, "steiner");
  EXPECT_TRUE(r.proven_optimal);
  // Shortcut: 1 edge + 2 nodes = 3 repairs.
  EXPECT_EQ(r.solution.total_repairs(), 3u);
  EXPECT_DOUBLE_EQ(r.solution.satisfied_fraction, 1.0);
}

TEST(Opt, MilpProvesOptimumOnCapacitatedInstance) {
  RecoveryProblem p = destroyed_square_with_diagonal();  // demand 8 > 3
  ASSERT_FALSE(is_connectivity_only(p));
  OptOptions opt;
  opt.time_limit_seconds = 20.0;
  const OptOutcome r = solve_opt(p, opt);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.solution.satisfied_fraction, 1.0);
  EXPECT_EQ(r.solution.total_repairs(), 5u);  // one 10-capacity route
  EXPECT_TRUE(core::validate_solution(p, r.solution).empty());
}

TEST(Opt, NeverWorseThanIspOnSharedCorridor) {
  RecoveryProblem p;
  for (int i = 0; i < 6; ++i) p.graph.add_node();
  p.graph.add_edge(0, 2, 20.0);
  p.graph.add_edge(1, 2, 20.0);
  p.graph.add_edge(2, 3, 20.0);
  p.graph.add_edge(3, 4, 20.0);
  p.graph.add_edge(3, 5, 20.0);
  p.graph.break_everything();
  p.demands = {{0, 4, 5.0}, {1, 5, 5.0}};
  core::IspSolver isp(p);
  const RecoverySolution isp_solution = isp.solve();
  OptOptions opt;
  opt.time_limit_seconds = 20.0;
  const OptOutcome r = solve_opt(p, opt, &isp_solution);
  EXPECT_LE(r.solution.repair_cost, isp_solution.repair_cost + 1e-9);
  EXPECT_DOUBLE_EQ(r.solution.satisfied_fraction, 1.0);
}

TEST(Multicommodity, BandBracketsBetweenSomethingAndAll) {
  RecoveryProblem p = destroyed_square_with_diagonal();
  util::Rng rng(17);
  const MulticommodityBand band = multicommodity_band(p, 6, rng);
  ASSERT_TRUE(band.feasible);
  EXPECT_GE(band.mcw_repairs, band.mcb_repairs);
  EXPECT_LE(band.mcw_repairs, 9u);  // can't exceed ALL
  EXPECT_GE(band.mcb_repairs, 1u); // complete destruction: must repair some
}

// Dominance sweep across random shared-corridor instances.
class HeuristicOrdering : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicOrdering, OptLeIspAndNoIspLoss) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) *
                    6364136223846793005ULL +
                1442695040888963407ULL);
  RecoveryProblem p;
  const int n = static_cast<int>(rng.uniform_int(6, 10));
  for (int i = 0; i < n; ++i) p.graph.add_node();
  for (int i = 1; i < n; ++i) {
    const auto parent = static_cast<NodeId>(rng.uniform_int(0, i - 1));
    p.graph.add_edge(parent, i, 20.0);
  }
  for (int extra = 0; extra < n / 2; ++extra) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (a != b && p.graph.find_edge(a, b) == graph::kInvalidEdge) {
      p.graph.add_edge(a, b, 20.0);
    }
  }
  p.graph.break_everything();
  for (int k = 0; k < 2; ++k) {
    const auto s = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto t = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (s != t) p.demands.push_back({s, t, rng.uniform(2.0, 8.0)});
  }
  if (p.demands.empty()) return;
  ASSERT_TRUE(p.feasible_when_fully_repaired());

  core::IspSolver isp(p);
  const RecoverySolution isp_solution = isp.solve();
  EXPECT_NEAR(isp_solution.satisfied_fraction, 1.0, 1e-6);

  OptOptions opt;
  opt.time_limit_seconds = 5.0;
  const OptOutcome best = solve_opt(p, opt, &isp_solution);
  EXPECT_LE(best.solution.repair_cost, isp_solution.repair_cost + 1e-9)
      << "seed " << GetParam();
  EXPECT_NEAR(best.solution.satisfied_fraction, 1.0, 1e-6);
  EXPECT_TRUE(core::validate_solution(p, best.solution).empty());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, HeuristicOrdering,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace netrec::heuristics
