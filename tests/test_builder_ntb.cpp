// Builder finalize invariants, NTB binary round trips and rejection of
// corrupt images, the O(log d) find_edge index, and the unified generator
// API's bit-compatibility with the deprecated free functions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"
#include "graph/edgelist.hpp"
#include "graph/gml.hpp"
#include "graph/graph.hpp"
#include "graph/ntb.hpp"
#include "topology/generator.hpp"
#include "topology/topologies.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netrec {
namespace {

// --- Builder invariants ----------------------------------------------------

TEST(Builder, DuplicateEdgeNamedAtFinalize) {
  graph::Builder b;
  b.add_nodes(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(1, 0, 1.0);  // same undirected pair, reversed
  try {
    b.finalize();
    FAIL() << "duplicate edge not detected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1"), std::string::npos);
  }
}

TEST(Builder, SelfLoopThrowsAtAddEdge) {
  graph::Builder b;
  b.add_nodes(2);
  EXPECT_THROW(b.add_edge(1, 1, 1.0), std::invalid_argument);
}

TEST(Builder, EndpointOutOfRangeThrows) {
  graph::Builder b;
  b.add_nodes(2);
  EXPECT_THROW(b.add_edge(0, 2, 1.0), std::invalid_argument);
}

TEST(Builder, BadMetricsThrow) {
  graph::Builder b;
  b.add_nodes(2);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, std::nan("")), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, 1.0, -2.0), std::invalid_argument);
  EXPECT_THROW(b.add_node("x", 0, 0, -1.0), std::invalid_argument);
}

TEST(Builder, IdOverflowGuard) {
  // Both branches of the 2^31 ceiling, neither of which may allocate:
  // a single oversized batch, and a batch that overflows the running count.
  graph::Builder b;
  EXPECT_THROW(b.add_nodes(graph::kMaxGraphElements + 1), std::length_error);
  b.add_nodes(8);
  EXPECT_THROW(b.add_nodes(graph::kMaxGraphElements - 4), std::length_error);
}

TEST(Builder, FinalizeLeavesBuilderEmpty) {
  graph::Builder b;
  b.add_nodes(2);
  b.add_edge(0, 1, 3.0);
  graph::Graph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(b.num_nodes(), 0u);
  EXPECT_EQ(b.num_edges(), 0u);
}

TEST(Builder, DegreeOrderRelabelsByDegree) {
  // 0 is isolated, 3 is the hub: after relabeling the hub must be node 0
  // and edge ids must keep insertion order.
  graph::Builder b(graph::Builder::Options{.degree_order = true});
  b.add_nodes(4);
  b.add_edge(3, 1, 1.0);
  b.add_edge(3, 2, 2.0);
  graph::Graph g = b.finalize();
  const auto& perm = b.node_permutation();
  ASSERT_EQ(perm.size(), 4u);
  EXPECT_EQ(perm[3], 0);                       // hub -> id 0
  EXPECT_EQ(perm[0], 3);                       // isolated -> last
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.edge_capacity(0), 1.0);   // insertion order kept
  EXPECT_DOUBLE_EQ(g.edge_capacity(1), 2.0);
}

// --- finalized-layout queries ----------------------------------------------

TEST(FinalizedLayout, FindEdgeStarGraphRegression) {
  // A hub of degree 200k: a linear find_edge probe per leaf would be
  // O(d^2) ~ 2*10^10 steps; the neighbour-sorted binary search finishes
  // the whole loop in well under a second.
  constexpr std::size_t kLeaves = 200000;
  graph::Builder b;
  b.add_nodes(kLeaves + 1);
  for (std::size_t i = 1; i <= kLeaves; ++i) {
    b.add_edge(0, static_cast<graph::NodeId>(i), 1.0);
  }
  graph::Graph g = b.finalize();
  ASSERT_EQ(g.degree(0), kLeaves);

  util::Timer timer;
  for (std::size_t i = 1; i <= kLeaves; ++i) {
    const auto leaf = static_cast<graph::NodeId>(i);
    ASSERT_EQ(g.find_edge(0, leaf), static_cast<graph::EdgeId>(i - 1));
    ASSERT_EQ(g.find_edge(leaf, 0), static_cast<graph::EdgeId>(i - 1));
  }
  EXPECT_EQ(g.find_edge(1, 2), graph::kInvalidEdge);
  // Generous wall bound (loaded CI runners): a linear-probe regression
  // would take minutes, not seconds.
  EXPECT_LT(timer.elapsed_seconds(), 10.0);
}

// --- NTB round trips -------------------------------------------------------

void expect_bit_identical(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    const auto id = static_cast<graph::NodeId>(i);
    EXPECT_EQ(a.node_name(id), b.node_name(id));
    EXPECT_EQ(a.node_x(id), b.node_x(id));
    EXPECT_EQ(a.node_y(id), b.node_y(id));
    EXPECT_EQ(a.node_repair_cost(id), b.node_repair_cost(id));
    EXPECT_EQ(a.node_broken(id), b.node_broken(id));
  }
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    const auto id = static_cast<graph::EdgeId>(i);
    EXPECT_EQ(a.edge_endpoints(id), b.edge_endpoints(id));
    EXPECT_EQ(a.edge_capacity(id), b.edge_capacity(id));
    EXPECT_EQ(a.edge_repair_cost(id), b.edge_repair_cost(id));
    EXPECT_EQ(a.edge_broken(id), b.edge_broken(id));
  }
}

TEST(Ntb, GmlRoundTripBitIdentical) {
  // GML -> Graph -> NTB -> Graph must preserve every column bit-for-bit,
  // including names, coordinates and broken flags.
  graph::Graph original = topology::make_topology({});
  original.set_node_broken(3, true);
  original.set_edge_broken(5, true);
  graph::Graph from_gml = graph::parse_gml(graph::to_gml(original));
  const std::string image = graph::to_ntb(from_gml);
  graph::Graph restored = graph::parse_ntb(image.data(), image.size());
  expect_bit_identical(from_gml, restored);
}

TEST(Ntb, UnnamedGraphRoundTrip) {
  util::Rng rng(11);
  graph::Graph g =
      topology::make_topology(topology::ErdosRenyiOptions{.nodes = 60}, rng);
  const std::string image = graph::to_ntb(g);
  graph::Graph restored = graph::parse_ntb(image.data(), image.size());
  expect_bit_identical(g, restored);
}

TEST(Ntb, EdgeListRoundTripPreservesEdges) {
  util::Rng rng(13);
  graph::Graph g =
      topology::make_topology(topology::ErdosRenyiOptions{.nodes = 40}, rng);
  graph::Graph restored = graph::parse_edge_list(graph::to_edge_list(g));
  ASSERT_EQ(restored.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const auto id = static_cast<graph::EdgeId>(i);
    EXPECT_EQ(g.edge_endpoints(id), restored.edge_endpoints(id));
    EXPECT_EQ(g.edge_capacity(id), restored.edge_capacity(id));
    EXPECT_EQ(g.edge_repair_cost(id), restored.edge_repair_cost(id));
  }
}

TEST(Ntb, RejectsCorruptImages) {
  graph::Graph g = topology::make_topology({});
  const std::string image = graph::to_ntb(g);

  const auto expect_reject = [](std::string data, const char* label) {
    EXPECT_THROW(graph::parse_ntb(data.data(), data.size()),
                 std::runtime_error)
        << label;
  };

  expect_reject(image.substr(0, 10), "truncated header");
  expect_reject(image.substr(0, image.size() - 16), "truncated payload");

  std::string bad = image;
  bad[0] = 'X';
  expect_reject(bad, "bad magic");

  bad = image;
  bad[4] = 99;  // version
  expect_reject(bad, "unsupported version");

  bad = image;
  bad[8] ^= 0xFF;  // endianness tag
  expect_reject(bad, "endianness mismatch");

  bad = image;
  {
    // First section-table entry: offset (u64) lives 8 bytes into the
    // 24-byte entry that starts right after the 32-byte header.
    std::uint64_t huge = ~std::uint64_t{0} / 2;
    std::memcpy(bad.data() + 32 + 8, &huge, sizeof huge);
  }
  expect_reject(bad, "section beyond file bounds");

  bad = image;
  {
    // Make entry 1 a duplicate of entry 0 (same kind).
    std::uint32_t kind0 = 0;
    std::memcpy(&kind0, bad.data() + 32, sizeof kind0);
    std::memcpy(bad.data() + 32 + 24, &kind0, sizeof kind0);
  }
  expect_reject(bad, "duplicate section");

  expect_reject(std::string(), "empty image");
}

// --- unified generator API -------------------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Generators, WrappersMatchMakeTopology) {
  // The deprecated free functions and make_topology must consume identical
  // RNG variates and emit bit-identical graphs.
  graph::Graph via_api = topology::make_topology({});
  graph::Graph via_wrapper = topology::bell_canada_like();
  expect_bit_identical(via_api, via_wrapper);

  util::Rng rng_a(42), rng_b(42);
  topology::ErdosRenyiOptions er{.nodes = 80};
  expect_bit_identical(topology::make_topology(er, rng_a),
                       topology::erdos_renyi(er, rng_b));

  util::Rng rng_c(42), rng_d(42);
  topology::CaidaLikeOptions caida;
  expect_bit_identical(topology::make_topology(caida, rng_c),
                       topology::caida_like(caida, rng_d));
}

#pragma GCC diagnostic pop

TEST(Generators, SeededParamsAreDeterministic) {
  topology::GeneratorParams params = topology::params_for("rmat");
  params.seed = 123;
  std::get<topology::RmatOptions>(params.options).nodes = 512;
  graph::Graph a = topology::make_topology(params);
  graph::Graph b = topology::make_topology(params);
  expect_bit_identical(a, b);
  EXPECT_GT(a.num_edges(), 0u);
  EXPECT_LE(a.num_nodes(), 512u);
}

TEST(Generators, RmatRespectsEdgeFactor) {
  topology::RmatOptions options;
  options.nodes = 2000;
  options.edge_factor = 4.0;
  graph::Graph g = topology::make_topology({options, 9});
  // Dedup and rejection shave the target; stay within a loose band.
  EXPECT_GT(g.num_edges(), 2000u);
  EXPECT_LE(g.num_edges(), 8000u);
}

TEST(Generators, BarabasiAlbertDegreeSum) {
  topology::BarabasiAlbertOptions options;
  options.nodes = 300;
  options.attach = 3;
  graph::Graph g = topology::make_topology({options, 5});
  EXPECT_EQ(g.num_nodes(), 300u);
  // Path seed core over attach+1 nodes, then attach edges per new node.
  EXPECT_EQ(g.num_edges(), 3u + (300u - 4u) * 3u);
  EXPECT_THROW(
      topology::make_topology({topology::BarabasiAlbertOptions{.nodes = 2,
                                                               .attach = 2},
                               1}),
      std::invalid_argument);
}

TEST(Generators, FamilyNames) {
  EXPECT_EQ(topology::family_name(topology::params_for("ba").options),
            "barabasi_albert");
  EXPECT_EQ(topology::family_name(topology::params_for("er").options),
            "erdos_renyi");
  EXPECT_EQ(topology::family_name(topology::params_for("bell_canada").options),
            "bell_canada");
  EXPECT_THROW(topology::params_for("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace netrec
