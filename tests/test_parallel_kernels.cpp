// Thread-invariance differential suites for the intra-solve parallel
// kernels: parallel Brandes betweenness, the batched per-demand centrality
// enumeration, and the session's concurrent LP pricing — each pinned
// bitwise against its serial twin at thread counts {1, 2, 4, 8}, plus a
// Timeline-level end-to-end pin (the full restoration curve must not move
// by a bit when the measurement LP prices in parallel).
//
// The determinism contract under test: every parallel kernel computes
// per-task results into pre-assigned slots and merges them serially in a
// fixed order, so the stream of floating-point operations that produces
// the output is the serial kernel's stream — equality is exact, never
// tolerance-based.
#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/centrality.hpp"
#include "core/isp.hpp"
#include "core/problem.hpp"
#include "disruption/disruption.hpp"
#include "graph/betweenness.hpp"
#include "graph/traversal.hpp"
#include "graph/view.hpp"
#include "recovery/dynamics.hpp"
#include "recovery/policies.hpp"
#include "recovery/timeline.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace netrec;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

/// Broken connected-ish ER instance with far-apart demands (the ISP
/// differential harness's construction).
core::RecoveryProblem er_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 104729 + 13);
  core::RecoveryProblem p;
  topology::ErdosRenyiOptions eopt;
  eopt.nodes = 24;
  eopt.edge_probability = 0.18;
  eopt.capacity = 10.0;
  std::size_t attempts = 0;
  do {
    p.graph = topology::make_topology(eopt, rng);
  } while (graph::hop_diameter(p.graph) < 0 && ++attempts < 50);
  util::Rng demand_rng = rng.fork();
  p.demands = scenario::far_apart_demands(p.graph, 3, 4.0, demand_rng);
  for (std::size_t n = 0; n < p.graph.num_nodes(); ++n) {
    if (rng.chance(0.55)) {
      p.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
    }
  }
  for (std::size_t e = 0; e < p.graph.num_edges(); ++e) {
    if (rng.chance(0.6)) {
      p.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
    }
  }
  return p;
}

/// Bell-Canada under regional or complete destruction.
core::RecoveryProblem bell_canada_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 7907 + 5);
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng demand_rng = rng.fork();
  p.demands = scenario::far_apart_demands(p.graph, 4, 3.0, demand_rng);
  if (seed % 2 == 0) {
    disruption::complete_destruction(p.graph);
  } else {
    for (std::size_t n = 0; n < p.graph.num_nodes(); ++n) {
      if (rng.chance(0.5)) {
        p.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
      }
    }
    for (std::size_t e = 0; e < p.graph.num_edges(); ++e) {
      if (rng.chance(0.5)) {
        p.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
      }
    }
  }
  return p;
}

// --- ThreadPool: chunked overload + nesting (satellite coverage) -----------

TEST(ThreadPoolChunked, CoversEveryIndexOnceAtAnyGrain) {
  util::ThreadPool pool(3);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{64},
                                  std::size_t{1000}}) {
    std::vector<int> hits(257, 0);
    pool.parallel_for(hits.size(), grain,
                      [&hits](std::size_t i) { hits[i] += 1; });
    for (const int h : hits) ASSERT_EQ(h, 1) << "grain " << grain;
  }
}

TEST(ThreadPoolChunked, PropagatesExceptionsSkippingOnlyTheFailedChunkTail) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(100, 8,
                                 [&completed](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("boom");
                                   }
                                   completed.fetch_add(1);
                                 }),
               std::runtime_error);
  // The throwing chunk covers [8, 16): 14 and 15 are skipped with 13,
  // every other chunk still runs to completion.
  EXPECT_EQ(completed.load(), 97);
}

TEST(ThreadPoolChunked, PerElementOverloadStillRethrows) {
  util::ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(16,
                                 [&completed](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                   completed.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPoolNesting, NestedParallelForDoesNotDeadlock) {
  // A parallel kernel invoked from a task that itself runs on the pool —
  // exactly what happens when a scenario-engine solve task reaches a
  // parallel intra-solve kernel on a shared pool.  The caller help-drains
  // the queue, so even a single-worker pool completes.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    util::ThreadPool pool(workers);
    std::atomic<int> counter{0};
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(8, 3, [&](std::size_t) { counter.fetch_add(1); });
    });
    EXPECT_EQ(counter.load(), 32) << "workers " << workers;
  }
}

// --- parallel Brandes betweenness ------------------------------------------

/// A weighted, partially filtered view of the scenario graph with tie-rich
/// lengths (quantised weights force many equal-length shortest paths, the
/// hardest case for sigma/delta accumulation order).
graph::GraphView weighted_view(const graph::Graph& g, std::uint64_t seed,
                               std::vector<double>& lengths,
                               std::vector<char>& node_in) {
  util::Rng rng(seed * 48611 + 7);
  lengths.resize(g.num_edges());
  for (double& w : lengths) {
    w = 0.5 * static_cast<double>(rng.uniform_int(1, 3));  // {0.5, 1, 1.5}
  }
  node_in.assign(g.num_nodes(), 1);
  for (auto& keep : node_in) keep = rng.chance(0.9) ? 1 : 0;
  graph::ViewConfig config;
  config.length = [&lengths](graph::EdgeId e) {
    return lengths[static_cast<std::size_t>(e)];
  };
  config.node_ok = [&node_in](graph::NodeId n) {
    return node_in[static_cast<std::size_t>(n)] != 0;
  };
  return graph::GraphView::build(g, config);
}

void expect_betweenness_thread_invariant(const graph::Graph& g,
                                         std::uint64_t seed,
                                         const std::string& label) {
  SCOPED_TRACE(label);
  std::vector<double> lengths;
  std::vector<char> node_in;
  const graph::GraphView view = weighted_view(g, seed, lengths, node_in);
  const std::vector<double> serial = graph::betweenness_centrality(view);
  EXPECT_EQ(graph::betweenness_centrality(view, nullptr), serial);
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(graph::betweenness_centrality(view, &pool), serial)
        << "threads " << threads;
  }
  // Pivot-style partial accumulation: the parallel merge of sources
  // [0, limit) must equal the serial fold over the same prefix.
  const std::size_t limit = g.num_nodes() / 2;
  const std::vector<double> partial_serial =
      graph::betweenness_centrality(view, nullptr, limit);
  util::ThreadPool pool(4);
  EXPECT_EQ(graph::betweenness_centrality(view, &pool, limit),
            partial_serial);
  EXPECT_EQ(graph::betweenness_centrality(view, &pool, g.num_nodes()),
            serial);
}

class BetweennessThreadsEr : public ::testing::TestWithParam<int> {};

TEST_P(BetweennessThreadsEr, BitIdenticalAtAnyThreadCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_betweenness_thread_invariant(er_scenario(seed).graph, seed,
                                      "er seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetweennessThreadsEr, ::testing::Range(1, 9));

class BetweennessThreadsBellCanada : public ::testing::TestWithParam<int> {};

TEST_P(BetweennessThreadsBellCanada, BitIdenticalAtAnyThreadCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_betweenness_thread_invariant(
      bell_canada_scenario(seed).graph, seed,
      "bell-canada seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetweennessThreadsBellCanada,
                         ::testing::Range(1, 6));

// --- batched demand-based centrality ---------------------------------------

void expect_centrality_thread_invariant(const core::RecoveryProblem& p,
                                        bool share_source_trees,
                                        const std::string& label) {
  SCOPED_TRACE(label);
  graph::ViewConfig config;
  config.capacity = [&p](graph::EdgeId e) {
    return p.graph.edge_capacity(e);
  };
  const graph::GraphView view = graph::GraphView::build(p.graph, config);
  core::CentralityOptions copt;
  copt.share_source_trees = share_source_trees;
  const core::CentralityResult serial =
      core::demand_based_centrality(view, p.demands, copt);
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    core::CentralityOptions pooled = copt;
    pooled.pool = &pool;
    const core::CentralityResult parallel =
        core::demand_based_centrality(view, p.demands, pooled);
    ASSERT_EQ(parallel.scores(), serial.scores()) << "threads " << threads;
    for (std::size_t n = 0; n < p.graph.num_nodes(); ++n) {
      const auto id = static_cast<graph::NodeId>(n);
      ASSERT_EQ(parallel.contributors(id), serial.contributors(id))
          << "threads " << threads << " node " << n;
    }
    for (std::size_t h = 0; h < p.demands.size(); ++h) {
      const auto& a = parallel.demand_paths(static_cast<int>(h));
      const auto& b = serial.demand_paths(static_cast<int>(h));
      ASSERT_EQ(a.capacities, b.capacities) << "threads " << threads;
      ASSERT_EQ(a.total_capacity, b.total_capacity) << "threads " << threads;
      ASSERT_EQ(a.paths.size(), b.paths.size()) << "threads " << threads;
      for (std::size_t k = 0; k < a.paths.size(); ++k) {
        ASSERT_EQ(a.paths[k].edges, b.paths[k].edges)
            << "threads " << threads << " demand " << h << " path " << k;
      }
    }
  }
}

class CentralityThreads : public ::testing::TestWithParam<int> {};

TEST_P(CentralityThreads, BitIdenticalAtAnyThreadCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const bool share : {false, true}) {
    const std::string mode = share ? " shared-trees" : " plain";
    expect_centrality_thread_invariant(
        er_scenario(seed), share, "er seed " + std::to_string(seed) + mode);
    expect_centrality_thread_invariant(
        bell_canada_scenario(seed), share,
        "bell-canada seed " + std::to_string(seed) + mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CentralityThreads, ::testing::Range(1, 5));

// --- ISP end-to-end: concurrent LP pricing + all kernels combined ----------

void expect_same_events(const std::vector<core::IspEvent>& parallel,
                        const std::vector<core::IspEvent>& reference) {
  ASSERT_EQ(parallel.size(), reference.size()) << "event counts diverge";
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].kind, reference[i].kind) << "event " << i;
    EXPECT_EQ(parallel[i].demand, reference[i].demand) << "event " << i;
    EXPECT_EQ(parallel[i].node, reference[i].node) << "event " << i;
    EXPECT_EQ(parallel[i].edge, reference[i].edge) << "event " << i;
    EXPECT_EQ(parallel[i].amount, reference[i].amount)
        << "event " << i << " (" << parallel[i].to_string() << " vs "
        << reference[i].to_string() << ")";
  }
}

/// One serial reference solve, then one solve per thread count — repair
/// sequences, event streams, counters and referee routing all exactly
/// equal (the ISP differential harness's comparison).
void expect_isp_thread_invariant(const core::RecoveryProblem& problem,
                                 core::IspOptions options,
                                 const std::string& label) {
  SCOPED_TRACE(label);
  core::IspSolver reference_solver(problem, options);
  reference_solver.set_trace(true);
  const core::RecoverySolution reference = reference_solver.solve();

  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    core::IspOptions parallel_options = options;
    parallel_options.pool = &pool;
    core::IspSolver parallel_solver(problem, parallel_options);
    parallel_solver.set_trace(true);
    const core::RecoverySolution parallel = parallel_solver.solve();

    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(parallel.repaired_nodes, reference.repaired_nodes);
    EXPECT_EQ(parallel.repaired_edges, reference.repaired_edges);
    EXPECT_EQ(parallel.repair_cost, reference.repair_cost);
    EXPECT_EQ(parallel.satisfied_fraction, reference.satisfied_fraction);
    EXPECT_EQ(parallel.instance_feasible, reference.instance_feasible);
    EXPECT_EQ(parallel.iterations, reference.iterations);
    EXPECT_EQ(parallel.routing.total_routed, reference.routing.total_routed);
    EXPECT_EQ(parallel.routing.routed, reference.routing.routed);
    EXPECT_EQ(parallel_solver.stats().prunes, reference_solver.stats().prunes);
    EXPECT_EQ(parallel_solver.stats().splits, reference_solver.stats().splits);
    EXPECT_EQ(parallel_solver.stats().direct_edge_repairs,
              reference_solver.stats().direct_edge_repairs);
    EXPECT_EQ(parallel_solver.stats().watchdog_activations,
              reference_solver.stats().watchdog_activations);
    expect_same_events(parallel_solver.stats().events,
                       reference_solver.stats().events);
  }
}

class IspThreadsEr : public ::testing::TestWithParam<int> {};

TEST_P(IspThreadsEr, SolveBitIdenticalAtAnyThreadCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_isp_thread_invariant(er_scenario(seed), core::IspOptions{},
                              "er seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspThreadsEr, ::testing::Range(1, 9));

class IspThreadsBellCanada : public ::testing::TestWithParam<int> {};

TEST_P(IspThreadsBellCanada, SolveBitIdenticalAtAnyThreadCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  expect_isp_thread_invariant(bell_canada_scenario(seed), core::IspOptions{},
                              "bell-canada seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspThreadsBellCanada, ::testing::Range(1, 6));

TEST(IspThreadsOptions, VariantEnginePathsStayThreadInvariant) {
  // The kernels sit behind different engine paths depending on options:
  // classic betweenness exercises the parallel Brandes ranking, kNone
  // reuse the one-shot LP path (centrality still pools), empty seed pools
  // force pricing to derive every column.  Each must be thread-invariant.
  {
    core::IspOptions o;
    o.use_classic_betweenness = true;
    expect_isp_thread_invariant(er_scenario(301), o, "classic-betweenness");
  }
  {
    core::IspOptions o;
    o.lp_reuse = mcf::LpReuse::kNone;
    expect_isp_thread_invariant(er_scenario(302), o, "lp-reuse-none");
  }
  {
    core::IspOptions o;
    o.lp.seed_paths_per_demand = 0;
    expect_isp_thread_invariant(bell_canada_scenario(303), o, "lp-no-seeds");
  }
  {
    core::IspOptions o;
    o.lp.eager_capacity_threshold = 0;
    expect_isp_thread_invariant(bell_canada_scenario(304), o, "lp-lazy-rows");
  }
}

TEST(IspThreads, OwnedPoolMatchesBorrowedPool) {
  // solve_threads spawns a private pool; the result must match both the
  // serial reference and a caller-lent pool of the same width.
  const core::RecoveryProblem problem = er_scenario(305);
  core::IspSolver serial(problem, core::IspOptions{});
  const core::RecoverySolution ref = serial.solve();

  core::IspOptions owned;
  owned.solve_threads = 4;
  core::IspSolver owned_solver(problem, owned);
  const core::RecoverySolution via_owned = owned_solver.solve();
  EXPECT_EQ(via_owned.repaired_nodes, ref.repaired_nodes);
  EXPECT_EQ(via_owned.repaired_edges, ref.repaired_edges);
  EXPECT_EQ(via_owned.satisfied_fraction, ref.satisfied_fraction);
  EXPECT_EQ(via_owned.repair_cost, ref.repair_cost);
}

// --- Timeline end-to-end: restoration curve at any thread count ------------

recovery::TimelineResult run_timeline(const core::RecoveryProblem& problem,
                                      std::size_t threads,
                                      util::ThreadPool* pool) {
  recovery::ReplanOptions ropt;
  ropt.isp.pool = pool;  // policy re-plans with parallel kernels too
  recovery::ReplanPolicy policy(ropt);
  disruption::AftershockOptions aopt;
  aopt.first.variance = 40.0;
  aopt.decay = 0.5;
  aopt.max_shocks = 3;
  recovery::AftershockDynamics dynamics(aopt);
  recovery::TimelineOptions topt;
  topt.max_stages = 12;
  topt.stage_budget = 2;
  topt.pool = pool;
  (void)threads;
  util::Rng rng(7);
  return recovery::Timeline(problem, policy, dynamics, topt).run(rng);
}

void expect_same_timeline(const recovery::TimelineResult& parallel,
                          const recovery::TimelineResult& reference) {
  EXPECT_EQ(parallel.initial_routed, reference.initial_routed);
  EXPECT_EQ(parallel.final_routed, reference.final_routed);
  EXPECT_EQ(parallel.total_repairs, reference.total_repairs);
  EXPECT_EQ(parallel.total_repair_cost, reference.total_repair_cost);
  EXPECT_EQ(parallel.shock_breaks, reference.shock_breaks);
  ASSERT_EQ(parallel.stages.size(), reference.stages.size());
  for (std::size_t s = 0; s < parallel.stages.size(); ++s) {
    const auto& a = parallel.stages[s];
    const auto& b = reference.stages[s];
    SCOPED_TRACE("stage " + std::to_string(s));
    EXPECT_EQ(a.routed_after, b.routed_after);  // intra-stage curve, exact
    EXPECT_EQ(a.routed_end, b.routed_end);
    EXPECT_EQ(a.repair_cost, b.repair_cost);
    ASSERT_EQ(a.repairs.size(), b.repairs.size());
    for (std::size_t r = 0; r < a.repairs.size(); ++r) {
      EXPECT_EQ(a.repairs[r].is_node, b.repairs[r].is_node);
      EXPECT_EQ(a.repairs[r].node, b.repairs[r].node);
      EXPECT_EQ(a.repairs[r].edge, b.repairs[r].edge);
    }
    EXPECT_EQ(a.shock.total(), b.shock.total());
  }
}

class TimelineThreads : public ::testing::TestWithParam<int> {};

TEST_P(TimelineThreads, RestorationCurveBitIdenticalAtAnyThreadCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const core::RecoveryProblem problem =
      seed % 2 == 0 ? bell_canada_scenario(seed) : er_scenario(seed);
  const recovery::TimelineResult reference =
      run_timeline(problem, 1, nullptr);
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                 std::to_string(threads));
    expect_same_timeline(run_timeline(problem, threads, &pool), reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineThreads, ::testing::Range(1, 4));

}  // namespace
