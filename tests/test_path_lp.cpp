// Direct tests of the column-generation master (PathLp): mode semantics,
// lazy capacity-row activation, cost-bound rows and convergence reporting.
// Plus PathLpSession, the persistent (column-pool + warm-basis) variant,
// pinned against the one-shot master across mutations.
#include <algorithm>

#include <gtest/gtest.h>

#include "graph/view_cache.hpp"
#include "mcf/path_lp.hpp"
#include "mcf/path_lp_session.hpp"
#include "mcf/routing.hpp"
#include "util/rng.hpp"

namespace netrec::mcf {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Ladder graph: two s-t routes of given capacities plus rungs.
Graph two_route_graph(double cap_a, double cap_b) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, cap_a);
  g.add_edge(1, 3, cap_a);
  g.add_edge(0, 2, cap_b);
  g.add_edge(2, 3, cap_b);
  return g;
}

TEST(PathLp, MaxRoutedConvergesToExactOptimum) {
  Graph g = two_route_graph(7.0, 5.0);
  PathLp lp(g, {Demand{0, 3, 100.0}}, {}, static_capacity(g));
  lp.set_max_routed();
  const auto r = lp.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
  EXPECT_FALSE(r.routing.fully_routed);
}

TEST(PathLp, ModeMustBeConfigured) {
  Graph g = two_route_graph(1.0, 1.0);
  PathLp lp(g, {Demand{0, 3, 1.0}}, {}, static_capacity(g));
  EXPECT_THROW(lp.solve(), std::logic_error);
}

TEST(PathLp, MinCostPrefersCheapEdges) {
  Graph g = two_route_graph(10.0, 10.0);
  // Route A (via node 1) costs 5 per edge; route B free.
  auto cost = [&g](EdgeId e) {
    const auto [eu, ev] = g.edge_endpoints(e);
    return (eu == 1 || ev == 1) ? 5.0 : 0.0;
  };
  PathLp lp(g, {Demand{0, 3, 8.0}}, {}, static_capacity(g));
  lp.set_min_cost(cost);
  const auto r = lp.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.routing.fully_routed);
  EXPECT_NEAR(r.objective, 0.0, 1e-6);  // everything on route B
}

TEST(PathLp, MinCostPaysWhenForcedAcrossBothRoutes) {
  Graph g = two_route_graph(10.0, 4.0);
  auto cost = [&g](EdgeId e) {
    const auto [eu, ev] = g.edge_endpoints(e);
    return (eu == 1 || ev == 1) ? 1.0 : 0.0;
  };
  // Demand 10 > free route capacity 4: six units must take the 2-cost route.
  PathLp lp(g, {Demand{0, 3, 10.0}}, {}, static_capacity(g));
  lp.set_min_cost(cost);
  const auto r = lp.solve();
  EXPECT_TRUE(r.routing.fully_routed);
  EXPECT_NEAR(r.objective, 12.0, 1e-6);  // 6 units x cost 2
}

TEST(PathLp, MinCostReportsShortfallWhenInfeasible) {
  Graph g = two_route_graph(2.0, 1.0);
  PathLp lp(g, {Demand{0, 3, 10.0}}, {}, static_capacity(g));
  lp.set_min_cost([](EdgeId) { return 0.0; });
  const auto r = lp.solve();
  EXPECT_FALSE(r.routing.fully_routed);
  ASSERT_EQ(r.shortfall.size(), 1u);
  EXPECT_NEAR(r.shortfall[0], 7.0, 1e-6);  // 10 wanted, 3 routable
}

TEST(PathLp, MaxSplitHonoursDxCap) {
  Graph g = two_route_graph(6.0, 9.0);
  PathLp lp(g, {Demand{0, 3, 4.0}}, {}, static_capacity(g));
  lp.set_max_split(0, 1);
  const auto r = lp.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);  // dx capped by the demand itself
}

TEST(PathLp, SplitIndexValidation) {
  Graph g = two_route_graph(1.0, 1.0);
  PathLp lp(g, {Demand{0, 3, 1.0}}, {}, static_capacity(g));
  lp.set_max_split(5, 1);
  EXPECT_THROW(lp.solve(), std::invalid_argument);
}

TEST(PathLp, CostBoundRequiresMinCostMode) {
  Graph g = two_route_graph(1.0, 1.0);
  PathLp lp(g, {Demand{0, 3, 1.0}}, {}, static_capacity(g));
  lp.set_max_routed();
  lp.add_cost_bound(PathCostBound{[](EdgeId) { return 1.0; }, 5.0});
  EXPECT_THROW(lp.solve(), std::logic_error);
}

TEST(PathLp, CostBoundPinsTheOptimalFace) {
  Graph g = two_route_graph(10.0, 10.0);
  auto route_a_cost = [&g](EdgeId e) {
    const auto [eu, ev] = g.edge_endpoints(e);
    return (eu == 1 || ev == 1) ? 1.0 : 0.0;
  };
  // Secondary objective prefers route A, but the bound row pins route-A
  // usage to zero cost, forcing the flow onto route B.
  PathLp lp(g, {Demand{0, 3, 5.0}}, {}, static_capacity(g));
  lp.set_min_cost([&g](EdgeId e) {
    const auto [eu, ev] = g.edge_endpoints(e);
    return (eu == 2 || ev == 2) ? 1.0 : 0.0;  // dislikes route B
  });
  lp.add_cost_bound(PathCostBound{route_a_cost, 0.0});
  const auto r = lp.solve();
  EXPECT_TRUE(r.routing.fully_routed);
  for (const auto& flow : r.routing.flows) {
    if (flow.amount <= 1e-7) continue;
    for (NodeId n : flow.path.nodes(g)) EXPECT_NE(n, 1);
  }
}

TEST(PathLp, LazyCapacityRowsActivateOnLargeGraphs) {
  // A long chain (> eager threshold edges) with one tight middle edge.
  Graph g;
  const int n = 200;
  for (int i = 0; i < n; ++i) g.add_node();
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1, i == n / 2 ? 3.0 : 100.0);
  }
  PathLpOptions opt;
  opt.eager_capacity_threshold = 50;  // force lazy mode
  PathLp lp(g, {Demand{0, n - 1, 10.0}}, {}, static_capacity(g), opt);
  lp.set_max_routed();
  const auto r = lp.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);  // the tight edge binds
}

TEST(PathLp, ParallelDemandsShareFairlyAtOptimum) {
  // Total capacity 12; three demands of 6 each -> max routed is 12, however
  // distributed.  The optimum must not exceed capacity nor demand.
  Graph g = two_route_graph(6.0, 6.0);
  std::vector<Demand> demands{Demand{0, 3, 6.0}, Demand{0, 3, 6.0},
                              Demand{0, 3, 6.0}};
  PathLp lp(g, demands, {}, static_capacity(g));
  lp.set_max_routed();
  const auto r = lp.solve();
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
  for (std::size_t h = 0; h < demands.size(); ++h) {
    EXPECT_LE(r.routing.routed[h], 6.0 + 1e-6);
  }
}

TEST(PathLp, RandomInstancesNeverExceedCapacities) {
  util::Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g;
    const int n = 10;
    for (int i = 0; i < n; ++i) g.add_node();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.chance(0.4)) g.add_edge(i, j, rng.uniform(1.0, 6.0));
      }
    }
    std::vector<Demand> demands;
    for (int k = 0; k < 3; ++k) {
      const auto s = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      const auto t = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      if (s != t) demands.push_back(Demand{s, t, rng.uniform(1.0, 5.0)});
    }
    if (demands.empty()) continue;
    PathLp lp(g, demands, {}, static_capacity(g));
    lp.set_max_routed();
    const auto r = lp.solve();
    EXPECT_TRUE(routing_is_valid(g, demands, r.routing.flows, {},
                                 static_capacity(g)))
        << "trial " << trial;
  }
}

// --- PathLpSession: persistent column pool + warm basis ---------------------

/// ViewCache-backed fixture over a mutable residual array, mirroring how
/// ISP drives a session: capacities read live state, mutations are
/// published through the cache and fan out to the registered session.
struct SessionFixture {
  Graph g;
  std::vector<double> residual;
  graph::ViewCache cache;
  graph::ViewCache::SlotId slot;

  explicit SessionFixture(Graph graph)
      : g(std::move(graph)), residual(g.num_edges()), cache(g) {
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      residual[e] = g.edge_capacity(static_cast<EdgeId>(e));
    }
    graph::ViewConfig config;
    config.capacity = [this](EdgeId e) {
      return residual[static_cast<std::size_t>(e)];
    };
    slot = cache.add_config("full", std::move(config));
  }

  const graph::GraphView& view() { return cache.view(slot); }

  void consume(EdgeId e, double amount) {
    residual[static_cast<std::size_t>(e)] =
        std::max(0.0, residual[static_cast<std::size_t>(e)] - amount);
    cache.invalidate_edge(e);
  }
};

TEST(PathLpSession, MatchesOneShotAcrossResidualMutations) {
  SessionFixture fx(two_route_graph(7.0, 5.0));
  PathLpSession session(fx.g, PathLpMode::kMaxRouted);
  fx.cache.add_listener(&session);

  const std::vector<PathLpSession::DemandSpec> specs = {
      {0, Demand{0, 3, 100.0}}};
  const std::vector<Demand> plain = {Demand{0, 3, 100.0}};

  // Three rounds, draining route A between rounds; the session must track
  // the one-shot PathLp on the identical view exactly.
  for (int round = 0; round < 3; ++round) {
    const auto s = session.solve(fx.view(), specs);
    PathLp one_shot(fx.view(), plain);
    one_shot.set_max_routed();
    const auto reference = one_shot.solve();
    EXPECT_EQ(s.objective, reference.objective) << "round " << round;
    EXPECT_EQ(s.routing.fully_routed, reference.routing.fully_routed);
    EXPECT_TRUE(s.converged);
    fx.consume(0, 3.0);  // drain edge (0,1) step by step
    fx.consume(1, 3.0);
  }
  // After two drains route A is dry: only route B's 5.0 remains.
  const auto final_result = session.solve(fx.view(), specs);
  EXPECT_NEAR(final_result.objective, 5.0, 1e-6);
  fx.cache.remove_listener(&session);
}

TEST(PathLpSession, DemandUidsBindRowsAcrossCalls) {
  SessionFixture fx(two_route_graph(6.0, 6.0));
  PathLpSession session(fx.g, PathLpMode::kMaxRouted);
  fx.cache.add_listener(&session);

  // uid 7 present, then shrunk, then gone; uid 9 appears mid-session.
  auto solve = [&](std::vector<PathLpSession::DemandSpec> specs) {
    return session.solve(fx.view(), specs);
  };
  EXPECT_NEAR(solve({{7, Demand{0, 3, 4.0}}}).objective, 4.0, 1e-6);
  EXPECT_NEAR(
      solve({{7, Demand{0, 3, 2.0}}, {9, Demand{1, 2, 1.0}}}).objective, 3.0,
      1e-6);
  EXPECT_NEAR(solve({{9, Demand{1, 2, 1.0}}}).objective, 1.0, 1e-6);
  fx.cache.remove_listener(&session);
}

TEST(PathLpSession, SplitProbesMatchOneShot) {
  // Diamond 0-{1,2}-3 plus a tail so splitting through node 1 is bounded.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(2, 3, 4.0);
  SessionFixture fx(std::move(g));
  PathLpSession session(fx.g, PathLpMode::kMaxSplit);
  fx.cache.add_listener(&session);

  const std::vector<PathLpSession::DemandSpec> specs = {
      {0, Demand{0, 3, 5.0}}};
  const std::vector<Demand> plain = {Demand{0, 3, 5.0}};

  for (const NodeId via : {NodeId{1}, NodeId{2}, NodeId{1}}) {
    const auto s = session.solve_split(fx.view(), specs, 0, via);
    PathLp one_shot(fx.view(), plain);
    one_shot.set_max_split(0, via);
    const auto reference = one_shot.solve();
    EXPECT_EQ(s.objective, reference.objective) << "via " << via;
    EXPECT_EQ(s.routing.fully_routed, reference.routing.fully_routed);
  }
  fx.cache.remove_listener(&session);
}

TEST(PathLpSession, MinCostRepricesAfterInvalidation) {
  SessionFixture fx(two_route_graph(10.0, 10.0));
  // Mutable per-edge cost, read live by the session's objective callback.
  std::vector<double> cost(fx.g.num_edges(), 0.0);
  cost[0] = cost[1] = 5.0;  // route A expensive at first
  PathLpSession session(fx.g, PathLpMode::kMinCost);
  session.set_min_cost_objective(
      [&cost](EdgeId e) { return cost[static_cast<std::size_t>(e)]; });
  fx.cache.add_listener(&session);

  const std::vector<PathLpSession::DemandSpec> specs = {
      {0, Demand{0, 3, 8.0}}};
  EXPECT_NEAR(session.solve(fx.view(), specs).objective, 0.0, 1e-6);

  // Flip the price onto route B and publish the change; the surviving
  // columns must be re-priced, which moves the whole optimal routing onto
  // route A (a stale pool would keep riding route B and still *report* a
  // zero model objective, so assert on the witness flows, not the value).
  cost[0] = cost[1] = 0.0;
  cost[2] = cost[3] = 5.0;
  fx.cache.invalidate_edge(0);
  fx.cache.invalidate_edge(1);
  fx.cache.invalidate_edge(2);
  fx.cache.invalidate_edge(3);
  const auto repriced = session.solve(fx.view(), specs);
  EXPECT_NEAR(repriced.objective, 0.0, 1e-6);
  double on_route_a = 0.0;
  for (const PathFlow& flow : repriced.routing.flows) {
    for (EdgeId e : flow.path.edges) {
      if (e == 0) on_route_a += flow.amount;
    }
  }
  EXPECT_NEAR(on_route_a, 8.0, 1e-6);
  fx.cache.remove_listener(&session);
}

TEST(PathLpSession, EpochBumpResetsAllState) {
  SessionFixture fx(two_route_graph(7.0, 5.0));
  PathLpSession session(fx.g, PathLpMode::kMaxRouted);
  fx.cache.add_listener(&session);
  const std::vector<PathLpSession::DemandSpec> specs = {
      {0, Demand{0, 3, 100.0}}};
  EXPECT_NEAR(session.solve(fx.view(), specs).objective, 12.0, 1e-6);
  fx.cache.bump_epoch();
  EXPECT_EQ(session.stats().resets, 1u);
  EXPECT_NEAR(session.solve(fx.view(), specs).objective, 12.0, 1e-6);
  fx.cache.remove_listener(&session);
}

}  // namespace
}  // namespace netrec::mcf
