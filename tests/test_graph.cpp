// Unit tests for the graph substrate: structure, traversal, shortest paths,
// max flow, simple-path enumeration and GML round-tripping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.hpp"
#include "graph/gml.hpp"
#include "graph/graph.hpp"
#include "graph/maxflow.hpp"
#include "graph/path.hpp"
#include "graph/simple_paths.hpp"
#include "graph/traversal.hpp"
#include "util/rng.hpp"

namespace netrec::graph {
namespace {

Graph make_square_with_diagonal() {
  // 0-1, 1-2, 2-3, 3-0 (capacity 10), diagonal 0-2 (capacity 3).
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node("n" + std::to_string(i));
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  g.add_edge(3, 0, 10.0);
  g.add_edge(0, 2, 3.0);
  return g;
}

TEST(Graph, BasicStructure) {
  Graph g = make_square_with_diagonal();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_NE(g.find_edge(0, 2), kInvalidEdge);
  EXPECT_EQ(g.find_edge(1, 3), kInvalidEdge);
  EXPECT_EQ(g.other_endpoint(g.find_edge(0, 1), 0), 1);
  EXPECT_EQ(g.other_endpoint(g.find_edge(0, 1), 1), 0);
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0, 2.0), std::invalid_argument);
}

TEST(Graph, BreakAndRepairBookkeeping) {
  Graph g = make_square_with_diagonal();
  EXPECT_EQ(g.num_broken_nodes(), 0u);
  g.break_everything();
  EXPECT_EQ(g.num_broken_nodes(), 4u);
  EXPECT_EQ(g.num_broken_edges(), 5u);
  EXPECT_DOUBLE_EQ(g.total_repair_cost(), 9.0);  // unit costs
  EXPECT_FALSE(g.edge_usable(0));
  g.repair_everything();
  EXPECT_TRUE(g.edge_usable(0));
}

TEST(Graph, EdgeUsableRequiresWorkingEndpoints) {
  Graph g = make_square_with_diagonal();
  g.set_node_broken(1, true);
  EXPECT_FALSE(g.edge_usable(g.find_edge(0, 1)));
  EXPECT_TRUE(g.edge_usable(g.find_edge(3, 0)));
}

TEST(Traversal, BfsHopsAndDiameter) {
  Graph g = make_square_with_diagonal();
  const auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);  // via diagonal
  EXPECT_EQ(dist[3], 1);
  EXPECT_EQ(hop_diameter(g), 2);
}

TEST(Traversal, FiltersExcludeBrokenElements) {
  Graph g = make_square_with_diagonal();
  g.set_edge_broken(g.find_edge(0, 2), true);
  g.set_edge_broken(g.find_edge(0, 1), true);
  const auto dist = bfs_hops(g, 0, working_edge_filter(g));
  EXPECT_EQ(dist[2], 2);  // 0-3-2
  EXPECT_EQ(dist[1], 3);  // 0-3-2-1
}

TEST(Traversal, ComponentsSplitWhenCut) {
  Graph g;
  for (int i = 0; i < 6; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto label = connected_components(g);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[3], label[5]);
  const auto giant = giant_component(g);
  EXPECT_EQ(giant.size(), 3u);
}

TEST(Dijkstra, PrefersShortMetricOverFewHops) {
  // 0-1-2 each length 1 vs direct 0-2 length 5.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(1, 2, 1.0);
  const EdgeId direct = g.add_edge(0, 2, 1.0);
  auto length = [&](EdgeId e) { return e == direct ? 5.0 : 1.0; };
  auto path = shortest_path(g, 0, 2, length);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->edges, (std::vector<EdgeId>{a, b}));
  EXPECT_NEAR(path->length(length), 2.0, 1e-12);
}

TEST(Dijkstra, ReturnsNulloptWhenDisconnected) {
  Graph g;
  g.add_node();
  g.add_node();
  EXPECT_FALSE(
      shortest_path(g, 0, 1, [](EdgeId) { return 1.0; }).has_value());
}

TEST(Dijkstra, RejectsNegativeLengths) {
  Graph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(dijkstra(g, 0, [](EdgeId) { return -1.0; }),
               std::invalid_argument);
}

TEST(WidestPath, PicksMaximumBottleneck) {
  Graph g = make_square_with_diagonal();
  auto cap = [&g](EdgeId e) { return g.edge_capacity(e); };
  auto path = widest_path(g, 0, 2, cap);
  ASSERT_TRUE(path.has_value());
  EXPECT_NEAR(path->capacity(cap), 10.0, 1e-12);  // around, not diagonal
  EXPECT_EQ(path->hop_count(), 2u);
}

TEST(Path, NodeSequenceAndSimplicity) {
  Graph g = make_square_with_diagonal();
  Path p;
  p.start = 0;
  p.edges = {g.find_edge(0, 1), g.find_edge(1, 2)};
  EXPECT_EQ(p.end(g), 2);
  EXPECT_TRUE(p.is_simple(g));
  EXPECT_TRUE(p.connects(g, 0, 2));
  EXPECT_FALSE(p.connects(g, 0, 3));
  const auto nodes = p.nodes(g);
  EXPECT_EQ(nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Maxflow, SingleEdge) {
  Graph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 7.5);
  const auto r =
      max_flow(g, 0, 1, [&g](EdgeId e) { return g.edge_capacity(e); });
  EXPECT_NEAR(r.value, 7.5, 1e-9);
}

TEST(Maxflow, ParallelPathsSum) {
  Graph g = make_square_with_diagonal();
  const auto r =
      max_flow(g, 0, 2, [&g](EdgeId e) { return g.edge_capacity(e); });
  // 0-1-2 (10) + 0-3-2 (10) + 0-2 (3).
  EXPECT_NEAR(r.value, 23.0, 1e-9);
}

TEST(Maxflow, RespectsNodeFilter) {
  Graph g = make_square_with_diagonal();
  auto cap = [&g](EdgeId e) { return g.edge_capacity(e); };
  const auto r = max_flow(g, 0, 2, cap, {},
                          [](NodeId n) { return n != 1; });
  EXPECT_NEAR(r.value, 13.0, 1e-9);  // loses the 0-1-2 path
}

TEST(Maxflow, DecompositionRecoversValue) {
  Graph g = make_square_with_diagonal();
  auto cap = [&g](EdgeId e) { return g.edge_capacity(e); };
  const auto r = max_flow(g, 0, 2, cap);
  const auto paths = decompose_flow(g, 0, 2, r.edge_flow);
  double total = 0.0;
  for (const auto& [path, amount] : paths) {
    EXPECT_TRUE(path.connects(g, 0, 2));
    EXPECT_GT(amount, 0.0);
    total += amount;
  }
  EXPECT_NEAR(total, r.value, 1e-6);
}

TEST(Maxflow, RandomGraphsFlowConservation) {
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g;
    const int n = 8;
    for (int i = 0; i < n; ++i) g.add_node();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.chance(0.4)) {
          g.add_edge(i, j, rng.uniform(1.0, 10.0));
        }
      }
    }
    auto cap = [&g](EdgeId e) { return g.edge_capacity(e); };
    const auto r = max_flow(g, 0, n - 1, cap);
    // Conservation at interior nodes.
    for (NodeId v = 1; v < n - 1; ++v) {
      double net = 0.0;
      for (EdgeId e : g.incident_edges(v)) {
        net += g.edge_u(e) == v ? r.edge_flow[static_cast<std::size_t>(e)]
                                : -r.edge_flow[static_cast<std::size_t>(e)];
      }
      EXPECT_NEAR(net, 0.0, 1e-6);
    }
    // Decomposition matches the value.
    const auto paths = decompose_flow(g, 0, n - 1, r.edge_flow);
    double total = 0.0;
    for (const auto& [path, amount] : paths) total += amount;
    EXPECT_NEAR(total, r.value, 1e-6);
  }
}

TEST(SimplePaths, EnumeratesAllInSquare) {
  Graph g = make_square_with_diagonal();
  const auto paths = all_simple_paths(g, 0, 2);
  // 0-2, 0-1-2, 0-3-2, 0-1... only simple: {0-2, 0-1-2, 0-3-2}.
  EXPECT_EQ(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_TRUE(p.connects(g, 0, 2));
    EXPECT_TRUE(p.is_simple(g));
  }
}

TEST(SimplePaths, HonoursLimits) {
  Graph g = make_square_with_diagonal();
  SimplePathLimits limits;
  limits.max_paths = 1;
  EXPECT_EQ(all_simple_paths(g, 0, 2, limits).size(), 1u);
  limits.max_paths = 100;
  limits.max_hops = 1;
  EXPECT_EQ(all_simple_paths(g, 0, 2, limits).size(), 1u);  // only direct
}

TEST(SuccessivePaths, CoversDemandAndReportsCapacities) {
  Graph g = make_square_with_diagonal();
  auto cap = [&g](EdgeId e) { return g.edge_capacity(e); };
  auto ones = [](EdgeId) { return 1.0; };
  const auto r = successive_shortest_paths(g, 0, 2, 15.0, ones, cap);
  EXPECT_GE(r.total_capacity, 15.0);
  ASSERT_GE(r.paths.size(), 2u);
  double sum = 0.0;
  for (double c : r.capacities) sum += c;
  EXPECT_NEAR(sum, r.total_capacity, 1e-12);
}

TEST(SuccessivePaths, StopsWhenDisconnected) {
  Graph g;
  g.add_node();
  g.add_node();
  const auto r = successive_shortest_paths(
      g, 0, 1, 5.0, [](EdgeId) { return 1.0; }, [](EdgeId) { return 1.0; });
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.total_capacity, 0.0);
}

TEST(Gml, RoundTripPreservesEverything) {
  Graph g = make_square_with_diagonal();
  g.set_node_broken(1, true);
  g.set_edge_broken(2, true);
  g.set_node_position(0, -73.5, 45.5);
  g.set_edge_repair_cost(0, 2.5);

  const Graph h = parse_gml(to_gml(g));
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(h.node_broken(1));
  EXPECT_TRUE(h.edge_broken(2));
  EXPECT_DOUBLE_EQ(h.node_x(0), -73.5);
  EXPECT_DOUBLE_EQ(h.edge_repair_cost(0), 2.5);
  EXPECT_EQ(h.node_name(2), "n2");
}

TEST(Gml, ParsesTopologyZooStyle) {
  const std::string text = R"(
# Topology Zoo style excerpt
graph [
  directed 0
  label "Toy"
  node [ id 10 label "Montreal" Longitude -73.57 Latitude 45.50 ]
  node [ id 20 label "Toronto"  Longitude -79.38 Latitude 43.65 ]
  edge [ source 10 target 20 LinkSpeed 30 ]
]
)";
  const Graph g = parse_gml(text);
  ASSERT_EQ(g.num_nodes(), 2u);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.node_name(0), "Montreal");
  EXPECT_NEAR(g.node_x(0), -73.57, 1e-9);
  EXPECT_NEAR(g.edge_capacity(0), 30.0, 1e-9);
}

TEST(Gml, RejectsMalformedInput) {
  EXPECT_THROW(parse_gml("nothing here"), std::runtime_error);
  EXPECT_THROW(parse_gml("graph [ node [ id 1 ]"), std::runtime_error);
  EXPECT_THROW(parse_gml("graph [ edge [ source 1 target 2 ] ]"),
               std::runtime_error);
}

}  // namespace
}  // namespace netrec::graph
