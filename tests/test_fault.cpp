// util::fault — deterministic fault-injection registry.
//
// Covers the spec grammar (including whole-spec atomicity on malformed
// input), the three trigger modes, decision determinism under re-arming
// and under concurrent hammering (hit indices are unique, so the set of
// firing hits — and therefore the fired count — is a pure function of
// (seed, site, total hits)), the disarmed fast path, env arming and the
// ScopedArm RAII helper.
//
// Site names are unique per test: the registry is process-global and
// sites are never destroyed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/fault.hpp"

namespace fault = netrec::util::fault;

namespace {

/// Fires `site` `hits` times and returns the firing pattern.
std::vector<bool> pattern(fault::Site& site, std::size_t hits) {
  std::vector<bool> fired(hits);
  for (std::size_t i = 0; i < hits; ++i) fired[i] = site.fire();
  return fired;
}

TEST(Fault, DisarmedSiteNeverFiresAndCountsNothing) {
  fault::Site& site = fault::site("test.disarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(site.fire());
  EXPECT_FALSE(site.armed());
  EXPECT_EQ(site.hits(), 0u);  // disarmed hits are not even counted
  EXPECT_EQ(site.fired(), 0u);
}

TEST(Fault, EveryNFiresOnExactMultiples) {
  fault::ScopedArm arm("test.every=every3");
  fault::Site& site = fault::site("test.every");
  const std::vector<bool> fired = pattern(site, 9);
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(site.hits(), 9u);
  EXPECT_EQ(site.fired(), 3u);
}

TEST(Fault, OnceFiresExactlyOnceOnTheNthHit) {
  fault::ScopedArm arm("test.once=once4");
  fault::Site& site = fault::site("test.once");
  const std::vector<bool> fired = pattern(site, 10);
  std::vector<bool> expected(10, false);
  expected[3] = true;
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(site.fired(), 1u);
}

TEST(Fault, ProbabilityZeroAndOneAreExact) {
  {
    fault::ScopedArm arm("test.p0=p0");
    fault::Site& site = fault::site("test.p0");
    for (int i = 0; i < 200; ++i) EXPECT_FALSE(site.fire());
  }
  {
    fault::ScopedArm arm("test.p1=p1");
    fault::Site& site = fault::site("test.p1");
    for (int i = 0; i < 200; ++i) EXPECT_TRUE(site.fire());
  }
}

TEST(Fault, ProbabilityPatternIsDeterministicUnderRearm) {
  fault::arm("test.prob=p0.3", 99);
  fault::Site& site = fault::site("test.prob");
  const std::vector<bool> first = pattern(site, 500);
  fault::arm("test.prob=p0.3", 99);  // re-arm resets the hit counter
  const std::vector<bool> second = pattern(site, 500);
  EXPECT_EQ(first, second);

  // A different seed produces a different pattern (with overwhelming
  // probability for 500 draws at p=0.3).
  fault::arm("test.prob=p0.3", 100);
  EXPECT_NE(pattern(site, 500), first);
  fault::disarm_all();
}

TEST(Fault, ProbabilityRateIsRoughlyHonored) {
  fault::ScopedArm arm("test.rate=p0.25");
  fault::Site& site = fault::site("test.rate");
  std::size_t fired = 0;
  const std::size_t hits = 4000;
  for (std::size_t i = 0; i < hits; ++i) fired += site.fire() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fired) / static_cast<double>(hits), 0.25,
              0.05);
}

TEST(Fault, ConcurrentFiredCountIsDeterministic) {
  // Hit indices come from one atomic counter, so over T*K total hits the
  // set of firing indices — and hence the fired count — is the same
  // whatever the thread interleaving.
  const std::size_t kThreads = 8;
  const std::size_t kHitsPerThread = 2000;
  std::uint64_t counts[2] = {0, 0};
  for (int round = 0; round < 2; ++round) {
    fault::arm("test.concurrent=p0.2", 1234);
    fault::Site& site = fault::site("test.concurrent");
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&site] {
        for (std::size_t i = 0; i < kHitsPerThread; ++i) site.fire();
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(site.hits(), kThreads * kHitsPerThread);
    counts[round] = site.fired();
  }
  fault::disarm_all();
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0], 0u);
}

TEST(Fault, MalformedSpecsThrowWithoutArmingAnything) {
  fault::site("test.atomic.a");
  fault::site("test.atomic.b");
  const std::vector<std::string> bad = {
      "test.atomic.a",                       // no '='
      "=p0.5",                               // empty site name
      "test.atomic.a=",                      // empty trigger
      "test.atomic.a=p",                     // missing number
      "test.atomic.a=p2",                    // probability > 1
      "test.atomic.a=p-0.1",                 // probability < 0
      "test.atomic.a=every0",                // N must be >= 1
      "test.atomic.a=once0",                 // N must be >= 1
      "test.atomic.a=maybe5",                // unknown trigger
      "test.atomic.a=every5x",               // trailing characters
      "test.atomic.a=p0.5,test.atomic.b=?",  // malformed tail...
  };
  for (const std::string& spec : bad) {
    EXPECT_THROW(fault::arm(spec), std::invalid_argument) << spec;
    // ...must not half-arm the valid prefix.
    EXPECT_FALSE(fault::site("test.atomic.a").armed()) << spec;
    EXPECT_FALSE(fault::site("test.atomic.b").armed()) << spec;
  }
}

TEST(Fault, SpecArmsOnlyNamedSites) {
  fault::site("test.named.other");
  fault::ScopedArm arm("test.named.target=every1");
  EXPECT_TRUE(fault::site("test.named.target").armed());
  EXPECT_FALSE(fault::site("test.named.other").armed());
  EXPECT_TRUE(fault::site("test.named.target").fire());
  EXPECT_FALSE(fault::site("test.named.other").fire());
}

TEST(Fault, ScopedArmDisarmsOnDestruction) {
  {
    fault::ScopedArm arm("test.scoped=p1");
    EXPECT_TRUE(fault::site("test.scoped").armed());
  }
  EXPECT_FALSE(fault::site("test.scoped").armed());
  EXPECT_FALSE(fault::site("test.scoped").fire());
}

TEST(Fault, ArmFromEnvironment) {
  ASSERT_EQ(::setenv("NETREC_FAULTS", "test.env=once2", 1), 0);
  ASSERT_EQ(::setenv("NETREC_FAULT_SEED", "17", 1), 0);
  EXPECT_TRUE(fault::arm_from_env());
  fault::Site& site = fault::site("test.env");
  EXPECT_TRUE(site.armed());
  EXPECT_FALSE(site.fire());
  EXPECT_TRUE(site.fire());
  EXPECT_FALSE(site.fire());
  fault::disarm_all();
  ASSERT_EQ(::unsetenv("NETREC_FAULTS"), 0);
  ASSERT_EQ(::unsetenv("NETREC_FAULT_SEED"), 0);
  EXPECT_FALSE(fault::arm_from_env());
}

TEST(Fault, StatsExposeEveryTouchedSite) {
  fault::ScopedArm arm("test.stats=every2");
  fault::Site& site = fault::site("test.stats");
  site.fire();
  site.fire();
  bool found = false;
  for (const fault::SiteStats& stat : fault::stats()) {
    if (stat.name == "test.stats") {
      found = true;
      EXPECT_TRUE(stat.armed);
      EXPECT_EQ(stat.hits, 2u);
      EXPECT_EQ(stat.fired, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fault, FaultPointMacroReachesTheNamedSite) {
  fault::ScopedArm arm("test.macro=every1");
  EXPECT_TRUE(FAULT_POINT("test.macro"));
  EXPECT_EQ(fault::site("test.macro").fired(), 1u);
  fault::disarm_all();
  EXPECT_FALSE(FAULT_POINT("test.macro"));
}

}  // namespace
