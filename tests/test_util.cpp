// Tests for the util substrate: deterministic RNG, streaming statistics,
// CSV escaping, table rendering and flag parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace netrec::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalHasRoughlyCorrectMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(23);
  parent_copy.fork();
  EXPECT_EQ(parent.next(), parent_copy.next());  // forking is deterministic
  EXPECT_NE(child.next(), parent.next());
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(10, 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (std::size_t v : sample) EXPECT_LT(v, 10u);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  Rng rng(31);
  RunningStats bulk, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3.0, 8.0);
    bulk.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), bulk.variance(), 1e-9);
  EXPECT_NEAR(left.min(), bulk.min(), 1e-12);
  EXPECT_NEAR(left.max(), bulk.max(), 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(MetricSet, AccumulatesByName) {
  MetricSet m;
  m.add("repairs", 10.0);
  m.add("repairs", 20.0);
  m.add("time", 1.5);
  EXPECT_DOUBLE_EQ(m.get("repairs").mean(), 15.0);
  EXPECT_TRUE(m.has("time"));
  EXPECT_FALSE(m.has("missing"));
  EXPECT_THROW(m.get("missing"), std::out_of_range);
  EXPECT_EQ(m.names().size(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 2), "0.12");  // round-half-to-even
  EXPECT_EQ(format_double(-0.0), "0");
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Flags, ParsesBothSyntaxes) {
  Flags flags;
  flags.define("alpha", "1", "a");
  flags.define("beta", "x", "b");
  const char* argv[] = {"prog", "--alpha", "7", "--beta=hello"};
  ASSERT_TRUE(flags.parse(4, argv));
  EXPECT_EQ(flags.get_int("alpha"), 7);
  EXPECT_EQ(flags.get("beta"), "hello");
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  Flags flags;
  flags.define("gamma", "2.5", "g");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_DOUBLE_EQ(flags.get_double("gamma"), 2.5);
}

TEST(Flags, RejectsUnknownAndMalformed) {
  Flags flags;
  flags.define("known", "1", "k");
  const char* bad1[] = {"prog", "--unknown", "3"};
  EXPECT_THROW(flags.parse(3, bad1), std::invalid_argument);
  const char* bad2[] = {"prog", "--known"};
  EXPECT_THROW(flags.parse(2, bad2), std::invalid_argument);
  const char* bad3[] = {"prog", "stray"};
  EXPECT_THROW(flags.parse(2, bad3), std::invalid_argument);
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags;
  flags.define("x", "1", "x");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
  EXPECT_NE(flags.usage("prog").find("--x"), std::string::npos);
}

TEST(Flags, ParsesDoubleLists) {
  Flags flags;
  flags.define("sweep", "1,2.5,4", "s");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  const auto values = flags.get_double_list("sweep");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[1], 2.5);
}

TEST(Flags, RejectsTrailingGarbageAndEmptyNumerics) {
  Flags flags;
  flags.define("n", "1", "int flag");
  flags.define("x", "1.0", "double flag");
  const char* argv[] = {"prog", "--n", "7x", "--x", "2.5abc"};
  ASSERT_TRUE(flags.parse(5, argv));
  // std::stoi/std::stod would silently truncate both; strict parsing
  // refuses them with a clear diagnostic instead.
  EXPECT_THROW(flags.get_int("n"), std::invalid_argument);
  EXPECT_THROW(flags.get_double("x"), std::invalid_argument);

  Flags empty_flags;
  empty_flags.define("n", "", "int flag");
  empty_flags.define("x", "", "double flag");
  const char* none[] = {"prog"};
  ASSERT_TRUE(empty_flags.parse(1, none));
  EXPECT_THROW(empty_flags.get_int("n"), std::invalid_argument);
  EXPECT_THROW(empty_flags.get_double("x"), std::invalid_argument);
}

TEST(Flags, RejectsTrailingWhitespaceAndPartialExponent) {
  Flags flags;
  flags.define("n", "1", "int flag");
  flags.define("x", "1.0", "double flag");
  const char* argv[] = {"prog", "--n=7 ", "--x=1.5e"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_THROW(flags.get_int("n"), std::invalid_argument);
  EXPECT_THROW(flags.get_double("x"), std::invalid_argument);
  // Leading whitespace is consumed by the numeric parser itself and stays
  // accepted, matching the historical behaviour.
  Flags ok;
  ok.define("n", " 7", "int flag");
  const char* none[] = {"prog"};
  ASSERT_TRUE(ok.parse(1, none));
  EXPECT_EQ(ok.get_int("n"), 7);
}

TEST(Flags, RejectsDuplicateFlags) {
  // "--n 3 ... --n 5" is an editing mistake, not a request for last-wins.
  Flags flags;
  flags.define("n", "1", "n");
  flags.define("m", "2", "m");
  const char* dup[] = {"prog", "--n", "3", "--m=4", "--n=5"};
  EXPECT_THROW(flags.parse(5, dup), std::invalid_argument);
  // Both syntaxes name the same flag.
  const char* mixed[] = {"prog", "--n=3", "--n", "5"};
  EXPECT_THROW(flags.parse(4, mixed), std::invalid_argument);
  // A fresh parse call (new command line) is not a duplicate of the last.
  Flags fresh;
  fresh.define("n", "1", "n");
  const char* once[] = {"prog", "--n", "3"};
  ASSERT_TRUE(fresh.parse(3, once));
  ASSERT_TRUE(fresh.parse(3, once));
  EXPECT_EQ(fresh.get_int("n"), 3);
}

TEST(Flags, BoolParsingIsStrict) {
  Flags flags;
  flags.define("verbose", "false", "v");
  for (const char* token : {"1", "true", "yes", "on"}) {
    Flags f;
    f.define("verbose", "false", "v");
    const std::string value = std::string("--verbose=") + token;
    const char* argv[] = {"prog", value.c_str()};
    ASSERT_TRUE(f.parse(2, argv));
    EXPECT_TRUE(f.get_bool("verbose")) << token;
  }
  for (const char* token : {"0", "false", "no", "off"}) {
    Flags f;
    f.define("verbose", "true", "v");
    const std::string value = std::string("--verbose=") + token;
    const char* argv[] = {"prog", value.c_str()};
    ASSERT_TRUE(f.parse(2, argv));
    EXPECT_FALSE(f.get_bool("verbose")) << token;
  }
  // A typo used to silently read as false; now it throws.
  for (const char* token : {"ture", "2", "", "TRUE "}) {
    Flags f;
    f.define("verbose", "false", "v");
    const std::string value = std::string("--verbose=") + token;
    const char* argv[] = {"prog", value.c_str()};
    ASSERT_TRUE(f.parse(2, argv));
    EXPECT_THROW(f.get_bool("verbose"), std::invalid_argument) << token;
  }
}

TEST(Flags, DoubleListRejectsBadElements) {
  Flags flags;
  flags.define("sweep", "1,2x,4", "s");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_THROW(flags.get_double_list("sweep"), std::invalid_argument);
}

TEST(TimeSeries, RestorationAucMatchesMeanOfFractions) {
  // Curve restoring 25%, 50%, 100% of 4 units: mean(0.25, 0.5, 1) = 7/12.
  EXPECT_DOUBLE_EQ(restoration_auc({1.0, 2.0, 4.0}, 4.0), 7.0 / 12.0);
  // Instant restoration scores 1; never restoring anything scores 0.
  EXPECT_DOUBLE_EQ(restoration_auc({4.0, 4.0}, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(restoration_auc({0.0, 0.0}, 4.0), 0.0);
}

TEST(TimeSeries, RestorationAucEmptyOrDegenerateScoresZero) {
  // Degenerate input must not read as "fully restored" — an empty series is
  // what a failed solve produces, and scoring it 1.0 would mask the failure
  // in a netrecd service response.
  EXPECT_DOUBLE_EQ(restoration_auc({}, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(restoration_auc({1.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(restoration_auc({1.0}, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(restoration_auc({}, 0.0), 0.0);
}

TEST(TimeSeries, StepsToFractionDegenerateInput) {
  // Empty series: never reached -> size + 1 sentinel (== 1).
  EXPECT_EQ(steps_to_fraction({}, 4.0, 0.5), 1u);
  // Non-positive total: the target is <= 0, so the first entry >= 0
  // trivially reaches it — the sentinel contract still holds.
  EXPECT_EQ(steps_to_fraction({0.0, 1.0}, 0.0, 0.5), 1u);
  EXPECT_EQ(steps_to_fraction({0.0}, -4.0, 0.5), 1u);
  // Zero fraction is reached by any non-negative first measurement.
  EXPECT_EQ(steps_to_fraction({0.0, 1.0}, 4.0, 0.0), 1u);
}

TEST(TimeSeries, StepsToFractionFindsFirstCrossing) {
  const std::vector<double> series{1.0, 2.0, 2.0, 4.0};
  EXPECT_EQ(steps_to_fraction(series, 4.0, 0.25), 1u);
  EXPECT_EQ(steps_to_fraction(series, 4.0, 0.5), 2u);
  EXPECT_EQ(steps_to_fraction(series, 4.0, 1.0), 4u);
  // Never reached: size + 1 sentinel.
  EXPECT_EQ(steps_to_fraction(series, 8.0, 1.0), 5u);
  EXPECT_EQ(steps_to_fraction({}, 4.0, 0.5), 1u);
}

TEST(TimeSeries, StepsToFractionToleratesRoundoff) {
  // A value within 1e-9 of the target counts as reached.
  EXPECT_EQ(steps_to_fraction({2.0 - 5e-10}, 4.0, 0.5), 1u);
}

}  // namespace
}  // namespace netrec::util
