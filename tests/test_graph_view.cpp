// GraphView equivalence and contract tests.
//
// The CSR snapshot layer promises bit-identical outputs to the preserved
// std::function reference implementations (graph::legacy::*).  These are
// seeded property tests over random Erdős–Rényi draws and the Bell-Canada
// topology, always with a random subset of elements broken so the usability
// filters actually filter; every comparison is exact (==), not approximate.
#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "graph/betweenness.hpp"
#include "graph/dijkstra.hpp"
#include "graph/maxflow.hpp"
#include "graph/simple_paths.hpp"
#include "graph/traversal.hpp"
#include "graph/view.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;

/// Connected-ish ER draw with ~15% broken edges and ~10% broken nodes.
graph::Graph broken_er(std::uint64_t seed, std::size_t nodes = 40,
                       double p = 0.15) {
  util::Rng rng(seed);
  topology::ErdosRenyiOptions options;
  options.nodes = nodes;
  options.edge_probability = p;
  options.capacity = 8.0;
  graph::Graph g = topology::make_topology(options, rng);
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    if (rng.chance(0.1)) g.set_node_broken(static_cast<graph::NodeId>(n), true);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (rng.chance(0.15)) g.set_edge_broken(static_cast<graph::EdgeId>(e), true);
  }
  return g;
}

graph::Graph broken_bell_canada(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    if (rng.chance(0.15)) g.set_node_broken(static_cast<graph::NodeId>(n), true);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (rng.chance(0.2)) g.set_edge_broken(static_cast<graph::EdgeId>(e), true);
  }
  return g;
}

/// Non-uniform deterministic length metric so ties are rare but present.
graph::EdgeWeight test_length() {
  return [](graph::EdgeId e) {
    return 1.0 + static_cast<double>(e % 5) * 0.25;
  };
}

void expect_same_tree(const graph::ShortestPathTree& a,
                      const graph::ShortestPathTree& b) {
  ASSERT_EQ(a.distance.size(), b.distance.size());
  for (std::size_t i = 0; i < a.distance.size(); ++i) {
    EXPECT_EQ(a.distance[i], b.distance[i]) << "distance mismatch at " << i;
    EXPECT_EQ(a.parent_edge[i], b.parent_edge[i]) << "parent mismatch at "
                                                  << i;
  }
}

void check_dijkstra_equivalence(const graph::Graph& g) {
  const auto length = test_length();
  const auto edge_ok = graph::working_edge_filter(g);
  const auto node_ok = [&g](graph::NodeId n) { return !g.node_broken(n); };
  for (graph::NodeId s = 0; s < static_cast<graph::NodeId>(g.num_nodes());
       s += 7) {
    expect_same_tree(graph::legacy::dijkstra(g, s, length, edge_ok, node_ok),
                     graph::dijkstra(g, s, length, edge_ok, node_ok));
    // Filter-free variant exercises the full graph.
    expect_same_tree(graph::legacy::dijkstra(g, s, length),
                     graph::dijkstra(g, s, length));
  }
}

TEST(GraphViewDijkstra, BitIdenticalToLegacyOnRandomEr) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    check_dijkstra_equivalence(broken_er(seed));
  }
}

TEST(GraphViewDijkstra, BitIdenticalToLegacyOnBellCanada) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    check_dijkstra_equivalence(broken_bell_canada(seed));
  }
}

TEST(GraphViewWidestPath, BitIdenticalToLegacy) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const graph::Graph g = broken_er(seed);
    const auto capacity = [&g](graph::EdgeId e) { return g.edge_capacity(e); };
    const auto edge_ok = graph::working_edge_filter(g);
    const auto t = static_cast<graph::NodeId>(g.num_nodes() - 1);
    const auto a = graph::legacy::widest_path(g, 0, t, capacity, edge_ok);
    const auto b = graph::widest_path(g, 0, t, capacity, edge_ok);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->start, b->start);
      EXPECT_EQ(a->edges, b->edges);
    }
  }
}

TEST(GraphViewBetweenness, BitIdenticalToLegacyOnRandomEr) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const graph::Graph g = broken_er(seed);
    const auto length = test_length();
    const auto edge_ok = graph::working_edge_filter(g);
    const auto a = graph::legacy::betweenness_centrality(g, length, edge_ok);
    const auto b = graph::betweenness_centrality(g, length, edge_ok);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "betweenness mismatch at node " << i;
    }
  }
}

TEST(GraphViewBetweenness, BitIdenticalToLegacyOnBellCanada) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const graph::Graph g = broken_bell_canada(seed);
    const auto length = test_length();
    const auto node_ok = [&g](graph::NodeId n) { return !g.node_broken(n); };
    const auto a = graph::legacy::betweenness_centrality(
        g, length, graph::working_edge_filter(g), node_ok);
    const auto b = graph::betweenness_centrality(
        g, length, graph::working_edge_filter(g), node_ok);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "betweenness mismatch at node " << i;
    }
  }
}

TEST(GraphViewMaxflow, BitIdenticalToLegacy) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const graph::Graph g = broken_er(seed, /*nodes=*/30, /*p=*/0.2);
    const auto capacity = [&g](graph::EdgeId e) { return g.edge_capacity(e); };
    const auto edge_ok = graph::working_edge_filter(g);
    const auto node_ok = [&g](graph::NodeId n) { return !g.node_broken(n); };
    const auto t = static_cast<graph::NodeId>(g.num_nodes() - 1);
    const auto a = graph::legacy::max_flow(g, 0, t, capacity, edge_ok,
                                           node_ok);
    const auto b = graph::max_flow(g, 0, t, capacity, edge_ok, node_ok);
    EXPECT_EQ(a.value, b.value);
    ASSERT_EQ(a.edge_flow.size(), b.edge_flow.size());
    for (std::size_t e = 0; e < a.edge_flow.size(); ++e) {
      EXPECT_EQ(a.edge_flow[e], b.edge_flow[e]) << "flow mismatch on edge "
                                                << e;
    }
  }
}

TEST(GraphViewSuccessivePaths, BitIdenticalToLegacyComposition) {
  // Replicates the historical successive-shortest-paths loop with
  // legacy::dijkstra and compares the selected paths and capacities.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const graph::Graph g = broken_er(seed);
    const auto length = test_length();
    const auto capacity = [&g](graph::EdgeId e) { return g.edge_capacity(e); };
    const auto edge_ok = graph::working_edge_filter(g);
    const auto t = static_cast<graph::NodeId>(g.num_nodes() - 1);
    const double demand = 30.0;

    std::vector<double> residual(g.num_edges());
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      residual[e] = capacity(static_cast<graph::EdgeId>(e));
    }
    graph::SuccessivePathsResult expected;
    constexpr double kEps = 1e-9;
    while (expected.total_capacity < demand - kEps &&
           expected.paths.size() < 64) {
      auto usable = [&](graph::EdgeId e) {
        if (residual[static_cast<std::size_t>(e)] <= kEps) return false;
        return edge_ok(e);
      };
      auto path =
          graph::legacy::dijkstra(g, 0, length, usable).path_to(g, t);
      if (!path) break;
      double cap = std::numeric_limits<double>::infinity();
      for (graph::EdgeId e : path->edges) {
        cap = std::min(cap, residual[static_cast<std::size_t>(e)]);
      }
      if (cap <= kEps) break;
      for (graph::EdgeId e : path->edges) {
        residual[static_cast<std::size_t>(e)] -= cap;
      }
      expected.total_capacity += cap;
      expected.capacities.push_back(cap);
      expected.paths.push_back(std::move(*path));
    }

    const auto actual = graph::successive_shortest_paths(
        g, 0, t, demand, length, capacity, edge_ok);
    ASSERT_EQ(expected.paths.size(), actual.paths.size());
    EXPECT_EQ(expected.total_capacity, actual.total_capacity);
    for (std::size_t p = 0; p < expected.paths.size(); ++p) {
      EXPECT_EQ(expected.paths[p].edges, actual.paths[p].edges);
      EXPECT_EQ(expected.capacities[p], actual.capacities[p]);
    }
  }
}

TEST(GraphViewStructure, WorkingViewMatchesEdgeUsable) {
  const graph::Graph g = broken_er(11);
  const auto view = graph::GraphView::working(g);
  std::size_t usable_edges = 0;
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    EXPECT_EQ(view.edge_in_view(id), g.edge_usable(id));
    if (g.edge_usable(id)) ++usable_edges;
  }
  // Every usable undirected edge contributes exactly two arcs (the working
  // filter already excludes broken endpoints, so no head-check drops more).
  EXPECT_EQ(view.num_arcs(), 2 * usable_edges);
  EXPECT_EQ(view.num_nodes(), g.num_nodes());
  EXPECT_EQ(view.num_edges(), g.num_edges());
}

TEST(GraphViewStructure, ArcOrderFollowsAdjacency) {
  const graph::Graph g = broken_er(12);
  const auto view = graph::GraphView::working(g);
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    const auto u = static_cast<graph::NodeId>(n);
    graph::ArcId a = view.arcs_begin(u);
    for (graph::EdgeId e : g.incident_edges(u)) {
      if (!g.edge_usable(e)) continue;
      ASSERT_LT(a, view.arcs_end(u));
      EXPECT_EQ(view.arc_edge(a), e);
      EXPECT_EQ(view.arc_target(a), g.other_endpoint(e, u));
      ++a;
    }
    EXPECT_EQ(a, view.arcs_end(u));
  }
}

TEST(GraphValidation, RejectsNaNAndNegativeInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  graph::Graph g;
  g.add_node();
  g.add_node();
  EXPECT_THROW(g.add_node("x", 0, 0, nan), std::invalid_argument);
  EXPECT_THROW(g.add_node("x", 0, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, nan), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 1.0, nan), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 1.0, -1.0), std::invalid_argument);
  EXPECT_EQ(g.add_edge(0, 1, 1.0), 0);
}

TEST(GraphValidation, WidestPathRejectsNaNAndNegativeCapacity) {
  graph::Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 5.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(
      graph::widest_path(g, 0, 2, [nan](graph::EdgeId) { return nan; }),
      std::invalid_argument);
  EXPECT_THROW(
      graph::widest_path(g, 0, 2, [](graph::EdgeId) { return -1.0; }),
      std::invalid_argument);
  EXPECT_THROW(graph::legacy::widest_path(
                   g, 0, 2, [nan](graph::EdgeId) { return nan; }),
               std::invalid_argument);
  // Valid capacities still work.
  const auto path =
      graph::widest_path(g, 0, 2, [](graph::EdgeId) { return 5.0; });
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->edges.size(), 2u);
}

TEST(GraphValidation, DijkstraRejectsNaNLength) {
  graph::Graph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 1.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(graph::dijkstra(g, 0, [nan](graph::EdgeId) { return nan; }),
               std::invalid_argument);
  EXPECT_THROW(graph::dijkstra(g, 0, [](graph::EdgeId) { return -0.5; }),
               std::invalid_argument);
}

}  // namespace
