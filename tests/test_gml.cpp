// GML loader edge-case hardening (the PR-2 add_node/add_edge guard style
// extended to the parser): truncated input, duplicate ids, and
// negative/NaN/infinite numeric attributes must raise clean exceptions
// instead of leaking garbage values into the algorithms as UB fuel.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "graph/gml.hpp"

namespace {

using namespace netrec;

std::string node(int id, const std::string& extra = {}) {
  return "node [ id " + std::to_string(id) + " " + extra + " ]\n";
}

std::string wrap(const std::string& body) { return "graph [\n" + body + "]"; }

TEST(GmlEdgeCases, TruncatedInputsThrowCleanly) {
  // Every prefix of a valid document must fail loudly, never crash or
  // return a half-parsed graph.
  const std::string full = wrap(node(0) + node(1) +
                                "edge [ source 0 target 1 capacity 3 ]\n");
  EXPECT_NO_THROW(graph::parse_gml(full));
  for (std::size_t cut = 7; cut + 1 < full.size(); cut += 5) {
    EXPECT_THROW(graph::parse_gml(full.substr(0, cut)), std::runtime_error)
        << "prefix of length " << cut << " parsed without error";
  }
  EXPECT_THROW(graph::parse_gml(""), std::runtime_error);
  EXPECT_THROW(graph::parse_gml("graph ["), std::runtime_error);
  EXPECT_THROW(graph::parse_gml("graph [ node [ id"), std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap("node [ label \"unterminated ]")),
               std::runtime_error);
}

TEST(GmlEdgeCases, TruncatedFileThrowsCleanly) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netrec_gml_truncated.gml")
          .string();
  {
    std::ofstream out(path);
    out << "graph [ node [ id 0 ] node [ id";
  }
  EXPECT_THROW(graph::load_gml_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GmlEdgeCases, DuplicateNodeIdsThrow) {
  EXPECT_THROW(graph::parse_gml(wrap(node(3) + node(3))), std::runtime_error);
  // Distinct ids stay fine, including negative ones.
  const graph::Graph g = graph::parse_gml(wrap(node(-1) + node(3)));
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(GmlEdgeCases, IdsBeyondLongLongRangeThrow) {
  // Finite but not representable as long long: the cast itself would be UB.
  EXPECT_THROW(graph::parse_gml(wrap("node [ id 1e19 ]\n")),
               std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap("node [ id -1e19 ]\n")),
               std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap(node(0) + node(1) +
                                     "edge [ source 1e19 target 1 ]\n")),
               std::runtime_error);
}

TEST(GmlEdgeCases, MissingOrNonNumericIdsThrow) {
  EXPECT_THROW(graph::parse_gml(wrap("node [ label \"x\" ]\n")),
               std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap(node(0) + node(1) +
                                     "edge [ source 0 ]\n")),
               std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap(node(0) + node(1) +
                                     "edge [ source 0 target 7 ]\n")),
               std::runtime_error);
}

TEST(GmlEdgeCases, NegativeCapacityThrows) {
  EXPECT_THROW(
      graph::parse_gml(wrap(node(0) + node(1) +
                            "edge [ source 0 target 1 capacity -4 ]\n")),
      std::runtime_error);
}

TEST(GmlEdgeCases, NanAndInfCapacityThrow) {
  // `nan`/`inf` lex as identifiers, quoted forms go through std::stod —
  // both historically produced a NaN-capacity edge silently.
  for (const char* bad : {"nan", "inf", "-inf", "\"nan\"", "\"inf\""}) {
    const std::string text =
        wrap(node(0) + node(1) + "edge [ source 0 target 1 capacity " +
             std::string(bad) + " ]\n");
    EXPECT_THROW(graph::parse_gml(text), std::runtime_error)
        << "capacity " << bad << " accepted";
  }
}

TEST(GmlEdgeCases, InvalidCostsAndCoordinatesThrow) {
  EXPECT_THROW(graph::parse_gml(wrap(node(0, "cost -2"))),
               std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap(node(0, "cost nan"))),
               std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap(node(0, "x nan"))), std::runtime_error);
  EXPECT_THROW(graph::parse_gml(wrap(node(0, "Longitude inf"))),
               std::runtime_error);
  EXPECT_THROW(
      graph::parse_gml(wrap(node(0) + node(1) +
                            "edge [ source 0 target 1 cost nan ]\n")),
      std::runtime_error);
  // Negative coordinates are legitimate (longitudes/latitudes).
  const graph::Graph g =
      graph::parse_gml(wrap(node(0, "x -71.06 y 42.35")));
  EXPECT_DOUBLE_EQ(g.node_x(0), -71.06);
  EXPECT_DOUBLE_EQ(g.node_y(0), 42.35);
}

TEST(GmlEdgeCases, ValidAttributesStillLoad) {
  const graph::Graph g = graph::parse_gml(
      wrap(node(0, "cost 2.5") + node(1) +
           "edge [ source 0 target 1 capacity 7.25 cost 0 ]\n"));
  EXPECT_EQ(g.num_nodes(), 2u);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_capacity(0), 7.25);
  EXPECT_DOUBLE_EQ(g.edge_repair_cost(0), 0.0);
  EXPECT_DOUBLE_EQ(g.node_repair_cost(0), 2.5);
}

}  // namespace
