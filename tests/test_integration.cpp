// End-to-end integration tests over the paper's experiment families —
// miniature versions of the bench sweeps with the orderings the figures
// rely on asserted as invariants.
#include <gtest/gtest.h>

#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/multicommodity.hpp"
#include "heuristics/opt.hpp"
#include "graph/traversal.hpp"
#include "mcf/routing.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace netrec {
namespace {

core::RecoveryProblem bell_instance(int pairs, double flow,
                                    std::uint64_t seed) {
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng rng(seed);
  std::size_t redraws = 0;
  do {
    p.demands = scenario::far_apart_demands(
        p.graph, static_cast<std::size_t>(pairs), flow, rng);
  } while (!p.feasible_when_fully_repaired() && ++redraws < 25);
  disruption::complete_destruction(p.graph);
  return p;
}

class BellCanadaSweep : public ::testing::TestWithParam<int> {};

TEST_P(BellCanadaSweep, Fig4OrderingsHold) {
  const int pairs = GetParam();
  const auto p = bell_instance(pairs, 10.0, 100 + pairs);
  ASSERT_TRUE(p.feasible_when_fully_repaired());

  const auto isp = core::IspSolver(p).solve();
  const auto srt = heuristics::solve_srt(p);
  const auto grd_nc = heuristics::solve_grd_nc(p);
  const auto all = heuristics::solve_all(p);

  // ISP: never loses demand on a feasible instance (headline claim).
  EXPECT_NEAR(isp.satisfied_fraction, 1.0, 1e-6);
  // GRD-NC: terminates only when routable -> no loss either.
  EXPECT_NEAR(grd_nc.satisfied_fraction, 1.0, 1e-6);
  // Everybody repairs (weakly) less than ALL.
  EXPECT_LE(isp.total_repairs(), all.total_repairs());
  EXPECT_LE(srt.total_repairs(), all.total_repairs());
  EXPECT_LE(grd_nc.total_repairs(), all.total_repairs());
  // The paper's persistent ordering: ISP <= GRD-NC in repairs.
  EXPECT_LE(isp.total_repairs(), grd_nc.total_repairs());
  // Validity of all outputs.
  EXPECT_TRUE(core::validate_solution(p, isp).empty());
  EXPECT_TRUE(core::validate_solution(p, srt).empty());
  EXPECT_TRUE(core::validate_solution(p, grd_nc).empty());
}

INSTANTIATE_TEST_SUITE_P(Pairs, BellCanadaSweep, ::testing::Values(1, 2, 3, 4));

TEST(BellCanada, OptLowerBoundsIspWithProof) {
  const auto p = bell_instance(2, 10.0, 321);
  const auto isp = core::IspSolver(p).solve();
  heuristics::OptOptions oo;
  oo.time_limit_seconds = 30.0;
  const auto opt = heuristics::solve_opt(p, oo, &isp);
  EXPECT_LE(opt.solution.repair_cost, isp.repair_cost + 1e-9);
  EXPECT_NEAR(opt.solution.satisfied_fraction, 1.0, 1e-6);
  if (opt.proven_optimal) {
    EXPECT_GE(opt.solution.repair_cost, opt.lower_bound - 1e-6);
  }
}

TEST(BellCanada, HighIntensityStressNoIspLoss) {
  // The Fig. 5 top end (4 pairs x 18 units = 90% of the narrowest cut):
  // the historical failure mode of naive split loops.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const auto p = bell_instance(4, 18.0, seed);
    if (!p.feasible_when_fully_repaired()) continue;
    const auto isp = core::IspSolver(p).solve();
    EXPECT_NEAR(isp.satisfied_fraction, 1.0, 1e-6) << "seed " << seed;
    EXPECT_TRUE(core::validate_solution(p, isp).empty());
  }
}

TEST(BellCanada, GaussianDisasterRepairsScaleWithVariance) {
  // Fig. 6 shape: ALL (broken total) grows with variance; ISP stays below.
  util::Rng rng(99);
  double prev_broken = -1.0;
  for (double variance : {20.0, 80.0, 150.0}) {
    core::RecoveryProblem p;
    p.graph = topology::make_topology({topology::BellCanadaOptions{}});
    util::Rng demand_rng(variance * 7 + 1);
    p.demands = scenario::far_apart_demands(p.graph, 3, 10.0, demand_rng);
    disruption::GaussianDisasterOptions dopt;
    dopt.variance = variance;
    disruption::gaussian_disaster(p.graph, dopt, rng);
    const double broken = static_cast<double>(
        p.graph.num_broken_nodes() + p.graph.num_broken_edges());
    EXPECT_GT(broken, prev_broken);
    prev_broken = broken;

    const auto isp = core::IspSolver(p).solve();
    EXPECT_LE(isp.total_repairs(), static_cast<std::size_t>(broken));
    EXPECT_TRUE(core::validate_solution(p, isp).empty());
    if (p.feasible_when_fully_repaired()) {
      EXPECT_NEAR(isp.satisfied_fraction, 1.0, 1e-6);
    }
  }
}

TEST(ErdosRenyi, CliqueGivesTrivialSolutionForEveryAlgorithm) {
  // Fig. 7 anchor: at p=1 every algorithm repairs exactly 3 elements per
  // pair (the two endpoints plus the connecting edge).
  util::Rng rng(5);
  topology::ErdosRenyiOptions eopt;
  eopt.nodes = 30;
  eopt.edge_probability = 1.0;
  core::RecoveryProblem p;
  p.graph = topology::make_topology(eopt, rng);
  util::Rng demand_rng(6);
  p.demands = scenario::far_apart_demands(p.graph, 5, 1.0, demand_rng, 0.0);
  disruption::complete_destruction(p.graph);

  const auto isp = core::IspSolver(p).solve();
  EXPECT_EQ(isp.total_repairs(), 15u);
  heuristics::OptOptions oo;
  oo.use_milp = false;
  const auto opt = heuristics::solve_opt(p, oo);
  EXPECT_EQ(opt.solution.total_repairs(), 15u);
  EXPECT_STREQ(opt.engine, "steiner");
  EXPECT_TRUE(opt.proven_optimal);
  const auto srt = heuristics::solve_srt(p);
  EXPECT_EQ(srt.total_repairs(), 15u);
}

TEST(ErdosRenyi, SteinerOptNeverAboveIsp) {
  for (double p_edge : {0.15, 0.4}) {
    util::Rng rng(static_cast<std::uint64_t>(p_edge * 100));
    topology::ErdosRenyiOptions eopt;
    eopt.nodes = 40;
    eopt.edge_probability = p_edge;
    core::RecoveryProblem problem;
    problem.graph = topology::make_topology(eopt, rng);
    if (graph::hop_diameter(problem.graph) < 0) continue;
    util::Rng demand_rng(17);
    problem.demands =
        scenario::far_apart_demands(problem.graph, 4, 1.0, demand_rng);
    disruption::complete_destruction(problem.graph);

    const auto isp = core::IspSolver(problem).solve();
    heuristics::OptOptions oo;
    oo.use_milp = false;
    oo.isp_restarts = 0;
    const auto opt = heuristics::solve_opt(problem, oo);
    ASSERT_TRUE(opt.proven_optimal);
    EXPECT_LE(opt.solution.total_repairs(), isp.total_repairs());
    EXPECT_NEAR(isp.satisfied_fraction, 1.0, 1e-6);
  }
}

TEST(CaidaLike, IspNoLossWhereSrtLoses) {
  // Fig. 9 shape at reduced scale for test speed: 300-node AS-like graph.
  util::Rng topo_rng(55);
  topology::CaidaLikeOptions copt;
  copt.nodes = 300;
  copt.edges = 370;
  copt.capacity = 30.0;
  core::RecoveryProblem p;
  p.graph = topology::make_topology(copt, topo_rng);
  util::Rng rng(66);
  std::size_t redraws = 0;
  do {
    p.demands = scenario::far_apart_demands(p.graph, 4, 22.0, rng);
  } while (!p.feasible_when_fully_repaired() && ++redraws < 40);
  if (!p.feasible_when_fully_repaired()) GTEST_SKIP();
  disruption::complete_destruction(p.graph);

  const auto isp = core::IspSolver(p).solve();
  EXPECT_NEAR(isp.satisfied_fraction, 1.0, 1e-6);
  EXPECT_TRUE(core::validate_solution(p, isp).empty());
  const auto srt = heuristics::solve_srt(p);
  EXPECT_TRUE(core::validate_solution(p, srt).empty());
  // SRT may or may not lose on this draw; its loss can never be negative.
  EXPECT_LE(srt.satisfied_fraction, 1.0 + 1e-9);
}

TEST(Multicommodity, BandWidensAgainstOptOnBellCanada) {
  const auto p = bell_instance(3, 10.0, 777);
  util::Rng rng(3);
  const auto band = heuristics::multicommodity_band(p, 6, rng);
  ASSERT_TRUE(band.feasible);
  heuristics::OptOptions oo;
  oo.time_limit_seconds = 5.0;
  const auto opt = heuristics::solve_opt(p, oo);
  // Fig. 3 shape: MCB within sight of OPT; MCW at or above MCB, below ALL.
  EXPECT_GE(band.mcw_repairs, band.mcb_repairs);
  EXPECT_LE(band.mcw_repairs,
            p.graph.num_broken_nodes() + p.graph.num_broken_edges());
  EXPECT_GE(static_cast<double>(band.mcw_repairs),
            0.5 * static_cast<double>(opt.solution.total_repairs()));
}

}  // namespace
}  // namespace netrec
