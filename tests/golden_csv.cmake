# Figure-driver determinism golden test (ctest target `golden_csv`).
#
# Runs fig3 and fig7 at a fixed seed with small, CI-sized parameters and
# byte-compares the emitted CSVs against the goldens committed under
# tests/golden/.  This promotes the CI determinism smoke into something a
# developer runs locally with plain ctest: any change to ISP, the LP stack,
# the scenario engine or the RNG seeding that shifts a repair count by one
# fails here before it reaches review.
#
# Notes on the pinned flags:
#   * fig3 runs with --opt-seconds 0 so OPT uses its deterministic fallback
#     instead of a wall-clock-budgeted MILP;
#   * fig7 compares only the repairs series — its time series measures real
#     wall clock and is inherently machine-dependent;
#   * --threads values are part of the determinism claim: a fixed seed must
#     give identical CSVs at any thread count.
#
# Invoked as:
#   cmake -DFIG3=<bench_fig3 binary> -DFIG7=<bench_fig7 binary>
#         -DGOLDEN_DIR=<repo>/tests/golden -DWORK_DIR=<scratch>
#         -P golden_csv.cmake
#
# Regenerating goldens after an *intentional* behaviour change:
#   <build>/bench_fig3_multicommodity --runs 2 --flows 4,8 --samples 3 \
#     --opt-seconds 0 --threads 2 --csv tests/golden/fig3
#   <build>/bench_fig7_er_scalability --runs 1 --probabilities 0.1,0.3 \
#     --threads 1 --csv tests/golden/fig7
#   (then delete the regenerated fig7.time.csv; only repairs is golden)

foreach(var FIG3 FIG7 GOLDEN_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_csv: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${FIG3}" --runs 2 --flows 4,8 --samples 3 --opt-seconds 0
          --threads 2 --csv "${WORK_DIR}/fig3"
  RESULT_VARIABLE fig3_status
  OUTPUT_QUIET)
if(NOT fig3_status EQUAL 0)
  message(FATAL_ERROR "golden_csv: fig3 driver failed (${fig3_status})")
endif()

execute_process(
  COMMAND "${FIG7}" --runs 1 --probabilities 0.1,0.3 --threads 1
          --csv "${WORK_DIR}/fig7"
  RESULT_VARIABLE fig7_status
  OUTPUT_QUIET)
if(NOT fig7_status EQUAL 0)
  message(FATAL_ERROR "golden_csv: fig7 driver failed (${fig7_status})")
endif()

foreach(pair "fig3.csv" "fig7.repairs.csv")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/${pair}" "${GOLDEN_DIR}/${pair}"
    RESULT_VARIABLE diff_status)
  if(NOT diff_status EQUAL 0)
    file(READ "${WORK_DIR}/${pair}" actual)
    file(READ "${GOLDEN_DIR}/${pair}" expected)
    message(FATAL_ERROR
      "golden_csv: ${pair} diverged from the committed golden.\n"
      "--- expected (${GOLDEN_DIR}/${pair}):\n${expected}\n"
      "--- actual (${WORK_DIR}/${pair}):\n${actual}\n"
      "If the change is intentional, regenerate the goldens (see the header "
      "of tests/golden_csv.cmake).")
  endif()
endforeach()

message(STATUS "golden_csv: fig3.csv and fig7.repairs.csv match the goldens")
