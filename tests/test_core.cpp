// Tests for the core module: repair bookkeeping, demand-based centrality
// (eq. 3) and problem scoring/validation.
#include <gtest/gtest.h>

#include "core/centrality.hpp"
#include "core/problem.hpp"
#include "core/repair_state.hpp"
#include "mcf/routing.hpp"

namespace netrec::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

Graph path_graph(int n, double capacity = 10.0) {
  Graph g;
  for (int i = 0; i < n; ++i) g.add_node("p" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, capacity);
  return g;
}

TEST(RepairState, TracksRepairsAndCosts) {
  Graph g = path_graph(3);
  g.break_everything();
  g.set_node_repair_cost(1, 4.0);
  RepairState state(g);
  EXPECT_FALSE(state.node_ok(0));
  EXPECT_TRUE(state.repair_node(0));
  EXPECT_FALSE(state.repair_node(0));  // already repaired
  EXPECT_TRUE(state.node_ok(0));
  EXPECT_FALSE(state.edge_ok(0));  // endpoint 1 still broken
  EXPECT_TRUE(state.repair_node(1));
  EXPECT_TRUE(state.repair_edge(0));
  EXPECT_TRUE(state.edge_ok(0));
  EXPECT_DOUBLE_EQ(state.repair_cost(), 1.0 + 4.0 + 1.0);
  EXPECT_EQ(state.total_repairs(), 3u);
}

TEST(RepairState, RepairingWorkingElementsIsANoop) {
  Graph g = path_graph(3);
  RepairState state(g);
  EXPECT_FALSE(state.repair_node(0));
  EXPECT_FALSE(state.repair_edge(0));
  EXPECT_EQ(state.total_repairs(), 0u);
  EXPECT_TRUE(state.edge_ok(0));
}

TEST(RepairState, RepairPathRepairsAllElements) {
  Graph g = path_graph(4);
  g.break_everything();
  RepairState state(g);
  graph::Path p;
  p.start = 0;
  p.edges = {0, 1, 2};
  state.repair_path(p);
  EXPECT_EQ(state.repaired_nodes().size(), 4u);
  EXPECT_EQ(state.repaired_edges().size(), 3u);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_TRUE(state.edge_ok(e));
}

TEST(Centrality, MiddleNodeDominatesOnPathGraph) {
  Graph g = path_graph(5);
  const std::vector<mcf::Demand> demands{{0, 4, 5.0}};
  auto ones = [](EdgeId) { return 1.0; };
  auto cap = mcf::static_capacity(g);
  const auto c = demand_based_centrality(g, demands, ones, cap);
  // Single path: every node on it receives the full demand share.
  for (NodeId v = 0; v <= 4; ++v) EXPECT_NEAR(c.score(v), 5.0, 1e-9);
  EXPECT_EQ(c.contributors(2).size(), 1u);
  EXPECT_NEAR(c.capacity_through(0, 2, g), 10.0, 1e-9);
}

TEST(Centrality, SharedCorridorScoresHigherThanPrivateBranches) {
  //  0        4
  //   \      /
  //    2 -- 3
  //   /      .
  //  1        5    demands (0,4) and (1,5) share corridor 2-3.
  Graph g;
  for (int i = 0; i < 6; ++i) g.add_node();
  g.add_edge(0, 2, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  g.add_edge(3, 4, 10.0);
  g.add_edge(3, 5, 10.0);
  const std::vector<mcf::Demand> demands{{0, 4, 5.0}, {1, 5, 5.0}};
  auto ones = [](EdgeId) { return 1.0; };
  auto cap = mcf::static_capacity(g);
  const auto c = demand_based_centrality(g, demands, ones, cap);
  EXPECT_NEAR(c.score(2), 10.0, 1e-9);  // both demands
  EXPECT_NEAR(c.score(3), 10.0, 1e-9);
  EXPECT_NEAR(c.score(0), 5.0, 1e-9);  // own demand only
  EXPECT_EQ(c.contributors(2).size(), 2u);
  EXPECT_EQ(c.contributors(0).size(), 1u);
  const auto ranking = c.ranking();
  EXPECT_TRUE(ranking[0] == 2 || ranking[0] == 3);
}

TEST(Centrality, SplitsShareAcrossParallelPaths) {
  // Two disjoint 2-hop routes between 0 and 3, capacities 9 and 3: demand 12
  // needs both; shares are proportional to path capacity.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 9.0);
  g.add_edge(1, 3, 9.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(2, 3, 3.0);
  const std::vector<mcf::Demand> demands{{0, 3, 12.0}};
  auto ones = [](EdgeId) { return 1.0; };
  auto cap = mcf::static_capacity(g);
  const auto c = demand_based_centrality(g, demands, ones, cap);
  EXPECT_NEAR(c.score(1), 9.0, 1e-9);   // 9/12 of 12
  EXPECT_NEAR(c.score(2), 3.0, 1e-9);   // 3/12 of 12
  EXPECT_NEAR(c.score(0), 12.0, 1e-9);  // endpoint on both paths
}

TEST(Centrality, DynamicMetricSteersAwayFromExpensiveRepairs) {
  // Broken expensive shortcut vs working detour: with the dynamic metric the
  // detour is shorter, so the shortcut contributes nothing.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  const EdgeId direct = g.add_edge(0, 3, 10.0);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  g.set_edge_broken(direct, true);
  g.set_edge_repair_cost(direct, 100.0);
  auto metric = [&g](EdgeId e) {
    return (1.0 + (g.edge_broken(e) ? g.edge_repair_cost(e) : 0.0)) /
           g.edge_capacity(e);
  };
  auto cap = mcf::static_capacity(g);
  const std::vector<mcf::Demand> demands{{0, 3, 5.0}};
  const auto c = demand_based_centrality(g, demands, metric, cap);
  EXPECT_NEAR(c.score(1), 5.0, 1e-9);  // detour carries everything
  EXPECT_EQ(c.contributors(1).size(), 1u);
}

TEST(Problem, FeasibilityDetection) {
  RecoveryProblem p;
  p.graph = path_graph(3, 5.0);
  p.graph.break_everything();
  p.demands = {{0, 2, 5.0}};
  EXPECT_TRUE(p.feasible_when_fully_repaired());
  p.demands = {{0, 2, 6.0}};
  EXPECT_FALSE(p.feasible_when_fully_repaired());
}

TEST(Problem, ScoreSolutionMeasuresSatisfaction) {
  RecoveryProblem p;
  p.graph = path_graph(3, 5.0);
  p.graph.break_everything();
  p.demands = {{0, 2, 5.0}};

  RecoverySolution none;
  score_solution(p, none);
  EXPECT_DOUBLE_EQ(none.satisfied_fraction, 0.0);

  RecoverySolution all;
  for (NodeId n = 0; n < 3; ++n) all.repaired_nodes.push_back(n);
  for (EdgeId e = 0; e < 2; ++e) all.repaired_edges.push_back(e);
  score_solution(p, all);
  EXPECT_DOUBLE_EQ(all.satisfied_fraction, 1.0);
  EXPECT_DOUBLE_EQ(all.repair_cost, 5.0);
  EXPECT_TRUE(validate_solution(p, all).empty());
}

TEST(Problem, ValidateRejectsBogusSolutions) {
  RecoveryProblem p;
  p.graph = path_graph(3, 5.0);
  p.graph.set_node_broken(0, true);
  p.demands = {{0, 2, 1.0}};

  RecoverySolution s;
  s.repaired_nodes = {1};  // node 1 is not broken
  EXPECT_FALSE(validate_solution(p, s).empty());

  s.repaired_nodes = {0, 0};  // duplicate
  EXPECT_FALSE(validate_solution(p, s).empty());

  s.repaired_nodes = {0};
  score_solution(p, s);
  EXPECT_TRUE(validate_solution(p, s).empty());
}

}  // namespace
}  // namespace netrec::core
