// Tests for the multi-commodity flow layer: routability (eq. 2), the split
// LP (Section IV-C) and the eq. (8) relaxation with its optimal face.
//
// Exactness cross-checks: on single-commodity instances the LP optimum must
// match Dinic max flow; on the classic 3-commodity triangle the LP must
// certify what the cut condition alone cannot.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/maxflow.hpp"
#include "mcf/broken_usage.hpp"
#include "mcf/routing.hpp"
#include "mcf/split.hpp"
#include "mcf/types.hpp"
#include "util/rng.hpp"

namespace netrec::mcf {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

Graph make_square_with_diagonal() {
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  g.add_edge(3, 0, 10.0);
  g.add_edge(0, 2, 3.0);
  return g;
}

TEST(Routing, SingleCommodityMatchesDinic) {
  Graph g = make_square_with_diagonal();
  auto cap = static_capacity(g);
  const auto dinic = graph::max_flow(g, 0, 2, cap);
  const auto lp = max_routed_flow(g, {Demand{0, 2, 100.0}}, {}, cap);
  EXPECT_NEAR(lp.total_routed, dinic.value, 1e-6);
  EXPECT_FALSE(lp.fully_routed);
  const auto exact = max_routed_flow(g, {Demand{0, 2, dinic.value}}, {}, cap);
  EXPECT_TRUE(exact.fully_routed);
}

TEST(Routing, RandomSingleCommodityMatchesDinic) {
  util::Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g;
    const int n = 7;
    for (int i = 0; i < n; ++i) g.add_node();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.chance(0.45)) g.add_edge(i, j, rng.uniform(1.0, 8.0));
      }
    }
    auto cap = static_capacity(g);
    const double want = graph::max_flow(g, 0, n - 1, cap).value;
    const auto lp =
        max_routed_flow(g, {Demand{0, n - 1, want + 50.0}}, {}, cap);
    EXPECT_NEAR(lp.total_routed, want, 1e-5) << "trial " << trial;
  }
}

TEST(Routing, TwoCommoditiesShareCapacity) {
  // Path graph 0-1-2 with capacity 10; demands (0,2)=6 and (0,1)=6 cannot
  // both fit on edge 0-1; max routed = 10 in total... actually (0,2) uses
  // both edges: total on 0-1 is d1+d2 <= 10.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 2, 6.0}, Demand{0, 1, 6.0}};
  const auto r = max_routed_flow(g, demands, {}, cap);
  EXPECT_FALSE(r.fully_routed);
  EXPECT_NEAR(r.total_routed, 10.0, 1e-6);

  const std::vector<Demand> fits{Demand{0, 2, 6.0}, Demand{0, 1, 4.0}};
  EXPECT_TRUE(is_routable(g, fits, {}, cap));
}

TEST(Routing, OkamuraSeymourStyleInstanceIsExact) {
  // K4 with unit capacities; three demands pairing opposite corners, each
  // of value 1: routable (multi-commodity), and saturates the graph tightly.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j, 1.0);
  }
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 1, 1.0}, Demand{2, 3, 1.0},
                                    Demand{0, 3, 1.0}};
  EXPECT_TRUE(is_routable(g, demands, {}, cap));
  const std::vector<Demand> too_much{Demand{0, 1, 2.0}, Demand{2, 3, 2.0},
                                     Demand{0, 3, 2.0}};
  EXPECT_FALSE(is_routable(g, too_much, {}, cap));
}

TEST(Routing, GreedyRouteIsAValidWitness) {
  Graph g = make_square_with_diagonal();
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 2, 12.0}, Demand{1, 3, 5.0}};
  const auto r = greedy_route(g, demands, {}, cap);
  if (r.fully_routed) {
    EXPECT_TRUE(routing_is_valid(g, demands, r.flows, {}, cap));
  }
  // The exact referee must confirm routability regardless.
  EXPECT_TRUE(is_routable(g, demands, {}, cap));
}

TEST(Routing, RouteDemandsReturnsValidRouting) {
  Graph g = make_square_with_diagonal();
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 2, 20.0}, Demand{1, 3, 3.0}};
  const auto r = route_demands(g, demands, {}, cap);
  ASSERT_TRUE(r.fully_routed);
  EXPECT_TRUE(routing_is_valid(g, demands, r.flows, {}, cap));
  EXPECT_NEAR(r.routed[0], 20.0, 1e-6);
  EXPECT_NEAR(r.routed[1], 3.0, 1e-6);
}

TEST(Routing, FiltersRestrictToWorkingSubgraph) {
  Graph g = make_square_with_diagonal();
  g.set_node_broken(1, true);
  g.set_edge_broken(g.find_edge(0, 2), true);
  auto cap = static_capacity(g);
  // Only 0-3-2 left: capacity 10.
  const auto ok = working_edge_filter(g);
  EXPECT_TRUE(is_routable(g, {Demand{0, 2, 10.0}}, ok, cap));
  EXPECT_FALSE(is_routable(g, {Demand{0, 2, 10.5}}, ok, cap));
}

TEST(Routing, DisconnectedDemandFailsFast) {
  Graph g;
  g.add_node();
  g.add_node();
  auto cap = static_capacity(g);
  EXPECT_FALSE(is_routable(g, {Demand{0, 1, 1.0}}, {}, cap));
}

TEST(Routing, ZeroAndSelfDemandsAreTriviallyRoutable) {
  Graph g = make_square_with_diagonal();
  auto cap = static_capacity(g);
  EXPECT_TRUE(is_routable(g, {Demand{0, 0, 5.0}, Demand{1, 2, 0.0}}, {}, cap));
}

// --- split LP -------------------------------------------------------------

TEST(Split, FullSplitWhenViaOnOnlyPath) {
  // 0-1-2 path; splitting (0,2) on node 1 must allow the full demand.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 2, 8.0}};
  EXPECT_NEAR(max_splittable_amount(g, demands, 0, 1, {}, cap), 8.0, 1e-6);
}

TEST(Split, LimitedByViaCapacity) {
  // Two disjoint routes 0-1-3 (cap 4) and 0-2-3 (cap 10); demand (0,3)=12.
  // Splitting through node 1 can carry at most 4.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 4.0);
  g.add_edge(1, 3, 4.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 3, 12.0}};
  EXPECT_NEAR(max_splittable_amount(g, demands, 0, 1, {}, cap), 4.0, 1e-6);
}

TEST(Split, RespectsOtherDemandsRoutability) {
  // Square: forcing (0,2) through 1 consumes 0-1 and 1-2, which are also the
  // only edges for (0,1); dx must leave room for it.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  g.add_edge(3, 0, 10.0);
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 2, 14.0}, Demand{0, 1, 6.0}};
  // (0,2) can use 0-1-2 (10) and 0-3-2 (10).  Forcing dx through node 1
  // fights with (0,1)=6 on edge 0-1: dx <= 4 via 0-1 plus nothing else ...
  // the LP may route the (0,1) demand the long way (0-3-2-1), freeing 0-1.
  const double dx = max_splittable_amount(g, demands, 0, 1, {}, cap);
  EXPECT_GE(dx, 4.0 - 1e-6);
  EXPECT_LE(dx, 10.0 + 1e-6);
  // Whatever dx was chosen, the split instance must remain routable.
  std::vector<Demand> split_instance{Demand{0, 2, 14.0 - dx},
                                     Demand{0, 1, 6.0}, Demand{0, 1, dx},
                                     Demand{1, 2, dx}};
  EXPECT_TRUE(is_routable(g, split_instance, {}, cap));
}

TEST(Split, ZeroWhenInstanceUnroutable) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  auto cap = static_capacity(g);
  const std::vector<Demand> demands{Demand{0, 2, 5.0}};  // cap is only 1
  EXPECT_NEAR(max_splittable_amount(g, demands, 0, 1, {}, cap), 0.0, 1e-6);
}

// --- eq. (8) relaxation ----------------------------------------------------

TEST(BrokenUsage, AvoidsBrokenDetourWhenFreePathExists) {
  // Working path 0-1-2 and broken shortcut 0-2: optimum routes around and
  // costs zero.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  const EdgeId direct = g.add_edge(0, 2, 10.0);
  g.set_edge_broken(direct, true);
  const auto r = min_broken_usage(g, {Demand{0, 2, 8.0}});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 0.0, 1e-6);
  EXPECT_TRUE(implied_repairs(g, r.routing.flows).edges.empty());
}

TEST(BrokenUsage, PaysForBrokenEdgeWhenForced) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 4.0);
  const EdgeId direct = g.add_edge(0, 2, 10.0);
  g.set_edge_broken(direct, true);
  g.set_edge_repair_cost(direct, 3.0);
  // Demand 8 > working capacity 4: at least 4 units cross the broken edge,
  // each paying cost 3 -> objective 12.
  const auto r = min_broken_usage(g, {Demand{0, 2, 8.0}});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 12.0, 1e-6);
  const auto repairs = implied_repairs(g, r.routing.flows);
  ASSERT_EQ(repairs.edges.size(), 1u);
  EXPECT_EQ(repairs.edges[0], direct);
}

TEST(BrokenUsage, InfeasibleWhenDemandExceedsAllCapacity) {
  Graph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 2.0);
  const auto r = min_broken_usage(g, {Demand{0, 1, 5.0}});
  EXPECT_FALSE(r.feasible);
}

TEST(OptimalFace, BandBracketsRepairCounts) {
  // Two broken parallel routes between 0 and 3 with equal cost: the face
  // contains both a one-route solution and a spread solution.
  Graph g;
  for (int i = 0; i < 6; ++i) g.add_node();
  // route A: 0-1-3, route B: 0-2-3, both capacity 10, broken.
  // demand (0,3)=5 fits entirely on either.
  const EdgeId a1 = g.add_edge(0, 1, 10.0);
  const EdgeId a2 = g.add_edge(1, 3, 10.0);
  const EdgeId b1 = g.add_edge(0, 2, 10.0);
  const EdgeId b2 = g.add_edge(2, 3, 10.0);
  for (EdgeId e : {a1, a2, b1, b2}) g.set_edge_broken(e, true);
  // Broken-edge costs are zero-sum for the face: make them all equal so
  // every routing is optimal for eq. (8)... cost = 2 * flow either way.
  util::Rng rng(3);
  const auto band = explore_optimal_face(g, {Demand{0, 3, 5.0}}, 8, rng);
  ASSERT_TRUE(band.feasible);
  EXPECT_LE(band.best_repairs, 2u);
  EXPECT_GE(band.worst_repairs, band.best_repairs);
}

}  // namespace
}  // namespace netrec::mcf
