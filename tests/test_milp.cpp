// Branch-and-bound MILP tests: knapsacks with known optima, infeasibility,
// incumbents/cutoffs, and a property sweep against brute-force enumeration
// of binary assignments.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "util/rng.hpp"

namespace netrec::milp {
namespace {

using lp::Goal;
using lp::kInfinity;
using lp::Model;
using lp::Sense;

/// min -sum(values) knapsack as a minimisation model.
Model knapsack(const std::vector<double>& value,
               const std::vector<double>& weight, double budget,
               std::vector<int>* binaries) {
  Model m;
  m.goal = Goal::kMinimize;
  const int row = m.add_constraint(Sense::kLessEqual, budget);
  for (std::size_t i = 0; i < value.size(); ++i) {
    const int v = m.add_variable(0.0, 1.0, -value[i]);
    m.set_coefficient(row, v, weight[i]);
    binaries->push_back(v);
  }
  return m;
}

TEST(Milp, SolvesSmallKnapsackExactly) {
  std::vector<int> binaries;
  // values 6,5,4 weights 3,2,2, budget 4 -> take {5,4} = 9.
  Model m = knapsack({6, 5, 4}, {3, 2, 2}, 4, &binaries);
  MilpSolver solver(std::move(m), binaries);
  const MilpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -9.0, 1e-6);
  EXPECT_NEAR(r.x[1], 1.0, 1e-6);
  EXPECT_NEAR(r.x[2], 1.0, 1e-6);
  EXPECT_NEAR(r.x[0], 0.0, 1e-6);
}

TEST(Milp, FractionalLpNeedsBranching) {
  std::vector<int> binaries;
  // LP relaxation takes half of item 0; integral optimum differs.
  Model m = knapsack({10, 6}, {4, 3}, 5, &binaries);
  MilpSolver solver(std::move(m), binaries);
  const MilpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -10.0, 1e-6);  // item 0 alone
  EXPECT_GE(r.nodes_explored, 2);
}

TEST(Milp, DetectsIntegerInfeasibility) {
  // x binary with 0.4 <= x <= 0.6 via rows: no integer point.
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  const int r1 = m.add_constraint(Sense::kGreaterEqual, 0.4);
  const int r2 = m.add_constraint(Sense::kLessEqual, 0.6);
  m.set_coefficient(r1, x, 1.0);
  m.set_coefficient(r2, x, 1.0);
  MilpSolver solver(std::move(m), {x});
  const MilpResult r = solver.solve();
  EXPECT_FALSE(r.feasible);
}

TEST(Milp, CutoffPrunesToIncumbent) {
  std::vector<int> binaries;
  Model m = knapsack({6, 5, 4}, {3, 2, 2}, 4, &binaries);
  MilpSolver solver(std::move(m), binaries);
  solver.set_cutoff(-9.0 + 1e-9);  // already optimal: nothing below exists
  const MilpResult r = solver.solve();
  // The solver may not FIND a solution below the cutoff; but it must prove
  // the bound.
  EXPECT_GE(r.bound, -9.0 - 1e-6);
}

TEST(Milp, IncumbentIsReturnedWhenOptimal) {
  std::vector<int> binaries;
  Model m = knapsack({6, 5, 4}, {3, 2, 2}, 4, &binaries);
  MilpSolver solver(std::move(m), binaries);
  solver.set_incumbent({0.0, 1.0, 1.0});
  const MilpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -9.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // min -x - 2y, x binary, y continuous <= 1.5, x + y <= 2.
  Model m;
  const int x = m.add_variable(0.0, 1.0, -1.0);
  const int y = m.add_variable(0.0, 1.5, -2.0);
  const int row = m.add_constraint(Sense::kLessEqual, 2.0);
  m.set_coefficient(row, x, 1.0);
  m.set_coefficient(row, y, 1.0);
  MilpSolver solver(std::move(m), {x});
  const MilpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  // Best with x integral: x=0,y=1.5 or x=1,y=1, both objective -3.
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
  EXPECT_TRUE(r.proven_optimal);
}

class MilpRandomKnapsack : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomKnapsack, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 11);
  const int n = static_cast<int>(rng.uniform_int(3, 8));
  std::vector<double> value(static_cast<std::size_t>(n));
  std::vector<double> weight(static_cast<std::size_t>(n));
  double total_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.uniform(1.0, 10.0);
    weight[static_cast<std::size_t>(i)] = rng.uniform(1.0, 5.0);
    total_weight += weight[static_cast<std::size_t>(i)];
  }
  const double budget = rng.uniform(0.2, 0.8) * total_weight;

  std::vector<int> binaries;
  Model m = knapsack(value, weight, budget, &binaries);
  MilpSolver solver(std::move(m), binaries);
  const MilpResult r = solver.solve();

  // Brute force over all subsets.
  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double w = 0.0;
    double v = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        w += weight[static_cast<std::size_t>(i)];
        v += value[static_cast<std::size_t>(i)];
      }
    }
    if (w <= budget + 1e-9) best = std::max(best, v);
  }
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -best, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomKnapsacks, MilpRandomKnapsack,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace netrec::milp
