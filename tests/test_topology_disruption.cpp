// Topology generators, disruption models and scenario scaffolding.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "disruption/disruption.hpp"
#include "graph/traversal.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace netrec {
namespace {

TEST(BellCanada, HasPaperDimensionsAndCapacities) {
  const graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  EXPECT_EQ(g.num_nodes(), 48u);
  EXPECT_EQ(g.num_edges(), 64u);
  std::set<double> capacities;
  for (double cap : g.edge_capacities()) capacities.insert(cap);
  EXPECT_EQ(capacities, (std::set<double>{20.0, 30.0, 50.0}));
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto id = static_cast<graph::NodeId>(i);
    EXPECT_DOUBLE_EQ(g.node_repair_cost(id), 1.0);
    EXPECT_FALSE(g.node_name(id).empty());
    EXPECT_NE(g.node_x(id), 0.0);  // has coordinates
  }
  EXPECT_EQ(graph::connected_components(g).back(), 0);  // single component
}

TEST(BellCanada, DiameterSupportsFarApartDemands) {
  const graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  const int diameter = graph::hop_diameter(g);
  EXPECT_GE(diameter, 8);   // far-apart pairs need room
  EXPECT_LE(diameter, 20);  // ...but stay a realistic ISP backbone
}

TEST(ErdosRenyi, EdgeCountMatchesProbability) {
  util::Rng rng(11);
  topology::ErdosRenyiOptions opts;
  opts.nodes = 100;
  opts.edge_probability = 0.3;
  const graph::Graph g = topology::make_topology(opts, rng);
  const double expected = 0.3 * (100.0 * 99.0 / 2.0);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
  for (double cap : g.edge_capacities()) EXPECT_DOUBLE_EQ(cap, 1000.0);
}

TEST(ErdosRenyi, FullProbabilityIsClique) {
  util::Rng rng(3);
  topology::ErdosRenyiOptions opts;
  opts.nodes = 12;
  opts.edge_probability = 1.0;
  const graph::Graph g = topology::make_topology(opts, rng);
  EXPECT_EQ(g.num_edges(), 12u * 11u / 2u);
}

TEST(CaidaLike, ExactSizeConnectedHeavyTail) {
  util::Rng rng(7);
  topology::CaidaLikeOptions opts;  // defaults: 825 / 1018
  const graph::Graph g = topology::make_topology(opts, rng);
  EXPECT_EQ(g.num_nodes(), 825u);
  EXPECT_EQ(g.num_edges(), 1018u);
  // Connected (growth model guarantees it).
  int max_label = 0;
  for (int l : graph::connected_components(g)) {
    max_label = std::max(max_label, l);
  }
  EXPECT_EQ(max_label, 0);
  // Heavy tail: a hub much larger than the median degree.
  EXPECT_GE(g.max_degree(), 20u);
}

TEST(Disruption, CompleteDestructionBreaksAll) {
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  disruption::complete_destruction(g);
  EXPECT_EQ(g.num_broken_nodes(), g.num_nodes());
  EXPECT_EQ(g.num_broken_edges(), g.num_edges());
}

TEST(Disruption, GaussianGrowsWithVariance) {
  util::Rng rng(19);
  double previous = -1.0;
  for (double variance : {10.0, 50.0, 150.0}) {
    util::RunningStats broken;
    for (int trial = 0; trial < 10; ++trial) {
      graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
      disruption::GaussianDisasterOptions opts;
      opts.variance = variance;
      const auto report = disruption::gaussian_disaster(g, opts, rng);
      broken.add(static_cast<double>(report.total()));
    }
    EXPECT_GT(broken.mean(), previous)
        << "variance " << variance << " did not grow the disaster";
    previous = broken.mean();
  }
  // Top of the sweep: near-complete destruction (paper Sec. VII-A3).
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  disruption::GaussianDisasterOptions opts;
  opts.variance = 150.0;
  disruption::gaussian_disaster(g, opts, rng);
  EXPECT_GE(g.num_broken_nodes() + g.num_broken_edges(), 90u);
}

TEST(Disruption, CircularBreaksInsideOnly) {
  graph::Graph g;
  g.add_node("in", 0.0, 0.0);
  g.add_node("out", 10.0, 0.0);
  g.add_edge(0, 1, 1.0);
  const auto report = disruption::circular_disaster(g, 0.0, 0.0, 2.0);
  EXPECT_EQ(report.broken_nodes, 1u);
  EXPECT_TRUE(g.node_broken(0));
  EXPECT_FALSE(g.node_broken(1));
  EXPECT_EQ(report.broken_edges, 0u);  // midpoint at distance 5
}

TEST(Disruption, RandomFailuresRespectProbabilityExtremes) {
  util::Rng rng(5);
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  disruption::random_failures(g, 0.0, 0.0, rng);
  EXPECT_EQ(g.num_broken_nodes(), 0u);
  disruption::random_failures(g, 1.0, 1.0, rng);
  EXPECT_EQ(g.num_broken_nodes(), g.num_nodes());
}

TEST(Aftershock, FiresExactlyMaxShocksThenExhausts) {
  util::Rng rng(41);
  disruption::AftershockOptions opts;
  opts.first.variance = 60.0;
  opts.decay = 0.5;
  opts.max_shocks = 3;
  disruption::AftershockProcess process(opts);
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  std::size_t fired = 0;
  while (!process.exhausted()) {
    process.next(g, rng);
    ++fired;
    ASSERT_LE(fired, 10u) << "process never exhausted";
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(process.shocks_fired(), 3u);
  // Exhausted: further shocks are no-ops.
  const std::size_t broken_before = g.num_broken_nodes() + g.num_broken_edges();
  const auto report = process.next(g, rng);
  EXPECT_EQ(report.total(), 0u);
  EXPECT_EQ(g.num_broken_nodes() + g.num_broken_edges(), broken_before);
}

TEST(Aftershock, MagnitudeDecaysAndFloorsOut) {
  disruption::AftershockOptions opts;
  opts.first.variance = 40.0;
  opts.decay = 0.25;
  opts.max_shocks = 100;
  opts.min_variance = 1.0;
  disruption::AftershockProcess process(opts);
  util::Rng rng(7);
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  double previous = 1e18;
  while (!process.exhausted()) {
    const double variance = process.current_variance();
    EXPECT_LT(variance, previous);
    previous = variance;
    process.next(g, rng);
  }
  // 40 -> 10 -> 2.5 -> 0.625 (< floor): exactly three shocks fired.
  EXPECT_EQ(process.shocks_fired(), 3u);
}

TEST(Aftershock, OnlyBreaksNeverRepairs) {
  util::Rng rng(13);
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  // Pre-break a marked subset; aftershocks must never clear those flags.
  g.set_node_broken(0, true);
  g.set_edge_broken(0, true);
  disruption::AftershockOptions opts;
  opts.first.variance = 80.0;
  opts.max_shocks = 4;
  disruption::AftershockProcess process(opts);
  std::size_t previous = g.num_broken_nodes() + g.num_broken_edges();
  while (!process.exhausted()) {
    process.next(g, rng);
    const std::size_t now = g.num_broken_nodes() + g.num_broken_edges();
    EXPECT_GE(now, previous);
    previous = now;
  }
  EXPECT_TRUE(g.node_broken(0));
  EXPECT_TRUE(g.edge_broken(0));
}

TEST(Cascade, ReRoutedOverloadBreaksTheDetour) {
  // Square s - a - t (top, high capacity) and s - b - t (bottom, thin).
  // Breaking the top path forces the demand onto the thin detour, whose
  // capacity it exceeds: the cascade must break the detour edges.
  graph::Graph g;
  const auto s = g.add_node("s");
  const auto a = g.add_node("a");
  const auto t = g.add_node("t");
  const auto b = g.add_node("b");
  const auto sa = g.add_edge(s, a, 10.0);
  const auto at = g.add_edge(a, t, 10.0);
  const auto sb = g.add_edge(s, b, 2.0);
  const auto bt = g.add_edge(b, t, 2.0);
  const std::vector<mcf::Demand> demands{{s, t, 5.0}};

  disruption::CascadeModel model;
  // Intact graph: shortest path is the 2-hop top route with headroom — no
  // overload, nothing breaks.
  EXPECT_EQ(model.advance(g, demands).total(), 0u);

  g.set_edge_broken(sa, true);
  const auto report = model.advance(g, demands);
  EXPECT_EQ(report.broken_edges, 2u);
  EXPECT_TRUE(g.edge_broken(sb));
  EXPECT_TRUE(g.edge_broken(bt));
  EXPECT_FALSE(g.edge_broken(at));  // unreachable now, but not overloaded
}

TEST(Cascade, DisconnectedDemandContributesNoLoad) {
  graph::Graph g;
  const auto s = g.add_node("s");
  const auto t = g.add_node("t");
  const auto u = g.add_node("u");
  const auto v = g.add_node("v");
  g.add_edge(s, t, 1.0);
  const auto uv = g.add_edge(u, v, 0.5);
  g.set_edge_broken(0, true);  // s-t cut off entirely
  disruption::CascadeModel model;
  const std::vector<mcf::Demand> demands{{s, t, 10.0}};
  EXPECT_EQ(model.advance(g, demands).total(), 0u);
  EXPECT_FALSE(g.edge_broken(uv));
}

TEST(Cascade, OverloadFactorGatesTheBreak) {
  graph::Graph g;
  const auto s = g.add_node("s");
  const auto t = g.add_node("t");
  const auto e = g.add_edge(s, t, 4.0);
  const std::vector<mcf::Demand> demands{{s, t, 5.0}};
  {
    // Factor 1.5: 5 units over capacity 4 stays under 6 — holds.
    disruption::CascadeOptions opts;
    opts.overload_factor = 1.5;
    disruption::CascadeModel model(opts);
    EXPECT_EQ(model.advance(g, demands).total(), 0u);
    EXPECT_FALSE(g.edge_broken(e));
  }
  {
    // Factor 1.0: 5 > 4 — breaks.
    disruption::CascadeModel model;
    EXPECT_EQ(model.advance(g, demands).broken_edges, 1u);
    EXPECT_TRUE(g.edge_broken(e));
  }
}

TEST(Scenario, FarApartDemandsRespectDistance) {
  const graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng rng(23);
  const auto demands = scenario::far_apart_demands(g, 4, 10.0, rng);
  ASSERT_EQ(demands.size(), 4u);
  const int diameter = graph::hop_diameter(g);
  const auto hops = graph::all_pairs_hops(g);
  for (const auto& d : demands) {
    EXPECT_GE(hops[static_cast<std::size_t>(d.source)]
                  [static_cast<std::size_t>(d.target)],
              diameter / 2);
    EXPECT_DOUBLE_EQ(d.amount, 10.0);
  }
  // Endpoints all distinct (enough far-apart pairs exist on Bell-Canada).
  std::set<graph::NodeId> endpoints;
  for (const auto& d : demands) {
    endpoints.insert(d.source);
    endpoints.insert(d.target);
  }
  EXPECT_EQ(endpoints.size(), 8u);
}

TEST(Scenario, DemandsAreDeterministicPerSeed) {
  const graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng a(99);
  util::Rng b(99);
  const auto da = scenario::far_apart_demands(g, 3, 5.0, a);
  const auto db = scenario::far_apart_demands(g, 3, 5.0, b);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].source, db[i].source);
    EXPECT_EQ(da[i].target, db[i].target);
  }
}

TEST(Scenario, RunnerAggregatesAcrossRuns) {
  scenario::RunnerOptions opts;
  opts.runs = 3;
  const auto result = scenario::run_experiment(
      [](util::Rng& rng) {
        core::RecoveryProblem p;
        p.graph = topology::make_topology({topology::BellCanadaOptions{}});
        util::Rng local = rng.fork();
        p.demands = scenario::far_apart_demands(p.graph, 2, 10.0, local);
        disruption::complete_destruction(p.graph);
        return p;
      },
      {{"noop",
        [](const core::RecoveryProblem& problem, scenario::RunContext&) {
          core::RecoverySolution s;
          s.algorithm = "noop";
          core::score_solution(problem, s);
          return s;
        }}},
      opts);
  EXPECT_EQ(result.completed_runs, 3u);
  const auto& metrics = result.per_algorithm.at("noop");
  EXPECT_EQ(metrics.get("total_repairs").count(), 3u);
  EXPECT_DOUBLE_EQ(metrics.get("satisfied_pct").mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.instance.get("broken_total").mean(), 48.0 + 64.0);
}

}  // namespace
}  // namespace netrec
