// serve:: — the netrecd planning service.
//
// The load-bearing suites:
//   * ServeProtocol* — strict request parsing (unknown keys, bad ids and
//     malformed options are hard 400s, never silent no-ops) and the
//     canonical-key contract: order, duplicates and spelled-out defaults
//     must not split cache entries; anything the solve depends on must.
//   * ServeEngine* — payload determinism: the engine's output is a pure
//     function of the request (two engines, or one engine twice, dump
//     byte-identical results), and damage state never leaks between
//     requests.
//   * ServeServer* — HTTP round-trips against a real socket server:
//     routing, error mapping, metrics, the shutdown endpoint, and the
//     cache-hit-is-bit-identical guarantee on the wire.
//   * ServeConcurrency* — N client threads firing mixed cached/uncached
//     requests at a multi-worker server; every response must be
//     bit-identical to a serial direct solve.  Runs under the sanitizer CI
//     like every other suite.
#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "topology/generator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;

/// Bell-Canada with a small demand set: rich enough for real plans, small
/// enough that a solve is test-suite cheap.
core::RecoveryProblem small_problem() {
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng rng(7);
  p.demands = scenario::far_apart_demands(p.graph, 3, 6.0, rng);
  return p;
}

util::Json plan_body(std::vector<int> nodes, std::vector<int> edges) {
  util::Json body = util::Json::object();
  util::Json n = util::Json::array();
  for (int id : nodes) n.push_back(id);
  util::Json e = util::Json::array();
  for (int id : edges) e.push_back(id);
  body.set("broken_nodes", std::move(n));
  body.set("broken_edges", std::move(e));
  return body;
}

// ---------------------------------------------------------------------------
// Protocol: strict parsing.

TEST(ServeProtocol, ParsesAndCanonicalisesIdLists) {
  const core::RecoveryProblem p = small_problem();
  util::Json body = util::Json::object();
  util::Json nodes = util::Json::array();
  for (int id : {7, 3, 7, 1}) nodes.push_back(id);
  body.set("broken_nodes", std::move(nodes));
  const serve::PlanRequest request = serve::parse_plan_request(body, p);
  EXPECT_EQ(request.broken_nodes,
            (std::vector<graph::NodeId>{1, 3, 7}));  // sorted, deduped
  EXPECT_TRUE(request.broken_edges.empty());
  EXPECT_EQ(request.mode, serve::PlanRequest::Mode::kIsp);
}

TEST(ServeProtocol, RejectsUnknownFields) {
  const core::RecoveryProblem p = small_problem();
  util::Json body = plan_body({1}, {});
  body.set("broken_node", util::Json::array());  // typo'd key
  EXPECT_THROW(serve::parse_plan_request(body, p), std::invalid_argument);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  const core::RecoveryProblem p = small_problem();
  EXPECT_THROW(serve::parse_plan_request(util::Json(3.0), p),
               std::invalid_argument);
  {
    util::Json body = util::Json::object();
    body.set("broken_nodes", "all");  // not an array
    EXPECT_THROW(serve::parse_plan_request(body, p), std::invalid_argument);
  }
  {
    util::Json body = util::Json::object();
    util::Json nodes = util::Json::array();
    nodes.push_back(1.5);  // non-integer id
    body.set("broken_nodes", std::move(nodes));
    EXPECT_THROW(serve::parse_plan_request(body, p), std::invalid_argument);
  }
  {
    util::Json body = util::Json::object();
    util::Json nodes = util::Json::array();
    nodes.push_back(static_cast<double>(p.graph.num_nodes()));  // off by one
    body.set("broken_nodes", std::move(nodes));
    EXPECT_THROW(serve::parse_plan_request(body, p), std::invalid_argument);
  }
  {
    util::Json body = util::Json::object();
    body.set("mode", "magic");
    EXPECT_THROW(serve::parse_plan_request(body, p), std::invalid_argument);
  }
  {
    util::Json body = util::Json::object();
    body.set("max_stages", 0);
    EXPECT_THROW(serve::parse_plan_request(body, p), std::invalid_argument);
  }
}

TEST(ServeProtocol, CanonicalKeyIgnoresOrderAndTimelineFieldsInIspMode) {
  const core::RecoveryProblem p = small_problem();
  const serve::PlanRequest a =
      serve::parse_plan_request(plan_body({5, 2}, {1}), p);
  const serve::PlanRequest b =
      serve::parse_plan_request(plan_body({2, 5, 5}, {1}), p);
  EXPECT_EQ(serve::canonical_key(a), serve::canonical_key(b));
  EXPECT_EQ(serve::fingerprint(a), serve::fingerprint(b));

  // In kIsp mode the timeline-only options must not split cache entries.
  util::Json with_seed = plan_body({5, 2}, {1});
  with_seed.set("seed", 99);
  const serve::PlanRequest c = serve::parse_plan_request(with_seed, p);
  EXPECT_EQ(serve::canonical_key(a), serve::canonical_key(c));

  // Different damage -> different key.
  const serve::PlanRequest d =
      serve::parse_plan_request(plan_body({5}, {1}), p);
  EXPECT_NE(serve::canonical_key(a), serve::canonical_key(d));
}

TEST(ServeProtocol, CanonicalKeyCoversTimelineOptions) {
  const core::RecoveryProblem p = small_problem();
  util::Json base = plan_body({4}, {});
  base.set("mode", "timeline");
  const serve::PlanRequest a = serve::parse_plan_request(base, p);

  util::Json seeded = plan_body({4}, {});
  seeded.set("mode", "timeline");
  seeded.set("seed", 99);
  const serve::PlanRequest b = serve::parse_plan_request(seeded, p);
  EXPECT_NE(serve::canonical_key(a), serve::canonical_key(b));

  util::Json budgeted = plan_body({4}, {});
  budgeted.set("mode", "timeline");
  budgeted.set("stage_budget", 3);
  const serve::PlanRequest c = serve::parse_plan_request(budgeted, p);
  EXPECT_NE(serve::canonical_key(a), serve::canonical_key(c));
}

// ---------------------------------------------------------------------------
// Plan cache.

TEST(ServePlanCache, LruEvictionAndStats) {
  serve::PlanCache cache(2);
  EXPECT_EQ(cache.find("a"), nullptr);
  cache.insert("a", "plan-a");
  cache.insert("b", "plan-b");
  ASSERT_NE(cache.find("a"), nullptr);  // touches a: b becomes LRU
  cache.insert("c", "plan-c");          // evicts b
  EXPECT_EQ(cache.find("b"), nullptr);
  ASSERT_NE(cache.find("a"), nullptr);
  EXPECT_EQ(*cache.find("c"), "plan-c");

  const serve::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(ServePlanCache, ZeroCapacityDisables) {
  serve::PlanCache cache(0);
  cache.insert("a", "plan-a");
  EXPECT_EQ(cache.find("a"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServePlanCache, EvictedPayloadSurvivesViaSharedPtr) {
  serve::PlanCache cache(1);
  cache.insert("a", "plan-a");
  auto held = cache.find("a");
  cache.insert("b", "plan-b");  // evicts a
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "plan-a");  // still valid after eviction
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(ServeMetrics, WindowPercentiles) {
  serve::LatencyWindow window(100);
  for (int i = 1; i <= 100; ++i) window.add(i * 1e-3);
  // Nearest rank: the ceil(q * n)-th smallest sample.
  EXPECT_NEAR(window.percentile(0.50), 50e-3, 1e-9);
  EXPECT_NEAR(window.percentile(0.99), 99e-3, 1e-9);
  EXPECT_NEAR(window.percentile(1.00), 100e-3, 1e-9);
  EXPECT_NEAR(window.mean(), 50.5e-3, 1e-9);
}

TEST(ServeMetrics, WindowAgesOutOldSamples) {
  serve::LatencyWindow window(4);
  for (int i = 0; i < 100; ++i) window.add(1.0);  // old traffic
  for (int i = 0; i < 4; ++i) window.add(2e-3);   // fills the whole ring
  EXPECT_EQ(window.count(), 4u);
  EXPECT_NEAR(window.percentile(0.99), 2e-3, 1e-9);
}

TEST(ServeMetrics, RegistrySnapshotShape) {
  serve::MetricsRegistry registry(16);
  registry.record("POST /v1/plan", 0.010, false, false);
  registry.record("POST /v1/plan", 0.002, false, true);
  registry.record("POST /v1/plan", 0.001, true, false);
  const util::Json snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.contains("POST /v1/plan"));
  const util::Json& entry = snapshot.at("POST /v1/plan");
  EXPECT_EQ(entry.at("requests").as_number(), 3.0);
  EXPECT_EQ(entry.at("errors").as_number(), 1.0);
  EXPECT_EQ(entry.at("cache_hits").as_number(), 1.0);
  EXPECT_NEAR(entry.at("cache_hit_rate").as_number(), 1.0 / 3.0, 1e-12);
  EXPECT_GT(entry.at("latency_ms").at("p99").as_number(), 0.0);
}

// ---------------------------------------------------------------------------
// Engine determinism.

TEST(ServeEngine, PayloadIsPureFunctionOfRequest) {
  const core::RecoveryProblem p = small_problem();
  const serve::PlanRequest request =
      serve::parse_plan_request(plan_body({2, 9, 14}, {0, 11}), p);

  serve::PlanningEngine engine_a(p);
  serve::PlanningEngine engine_b(p);
  const std::string first = engine_a.solve(request).payload.dump();
  const std::string again = engine_a.solve(request).payload.dump();
  const std::string other = engine_b.solve(request).payload.dump();
  EXPECT_EQ(first, again);  // one engine twice
  EXPECT_EQ(first, other);  // two engines

  const util::Json payload = util::Json::parse(first);
  EXPECT_EQ(payload.at("mode").as_string(), "isp");
  EXPECT_GT(payload.at("total_repairs").as_number(), 0.0);
  EXPECT_GT(payload.at("restoration").at("auc").as_number(), 0.0);
}

TEST(ServeEngine, DamageDoesNotLeakBetweenRequests) {
  const core::RecoveryProblem p = small_problem();
  serve::PlanningEngine engine(p);
  const serve::PlanRequest damaged =
      serve::parse_plan_request(plan_body({1, 2, 3, 4, 5}, {2, 3}), p);
  const serve::PlanRequest light =
      serve::parse_plan_request(plan_body({8}, {}), p);

  const std::string light_before = engine.solve(light).payload.dump();
  engine.solve(damaged);
  const std::string light_after = engine.solve(light).payload.dump();
  EXPECT_EQ(light_before, light_after);
  EXPECT_EQ(engine.problem().graph.num_broken_nodes(), 0u);
  EXPECT_EQ(engine.problem().graph.num_broken_edges(), 0u);
}

TEST(ServeEngine, BaselineDamageIsCleared) {
  core::RecoveryProblem p = small_problem();
  p.graph.set_node_broken(0, true);  // stale damage in the loaded topology
  p.graph.set_edge_broken(0, true);
  serve::PlanningEngine engine(p);
  EXPECT_EQ(engine.problem().graph.num_broken_nodes(), 0u);
  EXPECT_EQ(engine.problem().graph.num_broken_edges(), 0u);
}

TEST(ServeEngine, TimelineModeIsDeterministic) {
  const core::RecoveryProblem p = small_problem();
  util::Json body = plan_body({2, 9, 14}, {0});
  body.set("mode", "timeline");
  body.set("policy", "replay");
  body.set("stage_budget", 2);
  body.set("max_stages", 8);
  body.set("seed", 5);
  const serve::PlanRequest request = serve::parse_plan_request(body, p);

  serve::PlanningEngine engine(p);
  const std::string first = engine.solve(request).payload.dump();
  const std::string again = engine.solve(request).payload.dump();
  EXPECT_EQ(first, again);

  const util::Json payload = util::Json::parse(first);
  EXPECT_EQ(payload.at("mode").as_string(), "timeline");
  EXPECT_EQ(payload.at("restoration").at("series").size(), 8u);
}

// ---------------------------------------------------------------------------
// Server round-trips over a real socket.

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = small_problem();
    serve::ServerOptions options;
    options.workers = 2;
    options.cache_capacity = 64;
    server_ = std::make_unique<serve::Server>(problem_, options);
    server_->start();
    port_ = server_->port();
  }
  void TearDown() override { server_->stop(); }

  int post_plan(const std::string& body, std::string& response) const {
    return serve::http_request("127.0.0.1", port_, "POST", "/v1/plan", body,
                               response);
  }

  core::RecoveryProblem problem_;
  std::unique_ptr<serve::Server> server_;
  int port_ = 0;
};

TEST_F(ServeServerTest, HealthAndTopology) {
  std::string body;
  ASSERT_EQ(serve::http_request("127.0.0.1", port_, "GET", "/v1/health", "",
                                body),
            200);
  util::Json health = util::Json::parse(body);
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("nodes").as_number(),
            static_cast<double>(problem_.graph.num_nodes()));

  ASSERT_EQ(serve::http_request("127.0.0.1", port_, "GET", "/v1/topology", "",
                                body),
            200);
  util::Json topology = util::Json::parse(body);
  EXPECT_EQ(topology.at("demands").as_number(),
            static_cast<double>(problem_.demands.size()));
}

TEST_F(ServeServerTest, PlanMatchesDirectSolveAndCacheHitIsBitIdentical) {
  const std::string request_body = plan_body({2, 9}, {5}).dump();

  std::string first_response;
  ASSERT_EQ(post_plan(request_body, first_response), 200);
  std::string second_response;
  ASSERT_EQ(post_plan(request_body, second_response), 200);

  // Extract the verbatim result bytes (string surgery, not re-serialisation).
  const auto result_bytes = [](const std::string& response) {
    const std::string prefix = "{\"result\":";
    const std::size_t meta = response.rfind(",\"meta\":{\"fingerprint\":");
    EXPECT_EQ(response.rfind(prefix, 0), 0u);
    EXPECT_NE(meta, std::string::npos);
    return response.substr(prefix.size(), meta - prefix.size());
  };
  const std::string first = result_bytes(first_response);
  const std::string second = result_bytes(second_response);
  EXPECT_EQ(first, second);  // cache hit bit-identical to fresh solve
  EXPECT_NE(second_response.find("\"cached\":true"), std::string::npos);

  // And both equal the direct solve.
  serve::PlanningEngine direct(problem_);
  const serve::PlanRequest request = serve::parse_plan_request(
      util::Json::parse(request_body), problem_);
  EXPECT_EQ(first, direct.solve(request).payload.dump());

  const serve::PlanCache::Stats stats = server_->cache_stats();
  EXPECT_GE(stats.hits, 1u);
}

TEST_F(ServeServerTest, ErrorMapping) {
  std::string body;
  EXPECT_EQ(post_plan("{not json", body), 400);
  EXPECT_NE(util::Json::parse(body).at("error").as_string().find("JSON"),
            std::string::npos);

  EXPECT_EQ(post_plan("{\"broken_node\":[1]}", body), 400);  // unknown field
  EXPECT_EQ(post_plan("{\"broken_nodes\":[99999]}", body), 400);  // bad id

  EXPECT_EQ(serve::http_request("127.0.0.1", port_, "GET", "/v1/nope", "",
                                body),
            404);
  EXPECT_EQ(serve::http_request("127.0.0.1", port_, "GET", "/v1/plan", "",
                                body),
            405);
  EXPECT_EQ(serve::http_request("127.0.0.1", port_, "PUT", "/v1/plan", "{}",
                                body),
            405);
}

TEST_F(ServeServerTest, MetricsReflectTraffic) {
  const std::string request_body = plan_body({3}, {}).dump();
  std::string response;
  ASSERT_EQ(post_plan(request_body, response), 200);
  ASSERT_EQ(post_plan(request_body, response), 200);
  post_plan("{bad", response);

  ASSERT_EQ(serve::http_request("127.0.0.1", port_, "GET", "/v1/metrics", "",
                                response),
            200);
  const util::Json metrics = util::Json::parse(response);
  const util::Json& plan = metrics.at("endpoints").at("POST /v1/plan");
  EXPECT_EQ(plan.at("requests").as_number(), 3.0);
  EXPECT_EQ(plan.at("errors").as_number(), 1.0);
  EXPECT_EQ(plan.at("cache_hits").as_number(), 1.0);
  EXPECT_GT(plan.at("latency_ms").at("p50").as_number(), 0.0);
  const util::Json& cache = metrics.at("plan_cache");
  EXPECT_EQ(cache.at("hits").as_number(), 1.0);
  EXPECT_GT(cache.at("hit_rate").as_number(), 0.0);
}

TEST_F(ServeServerTest, ShutdownEndpointReleasesWait) {
  std::string body;
  ASSERT_EQ(serve::http_request("127.0.0.1", port_, "POST", "/v1/shutdown",
                                "", body),
            200);
  EXPECT_EQ(util::Json::parse(body).at("status").as_string(), "stopping");
  server_->wait();  // must return promptly now
}

// ---------------------------------------------------------------------------
// Concurrency: mixed cached/uncached requests from many clients, every
// response bit-identical to a serial direct solve.

TEST(ServeConcurrency, ParallelMixedRequestsMatchSerialSolves) {
  const core::RecoveryProblem problem = small_problem();

  // Distinct scenarios; each client cycles through them with a different
  // phase, so the same fingerprint is solved fresh by one client and served
  // from cache to others, interleaved with misses.
  const std::vector<util::Json> bodies = {
      plan_body({1, 4}, {}), plan_body({2, 9, 14}, {0}),
      plan_body({}, {3, 8}), plan_body({6}, {12}), plan_body({10, 11}, {})};

  serve::PlanningEngine serial(problem);
  std::vector<std::string> expected;
  expected.reserve(bodies.size());
  for (const util::Json& body : bodies) {
    expected.push_back(
        serial.solve(serve::parse_plan_request(body, problem)).payload.dump());
  }

  serve::ServerOptions options;
  options.workers = 4;
  options.cache_capacity = 16;
  serve::Server server(problem, options);
  server.start();

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequestsPerClient = 10;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const std::size_t which = (c + i) % bodies.size();
        std::string response;
        int status = 0;
        try {
          status = serve::http_request("127.0.0.1", server.port(), "POST",
                                       "/v1/plan", bodies[which].dump(),
                                       response);
        } catch (const std::exception&) {
          ++mismatches;
          continue;
        }
        const std::string prefix = "{\"result\":";
        const std::size_t meta =
            response.rfind(",\"meta\":{\"fingerprint\":");
        if (status != 200 || response.rfind(prefix, 0) != 0 ||
            meta == std::string::npos ||
            response.substr(prefix.size(), meta - prefix.size()) !=
                expected[which]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  server.stop();

  EXPECT_EQ(mismatches.load(), 0);

  const serve::PlanCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kClients * kRequestsPerClient);
  EXPECT_GT(stats.hits, 0u);  // the mix actually exercised the cache
}

}  // namespace
