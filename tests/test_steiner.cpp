// Steiner tree/forest tests: hand-checked instances plus a brute-force
// cross-check (enumerate edge subsets) on random small graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/traversal.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace netrec::steiner {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

graph::EdgeWeight unit_edges() {
  return [](EdgeId) { return 1.0; };
}
NodeCost unit_nodes() {
  return [](NodeId) { return 1.0; };
}
NodeCost free_nodes() {
  return [](NodeId) { return 0.0; };
}

TEST(SteinerTree, TwoTerminalsIsShortestPath) {
  // 0-1-2 (2 edges) vs direct 0-2 with edge cost 3 via weights.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const EdgeId direct = g.add_edge(0, 2, 1.0);
  auto cost = [&](EdgeId e) { return e == direct ? 3.0 : 1.0; };
  const auto r = steiner_tree(g, {0, 2}, cost, free_nodes());
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.cost, 2.0, 1e-9);
  EXPECT_EQ(r.edges.size(), 2u);
}

TEST(SteinerTree, StarUsesSteinerPoint) {
  // Terminals 1,2,3 around hub 0; pairwise paths cost 2 via hub.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  const auto r = steiner_tree(g, {1, 2, 3}, unit_edges(), free_nodes());
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.cost, 3.0, 1e-9);  // the three spokes
  EXPECT_EQ(r.edges.size(), 3u);
  EXPECT_EQ(r.nodes.size(), 4u);  // includes the hub as a Steiner point
}

TEST(SteinerTree, NodeCostsCountEachNodeOnce) {
  // Path 0-1-2: tree cost = 2 edges + 3 nodes = 5 with unit costs.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto r = steiner_tree(g, {0, 2}, unit_edges(), unit_nodes());
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.cost, 5.0, 1e-9);
}

TEST(SteinerTree, ExpensiveNodeAvoided) {
  // Two routes 0-1-3 and 0-2-3; node 1 costs 10 -> route via 2.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  auto node_cost = [](NodeId n) { return n == 1 ? 10.0 : 1.0; };
  const auto r = steiner_tree(g, {0, 3}, unit_edges(), node_cost);
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.cost, 2.0 + 3.0, 1e-9);
  for (NodeId n : r.nodes) EXPECT_NE(n, 1);
}

TEST(SteinerTree, DisconnectedTerminalsFail) {
  Graph g;
  g.add_node();
  g.add_node();
  const auto r = steiner_tree(g, {0, 1}, unit_edges(), free_nodes());
  EXPECT_FALSE(r.solved);
}

TEST(SteinerForest, SeparatePairsStaySeparate) {
  // Two far-apart pairs with a long bridge: forest keeps two components.
  //  0-1   2-3  bridged by 1-4-5-2 (3 extra edges).
  Graph g;
  for (int i = 0; i < 6; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(1, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 2, 1.0);
  const auto r = steiner_forest(g, {{0, 1}, {2, 3}}, unit_edges(),
                                free_nodes());
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.cost, 2.0, 1e-9);  // just the two pair edges
  EXPECT_EQ(r.edges.size(), 2u);
}

TEST(SteinerForest, SharedCorridorMergesGroups) {
  //  0   3      Pairs (0,3) and (1,4) both need corridor 2-5:
  //   . /       merging into one tree is cheaper than two disjoint trees.
  //    2
  //    |
  //    5
  //   / .
  //  1   4
  Graph g;
  for (int i = 0; i < 6; ++i) g.add_node();
  g.add_edge(0, 2, 1.0);
  g.add_edge(3, 2, 1.0);
  g.add_edge(2, 5, 1.0);
  g.add_edge(5, 1, 1.0);
  g.add_edge(5, 4, 1.0);
  const auto r = steiner_forest(g, {{0, 3}, {1, 4}}, unit_edges(),
                                free_nodes());
  ASSERT_TRUE(r.solved);
  // (0,3) via 2: edges 0-2,3-2 = 2.  (1,4) via 5: edges 1-5,4-5 = 2.
  // Separate groups cost 4; nothing cheaper exists.
  EXPECT_NEAR(r.cost, 4.0, 1e-9);
}

TEST(SteinerForest, EmptyAndDegeneratePairs) {
  Graph g;
  g.add_node();
  const auto empty = steiner_forest(g, {}, unit_edges(), free_nodes());
  EXPECT_TRUE(empty.solved);
  EXPECT_EQ(empty.cost, 0.0);
  const auto self = steiner_forest(g, {{0, 0}}, unit_edges(), free_nodes());
  EXPECT_TRUE(self.solved);
  EXPECT_EQ(self.cost, 0.0);
}

// --- brute force cross-check ------------------------------------------------

/// Minimum-cost connected-per-pair edge subset by enumeration (tiny graphs).
double brute_force_forest(const Graph& g,
                          const std::vector<std::pair<NodeId, NodeId>>& pairs,
                          const graph::EdgeWeight& edge_cost,
                          const NodeCost& node_cost) {
  const int m = static_cast<int>(g.num_edges());
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << m); ++mask) {
    auto edge_ok = [&](EdgeId e) { return (mask >> e) & 1; };
    bool all_connected = true;
    for (const auto& [a, b] : pairs) {
      if (!graph::reachable(g, a, b, edge_ok)) {
        all_connected = false;
        break;
      }
    }
    if (!all_connected) continue;
    double cost = 0.0;
    std::vector<char> node_used(g.num_nodes(), 0);
    for (int e = 0; e < m; ++e) {
      if (!((mask >> e) & 1)) continue;
      cost += edge_cost(static_cast<EdgeId>(e));
      node_used[static_cast<std::size_t>(g.edge_u(e))] = 1;
      node_used[static_cast<std::size_t>(g.edge_v(e))] = 1;
    }
    for (const auto& [a, b] : pairs) {
      node_used[static_cast<std::size_t>(a)] = 1;
      node_used[static_cast<std::size_t>(b)] = 1;
    }
    for (std::size_t n = 0; n < g.num_nodes(); ++n) {
      if (node_used[n]) cost += node_cost(static_cast<NodeId>(n));
    }
    best = std::min(best, cost);
  }
  return best;
}

class SteinerRandom : public ::testing::TestWithParam<int> {};

TEST_P(SteinerRandom, MatchesBruteForceOnSmallGraphs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  Graph g;
  const int n = 6;
  for (int i = 0; i < n; ++i) g.add_node();
  std::vector<double> ecost;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.chance(0.5)) {
        g.add_edge(i, j, 1.0);
        ecost.push_back(rng.uniform(0.5, 3.0));
      }
    }
  }
  if (g.num_edges() > 14) return;  // keep brute force fast
  std::vector<double> ncost;
  for (int i = 0; i < n; ++i) ncost.push_back(rng.uniform(0.0, 2.0));
  auto edge_cost = [&](EdgeId e) {
    return ecost[static_cast<std::size_t>(e)];
  };
  auto node_cost = [&](NodeId v) {
    return ncost[static_cast<std::size_t>(v)];
  };
  std::vector<std::pair<NodeId, NodeId>> pairs;
  const int num_pairs = static_cast<int>(rng.uniform_int(1, 2));
  for (int k = 0; k < num_pairs; ++k) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (a != b) pairs.emplace_back(a, b);
  }
  if (pairs.empty()) return;

  const double reference = brute_force_forest(g, pairs, edge_cost, node_cost);
  const auto r = steiner_forest(g, pairs, edge_cost, node_cost);
  if (std::isinf(reference)) {
    EXPECT_FALSE(r.solved);
  } else {
    ASSERT_TRUE(r.solved) << "seed " << GetParam();
    EXPECT_NEAR(r.cost, reference, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SteinerRandom, ::testing::Range(0, 40));

}  // namespace
}  // namespace netrec::steiner
