// Unit and property tests for the bounded-variable revised simplex.
//
// The property suite cross-checks simplex optima against brute-force
// enumeration of basic solutions on random small LPs — if the two ever
// disagree, everything built on top (routability, split LP, OPT) is suspect.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace netrec::lp {
namespace {

TEST(Simplex, SolvesTextbookTwoVariableLp) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), obj 36.
  Model m;
  m.goal = Goal::kMaximize;
  const int x = m.add_variable(0.0, kInfinity, 3.0);
  const int y = m.add_variable(0.0, kInfinity, 5.0);
  const int r1 = m.add_constraint(Sense::kLessEqual, 4.0);
  const int r2 = m.add_constraint(Sense::kLessEqual, 12.0);
  const int r3 = m.add_constraint(Sense::kLessEqual, 18.0);
  m.set_coefficient(r1, x, 1.0);
  m.set_coefficient(r2, y, 2.0);
  m.set_coefficient(r3, x, 3.0);
  m.set_coefficient(r3, y, 2.0);

  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int r1 = m.add_constraint(Sense::kGreaterEqual, 5.0);
  const int r2 = m.add_constraint(Sense::kLessEqual, 3.0);
  m.set_coefficient(r1, x, 1.0);
  m.set_coefficient(r2, x, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  m.goal = Goal::kMaximize;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 0.0);
  const int r = m.add_constraint(Sense::kLessEqual, 10.0);
  m.set_coefficient(r, y, 1.0);
  (void)x;  // x unconstrained above -> objective unbounded
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  // max x + y st x + y <= 10, x in [0,3], y in [0,4] -> 7.
  Model m;
  m.goal = Goal::kMaximize;
  const int x = m.add_variable(0.0, 3.0, 1.0);
  const int y = m.add_variable(0.0, 4.0, 1.0);
  const int r = m.add_constraint(Sense::kLessEqual, 10.0);
  m.set_coefficient(r, x, 1.0);
  m.set_coefficient(r, y, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x + 2y st x + y = 5, x - y = 1 -> x=3, y=2, obj 7.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 2.0);
  const int r1 = m.add_constraint(Sense::kEqual, 5.0);
  const int r2 = m.add_constraint(Sense::kEqual, 1.0);
  m.set_coefficient(r1, x, 1.0);
  m.set_coefficient(r1, y, 1.0);
  m.set_coefficient(r2, x, 1.0);
  m.set_coefficient(r2, y, -1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-7);
  EXPECT_NEAR(s.x[1], 2.0, 1e-7);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x st x >= -5 (bound), x >= -3 (row)  -> -3.
  Model m;
  const int x = m.add_variable(-5.0, kInfinity, 1.0);
  const int r = m.add_constraint(Sense::kGreaterEqual, -3.0);
  m.set_coefficient(r, x, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: several redundant rows through the origin.
  Model m;
  m.goal = Goal::kMaximize;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  for (int k = 1; k <= 6; ++k) {
    const int r = m.add_constraint(Sense::kLessEqual, 0.0);
    m.set_coefficient(r, x, static_cast<double>(k));
    m.set_coefficient(r, y, -1.0);
  }
  const int cap = m.add_constraint(Sense::kLessEqual, 10.0);
  m.set_coefficient(cap, x, 1.0);
  m.set_coefficient(cap, y, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // y >= 6x and x + y <= 10: best is x = 10/7, y = 60/7.
  EXPECT_NEAR(s.objective, 10.0, 1e-6);
}

TEST(Simplex, WarmRestartAfterAddingColumn) {
  Model m;
  m.goal = Goal::kMaximize;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int cap = m.add_constraint(Sense::kLessEqual, 8.0);
  m.set_coefficient(cap, x, 1.0);
  Basis basis;
  Solution first = solve(m, {}, &basis);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.objective, 8.0, 1e-7);

  // Add a more valuable column; warm solve must pick it up.
  const int y = m.add_variable(0.0, kInfinity, 3.0);
  m.set_coefficient(cap, y, 1.0);
  Solution second = solve(m, {}, &basis);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_NEAR(second.objective, 24.0, 1e-7);
  EXPECT_NEAR(second.x[static_cast<std::size_t>(y)], 8.0, 1e-7);
  EXPECT_NEAR(second.x[static_cast<std::size_t>(x)], 0.0, 1e-7);
}

TEST(Simplex, DualsHaveMinimisationConvention) {
  // min 2x st x >= 3  ->  dual of the >= row is 2 (worth 2 per unit rhs).
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 2.0);
  const int r = m.add_constraint(Sense::kGreaterEqual, 3.0);
  m.set_coefficient(r, x, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_EQ(s.duals.size(), 1u);
  EXPECT_NEAR(s.duals[0], 2.0, 1e-7);
}

// --- property test: random LPs vs brute-force vertex enumeration ---------

/// Brute force: enumerate all choices of active constraints/bounds forming a
/// square system, solve, keep the best feasible point.  Exponential — only
/// for tiny LPs.
struct BruteForceResult {
  bool feasible = false;
  double objective = 0.0;
};

BruteForceResult brute_force(const Model& m) {
  const int n = m.num_variables();
  const int rows = m.num_constraints();
  // Equations available: each row as equality, each bound as equality.
  struct Equation {
    std::vector<double> a;
    double b;
  };
  std::vector<Equation> pool;
  for (int r = 0; r < rows; ++r) {
    Equation eq;
    eq.a.assign(static_cast<std::size_t>(n), 0.0);
    for (int v = 0; v < n; ++v) {
      for (const Entry& e : m.variable(v).column) {
        if (e.row == r) eq.a[static_cast<std::size_t>(v)] = e.value;
      }
    }
    eq.b = m.constraint(r).rhs;
    pool.push_back(std::move(eq));
  }
  for (int v = 0; v < n; ++v) {
    const Variable& var = m.variable(v);
    if (std::isfinite(var.lower)) {
      Equation eq;
      eq.a.assign(static_cast<std::size_t>(n), 0.0);
      eq.a[static_cast<std::size_t>(v)] = 1.0;
      eq.b = var.lower;
      pool.push_back(std::move(eq));
    }
    if (std::isfinite(var.upper)) {
      Equation eq;
      eq.a.assign(static_cast<std::size_t>(n), 0.0);
      eq.a[static_cast<std::size_t>(v)] = 1.0;
      eq.b = var.upper;
      pool.push_back(std::move(eq));
    }
  }
  const int pool_size = static_cast<int>(pool.size());
  BruteForceResult best;
  const double sign = m.goal == Goal::kMinimize ? 1.0 : -1.0;

  std::vector<int> pick(static_cast<std::size_t>(n), 0);
  std::function<void(int, int)> recurse = [&](int next, int chosen) {
    if (chosen == n) {
      // Solve the n x n system by Gaussian elimination.
      std::vector<std::vector<double>> a(
          static_cast<std::size_t>(n),
          std::vector<double>(static_cast<std::size_t>(n) + 1, 0.0));
      for (int i = 0; i < n; ++i) {
        const Equation& eq = pool[static_cast<std::size_t>(pick[
            static_cast<std::size_t>(i)])];
        for (int j = 0; j < n; ++j) {
          a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
              eq.a[static_cast<std::size_t>(j)];
        }
        a[static_cast<std::size_t>(i)][static_cast<std::size_t>(n)] = eq.b;
      }
      for (int col = 0; col < n; ++col) {
        int piv = -1;
        double mag = 1e-9;
        for (int r = col; r < n; ++r) {
          if (std::abs(a[static_cast<std::size_t>(r)][
                  static_cast<std::size_t>(col)]) > mag) {
            mag = std::abs(a[static_cast<std::size_t>(r)][
                static_cast<std::size_t>(col)]);
            piv = r;
          }
        }
        if (piv < 0) return;  // singular combination
        std::swap(a[static_cast<std::size_t>(col)],
                  a[static_cast<std::size_t>(piv)]);
        for (int r = 0; r < n; ++r) {
          if (r == col) continue;
          const double f = a[static_cast<std::size_t>(r)][
                               static_cast<std::size_t>(col)] /
                           a[static_cast<std::size_t>(col)][
                               static_cast<std::size_t>(col)];
          for (int c = col; c <= n; ++c) {
            a[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -=
                f * a[static_cast<std::size_t>(col)][
                        static_cast<std::size_t>(c)];
          }
        }
      }
      std::vector<double> x(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] =
            a[static_cast<std::size_t>(i)][static_cast<std::size_t>(n)] /
            a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
      }
      if (!m.is_feasible(x, 1e-6)) return;
      const double obj = m.objective_value(x);
      if (!best.feasible || sign * obj < sign * best.objective) {
        best.feasible = true;
        best.objective = obj;
      }
      return;
    }
    if (next >= pool_size) return;
    pick[static_cast<std::size_t>(chosen)] = next;
    recurse(next + 1, chosen + 1);
    recurse(next + 1, chosen);
  };
  if (n > 0) recurse(0, 0);
  return best;
}

class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, MatchesBruteForceOnBoundedRandomLps) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = static_cast<int>(rng.uniform_int(2, 4));
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  Model m;
  m.goal = rng.chance(0.5) ? Goal::kMinimize : Goal::kMaximize;
  for (int v = 0; v < n; ++v) {
    const double lo = rng.uniform(-3.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 6.0);
    m.add_variable(lo, hi, rng.uniform(-5.0, 5.0));
  }
  for (int r = 0; r < rows; ++r) {
    const std::array<Sense, 3> senses{Sense::kLessEqual, Sense::kEqual,
                                      Sense::kGreaterEqual};
    const Sense sense = senses[static_cast<std::size_t>(
        rng.uniform_int(0, 2))];
    const int row = m.add_constraint(sense, rng.uniform(-4.0, 8.0));
    for (int v = 0; v < n; ++v) {
      if (rng.chance(0.75)) {
        m.set_coefficient(row, v, rng.uniform(-3.0, 3.0));
      }
    }
  }

  const Solution s = solve(m);
  const BruteForceResult reference = brute_force(m);
  if (reference.feasible) {
    ASSERT_EQ(s.status, SolveStatus::kOptimal)
        << "simplex says " << to_string(s.status)
        << " but brute force found objective " << reference.objective;
    EXPECT_NEAR(s.objective, reference.objective, 1e-5);
    EXPECT_TRUE(m.is_feasible(s.x, 1e-5));
  } else {
    // All variables bounded -> unboundedness impossible; must be infeasible.
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLpSweep, SimplexRandomLp,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace netrec::lp
