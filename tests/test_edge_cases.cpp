// Edge-case and failure-path tests across modules: file I/O, infeasible
// instances, iteration limits, degenerate inputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/isp.hpp"
#include "graph/gml.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/opt.hpp"
#include "heuristics/schedule.hpp"
#include "lp/simplex.hpp"
#include "mcf/routing.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace netrec {
namespace {

TEST(GmlFile, RoundTripsThroughDisk) {
  const auto path =
      (std::filesystem::temp_directory_path() / "netrec_gml_test.gml")
          .string();
  graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  g.set_node_broken(3, true);
  g.set_edge_broken(5, true);
  graph::save_gml_file(g, path);
  const graph::Graph loaded = graph::load_gml_file(path);
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_TRUE(loaded.node_broken(3));
  EXPECT_TRUE(loaded.edge_broken(5));
  EXPECT_EQ(loaded.node_name(0), g.node_name(0));
  std::remove(path.c_str());
}

TEST(GmlFile, MissingFileThrows) {
  EXPECT_THROW(graph::load_gml_file("/nonexistent/netrec.gml"),
               std::runtime_error);
}

TEST(CsvFile, UnwritablePathThrows) {
  EXPECT_THROW(util::CsvWriter("/nonexistent/dir/out.csv"),
               std::runtime_error);
}

TEST(Opt, InfeasibleInstanceIsBestEffortNotCrash) {
  core::RecoveryProblem p;
  p.graph.add_node();
  p.graph.add_node();
  p.graph.add_edge(0, 1, 1.0);
  p.graph.break_everything();
  p.demands = {{0, 1, 5.0}};  // demand > any capacity
  heuristics::OptOptions oo;
  oo.time_limit_seconds = 2.0;
  const auto r = heuristics::solve_opt(p, oo);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_LT(r.solution.satisfied_fraction, 1.0);
  EXPECT_TRUE(core::validate_solution(p, r.solution).empty());
}

TEST(Opt, EmptyDemandIsTrivial) {
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  p.graph.break_everything();
  const auto r = heuristics::solve_opt(p);
  EXPECT_EQ(r.solution.total_repairs(), 0u);
  EXPECT_DOUBLE_EQ(r.solution.satisfied_fraction, 1.0);
}

TEST(Simplex, IterationLimitIsReported) {
  // A valid LP with an absurdly low iteration cap.
  lp::Model m;
  m.goal = lp::Goal::kMaximize;
  util::Rng rng(3);
  const int rows = 12;
  for (int r = 0; r < rows; ++r) {
    m.add_constraint(lp::Sense::kLessEqual, rng.uniform(5.0, 10.0));
  }
  for (int c = 0; c < 30; ++c) {
    const int v = m.add_variable(0.0, lp::kInfinity, rng.uniform(0.5, 2.0));
    for (int r = 0; r < rows; ++r) {
      m.set_coefficient(r, v, rng.uniform(0.1, 1.0));
    }
  }
  lp::SolveOptions opt;
  opt.max_iterations = 1;
  const auto s = lp::solve(m, opt);
  EXPECT_EQ(s.status, lp::SolveStatus::kIterationLimit);
}

TEST(Isp, SingleNodeGraphTerminates) {
  core::RecoveryProblem p;
  p.graph.add_node();
  p.graph.set_node_broken(0, true);
  p.demands = {{0, 0, 3.0}};  // self-demand, trivially satisfied
  const auto s = core::IspSolver(p).solve();
  EXPECT_EQ(s.total_repairs(), 0u);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 1.0);
}

TEST(Isp, DisconnectedEndpointsAreInfeasibleNotFatal) {
  core::RecoveryProblem p;
  p.graph.add_node();
  p.graph.add_node();  // no edges at all
  p.demands = {{0, 1, 1.0}};
  const auto s = core::IspSolver(p).solve();
  EXPECT_FALSE(s.instance_feasible);
  EXPECT_DOUBLE_EQ(s.satisfied_fraction, 0.0);
}

TEST(Srt, EmptyDemandRepairsNothing) {
  core::RecoveryProblem p;
  p.graph = topology::make_topology({topology::BellCanadaOptions{}});
  p.graph.break_everything();
  const auto s = heuristics::solve_srt(p);
  EXPECT_EQ(s.total_repairs(), 0u);
}

TEST(Greedy, NoPathsWithinLimitsMeansNoRepairs) {
  core::RecoveryProblem p;
  for (int i = 0; i < 6; ++i) p.graph.add_node();
  for (int i = 0; i + 1 < 6; ++i) p.graph.add_edge(i, i + 1, 10.0);
  p.graph.break_everything();
  p.demands = {{0, 5, 2.0}};
  heuristics::GreedyOptions opt;
  opt.max_hops = 2;  // the only path needs 5 hops
  const auto s = heuristics::solve_grd_nc(p, opt);
  EXPECT_EQ(s.total_repairs(), 0u);
  EXPECT_LT(s.satisfied_fraction, 1.0);
}

TEST(Schedule, LeftoverCapacityRepairsAreAppended) {
  // Demand 15 needs both parallel routes; each route completion shows up in
  // the schedule, nothing is dropped.
  core::RecoveryProblem p;
  for (int i = 0; i < 4; ++i) p.graph.add_node();
  p.graph.add_edge(0, 1, 10.0);
  p.graph.add_edge(1, 3, 10.0);
  p.graph.add_edge(0, 2, 10.0);
  p.graph.add_edge(2, 3, 10.0);
  p.graph.break_everything();
  p.demands = {{0, 3, 15.0}};
  const auto plan = core::IspSolver(p).solve();
  ASSERT_EQ(plan.total_repairs(), 8u);
  heuristics::ScheduleOptions sopt;
  sopt.exact_scoring = true;
  const auto schedule = heuristics::schedule_repairs(p, plan, sopt);
  EXPECT_EQ(schedule.steps.size(), 8u);
  EXPECT_NEAR(schedule.steps.back().restored_after, 15.0, 1e-6);
  // Partial restoration appears mid-schedule (first route = 10 units).
  EXPECT_LE(schedule.steps_to_restore(10.0 / 15.0), 6u);
}

TEST(Scenario, InfeasibleFactoryIsSkippedGracefully) {
  scenario::RunnerOptions opt;
  opt.runs = 2;
  opt.require_feasible = true;
  opt.max_redraws = 2;
  const auto result = scenario::run_experiment(
      [](util::Rng&) {
        core::RecoveryProblem p;
        p.graph.add_node();
        p.graph.add_node();
        p.graph.add_edge(0, 1, 1.0);
        p.demands = {{0, 1, 100.0}};  // never feasible
        return p;
      },
      {{"noop",
        [](const core::RecoveryProblem& problem, scenario::RunContext&) {
          core::RecoverySolution s;
          core::score_solution(problem, s);
          return s;
        }}},
      opt);
  EXPECT_EQ(result.completed_runs, 0u);
}

}  // namespace
}  // namespace netrec
