// Tests for the parallel scenario engine: thread-count invariance of
// aggregated results, per-task RNG determinism, far-apart demand sampling,
// and SweepRunner CSV/JSON emission round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/baselines.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "topology/generator.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace netrec {
namespace {

scenario::ProblemFactory bell_factory(std::size_t pairs, double flow) {
  return [pairs, flow](util::Rng& rng) {
    core::RecoveryProblem p;
    p.graph = topology::make_topology({topology::BellCanadaOptions{}});
    p.demands = scenario::far_apart_demands(p.graph, pairs, flow, rng);
    disruption::complete_destruction(p.graph);
    return p;
  };
}

/// Algorithms for the determinism tests: a real deterministic solver plus a
/// synthetic one that leaks its private RNG stream into a metric, so any
/// schedule-dependent seeding shows up as a mean mismatch.
std::vector<std::pair<std::string, scenario::Algorithm>> test_algorithms() {
  return {
      {"SRT",
       [](const core::RecoveryProblem& p, scenario::RunContext&) {
         return heuristics::solve_srt(p);
       }},
      {"rng-probe",
       [](const core::RecoveryProblem& p, scenario::RunContext& ctx) {
         core::RecoverySolution s;
         s.algorithm = "rng-probe";
         core::score_solution(p, s);
         s.repair_cost = ctx.rng.uniform() +
                         static_cast<double>(ctx.run_index) +
                         static_cast<double>(ctx.run_seed % 1000);
         return s;
       }},
  };
}

/// Full-precision equality of two aggregates, ignoring wall_seconds (the
/// only metric that measures real time rather than derived state).
void expect_identical(const scenario::AggregateResult& a,
                      const scenario::AggregateResult& b) {
  ASSERT_EQ(a.completed_runs, b.completed_runs);
  ASSERT_EQ(a.per_algorithm.size(), b.per_algorithm.size());
  const auto compare_sets = [](const util::MetricSet& x,
                               const util::MetricSet& y) {
    ASSERT_EQ(x.names(), y.names());
    for (const auto& metric : x.names()) {
      if (metric == "wall_seconds") continue;
      const auto& sx = x.get(metric);
      const auto& sy = y.get(metric);
      EXPECT_EQ(sx.count(), sy.count()) << metric;
      EXPECT_EQ(sx.mean(), sy.mean()) << metric;
      EXPECT_EQ(sx.stddev(), sy.stddev()) << metric;
      EXPECT_EQ(sx.min(), sy.min()) << metric;
      EXPECT_EQ(sx.max(), sy.max()) << metric;
      EXPECT_EQ(sx.sum(), sy.sum()) << metric;
    }
  };
  for (const auto& [name, metrics] : a.per_algorithm) {
    ASSERT_TRUE(b.per_algorithm.count(name)) << name;
    compare_sets(metrics, b.per_algorithm.at(name));
  }
  compare_sets(a.instance, b.instance);
}

TEST(ScenarioEngine, AggregateIsBitIdenticalAcrossThreadCounts) {
  scenario::RunnerOptions options;
  options.runs = 5;
  options.seed = 1234;
  options.require_feasible = true;
  const auto algorithms = test_algorithms();

  options.threads = 1;
  const auto serial =
      scenario::run_experiment(bell_factory(3, 10.0), algorithms, options);
  EXPECT_EQ(serial.completed_runs, 5u);
  EXPECT_GT(serial.per_algorithm.at("SRT").get("total_repairs").mean(), 0.0);

  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const auto parallel =
        scenario::run_experiment(bell_factory(3, 10.0), algorithms, options);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(serial, parallel);
  }
}

TEST(ScenarioEngine, SharedPoolMatchesOwnedPool) {
  scenario::RunnerOptions options;
  options.runs = 3;
  options.seed = 99;
  const auto algorithms = test_algorithms();
  options.threads = 4;
  const auto owned =
      scenario::run_experiment(bell_factory(2, 5.0), algorithms, options);
  util::ThreadPool pool(4);
  options.pool = &pool;
  const auto shared =
      scenario::run_experiment(bell_factory(2, 5.0), algorithms, options);
  expect_identical(owned, shared);
}

TEST(ScenarioEngine, DifferentSeedsProduceDifferentRngStreams) {
  scenario::RunnerOptions options;
  options.runs = 3;
  options.threads = 1;
  const auto algorithms = test_algorithms();
  options.seed = 1;
  const auto a =
      scenario::run_experiment(bell_factory(2, 5.0), algorithms, options);
  options.seed = 2;
  const auto b =
      scenario::run_experiment(bell_factory(2, 5.0), algorithms, options);
  EXPECT_NE(a.per_algorithm.at("rng-probe").get("repair_cost").mean(),
            b.per_algorithm.at("rng-probe").get("repair_cost").mean());
}

TEST(ScenarioEngine, FarApartDemandsAreSeedDeterministic) {
  const graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng a(2024);
  util::Rng b(2024);
  const auto da = scenario::far_apart_demands(g, 4, 10.0, a);
  const auto db = scenario::far_apart_demands(g, 4, 10.0, b);
  ASSERT_EQ(da.size(), 4u);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].source, db[i].source);
    EXPECT_EQ(da[i].target, db[i].target);
    EXPECT_EQ(da[i].amount, db[i].amount);
  }
  // A different seed reshuffles the admissible pairs.
  util::Rng c(2025);
  const auto dc = scenario::far_apart_demands(g, 4, 10.0, c);
  bool any_different = false;
  for (std::size_t i = 0; i < dc.size(); ++i) {
    any_different |= dc[i].source != da[i].source ||
                     dc[i].target != da[i].target;
  }
  EXPECT_TRUE(any_different);
}

scenario::SweepResult small_sweep(std::size_t threads) {
  scenario::RunnerOptions options;
  options.runs = 2;
  options.seed = 7;
  options.threads = threads;
  scenario::SweepRunner sweep("unit", "pairs", options);
  sweep.add_algorithm("SRT",
                      [](const core::RecoveryProblem& p,
                         scenario::RunContext&) {
                        return heuristics::solve_srt(p);
                      });
  sweep.add_point("2", bell_factory(2, 5.0));
  sweep.add_point("3", bell_factory(3, 5.0));
  return sweep.run();
}

TEST(SweepRunner, CollectsEveryPointInOrder) {
  const auto result = small_sweep(1);
  EXPECT_EQ(result.name, "unit");
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.x_values, (std::vector<std::string>{"2", "3"}));
  EXPECT_EQ(result.algorithm_names, (std::vector<std::string>{"SRT"}));
  for (const auto& point : result.points) {
    EXPECT_EQ(point.completed_runs, 2u);
  }
  EXPECT_GT(result.mean(0, "SRT", "total_repairs"), 0.0);
  EXPECT_GT(result.instance_mean(1, "broken_total"), 0.0);
}

TEST(SweepRunner, ResultsAreThreadCountInvariant) {
  const auto serial = small_sweep(1);
  const auto parallel = small_sweep(8);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    expect_identical(serial.points[i], parallel.points[i]);
  }
}

TEST(SweepRunner, CsvRoundTripMatchesTableValues) {
  const auto result = small_sweep(1);
  const std::string path = ::testing::TempDir() + "netrec_sweep.csv";
  const scenario::SeriesSpec spec{.metric = "total_repairs", .precision = 3};
  result.write_csv(path, spec);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    rows.push_back(cells);
  }
  std::remove(path.c_str());

  ASSERT_EQ(rows.size(), 3u);  // header + 2 points
  EXPECT_EQ(rows[0], (std::vector<std::string>{"pairs", "SRT"}));
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_EQ(rows[i + 1][0], result.x_values[i]);
    EXPECT_DOUBLE_EQ(std::stod(rows[i + 1][1]),
                     std::stod(util::format_double(
                         result.mean(i, "SRT", "total_repairs"), 3)));
  }
}

TEST(SweepRunner, JsonRoundTripPreservesTheFullResult) {
  const auto result = small_sweep(1);
  const std::string path = ::testing::TempDir() + "netrec_sweep.json";
  result.write_json(path);
  const util::Json loaded = util::read_json_file(path);
  std::remove(path.c_str());

  EXPECT_TRUE(loaded == result.to_json());
  EXPECT_EQ(loaded.at("sweep").as_string(), "unit");
  EXPECT_EQ(loaded.at("points").size(), 2u);
  const auto& point = loaded.at("points").at(0);
  EXPECT_EQ(point.at("pairs").as_string(), "2");
  EXPECT_EQ(point.at("completed_runs").as_number(), 2.0);
  const auto& srt = point.at("metrics").at("SRT");
  EXPECT_EQ(srt.at("total_repairs").at("mean").as_number(),
            result.mean(0, "SRT", "total_repairs"));
  EXPECT_EQ(srt.at("total_repairs").at("count").as_number(), 2.0);
  EXPECT_TRUE(point.at("instance").contains("broken_total"));
}

}  // namespace
}  // namespace netrec
