// ISP backend benchmark: ViewCache-cached snapshots vs the graph::legacy
// reference path, end to end.
//
// Runs the full ISP solver twice per seeded instance — once with
// IspBackend::kViewCache (cached working/full/metric snapshots, refresh on
// residual updates, rebuild on repairs) and once with IspBackend::kLegacy
// (a fresh snapshot or callback sweep per call, the pre-ViewCache shape) —
// on two scenario families:
//
//   * er        — Erdős–Rényi under heavy random disruption (prunes and
//                 splits both fire).  At the default n=300 the per-call
//                 snapshot builds are a real fraction of the solve and
//                 view reuse buys ~1.3x;
//   * bell_canada — the paper's Bell-Canada topology under complete
//                 destruction (repair-dominated, many iterations).  At 48
//                 nodes / 64 edges a snapshot build costs next to nothing,
//                 so this family pins backend *identity* at ~1.0x rather
//                 than demonstrating speedup — the cache's win grows with
//                 |E|, which is the point of recording both.
//
// The two backends are differential-tested to be bit-identical
// (tests/test_isp_differential.cpp); this driver re-checks the identity on
// its own instances — repair cost, repair count and satisfaction must match
// exactly or it refuses to report timings — then writes per-family mean
// seconds and the speedup to --json (default BENCH_isp.json), the artifact
// CI archives so the ISP perf trajectory accrues per PR.
//
// Like Fig 7a, wall time is the measured metric, so --threads defaults to 1.
#include <string>

#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "graph/traversal.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/json.hpp"

namespace {

using namespace netrec;

core::RecoverySolution run_isp(const core::RecoveryProblem& p,
                               core::IspBackend backend,
                               mcf::LpReuse lp_reuse) {
  core::IspOptions options;
  options.backend = backend;
  options.lp_reuse = lp_reuse;
  return core::IspSolver(p, options).solve();
}

int run(int argc, char** argv) {
#if !defined(NETREC_ENABLE_LEGACY)
  (void)argc;
  (void)argv;
  std::fprintf(stderr,
               "perf_isp: built without NETREC_ENABLE_LEGACY; the "
               "legacy-vs-viewcache comparison is unavailable\n");
  return 0;
#else
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("threads", "1",
               "worker threads (default 1: concurrent solves would inflate "
               "the wall-clock comparison)");
  flags.define("json", "BENCH_isp.json",
               "write per-family timings and speedups to this path");
  flags.define("nodes", "300", "Erdos-Renyi node count");
  flags.define("edge-prob", "0.03", "Erdos-Renyi edge probability");
  flags.define("pairs", "6", "demand pairs per instance");
  flags.define("flow", "3", "demand flow per pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const double edge_prob = flags.get_double("edge-prob");
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double flow = flags.get_double("flow");

  scenario::RunnerOptions options = bench::runner_options(flags);
  options.require_feasible = true;

  scenario::SweepRunner sweep("perf_isp", "family", options);
  sweep.add_algorithm(
      "isp/legacy", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return run_isp(p, core::IspBackend::kLegacy, mcf::LpReuse::kNone);
      });
  sweep.add_algorithm(
      "isp/viewcache",
      [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return run_isp(p, core::IspBackend::kViewCache, mcf::LpReuse::kNone);
      });
  sweep.add_algorithm(
      "isp/session",
      [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return run_isp(p, core::IspBackend::kViewCache,
                       mcf::LpReuse::kSession);
      });

  sweep.add_point("er", [nodes, edge_prob, pairs, flow](util::Rng& rng) {
    core::RecoveryProblem problem;
    topology::ErdosRenyiOptions eopt;
    eopt.nodes = nodes;
    eopt.edge_probability = edge_prob;
    eopt.capacity = 4.0 * flow;
    std::size_t attempts = 0;
    do {
      problem.graph = topology::make_topology(eopt, rng);
    } while (graph::hop_diameter(problem.graph) < 0 && ++attempts < 50);
    util::Rng demand_rng = rng.fork();
    problem.demands =
        scenario::far_apart_demands(problem.graph, pairs, flow, demand_rng);
    for (std::size_t n = 0; n < problem.graph.num_nodes(); ++n) {
      if (rng.chance(0.6)) {
        problem.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
      }
    }
    for (std::size_t e = 0; e < problem.graph.num_edges(); ++e) {
      if (rng.chance(0.6)) {
        problem.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
      }
    }
    return problem;
  });
  sweep.add_point("bell_canada", [pairs, flow](util::Rng& rng) {
    core::RecoveryProblem problem;
    problem.graph = topology::make_topology({topology::BellCanadaOptions{}});
    problem.demands =
        scenario::far_apart_demands(problem.graph, pairs, flow, rng);
    disruption::complete_destruction(problem.graph);
    return problem;
  });

  const std::vector<bench::SeriesOutput> series = {
      {"perf_isp: wall seconds per backend",
       {.metric = "wall_seconds", .precision = 4},
       ".time.csv"},
      {"perf_isp: repair cost (legacy == viewcache required)",
       {.metric = "repair_cost", .precision = 6},
       ".cost.csv"}};
  bench::preflight(flags, series);

  scenario::SweepResult result = sweep.run();
  bench::emit(result, series, flags);

  util::Json families = util::Json::object();
  const std::vector<std::string> family_names = {"er", "bell_canada"};
  bool all_identity_ok = true;
  for (std::size_t point = 0; point < family_names.size(); ++point) {
    // All three variants must agree exactly on every solution-identity
    // metric before the timing comparison means anything.  A mismatch is
    // *recorded* (identity_ok: false) so the CI tripwire gates on the
    // archived JSON, and the driver still exits nonzero below.
    bool identity_ok = true;
    for (const char* metric : {"repair_cost", "total_repairs",
                               "satisfied_pct"}) {
      const double legacy = result.mean(point, "isp/legacy", metric);
      const double cached = result.mean(point, "isp/viewcache", metric);
      const double session = result.mean(point, "isp/session", metric);
      if (legacy != cached || legacy != session) {
        identity_ok = false;
        all_identity_ok = false;
        std::fprintf(stderr, "perf_isp: %s %s diverges between variants\n",
                     family_names[point].c_str(), metric);
      }
    }
    const double legacy_s =
        result.mean(point, "isp/legacy", "wall_seconds");
    const double cached_s =
        result.mean(point, "isp/viewcache", "wall_seconds");
    const double session_s =
        result.mean(point, "isp/session", "wall_seconds");
    const double speedup = cached_s > 0.0 ? legacy_s / cached_s : 0.0;
    const double lp_reuse_speedup =
        session_s > 0.0 ? cached_s / session_s : 0.0;
    std::printf(
        "%s: legacy %.4fs  viewcache %.4fs (%.2fx)  session %.4fs "
        "(lp_reuse %.2fx)\n",
        family_names[point].c_str(), legacy_s, cached_s, speedup, session_s,
        lp_reuse_speedup);
    util::Json entry = util::Json::object();
    entry.set("legacy_seconds", legacy_s);
    entry.set("viewcache_seconds", cached_s);
    entry.set("session_seconds", session_s);
    entry.set("speedup", speedup);
    // viewcache (LpReuse::kNone) vs session (LpReuse::kSession), both on
    // the ViewCache backend: the pure path-LP reuse win.
    entry.set("lp_reuse_speedup", lp_reuse_speedup);
    entry.set("identity_ok", identity_ok);
    entry.set("repair_cost",
              result.mean(point, "isp/session", "repair_cost"));
    families.set(family_names[point], std::move(entry));
  }

  const std::string json_path = flags.get("json");
  if (!json_path.empty()) {
    util::Json out = util::Json::object();
    out.set("bench", "perf_isp");
    out.set("seed", static_cast<double>(options.seed));
    out.set("runs", options.runs);
    util::Json config = util::Json::object();
    config.set("nodes", nodes);
    config.set("edge_probability", edge_prob);
    config.set("pairs", pairs);
    config.set("flow", flow);
    out.set("config", std::move(config));
    out.set("families", std::move(families));
    out.set("sweep", result.to_json());
    util::write_json_file(json_path, out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::fflush(stdout);
  if (!all_identity_ok) {
    throw std::runtime_error(
        "perf_isp: solution identity diverged between variants — timings "
        "recorded with identity_ok: false, treat them as meaningless");
  }
  return 0;
#endif  // NETREC_ENABLE_LEGACY
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
