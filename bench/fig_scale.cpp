// fig_scale: internet-scale storage/pipeline sweep (extends Fig. 7 to 10^6).
//
// For each node count in --nodes-list the driver generates an RMAT instance
// through the Builder, round-trips it through the .ntb binary format (and,
// up to --gml-max-nodes, through GML for the text-parse comparison), breaks
// a --break-fraction slice of the edges, materialises the working GraphView
// and runs one ISP-style planning stage: per demand, a Dinic max-flow on
// the working view plus a repair-path Dijkstra over the full topology —
// exactly the per-iteration work of the ISP main loop, without the
// surrounding fixpoint so the 10^6 point finishes on a CI runner.
//
// Emitted JSON (--json, committed as BENCH_scale.json) records per point:
// build / save / load / parse wall times, file sizes, view-materialisation
// time, planning-stage time and peak RSS.  --require-speedup S turns the
// binary-vs-GML load ratio into a tripwire: exit 1 when the .ntb load of
// the largest GML-measured instance is not at least S times faster than
// the GML parse (CI runs S=10 on the 10^4 smoke instance).
//
// Flags:
//   --nodes-list L       comma-separated node counts (default sweeps
//                        10^3 -> 10^6)
//   --edge-factor F      RMAT edges-per-node target (default 8)
//   --seed S             generator / disruption / demand seed
//   --demands K          demand pairs in the planning stage
//   --break-fraction B   fraction of edges broken before planning
//   --gml-max-nodes N    skip the GML comparison above this size (a 10^6
//                        GML file is ~0.5 GB of text; the binary format is
//                        the point of this driver)
//   --workdir DIR        where the temporary .ntb/.gml files go (default:
//                        the system temp directory); files are deleted per
//                        point
//   --json PATH          write the sweep as JSON
//   --require-speedup S  tripwire threshold (0 = off)
#include <sys/resource.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/gml.hpp"
#include "graph/maxflow.hpp"
#include "graph/ntb.hpp"
#include "graph/view.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace netrec;

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

std::vector<std::size_t> parse_nodes_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto comma = text.find(',', pos);
    const auto end = comma == std::string::npos ? text.size() : comma;
    const std::string field = text.substr(pos, end - pos);
    try {
      std::size_t consumed = 0;
      const auto value = std::stoull(field, &consumed);
      if (consumed != field.size() || value == 0) throw std::exception();
      out.push_back(static_cast<std::size_t>(value));
    } catch (const std::exception&) {
      throw std::runtime_error("--nodes-list expects positive integers, got '" +
                               field + "'");
    }
    pos = end + 1;
  }
  if (out.empty()) throw std::runtime_error("empty --nodes-list");
  return out;
}

struct Point {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double build_seconds = 0.0;
  double ntb_save_seconds = 0.0;
  double ntb_load_seconds = 0.0;
  std::uintmax_t ntb_bytes = 0;
  bool gml_measured = false;
  double gml_save_seconds = 0.0;
  double gml_parse_seconds = 0.0;
  std::uintmax_t gml_bytes = 0;
  double view_seconds = 0.0;
  double plan_stage_seconds = 0.0;
  double plan_flow_total = 0.0;
  std::size_t plan_paths_found = 0;
  std::size_t plan_threads = 1;  ///< workers the planning stage fanned onto
  double peak_rss = 0.0;

  double load_speedup() const {
    return gml_measured && ntb_load_seconds > 0.0
               ? gml_parse_seconds / ntb_load_seconds
               : 0.0;
  }
};

Point run_point(std::size_t nodes, double edge_factor, std::uint64_t seed,
                std::size_t demands, double break_fraction,
                std::size_t gml_max_nodes, std::size_t plan_threads,
                const std::filesystem::path& workdir) {
  Point point;
  point.nodes = nodes;

  // --- build: RMAT through the Builder -----------------------------------
  topology::RmatOptions rmat;
  rmat.nodes = nodes;
  rmat.edge_factor = edge_factor;
  util::Timer timer;
  graph::Graph g = topology::make_topology({rmat, seed});
  point.build_seconds = timer.elapsed_seconds();
  point.edges = g.num_edges();

  // --- binary round trip ---------------------------------------------------
  const auto ntb_path = workdir / ("fig_scale_" + std::to_string(nodes) +
                                   ".ntb");
  timer.reset();
  graph::save_ntb_file(g, ntb_path.string());
  point.ntb_save_seconds = timer.elapsed_seconds();
  point.ntb_bytes = std::filesystem::file_size(ntb_path);

  timer.reset();
  graph::Graph loaded = graph::load_ntb_file(ntb_path.string());
  point.ntb_load_seconds = timer.elapsed_seconds();
  if (loaded.num_nodes() != g.num_nodes() ||
      loaded.num_edges() != g.num_edges()) {
    throw std::runtime_error("fig_scale: .ntb round trip changed the graph");
  }
  std::filesystem::remove(ntb_path);

  // --- GML comparison (text parse is the baseline the binary format beats)
  if (nodes <= gml_max_nodes) {
    const auto gml_path = workdir / ("fig_scale_" + std::to_string(nodes) +
                                     ".gml");
    timer.reset();
    graph::save_gml_file(g, gml_path.string());
    point.gml_save_seconds = timer.elapsed_seconds();
    point.gml_bytes = std::filesystem::file_size(gml_path);

    timer.reset();
    graph::Graph parsed = graph::load_gml_file(gml_path.string());
    point.gml_parse_seconds = timer.elapsed_seconds();
    point.gml_measured = true;
    if (parsed.num_edges() != g.num_edges()) {
      throw std::runtime_error("fig_scale: GML round trip changed the graph");
    }
    std::filesystem::remove(gml_path);
  }

  // --- disruption: break a slice of the edges (nodes stay up so every
  // demand endpoint remains valid) -----------------------------------------
  util::Rng rng(seed ^ 0x5ca1eULL);
  const auto broken_target = static_cast<std::size_t>(
      break_fraction * static_cast<double>(loaded.num_edges()));
  while (loaded.num_broken_edges() < broken_target) {
    const auto e = static_cast<graph::EdgeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(loaded.num_edges()) - 1));
    loaded.set_edge_broken(e, true);
  }

  // --- view materialisation ------------------------------------------------
  timer.reset();
  graph::GraphView working = graph::GraphView::working(loaded);
  point.view_seconds = timer.elapsed_seconds();

  // --- one ISP-style planning stage: per demand, max-flow on the working
  // subgraph + repair-path Dijkstra over the full topology ------------------
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  while (pairs.size() < demands) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(loaded.num_nodes()) - 1));
    const auto t = static_cast<graph::NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(loaded.num_nodes()) - 1));
    if (s != t) pairs.emplace_back(s, t);
  }

  timer.reset();
  graph::GraphView full = graph::GraphView::build(loaded, {});
  // Each demand's max-flow + repair Dijkstra only reads the two immutable
  // views, so the pairs fan out onto the pool into per-demand slots and the
  // totals reduce serially in demand order — the sums (and therefore the
  // JSON) are identical at any --plan-threads value.
  std::optional<util::ThreadPool> pool_storage;
  util::ThreadPool* pool =
      util::ThreadPool::acquire(pool_storage, plan_threads, nullptr);
  point.plan_threads = pool != nullptr ? pool->size() : 1;
  std::vector<double> flows(pairs.size(), 0.0);
  std::vector<char> path_found(pairs.size(), 0);
  const auto plan_one = [&](std::size_t i) {
    const auto [s, t] = pairs[i];
    flows[i] = graph::max_flow(working, s, t).value;
    const auto tree = graph::dijkstra(full, s);
    path_found[i] = tree.path_to(loaded, t) ? 1 : 0;
  };
  if (pool != nullptr) {
    pool->parallel_for(pairs.size(), plan_one);
  } else {
    for (std::size_t i = 0; i < pairs.size(); ++i) plan_one(i);
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    point.plan_flow_total += flows[i];
    if (path_found[i] != 0) ++point.plan_paths_found;
  }
  point.plan_stage_seconds = timer.elapsed_seconds();

  point.peak_rss = peak_rss_mb();
  return point;
}

util::Json to_json(const Point& p) {
  util::Json row = util::Json::object();
  row.set("nodes", p.nodes);
  row.set("edges", p.edges);
  row.set("build_seconds", p.build_seconds);
  row.set("ntb_save_seconds", p.ntb_save_seconds);
  row.set("ntb_load_seconds", p.ntb_load_seconds);
  row.set("ntb_bytes", static_cast<double>(p.ntb_bytes));
  if (p.gml_measured) {
    row.set("gml_save_seconds", p.gml_save_seconds);
    row.set("gml_parse_seconds", p.gml_parse_seconds);
    row.set("gml_bytes", static_cast<double>(p.gml_bytes));
    row.set("gml_load_speedup", p.load_speedup());
  }
  row.set("view_seconds", p.view_seconds);
  row.set("plan_stage_seconds", p.plan_stage_seconds);
  row.set("plan_flow_total", p.plan_flow_total);
  row.set("plan_paths_found", p.plan_paths_found);
  row.set("plan_threads", p.plan_threads);
  row.set("peak_rss_mb", p.peak_rss);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("nodes-list", "1000,10000,100000,1000000",
               "comma-separated node counts to sweep");
  flags.define("edge-factor", "8.0", "RMAT edges per node");
  flags.define("seed", "7", "generator / disruption / demand seed");
  flags.define("demands", "4", "demand pairs in the planning stage");
  flags.define("break-fraction", "0.01",
               "fraction of edges broken before planning");
  flags.define("gml-max-nodes", "100000",
               "skip the GML comparison above this node count");
  flags.define("plan-threads", "0",
               "planning-stage worker threads; totals are identical at any "
               "value (0 = NETREC_THREADS or hardware concurrency)");
  flags.define("workdir", "", "temp-file directory (default: system tmp)");
  flags.define("json", "", "write the sweep as JSON to this path");
  flags.define("require-speedup", "0.0",
               "fail unless .ntb load beats GML parse by this factor "
               "on the largest GML-measured instance (0 = off)");
  if (!flags.parse(argc, argv)) {
    std::fputs(flags.usage("bench_fig_scale").c_str(), stdout);
    return 2;
  }

  try {
    const auto nodes_list = parse_nodes_list(flags.get("nodes-list"));
    const double edge_factor = flags.get_double("edge-factor");
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    const auto demands = static_cast<std::size_t>(flags.get_int("demands"));
    const double break_fraction = flags.get_double("break-fraction");
    const auto gml_max_nodes =
        static_cast<std::size_t>(flags.get_int("gml-max-nodes"));
    const auto plan_threads =
        static_cast<std::size_t>(flags.get_int("plan-threads"));
    const double require_speedup = flags.get_double("require-speedup");
    const std::filesystem::path workdir =
        flags.get("workdir").empty()
            ? std::filesystem::temp_directory_path()
            : std::filesystem::path(flags.get("workdir"));

    std::printf(
        "%10s %10s %9s %9s %9s %9s %9s %9s %9s %9s\n", "nodes", "edges",
        "build_s", "ntb_w_s", "ntb_r_s", "gml_r_s", "speedup", "view_s",
        "plan_s", "rss_mb");

    std::vector<Point> points;
    for (const std::size_t nodes : nodes_list) {
      Point p = run_point(nodes, edge_factor, seed, demands, break_fraction,
                          gml_max_nodes, plan_threads, workdir);
      std::printf(
          "%10zu %10zu %9.3f %9.3f %9.3f %9s %9s %9.3f %9.3f %9.1f\n",
          p.nodes, p.edges, p.build_seconds, p.ntb_save_seconds,
          p.ntb_load_seconds,
          p.gml_measured ? std::to_string(p.gml_parse_seconds).c_str() : "-",
          p.gml_measured ? std::to_string(p.load_speedup()).c_str() : "-",
          p.view_seconds, p.plan_stage_seconds, p.peak_rss);
      std::fflush(stdout);
      points.push_back(p);
    }

    // Tripwire: the largest instance with a GML measurement.
    const Point* gml_point = nullptr;
    for (const Point& p : points) {
      if (p.gml_measured) gml_point = &p;
    }
    bool tripwire_ok = true;
    if (require_speedup > 0.0) {
      if (gml_point == nullptr) {
        std::fprintf(stderr,
                     "fig_scale: --require-speedup set but no instance was "
                     "small enough for the GML comparison\n");
        tripwire_ok = false;
      } else if (gml_point->load_speedup() < require_speedup) {
        std::fprintf(stderr,
                     "fig_scale: tripwire FAILED at n=%zu: .ntb load only "
                     "%.1fx faster than GML parse (need %.1fx)\n",
                     gml_point->nodes, gml_point->load_speedup(),
                     require_speedup);
        tripwire_ok = false;
      } else {
        std::printf("fig_scale: tripwire ok at n=%zu: %.1fx >= %.1fx\n",
                    gml_point->nodes, gml_point->load_speedup(),
                    require_speedup);
      }
    }

    const std::string json_path = flags.get("json");
    if (!json_path.empty()) {
      util::Json doc = util::Json::object();
      doc.set("driver", "fig_scale");
      doc.set("seed", static_cast<double>(seed));
      doc.set("edge_factor", edge_factor);
      doc.set("demands", demands);
      doc.set("break_fraction", break_fraction);
      util::Json rows = util::Json::array();
      for (const Point& p : points) rows.push_back(to_json(p));
      doc.set("points", std::move(rows));
      if (require_speedup > 0.0) {
        util::Json trip = util::Json::object();
        trip.set("require_speedup", require_speedup);
        trip.set("measured_speedup",
                 gml_point != nullptr ? gml_point->load_speedup() : 0.0);
        trip.set("ok", tripwire_ok);
        doc.set("tripwire", std::move(trip));
      }
      util::write_json_file(json_path, doc);
      std::printf("fig_scale: wrote %s\n", json_path.c_str());
    }
    return tripwire_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig_scale: %s\n", e.what());
    return 1;
  }
}
