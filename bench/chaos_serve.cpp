// chaos_serve: availability and identity under injected faults.
//
// Spawns an in-process serve::Server, precomputes the expected plan bytes
// for a deterministic scenario set (full ISP solves AND the heuristic
// fallback each scenario degrades to), then sweeps a list of fault rates.
// At each rate the util::fault registry is re-armed with a spec scaled to
// the rate — dropped reads/writes, forced cache misses and dropped
// inserts, injected solve deadlines (degraded responses), recoverable
// pool-task faults (503s) and periodic worker-killing engine crashes —
// and a fleet of retrying serve::Clients drives /v1/plan.
//
// Per rate the bench records:
//   availability      requests answered 2xx after client retries
//   degraded_rate     200s served by the heuristic fallback
//   transient_errors  resets/503s absorbed by retries along the way
//   worker_restarts   supervisor respawns during the level
//   identity_ok       every non-degraded 200 bit-identical to a direct
//                     solve, every degraded 200 bit-identical to the
//                     heuristic fallback plan
//
// The daemon must survive the whole sweep: after the last level the bench
// disarms every site and requires a clean /v1/health round-trip plus a
// clean stop().  Exit is non-zero on any identity violation or on a dead
// server.
//
// --port targets an externally started netrecd instead (the CI smoke job
// arms that daemon's sites via --faults); the bench then runs a single
// level without arming anything locally and reads worker_restarts from
// /v1/metrics.
//
// Output: table + --json (BENCH_chaos.json).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/preload.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;

struct Scenario {
  serve::PlanRequest request;
  std::string body;                // wire request
  std::string expected_full;       // direct full-solve payload bytes
  std::string expected_degraded;   // heuristic-fallback payload bytes
  std::string fingerprint;
};

/// Deterministic damage scenarios (same derivation as load_serve).
std::vector<Scenario> make_scenarios(const core::RecoveryProblem& problem,
                                     std::size_t count,
                                     std::size_t damage_nodes,
                                     std::size_t damage_edges,
                                     std::uint64_t seed) {
  std::vector<Scenario> scenarios(count);
  util::Rng rng(seed);
  for (std::size_t s = 0; s < count; ++s) {
    serve::PlanRequest& request = scenarios[s].request;
    for (std::size_t i = 0; i < damage_nodes; ++i) {
      request.broken_nodes.push_back(static_cast<graph::NodeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(problem.graph.num_nodes()) - 1)));
    }
    for (std::size_t i = 0; i < damage_edges; ++i) {
      request.broken_edges.push_back(static_cast<graph::EdgeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(problem.graph.num_edges()) - 1)));
    }
    std::sort(request.broken_nodes.begin(), request.broken_nodes.end());
    request.broken_nodes.erase(
        std::unique(request.broken_nodes.begin(), request.broken_nodes.end()),
        request.broken_nodes.end());
    std::sort(request.broken_edges.begin(), request.broken_edges.end());
    request.broken_edges.erase(
        std::unique(request.broken_edges.begin(), request.broken_edges.end()),
        request.broken_edges.end());

    util::Json body = util::Json::object();
    util::Json nodes = util::Json::array();
    for (graph::NodeId n : request.broken_nodes) {
      nodes.push_back(static_cast<double>(n));
    }
    util::Json edges = util::Json::array();
    for (graph::EdgeId e : request.broken_edges) {
      edges.push_back(static_cast<double>(e));
    }
    body.set("broken_nodes", std::move(nodes));
    body.set("broken_edges", std::move(edges));
    scenarios[s].body = body.dump();
    scenarios[s].fingerprint = serve::fingerprint(request);
  }
  return scenarios;
}

/// Extracts the verbatim "result" bytes (see load_serve for the rationale).
bool extract_result_bytes(const std::string& response, std::string& out) {
  static const std::string kPrefix = "{\"result\":";
  static const std::string kMeta = ",\"meta\":{\"fingerprint\":";
  if (response.rfind(kPrefix, 0) != 0) return false;
  const std::size_t meta = response.rfind(kMeta);
  if (meta == std::string::npos || meta < kPrefix.size()) return false;
  out = response.substr(kPrefix.size(), meta - kPrefix.size());
  return true;
}

/// Fault spec for one sweep level.  Every serving-path site is armed,
/// scaled so the *per-request* failure probability stays in the same ball
/// park as `rate` even though a request crosses several sites; the
/// engine-crash site uses a deterministic every<N> trigger so each
/// non-zero level provokes worker respawns.
std::string spec_for_rate(double rate) {
  char buf[256];
  // engine.solve counts *solves*, and most requests are cache hits: the
  // site's traffic is roughly rate * requests (the forced cache misses),
  // so the crash period must be short for every non-zero level to provoke
  // respawns.  Re-arming at each level resets the hit counters.
  std::snprintf(buf, sizeof(buf),
                "serve.recv=p%g,serve.send=p%g,serve.cache.find=p%g,"
                "serve.cache.insert=p%g,isp.deadline=p%g,pool.task=p%g,"
                "engine.solve=every4",
                rate / 2.0, rate / 2.0, rate, rate, rate, rate / 4.0);
  return buf;
}

struct ChaosLevel {
  double rate = 0.0;
  std::size_t requests = 0;
  std::size_t ok = 0;        // 2xx after retries
  std::size_t degraded = 0;  // of ok, served by the heuristic fallback
  std::size_t failed = 0;    // no 2xx within the retry budget
  std::size_t transient_errors = 0;
  std::uint64_t worker_restarts = 0;  // during this level
  bool identity_ok = true;

  double availability() const {
    return requests == 0
               ? 1.0
               : static_cast<double>(ok) / static_cast<double>(requests);
  }
  double degraded_rate() const {
    return ok == 0 ? 0.0
                   : static_cast<double>(degraded) / static_cast<double>(ok);
  }
};

/// Drives one level: `clients` threads x `requests_per_client` requests
/// through retrying Clients, classifying and identity-checking every
/// response.
ChaosLevel run_level(const std::string& host, int port,
                     const std::vector<Scenario>& scenarios, double rate,
                     std::size_t clients, std::size_t requests_per_client,
                     std::mutex& failure_mutex, std::string& first_failure) {
  ChaosLevel level;
  level.rate = rate;
  std::vector<std::size_t> ok(clients, 0);
  std::vector<std::size_t> degraded(clients, 0);
  std::vector<std::size_t> failed(clients, 0);
  std::vector<std::size_t> transients(clients, 0);
  std::vector<bool> identity(clients, true);

  const auto note_failure = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(failure_mutex);
    if (first_failure.empty()) first_failure = message;
  };

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ClientOptions copt;
      copt.max_attempts = 6;  // chaos levels need headroom over the default
      copt.initial_backoff_ms = 5.0;
      copt.max_backoff_ms = 100.0;
      copt.jitter_seed = 0xc4a05u + c;
      serve::Client client(host, port, copt);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const Scenario& scenario = scenarios[(c + i) % scenarios.size()];
        const serve::ClientResult result =
            client.request("POST", "/v1/plan", scenario.body);
        transients[c] += static_cast<std::size_t>(result.transient_errors);
        if (result.response.status != 200) {
          ++failed[c];
          note_failure(
              result.response.status == 0
                  ? "transport exhausted: " + result.error
                  : "status " + std::to_string(result.response.status) +
                        " after retries, scenario " + scenario.fingerprint);
          continue;
        }
        ++ok[c];
        const std::string& response = result.response.body;
        const bool is_degraded =
            response.find("\"degraded\":true") != std::string::npos;
        if (is_degraded) ++degraded[c];
        std::string result_bytes;
        const std::string& expected =
            is_degraded ? scenario.expected_degraded : scenario.expected_full;
        if (!extract_result_bytes(response, result_bytes) ||
            result_bytes != expected) {
          identity[c] = false;
          note_failure("scenario " + scenario.fingerprint + " (" +
                       (is_degraded ? "degraded" : "full") +
                       "): response/result byte mismatch");
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t c = 0; c < clients; ++c) {
    level.requests += requests_per_client;
    level.ok += ok[c];
    level.degraded += degraded[c];
    level.failed += failed[c];
    level.transient_errors += transients[c];
    if (!identity[c]) level.identity_ok = false;
  }
  return level;
}

/// worker_restarts as reported by the server itself (/v1/metrics), used in
/// external mode where the Server object is out of reach.
std::uint64_t metrics_worker_restarts(const std::string& host, int port) {
  serve::Client client(host, port);
  const serve::ClientResult result = client.request("GET", "/v1/metrics");
  if (result.response.status != 200) return 0;
  try {
    const util::Json metrics = util::Json::parse(result.response.body);
    return static_cast<std::uint64_t>(
        metrics.at("server").at("worker_restarts").as_number());
  } catch (const std::exception&) {
    return 0;
  }
}

int run(int argc, char** argv) {
  util::Flags flags;
  serve::declare_preload_flags(flags);
  flags.define("host", "127.0.0.1", "server address");
  flags.define("port", "0",
               "target an external netrecd (single level, no local arming); "
               "0 = spawn an in-process server and sweep --rates");
  flags.define("rates", "0,0.02,0.05,0.1",
               "fault rates to sweep (in-process mode)");
  flags.define("clients", "8", "concurrent client threads per level");
  flags.define("requests", "24", "requests per client per level");
  flags.define("scenarios", "6", "deterministic damage scenarios");
  flags.define("damage-nodes", "3", "broken nodes drawn per scenario");
  flags.define("damage-edges", "2", "broken edges drawn per scenario");
  flags.define("seed", "42", "scenario RNG seed");
  flags.define("fault-seed", "7", "fault-injection decision seed");
  flags.define("workers", "4", "in-process server worker threads");
  flags.define("json", "BENCH_chaos.json", "output path ('' = skip)");
  flags.define("verbose", "false", "log server diagnostics to stderr");
  if (!bench::parse_or_usage(flags, argc, argv)) return 2;

  const core::RecoveryProblem problem = serve::build_preloaded_problem(flags);
  std::printf("preloaded: %s\n",
              serve::describe_preload(problem, flags).c_str());

  std::vector<Scenario> scenarios = make_scenarios(
      problem, static_cast<std::size_t>(flags.get_int("scenarios")),
      static_cast<std::size_t>(flags.get_int("damage-nodes")),
      static_cast<std::size_t>(flags.get_int("damage-edges")),
      static_cast<std::uint64_t>(flags.get_int("seed")));

  // Both identity baselines are computed BEFORE any fault is armed: the
  // full serial solve every healthy response must match, and the heuristic
  // fallback every degraded response must match.
  {
    serve::PlanningEngine direct(problem);
    for (Scenario& scenario : scenarios) {
      scenario.expected_full = direct.solve(scenario.request).payload.dump();
      scenario.expected_degraded =
          direct.heuristic_plan(scenario.request).dump();
    }
    std::printf("baselines: %zu scenarios (full + degraded)\n",
                scenarios.size());
  }

  std::string host = flags.get("host");
  int port = flags.get_int("port");
  const bool external = port != 0;
  std::unique_ptr<serve::Server> server;
  if (!external) {
    serve::ServerOptions options;
    options.workers = static_cast<std::size_t>(flags.get_int("workers"));
    server = std::make_unique<serve::Server>(problem, options);
    server->start();
    host = "127.0.0.1";
    port = server->port();
    std::printf("in-process server on port %d (%zu workers)\n", port,
                options.workers);
  }

  std::vector<double> rates =
      external ? std::vector<double>{0.0} : flags.get_double_list("rates");
  const auto clients = static_cast<std::size_t>(flags.get_int("clients"));
  const auto requests_per_client =
      static_cast<std::size_t>(flags.get_int("requests"));
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed"));

  std::mutex failure_mutex;
  std::string first_failure;
  std::vector<ChaosLevel> levels;
  std::uint64_t restarts_before =
      external ? metrics_worker_restarts(host, port)
               : server->worker_restarts();

  std::printf("\n%8s %9s %13s %10s %8s %11s %9s %9s\n", "rate", "requests",
              "availability", "degraded", "failed", "transients", "restarts",
              "identity");
  for (double rate : rates) {
    if (!external) {
      util::fault::disarm_all();
      if (rate > 0.0) util::fault::arm(spec_for_rate(rate), fault_seed);
    }
    ChaosLevel level =
        run_level(host, port, scenarios, rate, clients, requests_per_client,
                  failure_mutex, first_failure);
    const std::uint64_t restarts_after =
        external ? metrics_worker_restarts(host, port)
                 : server->worker_restarts();
    level.worker_restarts = restarts_after - restarts_before;
    restarts_before = restarts_after;
    std::printf("%8.3f %9zu %12.1f%% %9.1f%% %8zu %11zu %9llu %9s\n",
                level.rate, level.requests, 100.0 * level.availability(),
                100.0 * level.degraded_rate(), level.failed,
                level.transient_errors,
                static_cast<unsigned long long>(level.worker_restarts),
                level.identity_ok ? "OK" : "FAIL");
    levels.push_back(level);
  }
  if (!external) util::fault::disarm_all();

  // The daemon must have survived the whole sweep: clean health round-trip
  // with every site disarmed, then (in-process) a clean stop().
  bool alive = false;
  {
    serve::Client client(host, port);
    const serve::ClientResult health = client.request("GET", "/v1/health");
    alive = health.response.status == 200;
  }
  std::uint64_t total_restarts = 0;
  for (const ChaosLevel& level : levels) {
    total_restarts += level.worker_restarts;
  }
  if (server) {
    server->stop();
    server.reset();
  }

  bool identity_ok = true;
  for (const ChaosLevel& level : levels) {
    identity_ok = identity_ok && level.identity_ok;
  }
  std::printf("\nserver alive after sweep: %s\n", alive ? "yes" : "NO");
  std::printf("worker restarts: %llu\n",
              static_cast<unsigned long long>(total_restarts));
  std::printf("identity check: %s\n",
              identity_ok
                  ? "OK — healthy responses match direct solves, degraded "
                    "responses match the heuristic fallback"
                  : ("FAILED — " + first_failure).c_str());

  const std::string json_path = flags.get("json");
  if (!json_path.empty()) {
    util::Json out = util::Json::object();
    out.set("bench", "chaos_serve");
    out.set("identity_ok", identity_ok);
    out.set("server_alive", alive);
    out.set("worker_restarts", total_restarts);
    util::Json config = util::Json::object();
    config.set("topology", flags.get("topology"));
    config.set("scenarios", scenarios.size());
    config.set("clients", clients);
    config.set("requests_per_client", requests_per_client);
    config.set("fault_seed", fault_seed);
    config.set("external_server", external);
    out.set("config", std::move(config));
    util::Json series = util::Json::array();
    for (const ChaosLevel& level : levels) {
      util::Json entry = util::Json::object();
      entry.set("rate", level.rate);
      entry.set("requests", level.requests);
      entry.set("ok", level.ok);
      entry.set("failed", level.failed);
      entry.set("availability", level.availability());
      entry.set("degraded", level.degraded);
      entry.set("degraded_rate", level.degraded_rate());
      entry.set("transient_errors", level.transient_errors);
      entry.set("worker_restarts", level.worker_restarts);
      entry.set("identity_ok", level.identity_ok);
      series.push_back(std::move(entry));
    }
    out.set("levels", std::move(series));
    util::write_json_file(json_path, out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identity_ok && alive ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
