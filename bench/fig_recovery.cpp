// Recovery-dynamics sweep: repair policy × disaster dynamics, staged.
//
// The paper's figures score one-shot plans; this driver scores *processes*.
// For each scenario family (Erdős–Rényi under a Gaussian regional disaster,
// Bell-Canada under complete destruction) it runs every repair policy
// (replay the one-shot ISP plan, re-plan per stage, betweenness-greedy,
// list-order and random baselines) against every dynamics model (static,
// decaying aftershock sequence, capacity-overload cascade) over --runs
// seeded instances on the deterministic seed-split thread pool, and
// reports restoration AUC (padded to --max-stages so series of different
// lengths share a time axis), final restored percentage, repairs and
// stages-to-90%.
//
// The ER family is additionally re-run at --threads 1 to record the
// parallel sweep's thread scaling into --json (default
// BENCH_recovery.json, the artifact CI archives): wall seconds at 1 and N
// threads, the speedup, and an identical_aggregates flag confirming the
// two runs agreed bit-for-bit on every non-wall metric — the engine's
// determinism contract.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "graph/traversal.hpp"
#include "recovery/dynamics.hpp"
#include "recovery/policies.hpp"
#include "scenario/timeline_runner.hpp"
#include "topology/generator.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace netrec;

const std::vector<std::string> kAggregateMetrics = {
    "restoration_auc", "final_pct",   "total_repairs", "repair_cost",
    "stages",          "stages_to_90", "shock_breaks"};

std::vector<std::pair<std::string, scenario::PolicyFactory>> make_policies() {
  std::vector<std::pair<std::string, scenario::PolicyFactory>> policies;
  policies.emplace_back("replay", [] {
    return std::make_unique<recovery::ReplayPolicy>();
  });
  policies.emplace_back("replan", [] {
    return std::make_unique<recovery::ReplanPolicy>();
  });
  policies.emplace_back("betweenness", [] {
    return std::make_unique<recovery::BetweennessGreedyPolicy>();
  });
  policies.emplace_back("list", [] {
    return std::make_unique<recovery::ListOrderPolicy>();
  });
  policies.emplace_back("random", [] {
    return std::make_unique<recovery::RandomPolicy>();
  });
  return policies;
}

std::vector<std::pair<std::string, scenario::DynamicsFactory>> make_dynamics(
    const util::Flags& flags) {
  disruption::AftershockOptions aopts;
  aopts.first.variance = flags.get_double("aftershock-variance");
  aopts.decay = flags.get_double("aftershock-decay");
  aopts.max_shocks = static_cast<std::size_t>(flags.get_int("aftershocks"));
  disruption::CascadeOptions copts;
  copts.overload_factor = flags.get_double("overload");

  std::vector<std::pair<std::string, scenario::DynamicsFactory>> dynamics;
  dynamics.emplace_back("static", [] {
    return std::make_unique<recovery::StaticDynamics>();
  });
  dynamics.emplace_back("aftershock", [aopts] {
    return std::make_unique<recovery::AftershockDynamics>(aopts);
  });
  dynamics.emplace_back("cascade", [copts] {
    return std::make_unique<recovery::CascadeDynamics>(copts);
  });
  return dynamics;
}

/// policy-rows × dynamics-columns matrix of one metric's per-cell means;
/// first row is the header.  One builder feeds both the printed table and
/// the CSV the CI determinism check compares, so they cannot desync.
std::vector<std::vector<std::string>> cell_matrix(
    const scenario::TimelineAggregate& aggregate,
    const std::vector<std::pair<std::string, scenario::PolicyFactory>>&
        policies,
    const std::vector<std::pair<std::string, scenario::DynamicsFactory>>&
        dynamics,
    const std::string& metric, int precision) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"policy"};
  for (const auto& [name, factory] : dynamics) header.push_back(name);
  rows.push_back(std::move(header));
  for (const auto& [policy_name, policy_factory] : policies) {
    std::vector<std::string> row{policy_name};
    for (const auto& [dynamics_name, dynamics_factory] : dynamics) {
      const auto& cell = aggregate.per_cell.at(
          scenario::timeline_cell_name(policy_name, dynamics_name));
      row.push_back(
          util::format_double(cell.get(metric).mean(), precision));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_cell_table(std::vector<std::vector<std::string>> matrix) {
  util::Table table(std::move(matrix.front()));
  for (std::size_t r = 1; r < matrix.size(); ++r) {
    table.add_row(std::move(matrix[r]));
  }
  table.print();
}

void write_cell_csv(const std::string& path,
                    const std::vector<std::vector<std::string>>& matrix) {
  util::CsvWriter csv(path);
  for (const auto& row : matrix) csv.row(row);
}

util::Json aggregate_to_json(const scenario::TimelineAggregate& aggregate) {
  util::Json cells = util::Json::object();
  for (const std::string& name : aggregate.cell_names) {
    const util::MetricSet& metrics = aggregate.per_cell.at(name);
    util::Json entry = util::Json::object();
    for (const std::string& metric : kAggregateMetrics) {
      util::Json stat = util::Json::object();
      stat.set("mean", metrics.get(metric).mean());
      stat.set("stddev", metrics.get(metric).stddev());
      entry.set(metric, std::move(stat));
    }
    entry.set("wall_seconds", metrics.get("wall_seconds").mean());
    cells.set(name, std::move(entry));
  }
  util::Json out = util::Json::object();
  out.set("completed_runs", aggregate.completed_runs);
  out.set("cells", std::move(cells));
  util::Json instance = util::Json::object();
  for (const std::string& metric :
       {"broken_nodes", "broken_edges", "broken_total", "total_demand"}) {
    instance.set(metric, aggregate.instance.get(metric).mean());
  }
  out.set("instance", std::move(instance));
  return out;
}

/// Every non-wall aggregate equal, exactly — the determinism contract
/// between two runs of the same sweep at different thread counts.
bool aggregates_identical(const scenario::TimelineAggregate& a,
                          const scenario::TimelineAggregate& b) {
  if (a.cell_names != b.cell_names) return false;
  if (a.completed_runs != b.completed_runs) return false;
  for (const std::string& cell : a.cell_names) {
    const auto& ma = a.per_cell.at(cell);
    const auto& mb = b.per_cell.at(cell);
    for (const std::string& metric : kAggregateMetrics) {
      if (ma.get(metric).mean() != mb.get(metric).mean()) return false;
      if (ma.get(metric).stddev() != mb.get(metric).stddev()) return false;
    }
  }
  return true;
}

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/6);
  flags.define("json", "BENCH_recovery.json",
               "write the policy x dynamics sweep and thread-scaling "
               "record to this path");
  flags.define("budget", "6", "repairs per stage (crew budget)");
  flags.define("max-stages", "32",
               "stage cap; also the AUC padding horizon");
  flags.define("nodes", "100", "Erdos-Renyi node count");
  flags.define("edge-prob", "0.05", "Erdos-Renyi edge probability");
  flags.define("pairs", "4", "demand pairs per instance");
  flags.define("flow", "3", "demand flow per pair");
  flags.define("variance", "40",
               "Gaussian variance of the ER family's initial disaster");
  flags.define("aftershock-variance", "35",
               "variance of the first aftershock");
  flags.define("aftershock-decay", "0.5",
               "aftershock variance decay per stage");
  flags.define("aftershocks", "3", "aftershock count");
  flags.define("overload", "0.3",
               "cascade overload factor (load > factor * capacity breaks)");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const double edge_prob = flags.get_double("edge-prob");
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double flow = flags.get_double("flow");
  const double variance = flags.get_double("variance");

  scenario::TimelineRunnerOptions options;
  options.runs = static_cast<std::size_t>(flags.get_int("runs"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.threads = static_cast<std::size_t>(flags.get_int("threads"));
  options.require_feasible = true;
  options.timeline.stage_budget =
      static_cast<std::size_t>(flags.get_int("budget"));
  options.timeline.max_stages =
      static_cast<std::size_t>(flags.get_int("max-stages"));

  const auto policies = make_policies();
  const auto dynamics = make_dynamics(flags);

  const scenario::ProblemFactory er_factory =
      [nodes, edge_prob, pairs, flow, variance](util::Rng& rng) {
        core::RecoveryProblem problem;
        topology::ErdosRenyiOptions eopt;
        eopt.nodes = nodes;
        eopt.edge_probability = edge_prob;
        eopt.capacity = 4.0 * flow;
        std::size_t attempts = 0;
        do {
          problem.graph = topology::make_topology(eopt, rng);
        } while (graph::hop_diameter(problem.graph) < 0 && ++attempts < 50);
        util::Rng demand_rng = rng.fork();
        problem.demands = scenario::far_apart_demands(problem.graph, pairs,
                                                      flow, demand_rng);
        disruption::GaussianDisasterOptions gopt;
        gopt.variance = variance;
        disruption::gaussian_disaster(problem.graph, gopt, rng);
        return problem;
      };
  const scenario::ProblemFactory bell_factory = [pairs, flow](util::Rng& rng) {
    core::RecoveryProblem problem;
    problem.graph = topology::make_topology({topology::BellCanadaOptions{}});
    problem.demands =
        scenario::far_apart_demands(problem.graph, pairs, flow, rng);
    disruption::complete_destruction(problem.graph);
    return problem;
  };

  const std::string csv = flags.get("csv");
  const std::string json_path = flags.get("json");
  // Fail-fast preflight on every output destination.
  const std::vector<std::string> csv_suffixes = {
      ".er.auc.csv", ".er.final.csv", ".bell_canada.auc.csv",
      ".bell_canada.final.csv"};
  if (!csv.empty()) {
    for (const auto& suffix : csv_suffixes) {
      util::CsvWriter probe(csv + suffix);
    }
  }
  if (!json_path.empty()) {
    util::write_json_file(json_path, util::Json::object());
  }

  util::Json families = util::Json::object();
  scenario::TimelineAggregate er_aggregate;
  double er_seconds = 0.0;
  const std::vector<
      std::pair<std::string, const scenario::ProblemFactory*>>
      family_list = {{"er", &er_factory}, {"bell_canada", &bell_factory}};
  for (const auto& [family, factory] : family_list) {
    util::Timer timer;
    const auto aggregate =
        scenario::run_timelines(*factory, policies, dynamics, options);
    const double seconds = timer.elapsed_seconds();
    const auto auc_matrix =
        cell_matrix(aggregate, policies, dynamics, "restoration_auc", 6);
    const auto final_matrix =
        cell_matrix(aggregate, policies, dynamics, "final_pct", 6);
    std::printf("\n== fig_recovery: %s — restoration AUC "
                "(policy x dynamics, %zu runs, %.1fs) ==\n",
                family.c_str(), aggregate.completed_runs, seconds);
    print_cell_table(auc_matrix);
    std::printf("\n== fig_recovery: %s — final restored %% ==\n",
                family.c_str());
    print_cell_table(final_matrix);
    if (!csv.empty()) {
      write_cell_csv(csv + "." + family + ".auc.csv", auc_matrix);
      write_cell_csv(csv + "." + family + ".final.csv", final_matrix);
    }
    util::Json entry = aggregate_to_json(aggregate);
    entry.set("wall_seconds", seconds);
    families.set(family, std::move(entry));
    if (family == "er") {
      er_aggregate = aggregate;
      er_seconds = seconds;
    }
  }

  // Thread-scaling record: the ER sweep again at --threads 1, compared for
  // bit-identical aggregates against the parallel run above.
  const std::size_t resolved_threads =
      util::ThreadPool::resolve_threads(options.threads);
  util::Json scaling = util::Json::object();
  scaling.set("threads", resolved_threads);
  // Context for reading the speedup: worker threads beyond the hardware
  // cannot buy wall time (a 1-core container records ~1x by construction;
  // the identity check is what must hold everywhere).
  scaling.set("hardware_threads",
              static_cast<std::size_t>(std::max(
                  1u, std::thread::hardware_concurrency())));
  scaling.set("parallel_seconds", er_seconds);
  if (resolved_threads > 1) {
    scenario::TimelineRunnerOptions serial_options = options;
    serial_options.threads = 1;
    util::Timer timer;
    const auto serial_aggregate = scenario::run_timelines(
        er_factory, policies, dynamics, serial_options);
    const double serial_seconds = timer.elapsed_seconds();
    const bool identical =
        aggregates_identical(er_aggregate, serial_aggregate);
    const double speedup =
        er_seconds > 0.0 ? serial_seconds / er_seconds : 0.0;
    scaling.set("serial_seconds", serial_seconds);
    scaling.set("speedup", speedup);
    scaling.set("identical_aggregates", identical);
    std::printf("\nthread scaling (er): %zu threads %.2fs vs 1 thread "
                "%.2fs — %.2fx, aggregates %s\n",
                resolved_threads, er_seconds, serial_seconds, speedup,
                identical ? "identical" : "DIVERGED");
    if (!identical) {
      throw std::runtime_error(
          "fig_recovery: aggregates diverged between thread counts — the "
          "timeline sweep must be deterministic");
    }
  } else {
    scaling.set("serial_seconds", er_seconds);
    scaling.set("speedup", 1.0);
    scaling.set("identical_aggregates", true);
  }

  if (!json_path.empty()) {
    util::Json out = util::Json::object();
    out.set("bench", "fig_recovery");
    out.set("seed", static_cast<double>(options.seed));
    out.set("runs", options.runs);
    util::Json config = util::Json::object();
    config.set("nodes", nodes);
    config.set("edge_probability", edge_prob);
    config.set("pairs", pairs);
    config.set("flow", flow);
    config.set("variance", variance);
    config.set("stage_budget", options.timeline.stage_budget);
    config.set("max_stages", options.timeline.max_stages);
    config.set("aftershock_variance",
               flags.get_double("aftershock-variance"));
    config.set("aftershock_decay", flags.get_double("aftershock-decay"));
    config.set("aftershocks", flags.get_int("aftershocks"));
    config.set("overload_factor", flags.get_double("overload"));
    out.set("config", std::move(config));
    out.set("families", std::move(families));
    out.set("scaling", std::move(scaling));
    util::write_json_file(json_path, out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
