// Figure 7 (a-b): Erdős–Rényi n=100, edge probability swept; 5 demand pairs
// of one unit each, capacity 1000 (connectivity-only), complete destruction.
//
// Expected shape (paper): (a) exact optimisation blows up with p while
// ISP/SRT stay flat — here the general MILP becomes intractable already at
// n=100 (its LP relaxation alone exceeds any laptop budget; see
// EXPERIMENTS.md), so OPT uses the exact Steiner-forest engine, whose
// runtime grows with p while ISP/SRT remain in milliseconds; (b) repairs:
// ISP close to OPT on sparse (mostly planar) graphs, the gap widening as p
// grows and the graph becomes strongly non-planar, SRT above both; at p=1
// all algorithms find the trivial 3-per-pair solution.
#include "bench/bench_common.hpp"
#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "graph/traversal.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/opt.hpp"
#include "scenario/scenario.hpp"
#include "topology/topologies.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/2);
  flags.define("nodes", "100", "Erdos-Renyi node count");
  flags.define("probabilities", "0.1,0.3,0.5,0.7,0.9,1.0",
               "edge probabilities swept");
  flags.define("pairs", "5", "unit demand pairs");
  flags.define("capacity", "1000", "uniform link capacity");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double capacity = flags.get_double("capacity");
  const std::string csv = flags.get("csv");

  bench::ResultSink times(
      "Fig 7(a): execution time (seconds)",
      {"p", "ISP", "SRT", "OPT(exact)"},
      csv.empty() ? "" : csv + ".time.csv");
  bench::ResultSink repairs(
      "Fig 7(b): total repairs",
      {"p", "ISP", "SRT", "OPT(exact)"},
      csv.empty() ? "" : csv + ".repairs.csv");

  for (double p_edge : flags.get_double_list("probabilities")) {
    util::RunningStats isp_time, srt_time, opt_time;
    util::RunningStats isp_repairs, srt_repairs, opt_repairs;
    util::Rng master(static_cast<std::uint64_t>(flags.get_int("seed")) +
                     static_cast<std::uint64_t>(p_edge * 1000));
    const auto runs = static_cast<std::size_t>(flags.get_int("runs"));
    for (std::size_t run_idx = 0; run_idx < runs; ++run_idx) {
      util::Rng rng = master.fork();
      core::RecoveryProblem problem;
      topology::ErdosRenyiOptions eopt;
      eopt.nodes = nodes;
      eopt.edge_probability = p_edge;
      eopt.capacity = capacity;
      // Redraw until connected (sparse draws can disconnect).
      std::size_t attempts = 0;
      do {
        problem.graph = topology::erdos_renyi(eopt, rng);
      } while (graph::hop_diameter(problem.graph) < 0 && ++attempts < 50);
      util::Rng demand_rng = rng.fork();
      problem.demands =
          scenario::far_apart_demands(problem.graph, pairs, 1.0, demand_rng);
      disruption::complete_destruction(problem.graph);

      {
        util::Timer t;
        const auto s = core::IspSolver(problem).solve();
        isp_time.add(t.elapsed_seconds());
        isp_repairs.add(static_cast<double>(s.total_repairs()));
      }
      {
        util::Timer t;
        const auto s = heuristics::solve_srt(problem);
        srt_time.add(t.elapsed_seconds());
        srt_repairs.add(static_cast<double>(s.total_repairs()));
      }
      {
        util::Timer t;
        heuristics::OptOptions oo;
        oo.use_milp = false;  // the generic MILP is intractable here
        oo.isp_restarts = 0;
        const auto s = heuristics::solve_opt(problem, oo);
        opt_time.add(t.elapsed_seconds());
        opt_repairs.add(static_cast<double>(s.solution.total_repairs()));
      }
    }
    times.row({bench::fmt(p_edge, 2), bench::fmt(isp_time.mean(), 4),
               bench::fmt(srt_time.mean(), 4),
               bench::fmt(opt_time.mean(), 4)});
    repairs.row({bench::fmt(p_edge, 2), bench::fmt(isp_repairs.mean()),
                 bench::fmt(srt_repairs.mean()),
                 bench::fmt(opt_repairs.mean())});
    std::printf("[fig7] p=%.2f done\n", p_edge);
    std::fflush(stdout);
  }
  times.print();
  repairs.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
