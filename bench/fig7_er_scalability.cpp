// Figure 7 (a-b): Erdős–Rényi n=100, edge probability swept; 5 demand pairs
// of one unit each, capacity 1000 (connectivity-only), complete destruction.
//
// Expected shape (paper): (a) exact optimisation blows up with p while
// ISP/SRT stay flat — here the general MILP becomes intractable already at
// n=100 (its LP relaxation alone exceeds any laptop budget; see
// EXPERIMENTS.md), so OPT uses the exact Steiner-forest engine, whose
// runtime grows with p while ISP/SRT remain in milliseconds; (b) repairs:
// ISP close to OPT on sparse (mostly planar) graphs, the gap widening as p
// grows and the graph becomes strongly non-planar, SRT above both; at p=1
// all algorithms find the trivial 3-per-pair solution.
//
// Note: the time series measures real solver wall clock, so this driver
// defaults to --threads 1 — concurrent sibling solves would contend for
// cores and inflate the very metric the figure plots.  Raising --threads
// keeps the repair series byte-identical but biases the time series.
#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "graph/traversal.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/2);
  flags.define("threads", "1",
               "worker threads (default 1: concurrent solves would inflate "
               "the Fig 7a time series)");
  flags.define("solve-threads", "1",
               "intra-solve worker threads for ISP (parallel pricing, "
               "batched SSP trees); any value reproduces the serial repair "
               "series byte-for-byte — the CI determinism smoke diffs the "
               "CSVs at 1 vs 4 (0 = NETREC_THREADS or hardware concurrency)");
  flags.define("nodes", "100", "Erdos-Renyi node count");
  flags.define("probabilities", "0.1,0.3,0.5,0.7,0.9,1.0",
               "edge probabilities swept");
  flags.define("pairs", "5", "unit demand pairs");
  flags.define("capacity", "1000", "uniform link capacity");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double capacity = flags.get_double("capacity");
  const auto solve_threads =
      static_cast<std::size_t>(flags.get_int("solve-threads"));

  scenario::SweepRunner sweep("fig7", "p", bench::runner_options(flags));
  sweep.add_algorithm(
      "ISP",
      [solve_threads](const core::RecoveryProblem& p, scenario::RunContext&) {
        core::IspOptions options;
        options.solve_threads = solve_threads;
        return core::IspSolver(p, options).solve();
      });
  sweep.add_algorithm(
      "SRT", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return heuristics::solve_srt(p);
      });
  sweep.add_algorithm(
      "OPT(exact)", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        heuristics::OptOptions oo;
        oo.use_milp = false;  // the generic MILP is intractable here
        oo.isp_restarts = 0;
        return heuristics::solve_opt(p, oo).solution;
      });
  for (double p_edge : flags.get_double_list("probabilities")) {
    sweep.add_point(
        util::format_double(p_edge, 2),
        [nodes, pairs, capacity, p_edge](util::Rng& rng) {
          core::RecoveryProblem problem;
          topology::ErdosRenyiOptions eopt;
          eopt.nodes = nodes;
          eopt.edge_probability = p_edge;
          eopt.capacity = capacity;
          // Redraw until connected (sparse draws can disconnect).
          std::size_t attempts = 0;
          do {
            problem.graph = topology::make_topology(eopt, rng);
          } while (graph::hop_diameter(problem.graph) < 0 && ++attempts < 50);
          util::Rng demand_rng = rng.fork();
          problem.demands = scenario::far_apart_demands(problem.graph, pairs,
                                                        1.0, demand_rng);
          disruption::complete_destruction(problem.graph);
          return problem;
        });
  }

  const std::vector<bench::SeriesOutput> series = {
      {"Fig 7(a): execution time (seconds)",
       {.metric = "wall_seconds", .precision = 4},
       ".time.csv"},
      {"Fig 7(b): total repairs", {.metric = "total_repairs"},
       ".repairs.csv"}};
  bench::preflight(flags, series);
  bench::emit(sweep.run(), series, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
