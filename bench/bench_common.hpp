// Shared plumbing for the figure-reproduction bench drivers.
//
// Every driver declares a scenario::SweepRunner over one x-axis (demand
// pairs, demand intensity, disruption variance, edge probability), runs a
// set of algorithms over `--runs` seeded instances per point on `--threads`
// workers, prints paper-style tables to stdout and optionally mirrors them
// to CSV (--csv <prefix>) and JSON (--json <path>).  Absolute numbers depend
// on the machine and on the synthetic topology substitutions documented in
// the driver headers; the *shape* of each series is what reproduces the
// paper's figures.
//
// Flags common to all drivers:
//   --runs N       instances averaged per data point (paper: 20)
//   --seed S       master RNG seed; a fixed seed gives bit-identical tables
//                  and CSVs at any --threads value (wall_seconds excepted:
//                  it measures real solver time)
//   --threads T    worker threads for the runs x algorithms matrix; 0 (the
//                  default) resolves NETREC_THREADS, then hardware
//                  concurrency
//   --csv PREFIX   write each series as PREFIX<suffix>.csv
//   --json PATH    write the full sweep (all metrics + spread) as JSON
//   --verbose      log solver diagnostics to stderr
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/isp.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/opt.hpp"
#include "scenario/sweep.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace netrec::bench {

/// Declares the flags shared by all figure drivers.
inline void declare_common_flags(util::Flags& flags, int default_runs) {
  flags.define("runs", std::to_string(default_runs),
               "instances averaged per data point (paper: 20)");
  flags.define("seed", "42", "master RNG seed");
  flags.define("threads", "0",
               "worker threads (0 = NETREC_THREADS or hardware concurrency)");
  flags.define("csv", "", "also write each series to <csv><suffix>.csv");
  flags.define("json", "", "also write the full sweep as JSON to this path");
  flags.define("verbose", "false", "log solver diagnostics to stderr");
}

/// Parses flags; returns false (after printing usage) on --help or error.
inline bool parse_or_usage(util::Flags& flags, int argc, char** argv) {
  try {
    if (!flags.parse(argc, argv)) {
      std::fputs(flags.usage(argv[0]).c_str(), stdout);
      return false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), flags.usage(argv[0]).c_str());
    return false;
  }
  if (flags.get_bool("verbose")) {
    util::set_log_level(util::LogLevel::kInfo);
  } else {
    util::set_log_level(util::LogLevel::kError);
  }
  return true;
}

/// Builds RunnerOptions from the common flags (runs, seed, threads).
inline scenario::RunnerOptions runner_options(const util::Flags& flags) {
  scenario::RunnerOptions options;
  options.runs = static_cast<std::size_t>(flags.get_int("runs"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.threads = static_cast<std::size_t>(flags.get_int("threads"));
  return options;
}

/// Wraps a driver body so exceptions (bad numeric flag values, unwritable
/// output paths, disconnected topologies) become a clean error line and
/// exit code 1 instead of std::terminate.
inline int main_guard(int (*body)(int, char**), int argc, char** argv) {
  try {
    return body(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// One printed/emitted output series of a sweep.
struct SeriesOutput {
  std::string title;          ///< e.g. "Fig 4(a): edge repairs"
  scenario::SeriesSpec spec;  ///< metric + precision + instance extras
  std::string csv_suffix;     ///< e.g. ".edges.csv"
};

/// Opens (truncates) every --csv/--json destination up front, so a bad path
/// fails in milliseconds rather than after the whole sweep has run; emit()
/// rewrites the files with real content.
inline void preflight(const util::Flags& flags,
                      const std::vector<SeriesOutput>& series) {
  const std::string csv = flags.get("csv");
  if (!csv.empty()) {
    for (const auto& output : series) {
      util::CsvWriter probe(csv + output.csv_suffix);
    }
  }
  const std::string json = flags.get("json");
  if (!json.empty()) util::write_json_file(json, util::Json::object());
}

/// Prints every series as an aligned table and mirrors them to CSV/JSON when
/// --csv/--json were given.
inline void emit(const scenario::SweepResult& result,
                 const std::vector<SeriesOutput>& series,
                 const util::Flags& flags) {
  const std::string csv = flags.get("csv");
  const std::string json = flags.get("json");
  for (const auto& output : series) {
    if (!csv.empty()) result.write_csv(csv + output.csv_suffix, output.spec);
    std::printf("\n== %s ==\n", output.title.c_str());
    result.table(output.spec).print();
  }
  if (!json.empty()) result.write_json(json);
  std::fflush(stdout);
}

/// Registers the paper's full algorithm roster (Fig. 4-6 settings): ISP,
/// OPT (MILP with the given budget), SRT, GRD-COM, GRD-NC and the ALL
/// yardstick.
inline void add_paper_algorithms(scenario::SweepRunner& sweep,
                                 double opt_seconds,
                                 const heuristics::GreedyOptions& gopt) {
  sweep.add_algorithm(
      "ISP", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return core::IspSolver(p).solve();
      });
  sweep.add_algorithm(
      "OPT",
      [opt_seconds](const core::RecoveryProblem& p, scenario::RunContext&) {
        heuristics::OptOptions oo;
        oo.time_limit_seconds = opt_seconds;
        oo.use_milp = opt_seconds > 0.0;
        return heuristics::solve_opt(p, oo).solution;
      });
  sweep.add_algorithm(
      "SRT", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return heuristics::solve_srt(p);
      });
  sweep.add_algorithm(
      "GRD-COM",
      [gopt](const core::RecoveryProblem& p, scenario::RunContext&) {
        return heuristics::solve_grd_com(p, gopt);
      });
  sweep.add_algorithm(
      "GRD-NC", [gopt](const core::RecoveryProblem& p, scenario::RunContext&) {
        return heuristics::solve_grd_nc(p, gopt);
      });
  sweep.add_algorithm(
      "ALL", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return heuristics::solve_all(p);
      });
}

}  // namespace netrec::bench
