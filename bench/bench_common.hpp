// Shared plumbing for the figure-reproduction bench drivers.
//
// Every driver sweeps one x-axis (demand pairs, demand intensity, disruption
// variance, edge probability), runs a set of algorithms over `--runs` seeded
// instances per point, prints a paper-style table to stdout and optionally
// mirrors it to CSV (--csv <path>).  Absolute numbers depend on the machine
// and on the synthetic topology substitutions documented in DESIGN.md; the
// *shape* of each series is what reproduces the paper's figures.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace netrec::bench {

/// Declares the flags shared by all figure drivers.
inline void declare_common_flags(util::Flags& flags, int default_runs) {
  flags.define("runs", std::to_string(default_runs),
               "instances averaged per data point (paper: 20)");
  flags.define("seed", "42", "master RNG seed");
  flags.define("csv", "", "also write the table to this CSV file");
  flags.define("verbose", "false", "log solver diagnostics to stderr");
}

/// Parses flags; returns false (after printing usage) on --help or error.
inline bool parse_or_usage(util::Flags& flags, int argc, char** argv) {
  try {
    if (!flags.parse(argc, argv)) {
      std::fputs(flags.usage(argv[0]).c_str(), stdout);
      return false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), flags.usage(argv[0]).c_str());
    return false;
  }
  if (flags.get_bool("verbose")) {
    util::set_log_level(util::LogLevel::kInfo);
  } else {
    util::set_log_level(util::LogLevel::kError);
  }
  return true;
}

/// Collects rows and emits them as an aligned table plus optional CSV.
class ResultSink {
 public:
  ResultSink(std::string title, std::vector<std::string> header,
             const std::string& csv_path)
      : title_(std::move(title)), header_(header), table_(header) {
    if (!csv_path.empty()) {
      csv_ = std::make_unique<util::CsvWriter>(csv_path);
      csv_->header(header_);
    }
  }

  void row(std::vector<std::string> cells) {
    if (csv_) csv_->row(cells);
    table_.add_row(std::move(cells));
  }

  void print() {
    std::printf("\n== %s ==\n", title_.c_str());
    table_.print();
    std::fflush(stdout);
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  util::Table table_;
  std::unique_ptr<util::CsvWriter> csv_;
};

/// Formats a mean with fixed precision (the paper's plots carry no error
/// bars; stderr is exposed in CSV-producing drivers where it matters).
inline std::string fmt(double value, int precision = 1) {
  return util::format_double(value, precision);
}

}  // namespace netrec::bench
