// Figure 5 (a-b): Bell-Canada, complete destruction, 4 demand pairs, demand
// intensity per pair swept 2..18.
//
// Expected shape (paper): step-wise growth of repairs for OPT/ISP (extra
// repairs only when capacity forces them); greedy heuristics repair path
// bundles eagerly; SRT/GRD-COM lose demand as intensity crosses shared-path
// capacity; ISP and GRD-NC never lose.
#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs", "4", "number of demand pairs");
  flags.define("flows", "2,4,6,8,10,12,14,16,18", "demand intensities swept");
  flags.define("opt-seconds", "3", "MILP budget per instance (0 disables)");
  flags.define("greedy-paths", "1500", "path pool cap per demand pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  heuristics::GreedyOptions gopt;
  gopt.max_paths_per_pair =
      static_cast<std::size_t>(flags.get_int("greedy-paths"));

  scenario::RunnerOptions ropt = bench::runner_options(flags);
  ropt.require_feasible = true;

  scenario::SweepRunner sweep("fig5", "flow", ropt);
  bench::add_paper_algorithms(sweep, flags.get_double("opt-seconds"), gopt);
  for (double flow : flags.get_double_list("flows")) {
    sweep.add_point(util::format_double(flow, 0),
                    [pairs, flow](util::Rng& rng) {
                      core::RecoveryProblem p;
                      p.graph = topology::make_topology({topology::BellCanadaOptions{}});
                      p.demands = scenario::far_apart_demands(p.graph, pairs,
                                                              flow, rng);
                      disruption::complete_destruction(p.graph);
                      return p;
                    });
  }

  const std::vector<bench::SeriesOutput> series = {
      {"Fig 5(a): total repairs", {.metric = "total_repairs"}, ".total.csv"},
      {"Fig 5(b): satisfied demand %", {.metric = "satisfied_pct"},
       ".satisfied.csv"}};
  bench::preflight(flags, series);
  bench::emit(sweep.run(), series, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
