// Figure 5 (a-b): Bell-Canada, complete destruction, 4 demand pairs, demand
// intensity per pair swept 2..18.
//
// Expected shape (paper): step-wise growth of repairs for OPT/ISP (extra
// repairs only when capacity forces them); greedy heuristics repair path
// bundles eagerly; SRT/GRD-COM lose demand as intensity crosses shared-path
// capacity; ISP and GRD-NC never lose.
#include "bench/bench_common.hpp"
#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/opt.hpp"
#include "scenario/scenario.hpp"
#include "topology/topologies.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs", "4", "number of demand pairs");
  flags.define("flows", "2,4,6,8,10,12,14,16,18", "demand intensities swept");
  flags.define("opt-seconds", "3", "MILP budget per instance (0 disables)");
  flags.define("greedy-paths", "1500", "path pool cap per demand pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const int pairs = flags.get_int("pairs");
  const double opt_seconds = flags.get_double("opt-seconds");
  heuristics::GreedyOptions gopt;
  gopt.max_paths_per_pair =
      static_cast<std::size_t>(flags.get_int("greedy-paths"));

  std::vector<std::pair<std::string, scenario::Algorithm>> algorithms = {
      {"ISP",
       [](const core::RecoveryProblem& p) {
         return core::IspSolver(p).solve();
       }},
      {"OPT",
       [&](const core::RecoveryProblem& p) {
         heuristics::OptOptions oo;
         oo.time_limit_seconds = opt_seconds;
         oo.use_milp = opt_seconds > 0.0;
         return heuristics::solve_opt(p, oo).solution;
       }},
      {"SRT",
       [](const core::RecoveryProblem& p) {
         return heuristics::solve_srt(p);
       }},
      {"GRD-COM",
       [&](const core::RecoveryProblem& p) {
         return heuristics::solve_grd_com(p, gopt);
       }},
      {"GRD-NC",
       [&](const core::RecoveryProblem& p) {
         return heuristics::solve_grd_nc(p, gopt);
       }},
      {"ALL",
       [](const core::RecoveryProblem& p) {
         return heuristics::solve_all(p);
       }},
  };
  std::vector<std::string> names;
  for (const auto& [name, fn] : algorithms) names.push_back(name);

  const std::string csv = flags.get("csv");
  auto make_header = [&](const char* x) {
    std::vector<std::string> h{x};
    h.insert(h.end(), names.begin(), names.end());
    return h;
  };
  bench::ResultSink total("Fig 5(a): total repairs", make_header("flow"),
                          csv.empty() ? "" : csv + ".total.csv");
  bench::ResultSink loss("Fig 5(b): satisfied demand %", make_header("flow"),
                         csv.empty() ? "" : csv + ".satisfied.csv");

  for (double flow : flags.get_double_list("flows")) {
    scenario::RunnerOptions ropt;
    ropt.runs = static_cast<std::size_t>(flags.get_int("runs"));
    ropt.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                static_cast<std::uint64_t>(flow * 100);
    ropt.require_feasible = true;
    const auto result = scenario::run_experiment(
        [&](util::Rng& rng) {
          core::RecoveryProblem p;
          p.graph = topology::bell_canada_like();
          p.demands = scenario::far_apart_demands(
              p.graph, static_cast<std::size_t>(pairs), flow, rng);
          disruption::complete_destruction(p.graph);
          return p;
        },
        algorithms, ropt);

    auto series_row = [&](const char* metric) {
      std::vector<std::string> row{bench::fmt(flow, 0)};
      for (const auto& name : names) {
        row.push_back(
            bench::fmt(result.per_algorithm.at(name).get(metric).mean()));
      }
      return row;
    };
    total.row(series_row("total_repairs"));
    loss.row(series_row("satisfied_pct"));
    std::printf("[fig5] flow=%.0f done (%zu runs)\n", flow,
                result.completed_runs);
    std::fflush(stdout);
  }
  total.print();
  loss.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
