// Figure 6 (a-b): Bell-Canada, geographically-correlated Gaussian disaster,
// variance swept 10..150; 4 demand pairs x 10 units.
//
// Expected shape (paper): ALL (= broken elements) grows steeply with
// variance; ISP stays close to OPT throughout; greedy heuristics repair
// noticeably more; SRT/GRD-COM lose demand on larger disasters.
#include "bench/bench_common.hpp"
#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/opt.hpp"
#include "scenario/scenario.hpp"
#include "topology/topologies.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs", "4", "number of demand pairs");
  flags.define("flow", "10", "demand flow per pair");
  flags.define("variances", "10,30,50,70,90,110,130,150",
               "disruption variances swept");
  flags.define("opt-seconds", "3", "MILP budget per instance (0 disables)");
  flags.define("greedy-paths", "1500", "path pool cap per demand pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const int pairs = flags.get_int("pairs");
  const double flow = flags.get_double("flow");
  const double opt_seconds = flags.get_double("opt-seconds");
  heuristics::GreedyOptions gopt;
  gopt.max_paths_per_pair =
      static_cast<std::size_t>(flags.get_int("greedy-paths"));

  std::vector<std::pair<std::string, scenario::Algorithm>> algorithms = {
      {"ISP",
       [](const core::RecoveryProblem& p) {
         return core::IspSolver(p).solve();
       }},
      {"OPT",
       [&](const core::RecoveryProblem& p) {
         heuristics::OptOptions oo;
         oo.time_limit_seconds = opt_seconds;
         oo.use_milp = opt_seconds > 0.0;
         return heuristics::solve_opt(p, oo).solution;
       }},
      {"SRT",
       [](const core::RecoveryProblem& p) {
         return heuristics::solve_srt(p);
       }},
      {"GRD-COM",
       [&](const core::RecoveryProblem& p) {
         return heuristics::solve_grd_com(p, gopt);
       }},
      {"GRD-NC",
       [&](const core::RecoveryProblem& p) {
         return heuristics::solve_grd_nc(p, gopt);
       }},
      {"ALL",
       [](const core::RecoveryProblem& p) {
         return heuristics::solve_all(p);
       }},
  };
  std::vector<std::string> names;
  for (const auto& [name, fn] : algorithms) names.push_back(name);

  const std::string csv = flags.get("csv");
  std::vector<std::string> header{"variance"};
  header.insert(header.end(), names.begin(), names.end());
  header.push_back("broken(ALL line)");
  bench::ResultSink total("Fig 6(a): total repairs", header,
                          csv.empty() ? "" : csv + ".total.csv");
  std::vector<std::string> header_loss{"variance"};
  header_loss.insert(header_loss.end(), names.begin(), names.end());
  bench::ResultSink loss("Fig 6(b): satisfied demand %", header_loss,
                         csv.empty() ? "" : csv + ".satisfied.csv");

  for (double variance : flags.get_double_list("variances")) {
    scenario::RunnerOptions ropt;
    ropt.runs = static_cast<std::size_t>(flags.get_int("runs"));
    ropt.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                static_cast<std::uint64_t>(variance * 10);
    ropt.require_feasible = true;
    const auto result = scenario::run_experiment(
        [&](util::Rng& rng) {
          core::RecoveryProblem p;
          p.graph = topology::bell_canada_like();
          p.demands = scenario::far_apart_demands(
              p.graph, static_cast<std::size_t>(pairs), flow, rng);
          disruption::GaussianDisasterOptions dopt;
          dopt.variance = variance;
          util::Rng disaster_rng = rng.fork();
          disruption::gaussian_disaster(p.graph, dopt, disaster_rng);
          return p;
        },
        algorithms, ropt);

    std::vector<std::string> row{bench::fmt(variance, 0)};
    for (const auto& name : names) {
      row.push_back(bench::fmt(
          result.per_algorithm.at(name).get("total_repairs").mean()));
    }
    row.push_back(bench::fmt(result.instance.get("broken_total").mean()));
    total.row(row);

    std::vector<std::string> lrow{bench::fmt(variance, 0)};
    for (const auto& name : names) {
      lrow.push_back(bench::fmt(
          result.per_algorithm.at(name).get("satisfied_pct").mean()));
    }
    loss.row(lrow);
    std::printf("[fig6] variance=%.0f done (%zu runs)\n", variance,
                result.completed_runs);
    std::fflush(stdout);
  }
  total.print();
  loss.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
