// Figure 6 (a-b): Bell-Canada, geographically-correlated Gaussian disaster,
// variance swept 10..150; 4 demand pairs x 10 units.
//
// Expected shape (paper): ALL (= broken elements) grows steeply with
// variance; ISP stays close to OPT throughout; greedy heuristics repair
// noticeably more; SRT/GRD-COM lose demand on larger disasters.
#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs", "4", "number of demand pairs");
  flags.define("flow", "10", "demand flow per pair");
  flags.define("variances", "10,30,50,70,90,110,130,150",
               "disruption variances swept");
  flags.define("opt-seconds", "3", "MILP budget per instance (0 disables)");
  flags.define("greedy-paths", "1500", "path pool cap per demand pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double flow = flags.get_double("flow");
  heuristics::GreedyOptions gopt;
  gopt.max_paths_per_pair =
      static_cast<std::size_t>(flags.get_int("greedy-paths"));

  scenario::RunnerOptions ropt = bench::runner_options(flags);
  ropt.require_feasible = true;

  scenario::SweepRunner sweep("fig6", "variance", ropt);
  bench::add_paper_algorithms(sweep, flags.get_double("opt-seconds"), gopt);
  for (double variance : flags.get_double_list("variances")) {
    sweep.add_point(util::format_double(variance, 0),
                    [pairs, flow, variance](util::Rng& rng) {
                      core::RecoveryProblem p;
                      p.graph = topology::make_topology({topology::BellCanadaOptions{}});
                      p.demands = scenario::far_apart_demands(p.graph, pairs,
                                                              flow, rng);
                      disruption::GaussianDisasterOptions dopt;
                      dopt.variance = variance;
                      util::Rng disaster_rng = rng.fork();
                      disruption::gaussian_disaster(p.graph, dopt,
                                                    disaster_rng);
                      return p;
                    });
  }

  const std::vector<bench::SeriesOutput> series = {
      {"Fig 6(a): total repairs",
       {.metric = "total_repairs", .instance_metrics = {"broken_total"}},
       ".total.csv"},
      {"Fig 6(b): satisfied demand %", {.metric = "satisfied_pct"},
       ".satisfied.csv"}};
  bench::preflight(flags, series);
  bench::emit(sweep.run(), series, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
