// load_serve: closed-loop load generator and identity checker for netrecd.
//
// Builds the same preloaded problem as the server (shared serve::preload
// flags), derives a deterministic set of damage scenarios, computes the
// expected plan for each with a local serial PlanningEngine (= direct
// core::IspSolver calls), then drives the server at each --clients level
// with every client issuing --requests requests back-to-back.
//
// For every response the "result" bytes are extracted verbatim from the
// wire and compared against the locally computed payload dump: the bench
// fails (identity_ok=false, exit 1) unless every response — cache hit or
// fresh solve, any concurrency — is bit-identical to the direct solve.
//
// By default the bench spawns an in-process serve::Server so it is
// self-contained; --port targets an externally started netrecd instead
// (the CI smoke job does both: in-process for the bench artefact, external
// for the daemon round-trip).
//
// Output: per-level plans/sec, p50/p99 latency and cache hit rate, printed
// as a table and written to --json (BENCH_serve.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/preload.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace netrec;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Scenario {
  serve::PlanRequest request;
  std::string body;           // wire request
  std::string expected;       // expected "result" bytes (direct-solve dump)
  std::string fingerprint;
};

/// Deterministic damage scenarios: distinct seeded subsets of nodes/edges.
std::vector<Scenario> make_scenarios(const core::RecoveryProblem& problem,
                                     std::size_t count,
                                     std::size_t damage_nodes,
                                     std::size_t damage_edges,
                                     std::uint64_t seed) {
  std::vector<Scenario> scenarios(count);
  util::Rng rng(seed);
  for (std::size_t s = 0; s < count; ++s) {
    serve::PlanRequest& request = scenarios[s].request;
    for (std::size_t i = 0; i < damage_nodes; ++i) {
      request.broken_nodes.push_back(static_cast<graph::NodeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(problem.graph.num_nodes()) - 1)));
    }
    for (std::size_t i = 0; i < damage_edges; ++i) {
      request.broken_edges.push_back(static_cast<graph::EdgeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(problem.graph.num_edges()) - 1)));
    }
    std::sort(request.broken_nodes.begin(), request.broken_nodes.end());
    request.broken_nodes.erase(
        std::unique(request.broken_nodes.begin(), request.broken_nodes.end()),
        request.broken_nodes.end());
    std::sort(request.broken_edges.begin(), request.broken_edges.end());
    request.broken_edges.erase(
        std::unique(request.broken_edges.begin(), request.broken_edges.end()),
        request.broken_edges.end());

    util::Json body = util::Json::object();
    util::Json nodes = util::Json::array();
    for (graph::NodeId n : request.broken_nodes) {
      nodes.push_back(static_cast<double>(n));
    }
    util::Json edges = util::Json::array();
    for (graph::EdgeId e : request.broken_edges) {
      edges.push_back(static_cast<double>(e));
    }
    body.set("broken_nodes", std::move(nodes));
    body.set("broken_edges", std::move(edges));
    scenarios[s].body = body.dump();
    scenarios[s].fingerprint = serve::fingerprint(request);
  }
  return scenarios;
}

/// Extracts the verbatim "result" bytes from a /v1/plan response.  The
/// server splices the payload between a fixed prefix and the meta object,
/// so plain string surgery recovers the exact bytes (parsing would
/// re-serialise and hide byte-level differences).
bool extract_result_bytes(const std::string& response, std::string& out) {
  static const std::string kPrefix = "{\"result\":";
  static const std::string kMeta = ",\"meta\":{\"fingerprint\":";
  if (response.rfind(kPrefix, 0) != 0) return false;
  const std::size_t meta = response.rfind(kMeta);
  if (meta == std::string::npos || meta < kPrefix.size()) return false;
  out = response.substr(kPrefix.size(), meta - kPrefix.size());
  return true;
}

struct LevelResult {
  std::size_t clients = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  /// Transport failures / 503s absorbed by client retries (the request
  /// itself may still have succeeded on a later attempt).
  std::size_t transient_errors = 0;
  std::size_t cache_hits = 0;
  double wall_seconds = 0.0;
  std::vector<double> latencies;

  double plans_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds
                              : 0.0;
  }
  /// Nearest rank (the ceil(q * n)-th smallest), matching serve::metrics.
  double percentile_ms(double q) const {
    if (latencies.empty()) return 0.0;
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1] * 1e3;
  }
};

/// Runs one closed-loop level: `clients` threads, each issuing
/// `requests_per_client` requests round-robin over the scenarios through a
/// retrying serve::Client, every 200 identity-checked against the
/// direct-solve payload.  Transient failures (connection resets, 503s) are
/// *recorded*, not fatal: the client retries with backoff and only a
/// request that exhausts its attempts counts as an error — a byte mismatch
/// on a successful response is the only thing that fails the identity
/// check.
LevelResult run_level(const std::string& host, int port,
                      const std::vector<Scenario>& scenarios,
                      std::size_t clients, std::size_t requests_per_client,
                      std::atomic<bool>& identity_ok,
                      std::mutex& failure_mutex, std::string& first_failure) {
  LevelResult level;
  level.clients = clients;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::size_t> errors(clients, 0);
  std::vector<std::size_t> transients(clients, 0);
  std::vector<std::size_t> hits(clients, 0);

  const auto note_failure = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(failure_mutex);
    if (first_failure.empty()) first_failure = message;
  };

  const double start = now_seconds();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ClientOptions copt;
      copt.jitter_seed = 0x10adu + c;  // deterministic per-thread stream
      serve::Client client(host, port, copt);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        // Stagger clients across scenarios so every level mixes cache hits
        // with fresh solves.
        const Scenario& scenario =
            scenarios[(c + i) % scenarios.size()];
        const double t0 = now_seconds();
        const serve::ClientResult result =
            client.request("POST", "/v1/plan", scenario.body);
        transients[c] += static_cast<std::size_t>(result.transient_errors);
        if (result.response.status == 0) {
          // Every attempt failed at transport level: an availability gap,
          // not an identity violation.
          ++errors[c];
          note_failure("transport (after " +
                       std::to_string(result.attempts) +
                       " attempts): " + result.error);
          continue;
        }
        latencies[c].push_back(now_seconds() - t0);
        const std::string& response = result.response.body;
        std::string result_bytes;
        if (result.response.status != 200) {
          ++errors[c];
          note_failure("status " + std::to_string(result.response.status) +
                       ", scenario " + scenario.fingerprint);
          continue;
        }
        if (!extract_result_bytes(response, result_bytes) ||
            result_bytes != scenario.expected) {
          ++errors[c];
          identity_ok.store(false);
          note_failure("scenario " + scenario.fingerprint +
                       ": response/result byte mismatch");
          continue;
        }
        if (response.find("\"cached\":true") != std::string::npos) ++hits[c];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  level.wall_seconds = now_seconds() - start;

  for (std::size_t c = 0; c < clients; ++c) {
    level.requests += requests_per_client;
    level.errors += errors[c];
    level.transient_errors += transients[c];
    level.cache_hits += hits[c];
    level.latencies.insert(level.latencies.end(), latencies[c].begin(),
                           latencies[c].end());
  }
  return level;
}

int run(int argc, char** argv) {
  util::Flags flags;
  serve::declare_preload_flags(flags);
  flags.define("host", "127.0.0.1", "server address");
  flags.define("port", "0",
               "target an external netrecd; 0 = spawn an in-process server");
  flags.define("clients", "1,4,16", "concurrency levels to sweep");
  flags.define("requests", "24", "requests per client per level");
  flags.define("scenarios", "6",
               "shared damage scenarios (repeats become cache hits)");
  flags.define("fresh", "2",
               "extra never-seen scenarios per level (forced cache misses, "
               "so every level solves fresh under concurrency)");
  flags.define("damage-nodes", "3", "broken nodes drawn per scenario");
  flags.define("damage-edges", "2", "broken edges drawn per scenario");
  flags.define("seed", "42", "scenario RNG seed");
  flags.define("workers", "4", "in-process server worker threads");
  flags.define("cache", "4096", "in-process server plan-cache capacity");
  flags.define("json", "BENCH_serve.json", "output path ('' = skip)");
  flags.define("verbose", "false", "log solver diagnostics to stderr");
  if (!bench::parse_or_usage(flags, argc, argv)) return 2;

  const core::RecoveryProblem problem =
      serve::build_preloaded_problem(flags);
  std::printf("preloaded: %s\n",
              serve::describe_preload(problem, flags).c_str());

  const auto damage_nodes =
      static_cast<std::size_t>(flags.get_int("damage-nodes"));
  const auto damage_edges =
      static_cast<std::size_t>(flags.get_int("damage-edges"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto fresh_per_level =
      static_cast<std::size_t>(flags.get_int("fresh"));
  const std::vector<double> client_levels = flags.get_double_list("clients");

  // Shared scenarios recur at every level (cache hits after first touch);
  // each level additionally gets its own never-seen scenarios, so later,
  // more concurrent levels still perform fresh solves — the identity check
  // covers cached AND uncached responses under contention.
  std::vector<Scenario> shared = make_scenarios(
      problem, static_cast<std::size_t>(flags.get_int("scenarios")),
      damage_nodes, damage_edges, seed);
  std::vector<std::vector<Scenario>> per_level(client_levels.size());
  for (std::size_t li = 0; li < client_levels.size(); ++li) {
    per_level[li] = make_scenarios(problem, fresh_per_level, damage_nodes,
                                   damage_edges, seed + 1000 * (li + 1));
  }

  // The reference side of the identity check: a serial engine solving each
  // scenario directly — exactly what the server's workers do, minus HTTP.
  {
    serve::PlanningEngine direct(problem);
    const double t0 = now_seconds();
    std::size_t solved = 0;
    for (Scenario& scenario : shared) {
      scenario.expected = direct.solve(scenario.request).payload.dump();
      ++solved;
    }
    for (std::vector<Scenario>& level : per_level) {
      for (Scenario& scenario : level) {
        scenario.expected = direct.solve(scenario.request).payload.dump();
        ++solved;
      }
    }
    std::printf("direct solves: %zu scenarios in %.2fs\n", solved,
                now_seconds() - t0);
  }

  std::string host = flags.get("host");
  int port = flags.get_int("port");
  std::unique_ptr<serve::Server> server;
  if (port == 0) {
    serve::ServerOptions options;
    options.workers = static_cast<std::size_t>(flags.get_int("workers"));
    options.cache_capacity =
        static_cast<std::size_t>(flags.get_int("cache"));
    // Size admission control to the sweep's peak concurrency: this bench
    // measures serving latency under load the operator provisioned for;
    // shedding behavior is chaos_serve's subject.
    double peak_clients = 0.0;
    for (double level : client_levels) {
      peak_clients = std::max(peak_clients, level);
    }
    options.queue_budget =
        2 * std::max<std::size_t>(options.workers,
                                  static_cast<std::size_t>(peak_clients));
    server = std::make_unique<serve::Server>(problem, options);
    server->start();
    host = "127.0.0.1";
    port = server->port();
    std::printf("in-process server on port %d (%zu workers)\n", port,
                options.workers);
  }

  std::atomic<bool> identity_ok{true};
  std::mutex failure_mutex;
  std::string first_failure;
  const auto requests_per_client =
      static_cast<std::size_t>(flags.get_int("requests"));

  std::vector<LevelResult> levels;
  std::printf("\n%8s %9s %12s %9s %9s %7s %7s %10s\n", "clients", "requests",
              "plans/sec", "p50 ms", "p99 ms", "hits", "errors",
              "transients");
  for (std::size_t li = 0; li < client_levels.size(); ++li) {
    const auto clients = static_cast<std::size_t>(client_levels[li]);
    if (clients == 0) continue;
    std::vector<Scenario> scenarios = shared;
    scenarios.insert(scenarios.end(), per_level[li].begin(),
                     per_level[li].end());
    LevelResult level =
        run_level(host, port, scenarios, clients, requests_per_client,
                  identity_ok, failure_mutex, first_failure);
    std::printf("%8zu %9zu %12.1f %9.2f %9.2f %7zu %7zu %10zu\n",
                level.clients, level.requests, level.plans_per_sec(),
                level.percentile_ms(0.50), level.percentile_ms(0.99),
                level.cache_hits, level.errors, level.transient_errors);
    levels.push_back(std::move(level));
  }

  if (server) {
    server->stop();
    server.reset();
  }

  std::printf("\nidentity check: %s\n",
              identity_ok.load() ? "OK — every response bit-identical to "
                                   "direct IspSolver solves"
                                 : ("FAILED — " + first_failure).c_str());

  const std::string json_path = flags.get("json");
  if (!json_path.empty()) {
    util::Json out = util::Json::object();
    out.set("bench", "load_serve");
    out.set("identity_ok", identity_ok.load());
    util::Json config = util::Json::object();
    config.set("topology", flags.get("topology"));
    config.set("shared_scenarios", shared.size());
    config.set("fresh_per_level", fresh_per_level);
    config.set("requests_per_client", requests_per_client);
    config.set("external_server", flags.get_int("port") != 0);
    out.set("config", std::move(config));
    util::Json series = util::Json::array();
    for (const LevelResult& level : levels) {
      util::Json entry = util::Json::object();
      entry.set("clients", level.clients);
      entry.set("requests", level.requests);
      entry.set("errors", level.errors);
      entry.set("transient_errors", level.transient_errors);
      entry.set("plans_per_sec", level.plans_per_sec());
      entry.set("p50_ms", level.percentile_ms(0.50));
      entry.set("p99_ms", level.percentile_ms(0.99));
      entry.set("cache_hits", level.cache_hits);
      entry.set("cache_hit_rate",
                level.requests == 0
                    ? 0.0
                    : static_cast<double>(level.cache_hits) /
                          static_cast<double>(level.requests));
      series.push_back(std::move(entry));
    }
    out.set("levels", std::move(series));
    util::write_json_file(json_path, out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identity_ok.load() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
