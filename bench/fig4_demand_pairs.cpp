// Figure 4 (a-d): Bell-Canada topology, complete destruction, 10 flow units
// per pair, number of demand pairs swept 1..7.
//
// Reproduces: edge repairs (a), node repairs (b), total repairs (c) and
// percentage of satisfied demand (d) for ISP, OPT, SRT, GRD-COM, GRD-NC and
// the ALL yardstick.  Expected shape (paper): repairs grow with pairs;
// SRT fewest repairs but loses demand from 3 pairs on; ISP closest to OPT
// with no loss; GRD-NC above GRD-COM above ISP in repairs.
#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs-max", "7", "sweep demand pairs 1..pairs-max");
  flags.define("flow", "10", "demand flow units per pair");
  flags.define("opt-seconds", "3",
               "MILP budget per instance for OPT (0 disables the MILP)");
  flags.define("greedy-paths", "1500", "path pool cap per demand pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const double flow = flags.get_double("flow");
  heuristics::GreedyOptions gopt;
  gopt.max_paths_per_pair =
      static_cast<std::size_t>(flags.get_int("greedy-paths"));

  scenario::RunnerOptions ropt = bench::runner_options(flags);
  ropt.require_feasible = true;

  scenario::SweepRunner sweep("fig4", "pairs", ropt);
  bench::add_paper_algorithms(sweep, flags.get_double("opt-seconds"), gopt);
  for (int pairs = 1; pairs <= flags.get_int("pairs-max"); ++pairs) {
    sweep.add_point(std::to_string(pairs), [pairs, flow](util::Rng& rng) {
      core::RecoveryProblem p;
      p.graph = topology::make_topology({topology::BellCanadaOptions{}});
      p.demands = scenario::far_apart_demands(
          p.graph, static_cast<std::size_t>(pairs), flow, rng);
      disruption::complete_destruction(p.graph);
      return p;
    });
  }

  const std::vector<bench::SeriesOutput> series = {
      {"Fig 4(a): edge repairs", {.metric = "edge_repairs"}, ".edges.csv"},
      {"Fig 4(b): node repairs", {.metric = "node_repairs"}, ".nodes.csv"},
      {"Fig 4(c): total repairs", {.metric = "total_repairs"}, ".total.csv"},
      {"Fig 4(d): satisfied demand %", {.metric = "satisfied_pct"},
       ".satisfied.csv"}};
  bench::preflight(flags, series);
  bench::emit(sweep.run(), series, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
