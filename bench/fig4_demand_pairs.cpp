// Figure 4 (a-d): Bell-Canada topology, complete destruction, 10 flow units
// per pair, number of demand pairs swept 1..7.
//
// Reproduces: edge repairs (a), node repairs (b), total repairs (c) and
// percentage of satisfied demand (d) for ISP, OPT, SRT, GRD-COM, GRD-NC and
// the ALL yardstick.  Expected shape (paper): repairs grow with pairs;
// SRT fewest repairs but loses demand from 3 pairs on; ISP closest to OPT
// with no loss; GRD-NC above GRD-COM above ISP in repairs.
#include <functional>

#include "bench/bench_common.hpp"
#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/opt.hpp"
#include "scenario/scenario.hpp"
#include "topology/topologies.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs-max", "7", "sweep demand pairs 1..pairs-max");
  flags.define("flow", "10", "demand flow units per pair");
  flags.define("opt-seconds", "3",
               "MILP budget per instance for OPT (0 disables the MILP)");
  flags.define("greedy-paths", "1500", "path pool cap per demand pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const int pairs_max = flags.get_int("pairs-max");
  const double flow = flags.get_double("flow");
  const double opt_seconds = flags.get_double("opt-seconds");

  scenario::RunnerOptions ropt;
  ropt.runs = static_cast<std::size_t>(flags.get_int("runs"));
  ropt.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  ropt.require_feasible = true;

  heuristics::GreedyOptions gopt;
  gopt.max_paths_per_pair =
      static_cast<std::size_t>(flags.get_int("greedy-paths"));

  std::vector<std::pair<std::string, scenario::Algorithm>> algorithms = {
      {"ISP",
       [](const core::RecoveryProblem& p) {
         return core::IspSolver(p).solve();
       }},
      {"OPT",
       [&](const core::RecoveryProblem& p) {
         heuristics::OptOptions oo;
         oo.time_limit_seconds = opt_seconds;
         oo.use_milp = opt_seconds > 0.0;
         return heuristics::solve_opt(p, oo).solution;
       }},
      {"SRT",
       [](const core::RecoveryProblem& p) {
         return heuristics::solve_srt(p);
       }},
      {"GRD-COM",
       [&](const core::RecoveryProblem& p) {
         return heuristics::solve_grd_com(p, gopt);
       }},
      {"GRD-NC",
       [&](const core::RecoveryProblem& p) {
         return heuristics::solve_grd_nc(p, gopt);
       }},
      {"ALL",
       [](const core::RecoveryProblem& p) {
         return heuristics::solve_all(p);
       }},
  };

  std::vector<std::string> names;
  for (const auto& [name, fn] : algorithms) names.push_back(name);

  const std::string csv = flags.get("csv");
  auto make_header = [&](const char* x) {
    std::vector<std::string> h{x};
    h.insert(h.end(), names.begin(), names.end());
    return h;
  };
  bench::ResultSink edges("Fig 4(a): edge repairs", make_header("pairs"),
                          csv.empty() ? "" : csv + ".edges.csv");
  bench::ResultSink nodes("Fig 4(b): node repairs", make_header("pairs"),
                          csv.empty() ? "" : csv + ".nodes.csv");
  bench::ResultSink total("Fig 4(c): total repairs", make_header("pairs"),
                          csv.empty() ? "" : csv + ".total.csv");
  bench::ResultSink loss("Fig 4(d): satisfied demand %", make_header("pairs"),
                         csv.empty() ? "" : csv + ".satisfied.csv");

  for (int pairs = 1; pairs <= pairs_max; ++pairs) {
    ropt.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                static_cast<std::uint64_t>(pairs) * 1000;
    const auto result = scenario::run_experiment(
        [&](util::Rng& rng) {
          core::RecoveryProblem p;
          p.graph = topology::bell_canada_like();
          p.demands = scenario::far_apart_demands(
              p.graph, static_cast<std::size_t>(pairs), flow, rng);
          disruption::complete_destruction(p.graph);
          return p;
        },
        algorithms, ropt);

    auto series_row = [&](const char* metric) {
      std::vector<std::string> row{std::to_string(pairs)};
      for (const auto& name : names) {
        row.push_back(
            bench::fmt(result.per_algorithm.at(name).get(metric).mean()));
      }
      return row;
    };
    edges.row(series_row("edge_repairs"));
    nodes.row(series_row("node_repairs"));
    total.row(series_row("total_repairs"));
    loss.row(series_row("satisfied_pct"));
    std::printf("[fig4] pairs=%d done (%zu runs)\n", pairs,
                result.completed_runs);
    std::fflush(stdout);
  }
  edges.print();
  nodes.print();
  total.print();
  loss.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
