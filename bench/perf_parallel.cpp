// Intra-solve parallelism benchmark: the three kernels PR 7 fans out on
// util::ThreadPool — parallel Brandes betweenness, the batched per-demand
// centrality enumeration, and the session's concurrent LP pricing (measured
// end-to-end through an ISP solve) — each timed at thread counts {1, 2, 4,
// 8} against its serial twin.
//
// Every kernel is identity-checked before it is timed: the parallel result
// must equal the serial result *exactly* (the deterministic-merge contract
// promises the serial kernel's floating-point operation stream, so equality
// is bitwise, never tolerance-based).  A mismatch is recorded in the JSON
// (identity_ok: false) and the driver exits nonzero — CI gates on the
// archived artifact, so timings with a broken identity never look like a
// win.
//
// Workloads:
//   * betweenness_er   — ER n=300 (default), all |V| source passes; the
//     tripwire kernel: CI requires speedup_at_4 >= 1.5x when the host has
//     >= 4 hardware threads (the check is skipped below that, but identity
//     is always enforced).
//   * betweenness_rmat — RMAT n=1e5 (default), pivot-limited passes
//     (--rmat-sources); the internet-scale shape where per-source cost
//     dwarfs the merge.
//   * centrality       — demand-based centrality (eq. 3) batch on a broken
//     ER instance, shared source trees on, per-demand enumeration fan-out.
//   * isp              — a full ISP solve (ViewCache + session LP) with
//     IspOptions::pool set, exercising concurrent pricing plus both
//     kernels above in situ.
//
// hardware_threads (std::thread::hardware_concurrency) is recorded so the
// artifact explains itself on constrained runners: with one core, speedups
// hover around 1.0x and only the identity columns carry information.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/centrality.hpp"
#include "core/isp.hpp"
#include "core/problem.hpp"
#include "disruption/disruption.hpp"
#include "graph/betweenness.hpp"
#include "graph/traversal.hpp"
#include "graph/view.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace netrec;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

/// Per-kernel record accumulated into the JSON artifact.
struct KernelReport {
  double serial_seconds = 0.0;
  std::vector<double> thread_seconds;  ///< parallel kThreadCounts order
  bool identity_ok = true;

  double speedup_at(std::size_t threads) const {
    for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
      if (kThreadCounts[i] == threads && thread_seconds[i] > 0.0) {
        return serial_seconds / thread_seconds[i];
      }
    }
    return 0.0;
  }

  util::Json to_json() const {
    util::Json entry = util::Json::object();
    entry.set("serial_seconds", serial_seconds);
    util::Json per_threads = util::Json::object();
    for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
      per_threads.set(std::to_string(kThreadCounts[i]), thread_seconds[i]);
    }
    entry.set("threads_seconds", std::move(per_threads));
    entry.set("speedup_at_4", speedup_at(4));
    entry.set("identity_ok", identity_ok);
    return entry;
  }
};

void print_report(const char* name, const KernelReport& report) {
  std::printf("%-16s serial %.4fs |", name, report.serial_seconds);
  for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
    std::printf(" t%zu %.4fs", kThreadCounts[i], report.thread_seconds[i]);
  }
  std::printf(" | x4 %.2fx | identity %s\n", report.speedup_at(4),
              report.identity_ok ? "ok" : "FAIL");
}

/// Times `run` over `runs` repetitions and returns the mean seconds; the
/// first (untimed) call's result is handed to `check` for the identity
/// gate, so every configuration is verified even at --runs 1.
template <typename Run, typename Check>
double time_kernel(int runs, bool& identity_ok, const Run& run,
                   const Check& check) {
  if (!check(run())) identity_ok = false;
  util::Timer timer;
  for (int r = 0; r < runs; ++r) run();
  return timer.elapsed_seconds() / static_cast<double>(runs);
}

/// Broken ER instance with far-apart demands (perf_isp's construction).
core::RecoveryProblem er_problem(std::size_t nodes, double edge_prob,
                                 std::size_t pairs, double flow,
                                 util::Rng& rng) {
  core::RecoveryProblem problem;
  topology::ErdosRenyiOptions eopt;
  eopt.nodes = nodes;
  eopt.edge_probability = edge_prob;
  eopt.capacity = 4.0 * flow;
  std::size_t attempts = 0;
  do {
    problem.graph = topology::make_topology(eopt, rng);
  } while (graph::hop_diameter(problem.graph) < 0 && ++attempts < 50);
  util::Rng demand_rng = rng.fork();
  problem.demands =
      scenario::far_apart_demands(problem.graph, pairs, flow, demand_rng);
  for (std::size_t n = 0; n < problem.graph.num_nodes(); ++n) {
    if (rng.chance(0.6)) {
      problem.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
    }
  }
  for (std::size_t e = 0; e < problem.graph.num_edges(); ++e) {
    if (rng.chance(0.6)) {
      problem.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
    }
  }
  return problem;
}

/// Brandes scaling on one view: serial reference, then each pool size, each
/// pinned exactly against the reference.
KernelReport bench_betweenness(const graph::GraphView& view,
                               std::size_t source_limit, int runs) {
  KernelReport report;
  const std::vector<double> reference =
      graph::betweenness_centrality(view, nullptr, source_limit);
  {
    util::Timer timer;
    for (int r = 0; r < runs; ++r) {
      graph::betweenness_centrality(view, nullptr, source_limit);
    }
    report.serial_seconds = timer.elapsed_seconds() / runs;
  }
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    report.thread_seconds.push_back(time_kernel(
        runs, report.identity_ok,
        [&] {
          return graph::betweenness_centrality(view, &pool, source_limit);
        },
        [&](const std::vector<double>& scores) {
          return scores == reference;
        }));
  }
  return report;
}

bool same_centrality(const core::CentralityResult& a,
                     const core::CentralityResult& b, std::size_t num_nodes,
                     std::size_t num_demands) {
  if (a.scores() != b.scores()) return false;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    const auto v = static_cast<graph::NodeId>(n);
    if (a.contributors(v) != b.contributors(v)) return false;
  }
  for (std::size_t h = 0; h < num_demands; ++h) {
    const auto& pa = a.demand_paths(static_cast<int>(h));
    const auto& pb = b.demand_paths(static_cast<int>(h));
    if (pa.total_capacity != pb.total_capacity ||
        pa.capacities != pb.capacities ||
        pa.paths.size() != pb.paths.size()) {
      return false;
    }
    for (std::size_t i = 0; i < pa.paths.size(); ++i) {
      if (pa.paths[i].edges != pb.paths[i].edges) return false;
    }
  }
  return true;
}

bool same_solution(const core::RecoverySolution& a,
                   const core::RecoverySolution& b) {
  return a.repaired_nodes == b.repaired_nodes &&
         a.repaired_edges == b.repaired_edges &&
         a.repair_cost == b.repair_cost &&
         a.satisfied_fraction == b.satisfied_fraction &&
         a.instance_feasible == b.instance_feasible &&
         a.iterations == b.iterations;
}

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("json", "BENCH_parallel.json",
               "write per-kernel timings, speedups and identity checks here");
  flags.define("nodes", "300", "Erdos-Renyi node count (betweenness + ISP)");
  flags.define("edge-prob", "0.03", "Erdos-Renyi edge probability");
  flags.define("pairs", "8", "demand pairs (centrality + ISP instances)");
  flags.define("flow", "3", "demand flow per pair");
  flags.define("rmat-nodes", "100000", "RMAT node count (betweenness)");
  flags.define("rmat-sources", "24",
               "RMAT betweenness source pivots (all |V| passes would take "
               "hours; the pivot prefix is the kernel's scaling unit)");
  flags.define("isp-runs", "1",
               "ISP end-to-end repetitions per thread count (a full solve "
               "is ~seconds; kernels use --runs)");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const double edge_prob = flags.get_double("edge-prob");
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double flow = flags.get_double("flow");
  const auto rmat_nodes = static_cast<std::size_t>(flags.get_int("rmat-nodes"));
  const auto rmat_sources =
      static_cast<std::size_t>(flags.get_int("rmat-sources"));
  const int runs = std::max(1, flags.get_int("runs"));
  const int isp_runs = std::max(1, flags.get_int("isp-runs"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  util::Json kernels = util::Json::object();
  bool all_identity_ok = true;
  const auto record = [&](const char* name, const KernelReport& report) {
    print_report(name, report);
    if (!report.identity_ok) all_identity_ok = false;
    kernels.set(name, report.to_json());
  };

  // --- betweenness: ER n=300, all sources -------------------------------
  {
    util::Rng rng(seed);
    topology::ErdosRenyiOptions eopt;
    eopt.nodes = nodes;
    eopt.edge_probability = edge_prob;
    graph::Graph g = topology::make_topology(eopt, rng);
    const graph::GraphView view = graph::GraphView::working(g);
    record("betweenness_er", bench_betweenness(view, 0, runs));
  }

  // --- betweenness: RMAT n=1e5, pivot prefix ----------------------------
  {
    util::Rng rng(seed + 1);
    topology::RmatOptions ropt;
    ropt.nodes = rmat_nodes;
    graph::Graph g = topology::make_topology({ropt}, rng);
    const graph::GraphView view = graph::GraphView::working(g);
    record("betweenness_rmat",
           bench_betweenness(view, rmat_sources, std::max(1, runs / 3)));
  }

  // --- demand-based centrality batch ------------------------------------
  {
    util::Rng rng(seed + 2);
    core::RecoveryProblem problem =
        er_problem(nodes, edge_prob, pairs, flow, rng);
    // Centrality ranks repair candidates on the *full* graph (broken
    // elements included) — ISP's per-iteration configuration.
    graph::ViewConfig config;
    const graph::GraphView view = graph::GraphView::build(problem.graph,
                                                          config);
    core::CentralityOptions serial_opt;
    serial_opt.share_source_trees = true;
    const core::CentralityResult reference =
        core::demand_based_centrality(view, problem.demands, serial_opt);

    KernelReport report;
    {
      util::Timer timer;
      for (int r = 0; r < runs; ++r) {
        core::demand_based_centrality(view, problem.demands, serial_opt);
      }
      report.serial_seconds = timer.elapsed_seconds() / runs;
    }
    for (const std::size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      core::CentralityOptions parallel_opt = serial_opt;
      parallel_opt.pool = &pool;
      report.thread_seconds.push_back(time_kernel(
          runs, report.identity_ok,
          [&] {
            return core::demand_based_centrality(view, problem.demands,
                                                 parallel_opt);
          },
          [&](const core::CentralityResult& result) {
            return same_centrality(result, reference,
                                   problem.graph.num_nodes(),
                                   problem.demands.size());
          }));
    }
    record("centrality", report);
  }

  // --- ISP end-to-end: concurrent pricing + both kernels in situ -------
  {
    util::Rng rng(seed + 3);
    core::RecoveryProblem problem =
        er_problem(nodes, edge_prob, pairs, flow, rng);
    const core::RecoverySolution reference =
        core::IspSolver(problem, core::IspOptions{}).solve();

    KernelReport report;
    {
      util::Timer timer;
      for (int r = 0; r < isp_runs; ++r) {
        core::IspSolver(problem, core::IspOptions{}).solve();
      }
      report.serial_seconds = timer.elapsed_seconds() / isp_runs;
    }
    for (const std::size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      core::IspOptions options;
      options.pool = &pool;
      report.thread_seconds.push_back(time_kernel(
          isp_runs, report.identity_ok,
          [&] { return core::IspSolver(problem, options).solve(); },
          [&](const core::RecoverySolution& solution) {
            return same_solution(solution, reference);
          }));
    }
    record("isp", report);
  }

  const std::string json_path = flags.get("json");
  if (!json_path.empty()) {
    util::Json out = util::Json::object();
    out.set("bench", "perf_parallel");
    out.set("seed", static_cast<double>(seed));
    out.set("runs", runs);
    out.set("hardware_threads",
            static_cast<double>(std::thread::hardware_concurrency()));
    util::Json thread_counts = util::Json::array();
    for (const std::size_t t : kThreadCounts) {
      thread_counts.push_back(util::Json(static_cast<double>(t)));
    }
    out.set("thread_counts", std::move(thread_counts));
    util::Json config = util::Json::object();
    config.set("nodes", nodes);
    config.set("edge_probability", edge_prob);
    config.set("pairs", pairs);
    config.set("flow", flow);
    config.set("rmat_nodes", rmat_nodes);
    config.set("rmat_sources", rmat_sources);
    out.set("config", std::move(config));
    out.set("kernels", std::move(kernels));
    out.set("identity_ok", all_identity_ok);
    util::write_json_file(json_path, out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::fflush(stdout);
  if (!all_identity_ok) {
    throw std::runtime_error(
        "perf_parallel: a parallel kernel diverged from its serial twin — "
        "timings recorded with identity_ok: false, treat them as "
        "meaningless");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
