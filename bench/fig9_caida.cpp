// Figure 9 (a-b): CAIDA-like AS topology (825 nodes / 1018 edges), complete
// destruction, 22 flow units per pair, pairs swept 1..6.
//
// Expected shape (paper): ISP close to OPT with zero demand loss; SRT's
// repair count is comparable but its satisfied demand drops substantially as
// pairs' shortest paths collide on capacity.  The greedy pool heuristics do
// not scale to this topology and are skipped exactly as in the paper.
// OPT at this scale is best-found (randomised ISP restarts + local search);
// EXPERIMENTS.md carries the caveat.
#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/2);
  flags.define("pairs-max", "6", "sweep demand pairs 1..pairs-max");
  flags.define("flow", "22", "demand flow per pair");
  flags.define("capacity", "30", "uniform link capacity");
  flags.define("topology-seed", "77", "CAIDA-like generator seed");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const double flow = flags.get_double("flow");

  topology::CaidaLikeOptions copt;
  copt.capacity = flags.get_double("capacity");
  util::Rng topo_rng(
      static_cast<std::uint64_t>(flags.get_int("topology-seed")));
  const graph::Graph base = topology::make_topology(copt, topo_rng);
  std::printf("[fig9] topology: %zu nodes, %zu edges\n", base.num_nodes(),
              base.num_edges());

  scenario::RunnerOptions ropt = bench::runner_options(flags);
  ropt.require_feasible = true;

  scenario::SweepRunner sweep("fig9", "pairs", ropt);
  sweep.add_algorithm(
      "ISP", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return core::IspSolver(p).solve();
      });
  sweep.add_algorithm(
      "OPT", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        heuristics::OptOptions oo;
        oo.use_milp = false;  // out of reach at 825 nodes; best-found
        return heuristics::solve_opt(p, oo).solution;
      });
  sweep.add_algorithm(
      "SRT", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return heuristics::solve_srt(p);
      });
  for (int pairs = 1; pairs <= flags.get_int("pairs-max"); ++pairs) {
    sweep.add_point(std::to_string(pairs), [&base, pairs, flow](
                                               util::Rng& rng) {
      core::RecoveryProblem p;
      p.graph = base;
      p.demands = scenario::far_apart_demands(
          p.graph, static_cast<std::size_t>(pairs), flow, rng);
      disruption::complete_destruction(p.graph);
      return p;
    });
  }

  const std::vector<bench::SeriesOutput> series = {
      {"Fig 9(a): total repairs", {.metric = "total_repairs"}, ".total.csv"},
      {"Fig 9(b): satisfied demand %", {.metric = "satisfied_pct"},
       ".satisfied.csv"}};
  bench::preflight(flags, series);
  bench::emit(sweep.run(), series, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
