// Figure 9 (a-b): CAIDA-like AS topology (825 nodes / 1018 edges), complete
// destruction, 22 flow units per pair, pairs swept 1..6.
//
// Expected shape (paper): ISP close to OPT with zero demand loss; SRT's
// repair count is comparable but its satisfied demand drops substantially as
// pairs' shortest paths collide on capacity.  The greedy pool heuristics do
// not scale to this topology and are skipped exactly as in the paper.
// OPT at this scale is best-found (randomised ISP restarts + local search);
// EXPERIMENTS.md carries the caveat.
#include "bench/bench_common.hpp"
#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/opt.hpp"
#include "scenario/scenario.hpp"
#include "topology/topologies.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/2);
  flags.define("pairs-max", "6", "sweep demand pairs 1..pairs-max");
  flags.define("flow", "22", "demand flow per pair");
  flags.define("capacity", "30", "uniform link capacity");
  flags.define("topology-seed", "77", "CAIDA-like generator seed");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const int pairs_max = flags.get_int("pairs-max");
  const double flow = flags.get_double("flow");
  const std::string csv = flags.get("csv");

  topology::CaidaLikeOptions copt;
  copt.capacity = flags.get_double("capacity");
  util::Rng topo_rng(
      static_cast<std::uint64_t>(flags.get_int("topology-seed")));
  const graph::Graph base = topology::caida_like(copt, topo_rng);
  std::printf("[fig9] topology: %zu nodes, %zu edges\n", base.num_nodes(),
              base.num_edges());

  std::vector<std::pair<std::string, scenario::Algorithm>> algorithms = {
      {"ISP",
       [](const core::RecoveryProblem& p) {
         return core::IspSolver(p).solve();
       }},
      {"OPT",
       [](const core::RecoveryProblem& p) {
         heuristics::OptOptions oo;
         oo.use_milp = false;  // out of reach at 825 nodes; best-found
         return heuristics::solve_opt(p, oo).solution;
       }},
      {"SRT",
       [](const core::RecoveryProblem& p) {
         return heuristics::solve_srt(p);
       }},
  };
  std::vector<std::string> names;
  for (const auto& [name, fn] : algorithms) names.push_back(name);

  std::vector<std::string> header{"pairs"};
  header.insert(header.end(), names.begin(), names.end());
  bench::ResultSink total("Fig 9(a): total repairs", header,
                          csv.empty() ? "" : csv + ".total.csv");
  bench::ResultSink loss("Fig 9(b): satisfied demand %", header,
                         csv.empty() ? "" : csv + ".satisfied.csv");

  for (int pairs = 1; pairs <= pairs_max; ++pairs) {
    scenario::RunnerOptions ropt;
    ropt.runs = static_cast<std::size_t>(flags.get_int("runs"));
    ropt.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                static_cast<std::uint64_t>(pairs) * 1000;
    ropt.require_feasible = true;
    const auto result = scenario::run_experiment(
        [&](util::Rng& rng) {
          core::RecoveryProblem p;
          p.graph = base;
          p.demands = scenario::far_apart_demands(
              p.graph, static_cast<std::size_t>(pairs), flow, rng);
          disruption::complete_destruction(p.graph);
          return p;
        },
        algorithms, ropt);

    auto series_row = [&](const char* metric) {
      std::vector<std::string> row{std::to_string(pairs)};
      for (const auto& name : names) {
        row.push_back(
            bench::fmt(result.per_algorithm.at(name).get(metric).mean()));
      }
      return row;
    };
    total.row(series_row("total_repairs"));
    loss.row(series_row("satisfied_pct"));
    std::printf("[fig9] pairs=%d done (%zu runs)\n", pairs,
                result.completed_runs);
    std::fflush(stdout);
  }
  total.print();
  loss.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
