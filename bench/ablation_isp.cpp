// Ablation: which of ISP's ingredients earn their keep?
//
// Variants on the Bell-Canada complete-destruction scenario (the Fig. 4
// setting):
//   full        — ISP as published;
//   no-prune    — bubble pruning disabled (Theorem 3 unused);
//   no-direct   — direct demand-edge repairs disabled (Section IV-E rule);
//   flat-metric — dynamic path metric replaced by a huge `const`, so repair
//                 costs barely influence lengths (Section IV-D ablated);
//   betweenness — classic betweenness centrality (Section IV-B ablated).
//
// Expected: the full algorithm weakly dominates on repairs; flat-metric
// hurts most (the metric is what concentrates flow on repaired elements —
// the paper calls it the source of ISP's "extraordinary strength").
#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs-max", "6", "sweep demand pairs 1..pairs-max");
  flags.define("flow", "10", "demand flow per pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const double flow = flags.get_double("flow");

  auto isp_with = [](core::IspOptions opt) {
    return [opt](const core::RecoveryProblem& p, scenario::RunContext&) {
      return core::IspSolver(p, opt).solve();
    };
  };
  core::IspOptions base;
  core::IspOptions no_prune = base;
  no_prune.enable_prune = false;
  core::IspOptions no_direct = base;
  no_direct.enable_direct_edge_repair = false;
  core::IspOptions flat_metric = base;
  flat_metric.metric_const = 1e6;  // drowns repair costs in the length
  core::IspOptions betweenness = base;
  betweenness.use_classic_betweenness = true;  // Section IV-B ablation

  scenario::RunnerOptions ropt = bench::runner_options(flags);
  ropt.require_feasible = true;

  scenario::SweepRunner sweep("ablation", "pairs", ropt);
  sweep.add_algorithm("full", isp_with(base));
  sweep.add_algorithm("no-prune", isp_with(no_prune));
  sweep.add_algorithm("no-direct", isp_with(no_direct));
  sweep.add_algorithm("flat-metric", isp_with(flat_metric));
  sweep.add_algorithm("betweenness", isp_with(betweenness));
  for (int pairs = 1; pairs <= flags.get_int("pairs-max"); ++pairs) {
    sweep.add_point(std::to_string(pairs), [pairs, flow](util::Rng& rng) {
      core::RecoveryProblem p;
      p.graph = topology::make_topology({topology::BellCanadaOptions{}});
      p.demands = scenario::far_apart_demands(
          p.graph, static_cast<std::size_t>(pairs), flow, rng);
      disruption::complete_destruction(p.graph);
      return p;
    });
  }

  const std::vector<bench::SeriesOutput> series = {
      {"ISP ablation: total repairs", {.metric = "total_repairs"},
       ".repairs.csv"},
      {"ISP ablation: satisfied demand %", {.metric = "satisfied_pct"},
       ".satisfied.csv"}};
  bench::preflight(flags, series);
  bench::emit(sweep.run(), series, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
