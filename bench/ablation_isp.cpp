// Ablation: which of ISP's ingredients earn their keep?
//
// Variants on the Bell-Canada complete-destruction scenario (the Fig. 4
// setting):
//   full        — ISP as published;
//   no-prune    — bubble pruning disabled (Theorem 3 unused);
//   no-direct   — direct demand-edge repairs disabled (Section IV-E rule);
//   flat-metric — dynamic path metric replaced by a huge `const`, so repair
//                 costs barely influence lengths (Section IV-D ablated).
//
// Expected: the full algorithm weakly dominates on repairs; flat-metric
// hurts most (the metric is what concentrates flow on repaired elements —
// the paper calls it the source of ISP's "extraordinary strength").
#include "bench/bench_common.hpp"
#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "scenario/scenario.hpp"
#include "topology/topologies.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("pairs-max", "6", "sweep demand pairs 1..pairs-max");
  flags.define("flow", "10", "demand flow per pair");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const double flow = flags.get_double("flow");
  const std::string csv = flags.get("csv");

  auto isp_with = [](core::IspOptions opt) {
    return [opt](const core::RecoveryProblem& p) {
      return core::IspSolver(p, opt).solve();
    };
  };
  core::IspOptions base;
  core::IspOptions no_prune = base;
  no_prune.enable_prune = false;
  core::IspOptions no_direct = base;
  no_direct.enable_direct_edge_repair = false;
  core::IspOptions flat_metric = base;
  flat_metric.metric_const = 1e6;  // drowns repair costs in the length
  core::IspOptions betweenness = base;
  betweenness.use_classic_betweenness = true;  // Section IV-B ablation

  std::vector<std::pair<std::string, scenario::Algorithm>> algorithms = {
      {"full", isp_with(base)},
      {"no-prune", isp_with(no_prune)},
      {"no-direct", isp_with(no_direct)},
      {"flat-metric", isp_with(flat_metric)},
      {"betweenness", isp_with(betweenness)},
  };
  std::vector<std::string> names;
  for (const auto& [name, fn] : algorithms) names.push_back(name);

  std::vector<std::string> header{"pairs"};
  header.insert(header.end(), names.begin(), names.end());
  bench::ResultSink repairs("ISP ablation: total repairs", header,
                            csv.empty() ? "" : csv + ".repairs.csv");
  bench::ResultSink sat("ISP ablation: satisfied demand %", header,
                        csv.empty() ? "" : csv + ".satisfied.csv");

  for (int pairs = 1; pairs <= flags.get_int("pairs-max"); ++pairs) {
    scenario::RunnerOptions ropt;
    ropt.runs = static_cast<std::size_t>(flags.get_int("runs"));
    ropt.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                static_cast<std::uint64_t>(pairs) * 1000;
    ropt.require_feasible = true;
    const auto result = scenario::run_experiment(
        [&](util::Rng& rng) {
          core::RecoveryProblem p;
          p.graph = topology::bell_canada_like();
          p.demands = scenario::far_apart_demands(
              p.graph, static_cast<std::size_t>(pairs), flow, rng);
          disruption::complete_destruction(p.graph);
          return p;
        },
        algorithms, ropt);

    auto series_row = [&](const char* metric) {
      std::vector<std::string> row{std::to_string(pairs)};
      for (const auto& name : names) {
        row.push_back(
            bench::fmt(result.per_algorithm.at(name).get(metric).mean()));
      }
      return row;
    };
    repairs.row(series_row("total_repairs"));
    sat.row(series_row("satisfied_pct"));
    std::printf("[ablation] pairs=%d done\n", pairs);
    std::fflush(stdout);
  }
  repairs.print();
  sat.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
