// Figure 3: Bell-Canada, complete destruction, 4 demand pairs, demand flow
// per pair swept — total repairs of the multi-commodity relaxation's optimal
// face (MCB best / MCW worst) against OPT and ALL.
//
// Expected shape (paper): the MCB..MCW band is wide — MCB tracks OPT while
// MCW drifts toward ALL — which is the paper's argument for why eq. (8) is
// not a usable recovery policy by itself.
#include <map>
#include <memory>
#include <mutex>

#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/multicommodity.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

// The MCB and MCW columns come from one eq.(8) face enumeration per run.
// Both algorithm cells of a run derive the same face RNG from the run seed,
// so the cache is purely a cost saver — a raced duplicate computation would
// produce the identical band.
class BandCache {
 public:
  explicit BandCache(std::size_t samples) : samples_(samples) {}

  heuristics::MulticommodityBand get(const core::RecoveryProblem& problem,
                                     const scenario::RunContext& ctx) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = bands_.find(ctx.run_seed);
      if (it != bands_.end()) return it->second;
    }
    util::Rng face_rng(ctx.run_seed ^ 0xfacefeedULL);
    const auto band = heuristics::multicommodity_band(problem, samples_,
                                                      face_rng);
    if (!band.feasible) {
      // With require_feasible the eq.(8) LP is feasible by construction, so
      // this is pathological — but its zero repairs would silently drag the
      // MCB/MCW means, so make it loud.
      NETREC_LOG(kError) << "run " << ctx.run_index
                         << ": eq.(8) band infeasible; MCB/MCW record 0";
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return bands_.emplace(ctx.run_seed, band).first->second;
  }

 private:
  std::size_t samples_;
  std::mutex mutex_;
  std::map<std::uint64_t, heuristics::MulticommodityBand> bands_;
};

/// Wraps a face repair count as a solution so the engine can aggregate it;
/// only total_repairs is meaningful for the MCB/MCW columns.
core::RecoverySolution as_solution(std::size_t repairs, bool feasible) {
  core::RecoverySolution s;
  s.repaired_edges.resize(repairs);
  s.instance_feasible = feasible;
  return s;
}

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/2);
  flags.define("pairs", "4", "number of demand pairs");
  flags.define("flows", "2,4,6,8,10,12,14,16,18", "demand intensities swept");
  flags.define("samples", "6", "optimal-face vertices sampled per instance");
  flags.define("opt-seconds", "3", "MILP budget per instance (0 disables)");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double opt_seconds = flags.get_double("opt-seconds");
  auto cache = std::make_shared<BandCache>(
      static_cast<std::size_t>(flags.get_int("samples")));

  scenario::RunnerOptions ropt = bench::runner_options(flags);
  ropt.require_feasible = true;

  scenario::SweepRunner sweep("fig3", "flow", ropt);
  sweep.add_algorithm(
      "OPT",
      [opt_seconds](const core::RecoveryProblem& p, scenario::RunContext&) {
        heuristics::OptOptions oo;
        oo.time_limit_seconds = opt_seconds;
        oo.use_milp = opt_seconds > 0.0;
        return heuristics::solve_opt(p, oo).solution;
      });
  sweep.add_algorithm("MCB", [cache](const core::RecoveryProblem& p,
                                     scenario::RunContext& ctx) {
    const auto band = cache->get(p, ctx);
    return as_solution(band.mcb_repairs, band.feasible);
  });
  sweep.add_algorithm("MCW", [cache](const core::RecoveryProblem& p,
                                     scenario::RunContext& ctx) {
    const auto band = cache->get(p, ctx);
    return as_solution(band.mcw_repairs, band.feasible);
  });
  sweep.add_algorithm(
      "ALL", [](const core::RecoveryProblem& p, scenario::RunContext&) {
        return heuristics::solve_all(p);
      });
  for (double flow : flags.get_double_list("flows")) {
    sweep.add_point(util::format_double(flow, 0),
                    [pairs, flow](util::Rng& rng) {
                      core::RecoveryProblem p;
                      p.graph = topology::make_topology({topology::BellCanadaOptions{}});
                      p.demands = scenario::far_apart_demands(p.graph, pairs,
                                                              flow, rng);
                      disruption::complete_destruction(p.graph);
                      return p;
                    });
  }

  const std::vector<bench::SeriesOutput> series = {
      {"Fig 3: repairs of the eq.(8) optimal face",
       {.metric = "total_repairs"},
       ".csv"}};
  bench::preflight(flags, series);
  bench::emit(sweep.run(), series, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
