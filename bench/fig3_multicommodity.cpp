// Figure 3: Bell-Canada, complete destruction, 4 demand pairs, demand flow
// per pair swept — total repairs of the multi-commodity relaxation's optimal
// face (MCB best / MCW worst) against OPT and ALL.
//
// Expected shape (paper): the MCB..MCW band is wide — MCB tracks OPT while
// MCW drifts toward ALL — which is the paper's argument for why eq. (8) is
// not a usable recovery policy by itself.
#include "bench/bench_common.hpp"
#include "disruption/disruption.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/multicommodity.hpp"
#include "heuristics/opt.hpp"
#include "scenario/scenario.hpp"
#include "topology/topologies.hpp"
#include "util/stats.hpp"

namespace {

using namespace netrec;

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/2);
  flags.define("pairs", "4", "number of demand pairs");
  flags.define("flows", "2,4,6,8,10,12,14,16,18", "demand intensities swept");
  flags.define("samples", "6", "optimal-face vertices sampled per instance");
  flags.define("opt-seconds", "3", "MILP budget per instance (0 disables)");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const int pairs = flags.get_int("pairs");
  const auto samples = static_cast<std::size_t>(flags.get_int("samples"));
  const double opt_seconds = flags.get_double("opt-seconds");
  const std::string csv = flags.get("csv");

  bench::ResultSink sink("Fig 3: repairs of the eq.(8) optimal face",
                         {"flow", "OPT", "MCB", "MCW", "ALL"},
                         csv.empty() ? "" : csv + ".csv");

  for (double flow : flags.get_double_list("flows")) {
    util::RunningStats opt_stats, mcb_stats, mcw_stats, all_stats;
    util::Rng master(static_cast<std::uint64_t>(flags.get_int("seed")) +
                     static_cast<std::uint64_t>(flow * 100));
    const auto runs = static_cast<std::size_t>(flags.get_int("runs"));
    for (std::size_t run_idx = 0; run_idx < runs; ++run_idx) {
      util::Rng rng = master.fork();
      core::RecoveryProblem p;
      p.graph = topology::bell_canada_like();
      std::size_t redraws = 0;
      do {
        p.demands = scenario::far_apart_demands(
            p.graph, static_cast<std::size_t>(pairs), flow, rng);
      } while (!p.feasible_when_fully_repaired() && ++redraws < 25);
      disruption::complete_destruction(p.graph);

      util::Rng face_rng = rng.fork();
      const auto band =
          heuristics::multicommodity_band(p, samples, face_rng);
      if (!band.feasible) continue;
      mcb_stats.add(static_cast<double>(band.mcb_repairs));
      mcw_stats.add(static_cast<double>(band.mcw_repairs));

      heuristics::OptOptions oo;
      oo.time_limit_seconds = opt_seconds;
      oo.use_milp = opt_seconds > 0.0;
      opt_stats.add(static_cast<double>(
          heuristics::solve_opt(p, oo).solution.total_repairs()));
      all_stats.add(
          static_cast<double>(heuristics::solve_all(p).total_repairs()));
    }
    sink.row({bench::fmt(flow, 0), bench::fmt(opt_stats.mean()),
              bench::fmt(mcb_stats.mean()), bench::fmt(mcw_stats.mean()),
              bench::fmt(all_stats.mean())});
    std::printf("[fig3] flow=%.0f done\n", flow);
    std::fflush(stdout);
  }
  sink.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
