// Micro-benchmarks (google-benchmark) for the primitives ISP leans on:
// Dijkstra under the dynamic metric, Dinic max flow, the demand-based
// centrality pass, the exact routability test, the split LP and a dense
// simplex solve.  These are the per-iteration costs behind Fig. 7(a)'s
// "ISP time is negligible" claim.
#include <benchmark/benchmark.h>

#include "core/centrality.hpp"
#include "core/isp.hpp"
#include "disruption/disruption.hpp"
#include "graph/dijkstra.hpp"
#include "graph/maxflow.hpp"
#include "graph/view.hpp"
#include "lp/simplex.hpp"
#include "mcf/routing.hpp"
#include "mcf/split.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"

namespace {

using namespace netrec;

const graph::Graph& bell() {
  static const graph::Graph g = topology::make_topology({topology::BellCanadaOptions{}});
  return g;
}

const graph::Graph& caida() {
  static const graph::Graph g = [] {
    util::Rng rng(77);
    return topology::make_topology(topology::CaidaLikeOptions{}, rng);
  }();
  return g;
}

std::vector<mcf::Demand> demands_for(const graph::Graph& g, std::size_t n,
                                     double amount) {
  util::Rng rng(123);
  return scenario::far_apart_demands(g, n, amount, rng);
}

void BM_DijkstraBell(benchmark::State& state) {
  const auto& g = bell();
  graph::ViewConfig config;
  config.length = [](graph::EdgeId) { return 1.0; };
  const auto view = graph::GraphView::build(g, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(view, 0));
  }
}
BENCHMARK(BM_DijkstraBell);

void BM_DijkstraCaida(benchmark::State& state) {
  const auto& g = caida();
  graph::ViewConfig config;
  config.length = [](graph::EdgeId) { return 1.0; };
  const auto view = graph::GraphView::build(g, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(view, 0));
  }
}
BENCHMARK(BM_DijkstraCaida);

void BM_DinicBell(benchmark::State& state) {
  const auto& g = bell();
  graph::ViewConfig config;
  config.capacity = mcf::static_capacity(g);
  const auto view = graph::GraphView::build(g, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_flow(
        view, 0, static_cast<graph::NodeId>(g.num_nodes() - 3)));
  }
}
BENCHMARK(BM_DinicBell);

void BM_CentralityBell(benchmark::State& state) {
  const auto& g = bell();
  const auto demands = demands_for(g, 4, 10.0);
  auto unit = [](graph::EdgeId) { return 1.0; };
  auto cap = mcf::static_capacity(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::demand_based_centrality(g, demands, unit, cap));
  }
}
BENCHMARK(BM_CentralityBell);

void BM_RoutabilityBell(benchmark::State& state) {
  const auto& g = bell();
  const auto demands = demands_for(g, 4, 10.0);
  auto cap = mcf::static_capacity(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcf::is_routable(g, demands, {}, cap));
  }
}
BENCHMARK(BM_RoutabilityBell);

void BM_RoutabilityCaida(benchmark::State& state) {
  const auto& g = caida();
  const auto demands = demands_for(g, 4, 10.0);
  auto cap = mcf::static_capacity(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcf::is_routable(g, demands, {}, cap));
  }
}
BENCHMARK(BM_RoutabilityCaida);

void BM_SplitLpBell(benchmark::State& state) {
  const auto& g = bell();
  const auto demands = demands_for(g, 4, 10.0);
  auto cap = mcf::static_capacity(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcf::max_splittable_amount(g, demands, 0, 19, {}, cap));
  }
}
BENCHMARK(BM_SplitLpBell);

void BM_SimplexDense(benchmark::State& state) {
  // A 60-row, 120-column random-ish LP representative of the masters.
  lp::Model model;
  util::Rng rng(9);
  const int rows = 60;
  const int cols = 120;
  for (int r = 0; r < rows; ++r) {
    model.add_constraint(lp::Sense::kLessEqual, rng.uniform(5.0, 20.0));
  }
  for (int c = 0; c < cols; ++c) {
    const int v =
        model.add_variable(0.0, lp::kInfinity, -rng.uniform(0.1, 1.0));
    for (int r = 0; r < rows; ++r) {
      if (rng.chance(0.15)) model.set_coefficient(r, v, rng.uniform(0.1, 2.0));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(model));
  }
}
BENCHMARK(BM_SimplexDense);

/// The PathLpSession re-solve kernel: a master whose rhs drifts a little
/// between solves (a few percent, the shape of residual consumption),
/// re-solved either from scratch (cold, the one-shot PathLp shape) or
/// from the previous basis with warm_append repairs (the session shape).
/// Same model sequence in both, so the timing difference is pure
/// warm-start value (~1 pivot per warm re-solve vs a full two-phase
/// cold solve; large drifts erase the advantage, which is the point of
/// invalidating precisely).
lp::Model resolve_model() {
  lp::Model model;
  util::Rng rng(11);
  const int rows = 60;
  const int cols = 120;
  for (int r = 0; r < rows; ++r) {
    model.add_constraint(lp::Sense::kLessEqual, rng.uniform(5.0, 20.0));
  }
  for (int c = 0; c < cols; ++c) {
    const int v =
        model.add_variable(0.0, lp::kInfinity, -rng.uniform(0.1, 1.0));
    for (int r = 0; r < rows; ++r) {
      if (rng.chance(0.15)) model.set_coefficient(r, v, rng.uniform(0.1, 2.0));
    }
  }
  return model;
}

void BM_SimplexResolveCold(benchmark::State& state) {
  lp::Model model = resolve_model();
  const double base = model.constraint(0).rhs;
  bool flip = false;
  for (auto _ : state) {
    model.constraint(0).rhs = flip ? base * 0.98 : base;
    flip = !flip;
    benchmark::DoNotOptimize(lp::solve(model));
  }
}
BENCHMARK(BM_SimplexResolveCold);

void BM_SimplexResolveWarm(benchmark::State& state) {
  lp::Model model = resolve_model();
  const double base = model.constraint(0).rhs;
  lp::SolveOptions options;
  options.warm_append = true;
  lp::Basis basis;
  benchmark::DoNotOptimize(lp::solve(model, options, &basis));  // prime
  bool flip = false;
  for (auto _ : state) {
    model.constraint(0).rhs = flip ? base * 0.98 : base;
    flip = !flip;
    benchmark::DoNotOptimize(lp::solve(model, options, &basis));
  }
}
BENCHMARK(BM_SimplexResolveWarm);

void BM_IspBellComplete(benchmark::State& state) {
  core::RecoveryProblem p;
  p.graph = bell();
  p.demands = demands_for(p.graph, 4, 10.0);
  disruption::complete_destruction(p.graph);
  for (auto _ : state) {
    core::IspSolver solver(p);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_IspBellComplete);

}  // namespace

BENCHMARK_MAIN();
