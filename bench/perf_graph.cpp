// GraphView hot-path microbenchmark: callback algorithms vs CSR snapshots.
//
// Times the two traversal workloads the CSR refactor targets, on one seeded
// Erdős–Rényi instance (default n=400, p=0.02) with a random disruption so
// the usability filters are non-trivial:
//
//   * betweenness — Brandes over the working subgraph (|V| Dijkstra passes,
//     the paper's eq. 3 ablation baseline and the costliest per-edge-callback
//     consumer in the tree);
//   * pricing     — the MCF column-generation inner loop: several rounds of
//     per-edge reduced-cost weights, each priced with one Dijkstra per
//     demand (exactly PathLp::solve's pricing shape).
//
// Each workload runs twice per instance: through the preserved
// std::function reference path (graph::legacy::*) and through a GraphView.
// Both variants fold their outputs into a checksum recorded as the
// `repair_cost` metric; the driver refuses to report timings whose
// checksums diverge, so the comparison cannot silently drift.  Results are
// written to --json (default BENCH_graph.json) with per-kernel mean seconds
// and speedups — the artifact the CI perf-smoke step archives, so the perf
// trajectory accrues per PR.
//
// Like Fig 7a, wall time is the measured metric, so --threads defaults to 1;
// raising it keeps checksums identical but biases the timings.
#include <cmath>

#include "bench/bench_common.hpp"
#include "graph/betweenness.hpp"
#include "graph/dijkstra.hpp"
#include "graph/view.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace netrec;

/// Deterministic per-(edge, round) pseudo-dual in [0, 1): stands in for the
/// simplex duals of a real pricing round without dragging the LP into the
/// measurement.
double pseudo_dual(graph::EdgeId e, std::size_t round) {
  const auto h = static_cast<std::uint64_t>(e) * 2654435761ULL +
                 static_cast<std::uint64_t>(round) * 40503ULL;
  return static_cast<double>(h % 1024) / 1024.0;
}

/// The per-edge work of ISP's dynamic metric (Section IV-D): brokenness
/// surcharges, a deterministic jitter, normalisation by capacity.  This is
/// what the callback path re-evaluates on every edge examination and the
/// view flattens once per round.
double dynamic_metric(const graph::Graph& g, graph::EdgeId e) {
  const auto [eu, ev] = g.edge_endpoints(e);
  double k = 1.0;
  if (g.edge_broken(e)) k += g.edge_repair_cost(e);
  if (g.node_broken(eu)) k += g.node_repair_cost(eu) / 2.0;
  if (g.node_broken(ev)) k += g.node_repair_cost(ev) / 2.0;
  const auto h = static_cast<std::uint64_t>(e) * 2654435761ULL;
  const double jitter = 1.0 + static_cast<double>(h % 97) / 970.0;
  return k * jitter / std::max(g.edge_capacity(e), 1e-6);
}

/// Reduced-cost edge length for the pricing kernels (>= 0 by construction).
double pricing_weight(const graph::Graph& g, graph::EdgeId e,
                      std::size_t round) {
  return std::max(0.0,
                  dynamic_metric(g, e) * (1.0 - 0.9 * pseudo_dual(e, round)));
}

struct KernelConfig {
  std::size_t pricing_rounds = 6;
};

core::RecoverySolution timed(const std::string& name, double checksum,
                             const util::Timer& timer) {
  core::RecoverySolution solution;
  solution.algorithm = name;
  solution.wall_seconds = timer.elapsed_seconds();
  // Smuggle the checksum through a recorded metric so the sweep JSON keeps
  // it and the driver can compare variants.
  solution.repair_cost = checksum;
  return solution;
}

#if defined(NETREC_ENABLE_LEGACY)
core::RecoverySolution betweenness_callback(const core::RecoveryProblem& p) {
  util::Timer timer;
  const graph::Graph& g = p.graph;
  const auto scores = graph::legacy::betweenness_centrality(
      g, [&g](graph::EdgeId e) { return dynamic_metric(g, e); },
      graph::working_edge_filter(g));
  double checksum = 0.0;
  for (double s : scores) checksum += s;
  return timed("betweenness/callback", checksum, timer);
}
#endif  // NETREC_ENABLE_LEGACY

core::RecoverySolution betweenness_view(const core::RecoveryProblem& p) {
  util::Timer timer;
  const graph::Graph& g = p.graph;
  graph::ViewConfig config;
  config.edge_ok = graph::working_edge_filter(g);
  config.length = [&g](graph::EdgeId e) { return dynamic_metric(g, e); };
  const auto scores =
      graph::betweenness_centrality(graph::GraphView::build(g, config));
  double checksum = 0.0;
  for (double s : scores) checksum += s;
  return timed("betweenness/view", checksum, timer);
}

#if defined(NETREC_ENABLE_LEGACY)
core::RecoverySolution pricing_callback(const core::RecoveryProblem& p,
                                        const KernelConfig& config) {
  util::Timer timer;
  const graph::Graph& g = p.graph;
  const auto edge_ok = graph::working_edge_filter(g);
  double checksum = 0.0;
  for (std::size_t round = 0; round < config.pricing_rounds; ++round) {
    const auto weight = [&g, round](graph::EdgeId e) {
      return pricing_weight(g, e, round);
    };
    for (const mcf::Demand& d : p.demands) {
      const auto tree = graph::legacy::dijkstra(g, d.source, weight, edge_ok);
      if (tree.reached(d.target)) {
        checksum += tree.distance[static_cast<std::size_t>(d.target)];
      }
    }
  }
  return timed("pricing/callback", checksum, timer);
}
#endif  // NETREC_ENABLE_LEGACY

core::RecoverySolution pricing_view(const core::RecoveryProblem& p,
                                    const KernelConfig& config) {
  util::Timer timer;
  // One snapshot per solve, one flat weight refresh per round — the shape
  // PathLp::solve now uses.
  const graph::Graph& g = p.graph;
  const auto view = graph::GraphView::working(g);
  std::vector<double> weights(g.num_edges(), 0.0);
  double checksum = 0.0;
  for (std::size_t round = 0; round < config.pricing_rounds; ++round) {
    for (std::size_t e = 0; e < weights.size(); ++e) {
      weights[e] = pricing_weight(g, static_cast<graph::EdgeId>(e), round);
    }
    for (const mcf::Demand& d : p.demands) {
      const auto tree = graph::dijkstra(view, d.source, weights);
      if (tree.reached(d.target)) {
        checksum += tree.distance[static_cast<std::size_t>(d.target)];
      }
    }
  }
  return timed("pricing/view", checksum, timer);
}

int run(int argc, char** argv) {
  util::Flags flags;
  bench::declare_common_flags(flags, /*default_runs=*/3);
  flags.define("threads", "1",
               "worker threads (default 1: concurrent kernels would inflate "
               "the wall-clock comparison)");
  flags.define("json", "BENCH_graph.json",
               "write per-kernel timings and speedups to this path");
  flags.define("nodes", "400", "Erdos-Renyi node count");
  flags.define("edge-prob", "0.02", "Erdos-Renyi edge probability");
  flags.define("pairs", "24", "demand pairs priced per round");
  flags.define("rounds", "6", "pricing rounds per instance");
  flags.define("break-frac", "0.15", "fraction of elements broken");
  if (!bench::parse_or_usage(flags, argc, argv)) return 0;

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const double edge_prob = flags.get_double("edge-prob");
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double break_frac = flags.get_double("break-frac");
  KernelConfig config;
  config.pricing_rounds = static_cast<std::size_t>(flags.get_int("rounds"));

  scenario::RunnerOptions options = bench::runner_options(flags);
  // The kernels never repair anything, so the feasibility redraw loop of the
  // engine must not reject the instances.
  options.require_feasible = false;

  scenario::SweepRunner sweep("perf_graph", "instance", options);
#if defined(NETREC_ENABLE_LEGACY)
  sweep.add_algorithm("betweenness/callback",
                      [](const core::RecoveryProblem& p,
                         scenario::RunContext&) {
                        return betweenness_callback(p);
                      });
#endif
  sweep.add_algorithm("betweenness/view",
                      [](const core::RecoveryProblem& p,
                         scenario::RunContext&) {
                        return betweenness_view(p);
                      });
#if defined(NETREC_ENABLE_LEGACY)
  sweep.add_algorithm("pricing/callback",
                      [config](const core::RecoveryProblem& p,
                               scenario::RunContext&) {
                        return pricing_callback(p, config);
                      });
#endif
  sweep.add_algorithm("pricing/view",
                      [config](const core::RecoveryProblem& p,
                               scenario::RunContext&) {
                        return pricing_view(p, config);
                      });

  char label[64];
  std::snprintf(label, sizeof(label), "er_n%zu_p%.3f", nodes, edge_prob);
  sweep.add_point(label, [nodes, edge_prob, pairs,
                          break_frac](util::Rng& rng) {
    core::RecoveryProblem problem;
    topology::ErdosRenyiOptions eopt;
    eopt.nodes = nodes;
    eopt.edge_probability = edge_prob;
    problem.graph = topology::make_topology(eopt, rng);
    // Random disruption so the working filters actually filter.
    for (std::size_t n = 0; n < problem.graph.num_nodes(); ++n) {
      if (rng.chance(break_frac / 3.0)) {
        problem.graph.set_node_broken(static_cast<graph::NodeId>(n), true);
      }
    }
    for (std::size_t e = 0; e < problem.graph.num_edges(); ++e) {
      if (rng.chance(break_frac)) {
        problem.graph.set_edge_broken(static_cast<graph::EdgeId>(e), true);
      }
    }
    const auto n = static_cast<std::int64_t>(problem.graph.num_nodes());
    for (std::size_t h = 0; h < pairs; ++h) {
      const auto s = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
      auto t = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
      if (t == s) t = static_cast<graph::NodeId>((t + 1) % n);
      problem.demands.push_back(mcf::Demand{s, t, 1.0});
    }
    return problem;
  });

  const std::vector<bench::SeriesOutput> series = {
      {"perf_graph: wall seconds per kernel",
       {.metric = "wall_seconds", .precision = 6},
       ".time.csv"},
      {"perf_graph: result checksums (callback == view required)",
       {.metric = "repair_cost", .precision = 3},
       ".checksum.csv"}};
  bench::preflight(flags, series);

  scenario::SweepResult result = sweep.run();
  bench::emit(result, series, flags);

  util::Json kernels = util::Json::object();
  for (const char* kernel : {"betweenness", "pricing"}) {
    const std::string callback_name = std::string(kernel) + "/callback";
    const std::string view_name = std::string(kernel) + "/view";
    const double cb_sum = result.mean(0, callback_name, "repair_cost");
    const double view_sum = result.mean(0, view_name, "repair_cost");
    if (cb_sum != view_sum) {
      throw std::runtime_error(std::string("perf_graph: ") + kernel +
                               " checksums diverge between callback and "
                               "view variants");
    }
    const double cb_seconds = result.mean(0, callback_name, "wall_seconds");
    const double view_seconds = result.mean(0, view_name, "wall_seconds");
    const double speedup =
        view_seconds > 0.0 ? cb_seconds / view_seconds : 0.0;
    std::printf("%s: callback %.6fs  view %.6fs  speedup %.2fx\n", kernel,
                cb_seconds, view_seconds, speedup);
    util::Json entry = util::Json::object();
    entry.set("callback_seconds", cb_seconds);
    entry.set("view_seconds", view_seconds);
    entry.set("speedup", speedup);
    entry.set("checksum", cb_sum);
    kernels.set(kernel, std::move(entry));
  }

  // bench::emit wrote the raw sweep to --json; replace it with the richer
  // document that embeds the sweep next to the per-kernel speedups.
  const std::string json_path = flags.get("json");
  if (!json_path.empty()) {
    util::Json out = util::Json::object();
    out.set("bench", "perf_graph");
    out.set("seed", static_cast<double>(options.seed));
    out.set("runs", options.runs);
    util::Json topo = util::Json::object();
    topo.set("nodes", nodes);
    topo.set("edge_probability", edge_prob);
    topo.set("pairs", pairs);
    topo.set("pricing_rounds", config.pricing_rounds);
    topo.set("break_fraction", break_frac);
    out.set("topology", std::move(topo));
    out.set("kernels", std::move(kernels));
    out.set("sweep", result.to_json());
    util::write_json_file(json_path, out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return netrec::bench::main_guard(run, argc, argv);
}
