#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/log.hpp"

namespace netrec::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Internal variable layout: [0, n_struct) structural, [n_struct,
/// n_struct+m) slacks, [n_struct+m, n_struct+2m) phase-1 artificials.
class SimplexEngine {
 public:
  SimplexEngine(const Model& model, const SolveOptions& options)
      : model_(model), opt_(options) {
    n_struct_ = model.num_variables();
    m_ = model.num_constraints();
    n_total_ = n_struct_ + 2 * m_;
    build_internal();
  }

  Solution run(Basis* warm);

 private:
  struct Column {
    std::vector<Entry> entries;
  };

  void build_internal() {
    lower_.assign(static_cast<std::size_t>(n_total_), 0.0);
    upper_.assign(static_cast<std::size_t>(n_total_), 0.0);
    cost_.assign(static_cast<std::size_t>(n_total_), 0.0);
    columns_.resize(static_cast<std::size_t>(n_total_));
    rhs_.assign(static_cast<std::size_t>(m_), 0.0);

    const double sign = model_.goal == Goal::kMinimize ? 1.0 : -1.0;
    for (int j = 0; j < n_struct_; ++j) {
      const Variable& v = model_.variable(j);
      lower_[static_cast<std::size_t>(j)] = v.lower;
      upper_[static_cast<std::size_t>(j)] = v.upper;
      cost_[static_cast<std::size_t>(j)] = sign * v.cost;
      columns_[static_cast<std::size_t>(j)].entries = v.column;
    }
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model_.constraint(i);
      rhs_[static_cast<std::size_t>(i)] = c.rhs;
      const int slack = slack_index(i);
      columns_[static_cast<std::size_t>(slack)].entries = {Entry{i, 1.0}};
      switch (c.sense) {
        case Sense::kLessEqual:
          lower_[static_cast<std::size_t>(slack)] = 0.0;
          upper_[static_cast<std::size_t>(slack)] = kInfinity;
          break;
        case Sense::kGreaterEqual:
          lower_[static_cast<std::size_t>(slack)] = -kInfinity;
          upper_[static_cast<std::size_t>(slack)] = 0.0;
          break;
        case Sense::kEqual:
          lower_[static_cast<std::size_t>(slack)] = 0.0;
          upper_[static_cast<std::size_t>(slack)] = 0.0;
          break;
      }
      // Artificial column sign is fixed at phase-1 setup.
      const int art = artificial_index(i);
      lower_[static_cast<std::size_t>(art)] = 0.0;
      upper_[static_cast<std::size_t>(art)] = 0.0;  // opened during phase 1
    }
  }

  int slack_index(int row) const { return n_struct_ + row; }
  int artificial_index(int row) const { return n_struct_ + m_ + row; }
  bool is_artificial(int v) const { return v >= n_struct_ + m_; }

  double bound_start_value(int v) const {
    const double lo = lower_[static_cast<std::size_t>(v)];
    const double hi = upper_[static_cast<std::size_t>(v)];
    if (std::isfinite(lo)) return lo;
    if (std::isfinite(hi)) return hi;
    return 0.0;
  }

  // --- linear algebra ----------------------------------------------------

  double& binv(int r, int c) {
    return binv_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(c)];
  }
  double binv_at(int r, int c) const {
    return binv_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(c)];
  }

  /// Rebuilds binv_ from the current basis; false when the basis is singular.
  bool refactorize() {
    // Dense Gauss-Jordan on [B | I].
    std::vector<double> work(
        static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
    auto w = [&](int r, int c) -> double& {
      return work[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                  static_cast<std::size_t>(c)];
    };
    for (int k = 0; k < m_; ++k) {
      const int v = basic_of_row_[static_cast<std::size_t>(k)];
      for (const Entry& e : columns_[static_cast<std::size_t>(v)].entries) {
        w(e.row, k) = e.value;
      }
    }
    binv_.assign(
        static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) binv(i, i) = 1.0;

    for (int col = 0; col < m_; ++col) {
      int pivot_row = -1;
      double best = opt_.pivot_tol;
      for (int r = col; r < m_; ++r) {
        if (std::abs(w(r, col)) > best) {
          best = std::abs(w(r, col));
          pivot_row = r;
        }
      }
      if (pivot_row < 0) return false;
      if (pivot_row != col) {
        // Row swaps are ordinary row operations: they fold into the
        // accumulated inverse and must NOT permute the slot-to-variable map.
        for (int c = 0; c < m_; ++c) {
          std::swap(w(pivot_row, c), w(col, c));
          std::swap(binv(pivot_row, c), binv(col, c));
        }
      }
      const double inv_p = 1.0 / w(col, col);
      for (int c = 0; c < m_; ++c) {
        w(col, c) *= inv_p;
        binv(col, c) *= inv_p;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double factor = w(r, col);
        if (factor == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          w(r, c) -= factor * w(col, c);
          binv(r, c) -= factor * binv(col, c);
        }
      }
    }
    return true;
  }

  /// Recomputes basic variable values from nonbasic bounds: x_B = Binv(b-Nx_N).
  void recompute_basics() {
    std::vector<double> residual = rhs_;
    std::vector<char> basic(static_cast<std::size_t>(n_total_), 0);
    for (int r = 0; r < m_; ++r) {
      const auto row_var = basic_of_row_[static_cast<std::size_t>(r)];
      basic[static_cast<std::size_t>(row_var)] = 1;
    }
    for (int v = 0; v < n_total_; ++v) {
      if (basic[static_cast<std::size_t>(v)]) continue;
      const double xv = x_[static_cast<std::size_t>(v)];
      if (xv == 0.0) continue;
      for (const Entry& e : columns_[static_cast<std::size_t>(v)].entries) {
        residual[static_cast<std::size_t>(e.row)] -= e.value * xv;
      }
    }
    for (int r = 0; r < m_; ++r) {
      double value = 0.0;
      for (int c = 0; c < m_; ++c) {
        value += binv_at(r, c) * residual[static_cast<std::size_t>(c)];
      }
      x_[static_cast<std::size_t>(
          basic_of_row_[static_cast<std::size_t>(r)])] = value;
    }
  }

  std::vector<double> compute_duals() const {
    std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
    for (int r = 0; r < m_; ++r) {
      const auto row_var = basic_of_row_[static_cast<std::size_t>(r)];
      const double cb = cost_[static_cast<std::size_t>(row_var)];
      if (cb == 0.0) continue;
      for (int c = 0; c < m_; ++c) {
        y[static_cast<std::size_t>(c)] += cb * binv_at(r, c);
      }
    }
    return y;
  }

  double reduced_cost(int v, const std::vector<double>& y) const {
    double d = cost_[static_cast<std::size_t>(v)];
    for (const Entry& e : columns_[static_cast<std::size_t>(v)].entries) {
      d -= y[static_cast<std::size_t>(e.row)] * e.value;
    }
    return d;
  }

  std::vector<double> ftran(int v) const {
    std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
    for (const Entry& e : columns_[static_cast<std::size_t>(v)].entries) {
      const double a = e.value;
      for (int r = 0; r < m_; ++r) {
        w[static_cast<std::size_t>(r)] += binv_at(r, e.row) * a;
      }
    }
    return w;
  }

  void pivot_update(int leaving_row, const std::vector<double>& w) {
    const double inv_p = 1.0 / w[static_cast<std::size_t>(leaving_row)];
    // New row `leaving_row` of the inverse, then eliminate it elsewhere.
    for (int c = 0; c < m_; ++c) binv(leaving_row, c) *= inv_p;
    for (int r = 0; r < m_; ++r) {
      if (r == leaving_row) continue;
      const double factor = w[static_cast<std::size_t>(r)];
      if (std::abs(factor) < 1e-14) continue;
      for (int c = 0; c < m_; ++c) {
        binv(r, c) -= factor * binv(leaving_row, c);
      }
    }
  }

  // --- simplex iterations --------------------------------------------------

  /// One phase of primal simplex; returns the terminal status for the phase.
  SolveStatus iterate(long& iterations) {
    int degenerate_run = 0;
    bool use_bland = false;
    int pivots_since_refactor = 0;

    while (iterations < opt_.max_iterations) {
      ++iterations;
      const std::vector<double> y = compute_duals();

      // Pricing: pick entering variable and direction.
      int entering = -1;
      double entering_dir = 0.0;
      double best_violation = opt_.optimality_tol;
      std::vector<char> basic(static_cast<std::size_t>(n_total_), 0);
      for (int r = 0; r < m_; ++r) {
        basic[static_cast<std::size_t>(
            basic_of_row_[static_cast<std::size_t>(r)])] = 1;
      }
      for (int v = 0; v < n_total_; ++v) {
        if (basic[static_cast<std::size_t>(v)]) continue;
        const double lo = lower_[static_cast<std::size_t>(v)];
        const double hi = upper_[static_cast<std::size_t>(v)];
        if (hi - lo < 1e-14) continue;  // fixed, can never move
        const double xv = x_[static_cast<std::size_t>(v)];
        const double d = reduced_cost(v, y);
        const bool can_increase = xv < hi - 1e-14;
        const bool can_decrease = xv > lo + 1e-14;
        double dir = 0.0;
        double violation = 0.0;
        if (d < -opt_.optimality_tol && can_increase) {
          dir = 1.0;
          violation = -d;
        } else if (d > opt_.optimality_tol && can_decrease) {
          dir = -1.0;
          violation = d;
        } else {
          continue;
        }
        if (use_bland) {
          entering = v;
          entering_dir = dir;
          break;  // Bland: first eligible index
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = v;
          entering_dir = dir;
        }
      }
      if (entering < 0) return SolveStatus::kOptimal;

      const std::vector<double> w = ftran(entering);

      // Bounded-variable ratio test.  The entering variable moves by
      // entering_dir * t; basic i changes at rate -entering_dir * w_i.
      const double span = upper_[static_cast<std::size_t>(entering)] -
                          lower_[static_cast<std::size_t>(entering)];
      double t_best = span;  // bound-flip limit (may be +inf)
      int leaving_row = -1;
      double leaving_bound = 0.0;
      double best_pivot_mag = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double rate =
            -entering_dir * w[static_cast<std::size_t>(r)];
        if (std::abs(rate) < opt_.pivot_tol) continue;
        const int b = basic_of_row_[static_cast<std::size_t>(r)];
        const double xb = x_[static_cast<std::size_t>(b)];
        double t_row;
        double bound;
        if (rate < 0.0) {
          const double lo = lower_[static_cast<std::size_t>(b)];
          if (!std::isfinite(lo)) continue;
          t_row = (xb - lo) / (-rate);
          bound = lo;
        } else {
          const double hi = upper_[static_cast<std::size_t>(b)];
          if (!std::isfinite(hi)) continue;
          t_row = (hi - xb) / rate;
          bound = hi;
        }
        t_row = std::max(t_row, 0.0);
        const double mag = std::abs(w[static_cast<std::size_t>(r)]);
        const bool strictly_better = t_row < t_best - 1e-12;
        const bool tie = std::abs(t_row - t_best) <= 1e-12;
        bool take = strictly_better;
        if (tie && leaving_row >= 0) {
          if (use_bland) {
            take = basic_of_row_[static_cast<std::size_t>(r)] <
                   basic_of_row_[static_cast<std::size_t>(leaving_row)];
          } else {
            take = mag > best_pivot_mag;  // prefer numerically safer pivots
          }
        } else if (tie && leaving_row < 0) {
          take = true;
        }
        if (take) {
          t_best = t_row;
          leaving_row = r;
          leaving_bound = bound;
          best_pivot_mag = mag;
        }
      }

      if (!std::isfinite(t_best)) return SolveStatus::kUnbounded;

      // Track degeneracy for the Bland switch.
      if (t_best < 1e-11) {
        if (++degenerate_run >= opt_.degeneracy_threshold) use_bland = true;
      } else {
        degenerate_run = 0;
        use_bland = false;
      }

      // Apply the step to the entering variable and all basics.
      x_[static_cast<std::size_t>(entering)] += entering_dir * t_best;
      if (t_best > 0.0) {
        for (int r = 0; r < m_; ++r) {
          const double rate = -entering_dir * w[static_cast<std::size_t>(r)];
          if (rate == 0.0) continue;
          const int b = basic_of_row_[static_cast<std::size_t>(r)];
          x_[static_cast<std::size_t>(b)] += rate * t_best;
        }
      }

      if (leaving_row < 0) continue;  // bound flip, basis unchanged

      // Pivot: snap the leaving variable exactly onto its bound.
      const int leaving = basic_of_row_[static_cast<std::size_t>(leaving_row)];
      x_[static_cast<std::size_t>(leaving)] = leaving_bound;
      basic_of_row_[static_cast<std::size_t>(leaving_row)] = entering;
      pivot_update(leaving_row, w);

      if (++pivots_since_refactor >= opt_.refactor_interval) {
        if (!refactorize()) {
          throw std::runtime_error("simplex: basis became singular");
        }
        recompute_basics();
        pivots_since_refactor = 0;
      }
    }
    return SolveStatus::kIterationLimit;
  }

  bool basics_within_bounds(double tol) const {
    for (int r = 0; r < m_; ++r) {
      const int b = basic_of_row_[static_cast<std::size_t>(r)];
      const double xb = x_[static_cast<std::size_t>(b)];
      if (xb < lower_[static_cast<std::size_t>(b)] - tol) return false;
      if (xb > upper_[static_cast<std::size_t>(b)] + tol) return false;
    }
    return true;
  }

  /// Repairs a decoded warm basis left primal infeasible by appended rows or
  /// rhs/bound drift: every row whose basic variable sits outside its bounds
  /// hands the row to an (opened) artificial, with the old basic snapped to
  /// its violated bound; an artificial that comes out negative has its
  /// column sign flipped.  Each pass refactorises, so a handful of passes
  /// settles the signs; returns false when the basis stays unusable and the
  /// caller should cold-start.  On success `need_phase1` reports whether any
  /// artificial is basic at a positive value (phase 1 must drive it out).
  bool warm_repair(bool& need_phase1) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (!refactorize()) return false;
      recompute_basics();
      bool any_violation = false;
      for (int r = 0; r < m_; ++r) {
        const int b = basic_of_row_[static_cast<std::size_t>(r)];
        const double xb = x_[static_cast<std::size_t>(b)];
        const double lo = lower_[static_cast<std::size_t>(b)];
        const double hi = upper_[static_cast<std::size_t>(b)];
        if (xb >= lo - opt_.feasibility_tol &&
            xb <= hi + opt_.feasibility_tol) {
          continue;
        }
        any_violation = true;
        if (is_artificial(b)) {
          // Wrong sign guess: mirror the column so the value comes out >= 0.
          columns_[static_cast<std::size_t>(b)].entries[0].value *= -1.0;
          continue;
        }
        // The violated side is necessarily finite.
        x_[static_cast<std::size_t>(b)] = xb < lo ? lo : hi;
        const int art = artificial_index(r);
        columns_[static_cast<std::size_t>(art)].entries = {Entry{r, 1.0}};
        upper_[static_cast<std::size_t>(art)] = kInfinity;
        x_[static_cast<std::size_t>(art)] = 0.0;
        basic_of_row_[static_cast<std::size_t>(r)] = art;
      }
      if (!any_violation) {
        need_phase1 = false;
        for (int r = 0; r < m_; ++r) {
          const int b = basic_of_row_[static_cast<std::size_t>(r)];
          if (is_artificial(b) &&
              x_[static_cast<std::size_t>(b)] > opt_.feasibility_tol) {
            need_phase1 = true;
            break;
          }
        }
        return true;
      }
    }
    return false;
  }

  /// Cold start: nonbasics to bounds, artificial basis sized to residuals.
  void cold_start() {
    for (int v = 0; v < n_struct_ + m_; ++v) {
      x_[static_cast<std::size_t>(v)] = bound_start_value(v);
    }
    std::vector<double> residual = rhs_;
    for (int v = 0; v < n_struct_ + m_; ++v) {
      const double xv = x_[static_cast<std::size_t>(v)];
      if (xv == 0.0) continue;
      for (const Entry& e : columns_[static_cast<std::size_t>(v)].entries) {
        residual[static_cast<std::size_t>(e.row)] -= e.value * xv;
      }
    }
    basic_of_row_.resize(static_cast<std::size_t>(m_));
    binv_.assign(
        static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int art = artificial_index(i);
      const double sign = residual[static_cast<std::size_t>(i)] >= 0.0
                              ? 1.0
                              : -1.0;
      columns_[static_cast<std::size_t>(art)].entries = {Entry{i, sign}};
      upper_[static_cast<std::size_t>(art)] = kInfinity;  // open for phase 1
      x_[static_cast<std::size_t>(art)] =
          std::abs(residual[static_cast<std::size_t>(i)]);
      basic_of_row_[static_cast<std::size_t>(i)] = art;
      binv(i, i) = sign;
    }
  }

  const Model& model_;
  const SolveOptions& opt_;
  int n_struct_ = 0;
  int m_ = 0;
  int n_total_ = 0;

  std::vector<double> lower_, upper_, cost_, rhs_, x_, binv_;
  std::vector<Column> columns_;
  std::vector<int> basic_of_row_;
};

Solution SimplexEngine::run(Basis* warm) {
  Solution solution;
  solution.x.assign(static_cast<std::size_t>(n_struct_), 0.0);
  x_.assign(static_cast<std::size_t>(n_total_), 0.0);

  long iterations = 0;
  bool warm_started = false;
  bool warm_needs_phase1 = false;

  // Try the caller's basis: decode (negative ids are slacks), rebuild the
  // inverse, accept only if it is nonsingular and primal feasible.  With
  // warm_append, a basis recorded for fewer rows is extended (new rows get
  // their slacks) and infeasibility is repaired instead of rejected; a basis
  // recorded for *more* rows than the model has is always discarded.
  const int warm_rows = warm ? warm->rows : 0;
  const bool warm_usable =
      warm && warm_rows > 0 &&
      static_cast<int>(warm->basic_of_row.size()) == warm_rows &&
      (warm_rows == m_ || (opt_.warm_append && warm_rows < m_));
  if (warm_usable) {
    basic_of_row_.assign(static_cast<std::size_t>(m_), 0);
    bool decodable = true;
    for (int r = 0; r < warm_rows && decodable; ++r) {
      const int pub = warm->basic_of_row[static_cast<std::size_t>(r)];
      int internal;
      if (pub >= 0) {
        internal = pub;
        if (internal >= n_struct_) decodable = false;
      } else {
        internal = slack_index(-pub - 1);
        if (-pub - 1 >= m_) decodable = false;
      }
      if (decodable) basic_of_row_[static_cast<std::size_t>(r)] = internal;
    }
    // Appended rows enter with their own slacks basic: the extended basis
    // matrix is block triangular, so nonsingularity is inherited.
    for (int r = warm_rows; r < m_; ++r) {
      basic_of_row_[static_cast<std::size_t>(r)] = slack_index(r);
    }
    if (decodable) {
      // Nonbasic statuses: known vars from the warm record, new vars at
      // their default bound.
      for (int v = 0; v < n_struct_ + m_; ++v) {
        x_[static_cast<std::size_t>(v)] = bound_start_value(v);
      }
      for (std::size_t v = 0; v < warm->structural_status.size() &&
                              v < static_cast<std::size_t>(n_struct_);
           ++v) {
        if (warm->structural_status[v] == VarStatus::kAtUpper &&
            std::isfinite(upper_[v])) {
          x_[v] = upper_[v];
        }
      }
      for (int i = 0;
           i < warm_rows && i < static_cast<int>(warm->slack_status.size());
           ++i) {
        const std::size_t s = static_cast<std::size_t>(slack_index(i));
        if (warm->slack_status[static_cast<std::size_t>(i)] ==
                VarStatus::kAtUpper &&
            std::isfinite(upper_[s])) {
          x_[s] = upper_[s];
        }
      }
      if (opt_.warm_append) {
        warm_started = warm_repair(warm_needs_phase1);
      } else if (refactorize()) {
        recompute_basics();
        if (basics_within_bounds(opt_.feasibility_tol)) warm_started = true;
      }
    }
  }

  if (!warm_started) cold_start();
  if (!warm_started || warm_needs_phase1) {
    // Phase 1: minimise the artificial sum (all of them after a cold start,
    // only the repair-opened ones after a degraded warm start — the rest
    // stay fixed at zero and cannot move).
    std::vector<double> real_costs = cost_;
    for (int v = 0; v < n_total_; ++v) {
      cost_[static_cast<std::size_t>(v)] = is_artificial(v) ? 1.0 : 0.0;
    }
    const SolveStatus phase1 = iterate(iterations);
    double infeasibility = 0.0;
    for (int i = 0; i < m_; ++i) {
      infeasibility += x_[static_cast<std::size_t>(artificial_index(i))];
    }
    cost_ = real_costs;
    if (phase1 == SolveStatus::kIterationLimit) {
      solution.status = SolveStatus::kIterationLimit;
      solution.iterations = iterations;
      return solution;
    }
    if (phase1 == SolveStatus::kUnbounded) {
      throw std::logic_error("simplex: phase 1 cannot be unbounded");
    }
    if (infeasibility > 1e-6) {
      solution.status = SolveStatus::kInfeasible;
      solution.iterations = iterations;
      return solution;
    }
  }
  // Close the artificials for phase 2 (they may stay basic at 0).  This
  // must run even when a warm repair opened artificials but found no
  // phase-1 work (all within tolerance): a zero-cost artificial left with
  // an infinite upper would let phase 2 silently relax its row.
  for (int i = 0; i < m_; ++i) {
    const int art = artificial_index(i);
    upper_[static_cast<std::size_t>(art)] = 0.0;
    if (x_[static_cast<std::size_t>(art)] < 0.0) {
      x_[static_cast<std::size_t>(art)] = 0.0;
    }
  }

  const SolveStatus phase2 = iterate(iterations);
  solution.iterations = iterations;
  solution.status = phase2;
  if (phase2 == SolveStatus::kUnbounded) return solution;
  if (phase2 == SolveStatus::kIterationLimit) {
    NETREC_LOG(kWarn) << "simplex hit iteration limit (" << iterations << ")";
  }

  // Export primal values, duals, reduced costs in user orientation.
  const double sign = model_.goal == Goal::kMinimize ? 1.0 : -1.0;
  for (int j = 0; j < n_struct_; ++j) {
    solution.x[static_cast<std::size_t>(j)] = x_[static_cast<std::size_t>(j)];
  }
  solution.objective = model_.objective_value(solution.x);
  const std::vector<double> y = compute_duals();
  solution.duals.assign(static_cast<std::size_t>(m_), 0.0);
  for (int r = 0; r < m_; ++r) {
    solution.duals[static_cast<std::size_t>(r)] =
        sign * y[static_cast<std::size_t>(r)];
  }
  solution.reduced_costs.assign(static_cast<std::size_t>(n_struct_), 0.0);
  for (int j = 0; j < n_struct_; ++j) {
    solution.reduced_costs[static_cast<std::size_t>(j)] =
        sign * reduced_cost(j, y);
  }

  // Persist the basis for warm re-solves.
  if (warm) {
    warm->rows = m_;
    warm->basic_of_row.assign(static_cast<std::size_t>(m_), 0);
    bool exportable = true;
    for (int r = 0; r < m_; ++r) {
      int v = basic_of_row_[static_cast<std::size_t>(r)];
      if (is_artificial(v)) {
        if (opt_.warm_append) {
          // A degenerate artificial (basic at 0) occupies a unit column on
          // its own row — structurally identical to the row's slack, so
          // export the slack instead of discarding the whole basis.  Any
          // resulting infeasibility is what warm_repair exists for.
          v = slack_index(v - n_struct_ - m_);
        } else {
          exportable = false;  // degenerate artificial basic; skip export
          break;
        }
      }
      warm->basic_of_row[static_cast<std::size_t>(r)] =
          v < n_struct_ ? v : -(v - n_struct_) - 1;
    }
    if (exportable) {
      warm->structural_status.assign(static_cast<std::size_t>(n_struct_),
                                     VarStatus::kAtLower);
      warm->slack_status.assign(static_cast<std::size_t>(m_),
                                VarStatus::kAtLower);
      std::vector<char> basic(static_cast<std::size_t>(n_total_), 0);
      for (int r = 0; r < m_; ++r) {
        basic[static_cast<std::size_t>(
            basic_of_row_[static_cast<std::size_t>(r)])] = 1;
      }
      auto status_of = [&](int v) {
        if (basic[static_cast<std::size_t>(v)]) return VarStatus::kBasic;
        const double hi = upper_[static_cast<std::size_t>(v)];
        const bool at_upper =
            std::isfinite(hi) &&
            std::abs(x_[static_cast<std::size_t>(v)] - hi) < 1e-9;
        return at_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      };
      for (int v = 0; v < n_struct_; ++v) {
        warm->structural_status[static_cast<std::size_t>(v)] = status_of(v);
      }
      for (int i = 0; i < m_; ++i) {
        warm->slack_status[static_cast<std::size_t>(i)] =
            status_of(slack_index(i));
      }
    } else {
      warm->rows = 0;  // mark unusable
      warm->basic_of_row.clear();
      warm->structural_status.clear();
      warm->slack_status.clear();
    }
  }
  return solution;
}

}  // namespace

Solution solve(const Model& model, const SolveOptions& options, Basis* warm) {
  if (model.num_constraints() == 0) {
    // Pure bound problem: every variable sits at its cheapest bound.
    Solution s;
    s.status = SolveStatus::kOptimal;
    s.x.resize(static_cast<std::size_t>(model.num_variables()));
    const double sign = model.goal == Goal::kMinimize ? 1.0 : -1.0;
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      const double c = sign * v.cost;
      double value;
      if (c > 0.0) {
        value = v.lower;
      } else if (c < 0.0) {
        value = v.upper;
      } else {
        value = std::isfinite(v.lower) ? v.lower : 0.0;
      }
      if (!std::isfinite(value)) {
        s.status = SolveStatus::kUnbounded;
        return s;
      }
      s.x[static_cast<std::size_t>(j)] = value;
    }
    s.objective = model.objective_value(s.x);
    s.reduced_costs.resize(static_cast<std::size_t>(model.num_variables()));
    for (int j = 0; j < model.num_variables(); ++j) {
      s.reduced_costs[static_cast<std::size_t>(j)] = model.variable(j).cost;
    }
    return s;
  }
  SimplexEngine engine(model, options);
  return engine.run(warm);
}

}  // namespace netrec::lp
