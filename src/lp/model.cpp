#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netrec::lp {

void Model::reserve(std::size_t variables, std::size_t constraints) {
  variables_.reserve(variables);
  constraints_.reserve(constraints);
}

int Model::add_variable(double lower, double upper, double cost) {
  if (lower > upper) {
    throw std::invalid_argument("Model: variable lower bound exceeds upper");
  }
  Variable v;
  v.lower = lower;
  v.upper = upper;
  v.cost = cost;
  variables_.push_back(std::move(v));
  return static_cast<int>(variables_.size() - 1);
}

int Model::add_constraint(Sense sense, double rhs) {
  constraints_.push_back(Constraint{sense, rhs});
  return static_cast<int>(constraints_.size() - 1);
}

void Model::set_coefficient(int row, int var, double value) {
  if (row < 0 || row >= num_constraints()) {
    throw std::invalid_argument("Model: row index out of range");
  }
  if (var < 0 || var >= num_variables()) {
    throw std::invalid_argument("Model: variable index out of range");
  }
  if (value == 0.0) return;
  auto& column = variables_[static_cast<std::size_t>(var)].column;
  for (const Entry& entry : column) {
    if (entry.row == row) {
      throw std::invalid_argument("Model: coefficient set twice");
    }
  }
  column.push_back(Entry{row, value});
  // Keep columns sorted so dot products stream in row order.
  std::sort(column.begin(), column.end(),
            [](const Entry& a, const Entry& b) { return a.row < b.row; });
}

std::vector<double> Model::row_activity(const std::vector<double>& x) const {
  if (x.size() != variables_.size()) {
    throw std::invalid_argument("Model: assignment size mismatch");
  }
  std::vector<double> activity(constraints_.size(), 0.0);
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    if (x[v] == 0.0) continue;
    for (const Entry& entry : variables_[v].column) {
      activity[static_cast<std::size_t>(entry.row)] += entry.value * x[v];
    }
  }
  return activity;
}

double Model::objective_value(const std::vector<double>& x) const {
  double total = 0.0;
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    total += variables_[v].cost * x[v];
  }
  return total;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    if (x[v] < variables_[v].lower - tol) return false;
    if (x[v] > variables_[v].upper + tol) return false;
  }
  const auto activity = row_activity(x);
  for (std::size_t r = 0; r < constraints_.size(); ++r) {
    const Constraint& c = constraints_[r];
    switch (c.sense) {
      case Sense::kLessEqual:
        if (activity[r] > c.rhs + tol) return false;
        break;
      case Sense::kGreaterEqual:
        if (activity[r] < c.rhs - tol) return false;
        break;
      case Sense::kEqual:
        if (std::abs(activity[r] - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace netrec::lp
