// Bounded-variable revised simplex.
//
// This is the LP engine behind everything optimisation-shaped in netrec:
// routability tests (eq. 2), the split-amount LP (Section IV-C), the
// multi-commodity relaxation (eq. 8) and the MILP relaxations solved inside
// branch-and-bound.  Design points:
//
//  * bounded variables (l <= x <= u, either side may be infinite) so flow
//    models need no bound rows;
//  * two-phase method with per-row artificials, so any warm basis that turns
//    out infeasible simply falls back to a cold phase 1;
//  * explicit dense basis inverse with product-form pivot updates and
//    periodic refactorisation (Gauss-Jordan with partial pivoting) — simple,
//    numerically observable, and fast enough for the paper's model sizes
//    (master LPs stay in the hundreds of rows thanks to lazy capacity rows);
//  * Dantzig pricing with an automatic switch to Bland's rule after a run of
//    degenerate pivots, which guarantees termination.
//
// The solver reports primal values, duals and reduced costs; duals follow
// the convention d_j = c_j - y'A_j >= 0 for nonbasic-at-lower variables of a
// minimisation (so binding <= rows get nonpositive duals).
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace netrec::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(SolveStatus status);

struct SolveOptions {
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  /// Minimum |pivot| accepted; smaller candidates are skipped.
  double pivot_tol = 1e-8;
  long max_iterations = 200'000;
  /// Rebuild the basis inverse from scratch every this many pivots.
  int refactor_interval = 256;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int degeneracy_threshold = 64;
  /// Degraded warm starts instead of all-or-nothing: a warm basis recorded
  /// before rows were appended is extended with the new rows' slacks, and a
  /// basis left primal infeasible by rhs/bound drift is repaired by swapping
  /// artificials into the violated rows and running phase 1 from there — a
  /// partial restart proportional to the damage, not a full cold start.  A
  /// basis recorded for *more* rows than the model has is still discarded
  /// (stale dimensions; cold start).  Off by default: the classic behavior
  /// (same-dimension feasible warm start or full cold start) is preserved
  /// bit for bit.
  bool warm_append = false;
};

/// Nonbasic variables rest at one of their bounds.
enum class VarStatus : unsigned char { kBasic, kAtLower, kAtUpper };

/// Opaque warm-start state; valid for re-solves of the same model possibly
/// extended with *new variables* (they start nonbasic at a bound).  If the
/// number of rows changed, the solver ignores it and cold-starts — unless
/// SolveOptions::warm_append is set, in which case a basis recorded before
/// rows were appended degrades to a partial restart (see there).  Slack
/// statuses are kept separate from structural ones so the record survives
/// column additions (their indices would otherwise shift).
struct Basis {
  /// Variable per row: index >= 0 is structural, -(i+1) is row i's slack.
  std::vector<int> basic_of_row;
  std::vector<VarStatus> structural_status;  ///< per structural variable
  std::vector<VarStatus> slack_status;       ///< per row
  int rows = 0;
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;            ///< in the model's goal orientation
  std::vector<double> x;             ///< primal values, per model variable
  std::vector<double> duals;         ///< per row (minimisation convention)
  std::vector<double> reduced_costs; ///< per model variable
  long iterations = 0;
};

/// Solves the model.  When `warm` is non-null it is used as a starting basis
/// if compatible, and overwritten with the final basis on return.
Solution solve(const Model& model, const SolveOptions& options = {},
               Basis* warm = nullptr);

}  // namespace netrec::lp
