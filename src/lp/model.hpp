// Linear program model container.
//
// Holds min/max c'x subject to row constraints (<=, =, >=) and variable
// bounds, with columns stored sparse.  The same Model type feeds the simplex
// solver directly, the column-generation MCF solver (which appends path
// variables between solves) and the MILP branch-and-bound (which tightens
// variable bounds per node).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace netrec::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLessEqual, kEqual, kGreaterEqual };
enum class Goal { kMinimize, kMaximize };

struct Entry {
  int row = 0;
  double value = 0.0;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double cost = 0.0;
  std::vector<Entry> column;  ///< sparse coefficients, sorted by row
};

struct Constraint {
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

class Model {
 public:
  Goal goal = Goal::kMinimize;

  /// Pre-sizes the variable/constraint storage (column generation knows
  /// its seed counts up front; avoids rehash/realloc in the add hot loop).
  void reserve(std::size_t variables, std::size_t constraints);

  /// Adds a variable; returns its dense index.
  int add_variable(double lower, double upper, double cost);

  /// Adds a constraint row; returns its dense index.
  int add_constraint(Sense sense, double rhs);

  /// Sets (accumulates is an error; set once) coefficient A[row][var].
  void set_coefficient(int row, int var, double value);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const Variable& variable(int v) const {
    return variables_[static_cast<std::size_t>(v)];
  }
  Variable& variable(int v) { return variables_[static_cast<std::size_t>(v)]; }
  const Constraint& constraint(int r) const {
    return constraints_[static_cast<std::size_t>(r)];
  }
  Constraint& constraint(int r) {
    return constraints_[static_cast<std::size_t>(r)];
  }

  /// Row activity A x for a full assignment (used by verification).
  std::vector<double> row_activity(const std::vector<double>& x) const;

  /// Objective value c'x (in the model's own goal orientation).
  double objective_value(const std::vector<double>& x) const;

  /// True when x satisfies all rows and bounds within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace netrec::lp
