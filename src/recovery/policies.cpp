#include "recovery/policies.hpp"

#include <algorithm>
#include <utility>

#include "graph/betweenness.hpp"

namespace netrec::recovery {

namespace {

RepairAction node_action(const graph::Graph& g, graph::NodeId n) {
  RepairAction action;
  action.is_node = true;
  action.node = n;
  action.label = heuristics::node_label(g, n);
  return action;
}

RepairAction edge_action(const graph::Graph& g, graph::EdgeId e) {
  RepairAction action;
  action.is_node = false;
  action.edge = e;
  action.label = heuristics::edge_label(g, e);
  return action;
}

RepairAction step_action(const heuristics::ScheduleStep& step) {
  RepairAction action;
  action.is_node = step.is_node;
  action.node = step.node;
  action.edge = step.edge;
  action.label = step.label;
  return action;
}

/// All currently broken elements, nodes first, id order.
std::vector<RepairAction> broken_in_list_order(const graph::Graph& g) {
  std::vector<RepairAction> out;
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    const auto id = static_cast<graph::NodeId>(n);
    if (g.node_broken(id)) out.push_back(node_action(g, id));
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    if (g.edge_broken(id)) out.push_back(edge_action(g, id));
  }
  return out;
}

void truncate_to_budget(std::vector<RepairAction>& actions,
                        std::size_t budget) {
  if (actions.size() > budget) actions.resize(budget);
}

}  // namespace

// --- ReplayPolicy ------------------------------------------------------------

ReplayPolicy::ReplayPolicy(ReplayOptions options) : opt_(std::move(options)) {}

std::string ReplayPolicy::name() const {
  return opt_.schedule_order ? "replay" : "replay-list";
}

std::vector<RepairAction> ReplayPolicy::plan_stage(
    const core::RecoveryProblem& problem, std::size_t /*stage*/,
    std::size_t budget, util::Rng& /*rng*/) {
  if (!planned_) {
    planned_ = true;
    plan_ = core::IspSolver(problem, opt_.isp).solve();
    if (opt_.schedule_order) {
      schedule_ = heuristics::schedule_repairs(problem, plan_, opt_.schedule);
      queue_.reserve(schedule_.steps.size());
      for (const heuristics::ScheduleStep& step : schedule_.steps) {
        queue_.push_back(step_action(step));
      }
    } else {
      queue_.reserve(plan_.total_repairs());
      for (graph::NodeId n : plan_.repaired_nodes) {
        queue_.push_back(node_action(problem.graph, n));
      }
      for (graph::EdgeId e : plan_.repaired_edges) {
        queue_.push_back(edge_action(problem.graph, e));
      }
    }
  }
  std::vector<RepairAction> out;
  while (next_ < queue_.size() && out.size() < budget) {
    out.push_back(queue_[next_++]);
  }
  return out;
}

// --- ReplanPolicy ------------------------------------------------------------

ReplanPolicy::ReplanPolicy(ReplanOptions options) : opt_(std::move(options)) {}

std::vector<RepairAction> ReplanPolicy::plan_stage(
    const core::RecoveryProblem& problem, std::size_t /*stage*/,
    std::size_t budget, util::Rng& /*rng*/) {
  // Fresh one-shot solve on the current damage: ISP terminates immediately
  // (empty plan) once the demand routes on the working subgraph.
  const core::RecoverySolution plan =
      core::IspSolver(problem, opt_.isp).solve();
  if (plan.total_repairs() == 0) return {};
  const heuristics::RecoverySchedule schedule =
      heuristics::schedule_repairs(problem, plan, opt_.schedule);
  std::vector<RepairAction> out;
  out.reserve(std::min<std::size_t>(budget, schedule.steps.size()));
  for (const heuristics::ScheduleStep& step : schedule.steps) {
    if (out.size() >= budget) break;
    out.push_back(step_action(step));
  }
  return out;
}

// --- BetweennessGreedyPolicy -------------------------------------------------

std::vector<RepairAction> BetweennessGreedyPolicy::plan_stage(
    const core::RecoveryProblem& problem, std::size_t /*stage*/,
    std::size_t budget, util::Rng& /*rng*/) {
  const graph::Graph& g = problem.graph;
  if (!scored_) {
    scored_ = true;
    graph::ViewConfig config;
    config.length = [](graph::EdgeId) { return 1.0; };
    scores_ =
        graph::betweenness_centrality(graph::GraphView::build(g, config));
  }
  auto node_score = [this](graph::NodeId n) {
    return scores_[static_cast<std::size_t>(n)];
  };
  struct Scored {
    double score;
    RepairAction action;
  };
  std::vector<Scored> candidates;
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    const auto id = static_cast<graph::NodeId>(n);
    if (!g.node_broken(id)) continue;
    candidates.push_back({node_score(id), node_action(g, id)});
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    if (!g.edge_broken(id)) continue;
    const auto [eu, ev] = g.edge_endpoints(id);
    const double score = 0.5 * (node_score(eu) + node_score(ev));
    candidates.push_back({score, edge_action(g, id)});
  }
  // Stable: ties settle nodes-then-edges in id order (the insertion order).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  std::vector<RepairAction> out;
  for (Scored& c : candidates) {
    if (out.size() >= budget) break;
    out.push_back(std::move(c.action));
  }
  return out;
}

// --- ListOrderPolicy ---------------------------------------------------------

std::vector<RepairAction> ListOrderPolicy::plan_stage(
    const core::RecoveryProblem& problem, std::size_t /*stage*/,
    std::size_t budget, util::Rng& /*rng*/) {
  std::vector<RepairAction> out = broken_in_list_order(problem.graph);
  truncate_to_budget(out, budget);
  return out;
}

// --- RandomPolicy ------------------------------------------------------------

std::vector<RepairAction> RandomPolicy::plan_stage(
    const core::RecoveryProblem& problem, std::size_t /*stage*/,
    std::size_t budget, util::Rng& rng) {
  const std::vector<RepairAction> broken =
      broken_in_list_order(problem.graph);
  const std::size_t take = std::min(budget, broken.size());
  const auto picks = rng.sample_without_replacement(broken.size(), take);
  std::vector<RepairAction> out;
  out.reserve(take);
  for (std::size_t index : picks) out.push_back(broken[index]);
  return out;
}

}  // namespace netrec::recovery
