// recovery::Timeline — staged recovery dynamics engine.
//
// The paper evaluates ISP as a one-shot planner: plan once, score once.
// Real restoration is a process — crews repair in stages while the disaster
// keeps evolving (aftershocks; overload cascades coupling back into the
// repair, cf. Danziger & Barabási, "Recovery Coupling in Multilayer
// Networks") — and the *dynamics* change the outcome (Lin et al.,
// "Non-Markovian recovery makes complex networks more resilient").  The
// Timeline makes that scenario family first-class: discrete stages, each
//
//   1. a pluggable Policy picks up to `stage_budget` repairs on the current
//      damage state (replay the one-shot ISP plan, re-plan from scratch,
//      betweenness-greedy, list-order / random baselines — see policies.hpp);
//   2. the engine executes them, measuring routed demand after every repair
//      (the exact LP referee on static capacities);
//   3. a pluggable Dynamics process mutates the graph (aftershock sequence,
//      capacity-overload cascade, or the static no-op that reproduces the
//      one-shot behaviour — see dynamics.hpp);
//
// and the result is a restoration time series: routed demand per stage,
// normalised AUC and time-to-X% via the util::stats helpers.
//
// Live damage state: the engine runs on a private copy of the problem whose
// graph `broken` flags are the single source of truth — a repair clears the
// flag, a dynamics event sets it (possibly on an element that was already
// repaired once; re-repairing it costs again).  An element is operational
// iff not broken.
//
// Measurement reuse (why this engine rides PRs 3-4): all routed-demand
// queries go through one ViewCache slot ("operational") and, by default
// (TimelineOptions::lp_reuse == kSession), one persistent kMaxRouted
// PathLpSession registered on that cache.  Repairs and dynamics breaks
// publish invalidate_node/invalidate_edge; breaks stay warm — the session
// deactivates exactly the columns whose paths cross a dead edge, which is
// the first workload exercising warm reuse across *disruption* events, not
// just repairs.  The one non-monotone case is handled explicitly: the
// session's column pool assumes dead paths never resurrect, so when a
// repair revives an edge that died during the session's lifetime the engine
// bumps the cache epoch (full session reset + view rebuild) instead of
// risking a stale dead-column verdict.  Under static dynamics no edge ever
// dies mid-run, the reset never fires, and the engine is pinned
// bit-identical to the one-shot IspSolver + schedule_repairs pipeline by
// tests/test_recovery_timeline.cpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "disruption/disruption.hpp"
#include "mcf/path_lp.hpp"
#include "mcf/path_lp_session.hpp"
#include "util/rng.hpp"

namespace netrec::util {
class ThreadPool;
}  // namespace netrec::util

namespace netrec::recovery {

/// One crew intervention: repair a node or an edge.
struct RepairAction {
  bool is_node = false;
  graph::NodeId node = graph::kInvalidNode;
  graph::EdgeId edge = graph::kInvalidEdge;
  /// Human-readable description (heuristics::node_label / edge_label).
  std::string label;
};

/// Per-stage repair selection.  Implementations are stateful (the replay
/// policy owns its precomputed queue) and single-run: construct one policy
/// per Timeline::run.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;

  /// Picks up to `budget` repairs among the currently broken elements of
  /// `problem` (the engine's live copy: broken flags = current damage).
  /// Called once per stage; returning an empty vector signals the policy
  /// has nothing left to do.  Must not mutate the problem.  `rng` is the
  /// run's deterministic stream (randomised policies draw from it).
  virtual std::vector<RepairAction> plan_stage(
      const core::RecoveryProblem& problem, std::size_t stage,
      std::size_t budget, util::Rng& rng) = 0;
};

/// Per-stage disaster evolution.  Runs after the stage's repairs; may break
/// elements (set `broken`) but never repair them.  The engine diffs the
/// broken flags around the call and publishes the changes into its caches,
/// so implementations mutate the graph directly.
class Dynamics {
 public:
  virtual ~Dynamics() = default;
  virtual std::string name() const = 0;

  virtual disruption::DisruptionReport advance(
      graph::Graph& g, const std::vector<mcf::Demand>& demands,
      std::size_t stage, util::Rng& rng) = 0;

  /// True when no future advance() can break anything (the aftershock
  /// sequence ended; reactive processes like the cascade are always
  /// "exhausted" — they only respond to changes).  The engine stops at the
  /// first stage where the policy has nothing to repair and the dynamics
  /// are exhausted.
  virtual bool exhausted() const = 0;
};

struct TimelineOptions {
  /// Hard stage cap (guards policies that never finish).
  std::size_t max_stages = 64;
  /// Repairs per stage (crew budget); 0 means unlimited.
  std::size_t stage_budget = 1;
  /// Routed-demand measurement machinery: kSession keeps one persistent
  /// PathLpSession across all stages (warm re-solves through repairs *and*
  /// disruption events); kNone solves a one-shot PathLp per measurement —
  /// the differential reference.
  mcf::LpReuse lp_reuse = mcf::LpReuse::kSession;
  mcf::PathLpOptions lp;
  /// Intra-run parallelism for the measurement LP's pricing sweeps (and any
  /// policy that routes its embedded core::IspOptions::pool here).  Fixed
  /// install order keeps every restoration curve bit-identical to the
  /// serial run at any thread count.  `pool` borrows a caller-owned pool
  /// (must outlive the run); when null and solve_threads != 1 the engine
  /// owns one per run (0 = auto: NETREC_THREADS or hardware concurrency).
  /// Default: serial.
  util::ThreadPool* pool = nullptr;
  std::size_t solve_threads = 1;
};

/// What one stage did to the network.
struct StageRecord {
  std::size_t stage = 0;
  /// Repairs actually executed (actions targeting working elements are
  /// dropped), in execution order.
  std::vector<RepairAction> repairs;
  /// Routed demand measured after each executed repair (same length as
  /// `repairs`) — the intra-stage restoration curve.
  std::vector<double> routed_after;
  /// What the dynamics process broke after the repairs.
  disruption::DisruptionReport shock;
  /// Routed demand at the end of the stage (after the dynamics).
  double routed_end = 0.0;
  double repair_cost = 0.0;
};

struct TimelineResult {
  std::string policy;
  std::string dynamics;
  double total_demand = 0.0;
  /// Routed demand before any stage ran.
  double initial_routed = 0.0;
  double final_routed = 0.0;
  std::size_t total_repairs = 0;
  double total_repair_cost = 0.0;
  /// Elements broken by the dynamics across all stages.
  std::size_t shock_breaks = 0;
  double wall_seconds = 0.0;
  std::vector<StageRecord> stages;

  /// End-of-stage routed demand, one entry per stage; when `horizon` is
  /// larger the series is padded with its final value (recovered service
  /// stays up), so AUCs of runs with different stage counts compare on one
  /// time axis.
  std::vector<double> stage_series(std::size_t horizon = 0) const;
  /// Per-repair routed demand flattened across stages (the granularity of
  /// heuristics::RecoverySchedule).
  std::vector<double> step_series() const;

  /// util::restoration_auc over stage_series(max(horizon, 1)): a zero-stage
  /// run scores its final routed fraction, not the degenerate 0.
  double restoration_auc(std::size_t horizon = 0) const;
  /// util::steps_to_fraction over the unpadded stage series.
  std::size_t stages_to_restore(double fraction) const;
};

class Timeline {
 public:
  /// Borrows everything; `problem` is copied per run (the original is never
  /// mutated).  Policies are stateful — construct a fresh policy per run.
  Timeline(const core::RecoveryProblem& problem, Policy& policy,
           Dynamics& dynamics, TimelineOptions options = {});

  /// Runs the staged recovery to its fixed point (policy idle + dynamics
  /// exhausted) or max_stages.  `rng` drives the dynamics and randomised
  /// policies; a run is deterministic given (problem, policy, dynamics,
  /// options, rng state).
  TimelineResult run(util::Rng& rng);

 private:
  const core::RecoveryProblem& problem_;
  Policy& policy_;
  Dynamics& dynamics_;
  TimelineOptions opt_;
};

}  // namespace netrec::recovery
