#include "recovery/timeline.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "graph/view_cache.hpp"
#include "mcf/routing.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace netrec::recovery {

std::vector<double> TimelineResult::stage_series(std::size_t horizon) const {
  std::vector<double> series;
  series.reserve(std::max(horizon, stages.size()));
  for (const StageRecord& rec : stages) series.push_back(rec.routed_end);
  const double tail = series.empty() ? final_routed : series.back();
  while (series.size() < horizon) series.push_back(tail);
  return series;
}

std::vector<double> TimelineResult::step_series() const {
  std::vector<double> series;
  for (const StageRecord& rec : stages) {
    series.insert(series.end(), rec.routed_after.begin(),
                  rec.routed_after.end());
  }
  return series;
}

double TimelineResult::restoration_auc(std::size_t horizon) const {
  // A zero-stage run (nothing broken, policy idle) has an empty stage
  // series; pad to at least one point so the AUC reports the actual routed
  // fraction instead of util::restoration_auc's degenerate 0.
  return util::restoration_auc(stage_series(std::max<std::size_t>(horizon, 1)),
                               total_demand);
}

std::size_t TimelineResult::stages_to_restore(double fraction) const {
  return util::steps_to_fraction(stage_series(), total_demand, fraction);
}

namespace {

/// The engine's per-run measurement state: the live problem, one cached
/// "operational" snapshot, and (in session mode) one persistent kMaxRouted
/// PathLpSession fed by the cache's mutation fan-out.
class Runtime {
 public:
  Runtime(core::RecoveryProblem& live, const TimelineOptions& opt)
      : live_(live), g_(live.graph), opt_(opt), cache_(live.graph) {
    graph::ViewConfig operational;
    // Endpoints folded into the edge filter (no node filter): a node break
    // or repair reaches the cache as invalidate_node, which queues the
    // incident edges, and the flipped verdict escalates to a rebuild.
    operational.edge_ok = graph::working_edge_filter(g_);
    slot_ = cache_.add_config("operational", std::move(operational));
    pool_ = util::ThreadPool::acquire(owned_pool_, opt_.solve_threads,
                                      opt_.pool);
    if (opt_.lp_reuse == mcf::LpReuse::kSession) {
      session_.emplace(g_, mcf::PathLpMode::kMaxRouted, opt_.lp);
      session_->set_thread_pool(pool_);
      cache_.add_listener(&*session_);
      specs_.reserve(live_.demands.size());
      // Demand amounts never change across stages, so the original index
      // is a stable session uid.
      for (std::size_t h = 0; h < live_.demands.size(); ++h) {
        specs_.push_back({static_cast<int>(h), live_.demands[h]});
      }
    }
    edge_died_.assign(g_.num_edges(), 0);
  }

  /// Max routed demand over the operational subgraph, static capacities.
  /// Memoized until the next repair or dynamics break.
  double measure() {
    if (!measure_stale_) return last_routed_;
    const graph::GraphView& view = cache_.view(slot_);
    last_routed_ =
        session_ ? session_->solve(view, specs_).routing.total_routed
                 : mcf::max_routed_flow(view, live_.demands, opt_.lp)
                       .total_routed;
    measure_stale_ = false;
    return last_routed_;
  }

  /// Executes one repair; returns false (and does nothing) when the target
  /// is already working.  `cost` receives the element's repair cost.
  bool apply_repair(const RepairAction& action, double* cost) {
    bool revive = false;
    if (action.is_node) {
      if (!g_.node_broken(action.node)) return false;
      g_.set_node_broken(action.node, false);
      *cost = g_.node_repair_cost(action.node);
      for (graph::EdgeId e : g_.incident_edges(action.node)) {
        revive |= edge_died_[static_cast<std::size_t>(e)] != 0;
      }
      cache_.invalidate_node(action.node);
    } else {
      if (!g_.edge_broken(action.edge)) return false;
      g_.set_edge_broken(action.edge, false);
      *cost = g_.edge_repair_cost(action.edge);
      revive = edge_died_[static_cast<std::size_t>(action.edge)] != 0;
      cache_.invalidate_edge(action.edge);
    }
    // Non-monotone revival: the session's column pool marks paths through
    // a dead edge as dead forever (correct while usability only grows, as
    // in ISP).  A repair that revives an edge killed by the dynamics would
    // leave stale dead verdicts — and the pricing duplicate guard would
    // treat a re-derived copy of such a path as converged — so the engine
    // pays one full reset instead.  Never fires under static dynamics.
    if (revive && session_) {
      cache_.bump_epoch();
      std::fill(edge_died_.begin(), edge_died_.end(), 0);
    }
    measure_stale_ = true;
    return true;
  }

  /// Runs the dynamics and publishes every broken element into the caches
  /// (the dynamics mutate the graph directly; the engine diffs the flags).
  disruption::DisruptionReport advance_dynamics(Dynamics& dynamics,
                                                std::size_t stage,
                                                util::Rng& rng) {
    std::vector<char> node_was(g_.num_nodes());
    std::vector<char> edge_was(g_.num_edges());
    for (std::size_t n = 0; n < g_.num_nodes(); ++n) {
      node_was[n] = g_.node_broken(static_cast<graph::NodeId>(n)) ? 1 : 0;
    }
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      edge_was[e] = g_.edge_broken(static_cast<graph::EdgeId>(e)) ? 1 : 0;
    }
    const disruption::DisruptionReport report =
        dynamics.advance(g_, live_.demands, stage, rng);
    for (std::size_t n = 0; n < g_.num_nodes(); ++n) {
      const auto id = static_cast<graph::NodeId>(n);
      if ((g_.node_broken(id) ? 1 : 0) == node_was[n]) continue;
      for (graph::EdgeId e : g_.incident_edges(id)) {
        edge_died_[static_cast<std::size_t>(e)] = 1;
      }
      cache_.invalidate_node(id);
      measure_stale_ = true;
    }
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      const auto id = static_cast<graph::EdgeId>(e);
      if ((g_.edge_broken(id) ? 1 : 0) == edge_was[e]) continue;
      edge_died_[e] = 1;
      cache_.invalidate_edge(id);
      measure_stale_ = true;
    }
    return report;
  }

 private:
  core::RecoveryProblem& live_;
  graph::Graph& g_;
  const TimelineOptions& opt_;
  graph::ViewCache cache_;
  graph::ViewCache::SlotId slot_ = 0;
  /// Intra-run pricing pool (see TimelineOptions); owned_pool_ engages only
  /// when solve_threads requests workers without a lent pool.  Declared
  /// before the session that borrows it.
  std::optional<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
  /// Engaged iff lp_reuse == kSession; registered cache listener.  Declared
  /// after cache_ (both die with the Runtime, cache last).
  std::optional<mcf::PathLpSession> session_;
  std::vector<mcf::PathLpSession::DemandSpec> specs_;
  /// Edges whose operational status a dynamics event killed since the last
  /// session reset (see apply_repair).
  std::vector<char> edge_died_;
  double last_routed_ = 0.0;
  bool measure_stale_ = true;
};

}  // namespace

Timeline::Timeline(const core::RecoveryProblem& problem, Policy& policy,
                   Dynamics& dynamics, TimelineOptions options)
    : problem_(problem),
      policy_(policy),
      dynamics_(dynamics),
      opt_(options) {}

TimelineResult Timeline::run(util::Rng& rng) {
  util::Timer timer;
  core::RecoveryProblem live = problem_;  // live damage state for this run

  TimelineResult result;
  result.policy = policy_.name();
  result.dynamics = dynamics_.name();
  result.total_demand = live.total_demand();

  Runtime runtime(live, opt_);
  result.initial_routed = runtime.measure();

  const std::size_t budget = opt_.stage_budget == 0
                                 ? std::numeric_limits<std::size_t>::max()
                                 : opt_.stage_budget;
  for (std::size_t stage = 0; stage < opt_.max_stages; ++stage) {
    StageRecord rec;
    rec.stage = stage;
    const std::vector<RepairAction> actions =
        policy_.plan_stage(live, stage, budget, rng);
    for (const RepairAction& action : actions) {
      if (rec.repairs.size() >= budget) break;
      double cost = 0.0;
      if (!runtime.apply_repair(action, &cost)) continue;
      rec.repairs.push_back(action);
      rec.repair_cost += cost;
      rec.routed_after.push_back(runtime.measure());
    }
    // Fixed point: the policy is idle and no future shock can change
    // anything (reactive dynamics are always exhausted — with no repairs
    // this stage they have nothing new to react to).
    if (rec.repairs.empty() && dynamics_.exhausted()) break;
    rec.shock = runtime.advance_dynamics(dynamics_, stage, rng);
    rec.routed_end = runtime.measure();
    result.total_repairs += rec.repairs.size();
    result.total_repair_cost += rec.repair_cost;
    result.shock_breaks += rec.shock.total();
    result.stages.push_back(std::move(rec));
  }
  result.final_routed = runtime.measure();
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace netrec::recovery
