// Dynamics processes for recovery::Timeline.
//
// Thin adapters binding the disruption-layer stochastic processes to the
// engine's Dynamics contract:
//
//   * StaticDynamics     — the no-op: the disaster happened once, before
//                          the timeline started.  Reproduces the one-shot
//                          pipeline's behaviour exactly.
//   * AftershockDynamics — disruption::AftershockProcess: a decaying-
//                          magnitude sequence of gaussian_disaster draws,
//                          one per stage, until the sequence exhausts.
//   * CascadeDynamics    — disruption::CascadeModel: after every stage's
//                          repairs, traffic re-routes onto the surviving
//                          (and freshly repaired) edges and overloaded
//                          edges break — repairs couple back into the
//                          failure process.  Reactive, hence always
//                          "exhausted": with no repairs the last advance
//                          left it stable.
#pragma once

#include "disruption/disruption.hpp"
#include "recovery/timeline.hpp"

namespace netrec::recovery {

class StaticDynamics : public Dynamics {
 public:
  std::string name() const override { return "static"; }
  disruption::DisruptionReport advance(graph::Graph& /*g*/,
                                       const std::vector<mcf::Demand>&,
                                       std::size_t /*stage*/,
                                       util::Rng& /*rng*/) override {
    return {};
  }
  bool exhausted() const override { return true; }
};

class AftershockDynamics : public Dynamics {
 public:
  explicit AftershockDynamics(disruption::AftershockOptions options = {})
      : process_(options) {}
  std::string name() const override { return "aftershock"; }
  disruption::DisruptionReport advance(graph::Graph& g,
                                       const std::vector<mcf::Demand>&,
                                       std::size_t /*stage*/,
                                       util::Rng& rng) override {
    return process_.next(g, rng);
  }
  bool exhausted() const override { return process_.exhausted(); }

  const disruption::AftershockProcess& process() const { return process_; }

 private:
  disruption::AftershockProcess process_;
};

class CascadeDynamics : public Dynamics {
 public:
  explicit CascadeDynamics(disruption::CascadeOptions options = {})
      : model_(options) {}
  std::string name() const override { return "cascade"; }
  disruption::DisruptionReport advance(graph::Graph& g,
                                       const std::vector<mcf::Demand>& demands,
                                       std::size_t /*stage*/,
                                       util::Rng& /*rng*/) override {
    return model_.advance(g, demands);
  }
  bool exhausted() const override { return true; }

 private:
  disruption::CascadeModel model_;
};

}  // namespace netrec::recovery
