// Repair policies for recovery::Timeline.
//
// A policy answers "which repairs this stage?" on the current damage state:
//
//   * ReplayPolicy      — plan once with the one-shot ISP solver on the
//                         damage it sees first, order the repair set with
//                         heuristics::schedule_repairs (or plain list
//                         order), then execute the queue across stages
//                         regardless of how the disaster evolves.  The
//                         static-plan baseline — and, under static
//                         dynamics, bit-identical to the one-shot pipeline.
//   * ReplanPolicy      — fresh ISP solve + schedule per stage on the
//                         *current* graph: repairs adapt to aftershocks and
//                         cascades (and naturally stop once the demand
//                         routes).  The adaptive upper bound.
//   * BetweennessGreedyPolicy — repair broken elements in decreasing
//                         classic Brandes betweenness of the full topology
//                         (demand-oblivious structural heuristic).
//   * ListOrderPolicy   — broken elements in id order (nodes first).
//   * RandomPolicy      — a uniformly random broken subset per stage, drawn
//                         from the run's deterministic stream.
//
// All policies label actions with heuristics::node_label / edge_label and
// are single-run (ReplayPolicy owns its queue position).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/isp.hpp"
#include "heuristics/schedule.hpp"
#include "recovery/timeline.hpp"

namespace netrec::recovery {

struct ReplayOptions {
  core::IspOptions isp;
  heuristics::ScheduleOptions schedule;
  /// true: execute the plan in schedule_repairs marginal-gain order;
  /// false: plain list order (nodes then edges, decision order) — the
  /// progressive_recovery example's baseline.
  bool schedule_order = true;
};

class ReplayPolicy : public Policy {
 public:
  explicit ReplayPolicy(ReplayOptions options = {});
  std::string name() const override;
  std::vector<RepairAction> plan_stage(const core::RecoveryProblem& problem,
                                       std::size_t stage, std::size_t budget,
                                       util::Rng& rng) override;

  /// The one-shot ISP plan / its schedule; valid after the first
  /// plan_stage call (the schedule only in schedule_order mode).
  const core::RecoverySolution& plan() const { return plan_; }
  const heuristics::RecoverySchedule& schedule() const { return schedule_; }

 private:
  ReplayOptions opt_;
  bool planned_ = false;
  core::RecoverySolution plan_;
  heuristics::RecoverySchedule schedule_;
  std::vector<RepairAction> queue_;
  std::size_t next_ = 0;
};

struct ReplanOptions {
  core::IspOptions isp;
  heuristics::ScheduleOptions schedule;
};

class ReplanPolicy : public Policy {
 public:
  explicit ReplanPolicy(ReplanOptions options = {});
  std::string name() const override { return "replan"; }
  std::vector<RepairAction> plan_stage(const core::RecoveryProblem& problem,
                                       std::size_t stage, std::size_t budget,
                                       util::Rng& rng) override;

 private:
  ReplanOptions opt_;
};

class BetweennessGreedyPolicy : public Policy {
 public:
  std::string name() const override { return "betweenness"; }
  std::vector<RepairAction> plan_stage(const core::RecoveryProblem& problem,
                                       std::size_t stage, std::size_t budget,
                                       util::Rng& rng) override;

 private:
  /// Brandes scores over the full topology (broken elements included, unit
  /// lengths) — computed once; the topology never changes mid-run.
  std::vector<double> scores_;
  bool scored_ = false;
};

class ListOrderPolicy : public Policy {
 public:
  std::string name() const override { return "list"; }
  std::vector<RepairAction> plan_stage(const core::RecoveryProblem& problem,
                                       std::size_t stage, std::size_t budget,
                                       util::Rng& rng) override;
};

class RandomPolicy : public Policy {
 public:
  std::string name() const override { return "random"; }
  std::vector<RepairAction> plan_stage(const core::RecoveryProblem& problem,
                                       std::size_t stage, std::size_t budget,
                                       util::Rng& rng) override;
};

}  // namespace netrec::recovery
