#include "scenario/sweep.hpp"

#include <cstdio>
#include <optional>
#include <stdexcept>

#include "util/csv.hpp"

namespace netrec::scenario {

namespace {

// Weyl-style per-point seed stride; any odd 64-bit constant works because
// Rng re-scrambles the seed through SplitMix64.
constexpr std::uint64_t kPointSalt = 0xbf58476d1ce4e5b9ULL;

std::vector<std::string> series_header(const SweepResult& result,
                                       const SeriesSpec& spec) {
  std::vector<std::string> header{result.x_label};
  header.insert(header.end(), result.algorithm_names.begin(),
                result.algorithm_names.end());
  header.insert(header.end(), spec.instance_metrics.begin(),
                spec.instance_metrics.end());
  return header;
}

std::vector<std::string> series_row(const SweepResult& result,
                                    const SeriesSpec& spec,
                                    std::size_t index) {
  std::vector<std::string> row{result.x_values[index]};
  for (const auto& algorithm : result.algorithm_names) {
    row.push_back(util::format_double(
        result.mean(index, algorithm, spec.metric), spec.precision));
  }
  for (const auto& metric : spec.instance_metrics) {
    row.push_back(util::format_double(result.instance_mean(index, metric),
                                      spec.precision));
  }
  return row;
}

util::Json stats_json(const util::RunningStats& stats) {
  util::Json out = util::Json::object();
  out.set("mean", stats.mean());
  out.set("stddev", stats.stddev());
  out.set("stderr", stats.stderr_mean());
  out.set("min", stats.min());
  out.set("max", stats.max());
  out.set("count", stats.count());
  return out;
}

util::Json metric_set_json(const util::MetricSet& metrics) {
  util::Json out = util::Json::object();
  for (const auto& name : metrics.names()) {
    out.set(name, stats_json(metrics.get(name)));
  }
  return out;
}

}  // namespace

double SweepResult::mean(std::size_t index, const std::string& algorithm,
                         const std::string& metric) const {
  const auto& point = points.at(index);
  const auto it = point.per_algorithm.find(algorithm);
  if (it == point.per_algorithm.end()) {
    // Every run of the point failed its feasibility redraws: no data, which
    // is visible via completed_runs == 0.  Anything else is a typo.
    if (point.completed_runs == 0) return 0.0;
    throw std::out_of_range("SweepResult: unknown algorithm '" + algorithm +
                            "'");
  }
  if (!it->second.has(metric)) {
    throw std::out_of_range("SweepResult: algorithm '" + algorithm +
                            "' has no metric '" + metric + "'");
  }
  return it->second.get(metric).mean();
}

double SweepResult::instance_mean(std::size_t index,
                                  const std::string& metric) const {
  const auto& point = points.at(index);
  if (!point.instance.has(metric)) {
    if (point.completed_runs == 0) return 0.0;
    throw std::out_of_range("SweepResult: unknown instance metric '" + metric +
                            "'");
  }
  return point.instance.get(metric).mean();
}

util::Table SweepResult::table(const SeriesSpec& spec) const {
  util::Table out(series_header(*this, spec));
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.add_row(series_row(*this, spec, i));
  }
  return out;
}

void SweepResult::write_csv(const std::string& path,
                            const SeriesSpec& spec) const {
  util::CsvWriter csv(path);
  csv.header(series_header(*this, spec));
  for (std::size_t i = 0; i < points.size(); ++i) {
    csv.row(series_row(*this, spec, i));
  }
}

util::Json SweepResult::to_json() const {
  util::Json out = util::Json::object();
  out.set("sweep", name);
  out.set("x_label", x_label);
  out.set("seed", static_cast<double>(seed));
  util::Json algorithms = util::Json::array();
  for (const auto& algorithm : algorithm_names) algorithms.push_back(algorithm);
  out.set("algorithms", algorithms);
  util::Json point_array = util::Json::array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    util::Json point = util::Json::object();
    point.set(x_label, x_values[i]);
    point.set("completed_runs", points[i].completed_runs);
    util::Json per_algorithm = util::Json::object();
    for (const auto& algorithm : algorithm_names) {
      const auto it = points[i].per_algorithm.find(algorithm);
      per_algorithm.set(algorithm, it == points[i].per_algorithm.end()
                                       ? util::Json::object()
                                       : metric_set_json(it->second));
    }
    point.set("metrics", per_algorithm);
    point.set("instance", metric_set_json(points[i].instance));
    point_array.push_back(point);
  }
  out.set("points", point_array);
  return out;
}

void SweepResult::write_json(const std::string& path) const {
  util::write_json_file(path, to_json());
}

SweepRunner::SweepRunner(std::string name, std::string x_label,
                         RunnerOptions options)
    : name_(std::move(name)),
      x_label_(std::move(x_label)),
      options_(std::move(options)) {}

void SweepRunner::add_algorithm(std::string algorithm_name,
                                Algorithm algorithm) {
  algorithms_.emplace_back(std::move(algorithm_name), std::move(algorithm));
}

void SweepRunner::add_point(std::string label, ProblemFactory factory) {
  points_.emplace_back(std::move(label), std::move(factory));
}

SweepResult SweepRunner::run() {
  SweepResult result;
  result.name = name_;
  result.x_label = x_label_;
  result.seed = options_.seed;
  for (const auto& [algorithm_name, algorithm] : algorithms_) {
    result.algorithm_names.push_back(algorithm_name);
  }

  // One pool serves every point unless the caller supplied one.
  std::optional<util::ThreadPool> owned_pool;
  RunnerOptions point_options = options_;
  point_options.pool = util::ThreadPool::acquire(
      owned_pool, point_options.threads, point_options.pool);

  for (std::size_t i = 0; i < points_.size(); ++i) {
    point_options.seed = options_.seed + kPointSalt * (i + 1);
    const auto aggregate =
        run_experiment(points_[i].second, algorithms_, point_options);
    std::printf("[%s] %s=%s done (%zu runs)\n", name_.c_str(),
                x_label_.c_str(), points_[i].first.c_str(),
                aggregate.completed_runs);
    std::fflush(stdout);
    result.x_values.push_back(points_[i].first);
    result.points.push_back(aggregate);
  }
  return result;
}

}  // namespace netrec::scenario
