#include "scenario/timeline_runner.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace netrec::scenario {

namespace {

// Same odd-multiplier decorrelation scheme run_experiment uses for its
// per-algorithm streams, applied per (run, cell).
constexpr std::uint64_t kCellSalt = 0x9e3779b97f4a7c15ULL;

void record_timeline(const recovery::TimelineResult& result,
                     std::size_t auc_horizon, util::MetricSet& metrics) {
  metrics.add("restoration_auc", result.restoration_auc(auc_horizon));
  metrics.add("stages", static_cast<double>(result.stages.size()));
  metrics.add("total_repairs", static_cast<double>(result.total_repairs));
  metrics.add("repair_cost", result.total_repair_cost);
  metrics.add("final_pct", result.total_demand > 0.0
                               ? 100.0 * result.final_routed /
                                     result.total_demand
                               : 100.0);
  // Padded to the shared horizon like the AUC, so a run that plateaus below
  // 90% and stops early records the same horizon+1 sentinel as one that
  // keeps repairing — comparable across cells.
  metrics.add("stages_to_90",
              static_cast<double>(util::steps_to_fraction(
                  result.stage_series(auc_horizon), result.total_demand,
                  0.9)));
  metrics.add("shock_breaks", static_cast<double>(result.shock_breaks));
  metrics.add("wall_seconds", result.wall_seconds);
}

}  // namespace

std::string timeline_cell_name(const std::string& policy,
                               const std::string& dynamics) {
  return policy + "@" + dynamics;
}

TimelineAggregate run_timelines(
    const ProblemFactory& factory,
    const std::vector<std::pair<std::string, PolicyFactory>>& policies,
    const std::vector<std::pair<std::string, DynamicsFactory>>& dynamics,
    const TimelineRunnerOptions& options) {
  if (policies.empty() || dynamics.empty()) {
    throw std::invalid_argument(
        "run_timelines: need at least one policy and one dynamics");
  }
  // Per-run seeds fixed serially up front (see run_experiment): the
  // parallel schedule cannot influence any derived stream.
  util::Rng master(options.seed);
  std::vector<std::uint64_t> run_seeds(options.runs);
  for (auto& seed : run_seeds) seed = master.next();

  const std::size_t num_cells = policies.size() * dynamics.size();
  std::vector<BuiltRun> slots(options.runs);
  std::vector<recovery::TimelineResult> results(options.runs * num_cells);

  const std::size_t auc_horizon = options.auc_horizon != 0
                                      ? options.auc_horizon
                                      : options.timeline.max_stages;

  const auto build = [&](std::size_t run) {
    slots[run] = build_run(factory, options.require_feasible,
                           options.max_redraws, run, run_seeds[run]);
  };
  const auto simulate = [&](std::size_t task) {
    const std::size_t run = task / num_cells;
    const std::size_t cell = task % num_cells;
    if (!slots[run].ok) return;
    const std::size_t p = cell / dynamics.size();
    const std::size_t d = cell % dynamics.size();
    const std::unique_ptr<recovery::Policy> policy = policies[p].second();
    const std::unique_ptr<recovery::Dynamics> dyn = dynamics[d].second();
    util::Rng rng(run_seeds[run] +
                  kCellSalt * (static_cast<std::uint64_t>(cell) + 1));
    recovery::Timeline timeline(slots[run].problem, *policy, *dyn,
                                options.timeline);
    results[task] = timeline.run(rng);
  };

  std::optional<util::ThreadPool> owned_pool;
  util::ThreadPool* pool =
      util::ThreadPool::acquire(owned_pool, options.threads, options.pool);
  if (pool != nullptr && pool->size() > 1) {
    // Builds chunk (cheap, many); simulations stay grain 1 (each is a full
    // staged recovery, so finer dispatch buys load balance).
    const std::size_t build_grain =
        std::max<std::size_t>(1, options.runs / (4 * pool->size()));
    pool->parallel_for(options.runs, build_grain, build);
    pool->parallel_for(options.runs * num_cells, 1, simulate);
  } else {
    for (std::size_t run = 0; run < options.runs; ++run) build(run);
    for (std::size_t task = 0; task < options.runs * num_cells; ++task) {
      simulate(task);
    }
  }

  TimelineAggregate out;
  out.cell_names.reserve(num_cells);
  for (const auto& [policy_name, policy_factory] : policies) {
    for (const auto& [dynamics_name, dynamics_factory] : dynamics) {
      out.cell_names.push_back(
          timeline_cell_name(policy_name, dynamics_name));
    }
  }
  // Serial merge in (run, cell) order: Welford accumulation is order
  // sensitive in floating point.
  for (std::size_t run = 0; run < options.runs; ++run) {
    if (!slots[run].ok) continue;
    const auto& problem = slots[run].problem;
    out.instance.add("broken_nodes",
                     static_cast<double>(problem.graph.num_broken_nodes()));
    out.instance.add("broken_edges",
                     static_cast<double>(problem.graph.num_broken_edges()));
    out.instance.add(
        "broken_total",
        static_cast<double>(problem.graph.num_broken_nodes() +
                            problem.graph.num_broken_edges()));
    out.instance.add("total_demand", problem.total_demand());
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      record_timeline(results[run * num_cells + cell], auc_horizon,
                      out.per_cell[out.cell_names[cell]]);
    }
    ++out.completed_runs;
  }
  return out;
}

}  // namespace netrec::scenario
