#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/traversal.hpp"
#include "util/log.hpp"

namespace netrec::scenario {

std::vector<mcf::Demand> far_apart_demands(const graph::Graph& g,
                                           std::size_t pairs, double amount,
                                           util::Rng& rng,
                                           double min_distance_factor) {
  const int diameter = graph::hop_diameter(g);
  if (diameter < 0) {
    throw std::invalid_argument("far_apart_demands: disconnected supply graph");
  }
  const int min_hops = static_cast<int>(
      std::ceil(diameter * min_distance_factor));

  // All admissible pairs.
  const auto hops = graph::all_pairs_hops(g);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> admissible;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::size_t j = i + 1; j < g.num_nodes(); ++j) {
      if (hops[i][j] >= min_hops) {
        admissible.emplace_back(static_cast<graph::NodeId>(i),
                                static_cast<graph::NodeId>(j));
      }
    }
  }
  std::shuffle(admissible.begin(), admissible.end(), rng);

  // Prefer pairs with fresh endpoints so demands do not collapse onto a few
  // hubs; relax the restriction when the graph runs out of fresh nodes.
  std::vector<mcf::Demand> demands;
  std::vector<char> used(g.num_nodes(), 0);
  for (int pass = 0; pass < 2 && demands.size() < pairs; ++pass) {
    for (const auto& [a, b] : admissible) {
      if (demands.size() >= pairs) break;
      if (pass == 0 && (used[static_cast<std::size_t>(a)] ||
                        used[static_cast<std::size_t>(b)])) {
        continue;
      }
      const bool duplicate =
          std::any_of(demands.begin(), demands.end(), [&](const auto& d) {
            return (d.source == a && d.target == b) ||
                   (d.source == b && d.target == a);
          });
      if (duplicate) continue;
      demands.push_back(mcf::Demand{a, b, amount});
      used[static_cast<std::size_t>(a)] = 1;
      used[static_cast<std::size_t>(b)] = 1;
    }
  }
  if (demands.size() < pairs) {
    NETREC_LOG(kWarn) << "far_apart_demands: only " << demands.size() << "/"
                      << pairs << " pairs at distance >= " << min_hops;
  }
  return demands;
}

void record_solution(const core::RecoverySolution& solution,
                     util::MetricSet& metrics) {
  metrics.add("edge_repairs",
              static_cast<double>(solution.repaired_edges.size()));
  metrics.add("node_repairs",
              static_cast<double>(solution.repaired_nodes.size()));
  metrics.add("total_repairs", static_cast<double>(solution.total_repairs()));
  metrics.add("repair_cost", solution.repair_cost);
  metrics.add("satisfied_pct", solution.satisfied_fraction * 100.0);
  metrics.add("wall_seconds", solution.wall_seconds);
}

AggregateResult run_experiment(
    const ProblemFactory& factory,
    const std::vector<std::pair<std::string, Algorithm>>& algorithms,
    const RunnerOptions& options) {
  AggregateResult out;
  util::Rng master(options.seed);
  for (std::size_t run = 0; run < options.runs; ++run) {
    util::Rng run_rng = master.fork();
    core::RecoveryProblem problem = factory(run_rng);
    if (options.require_feasible) {
      std::size_t redraws = 0;
      while (!problem.feasible_when_fully_repaired() &&
             redraws++ < options.max_redraws) {
        util::Rng retry_rng = master.fork();
        problem = factory(retry_rng);
      }
      if (!problem.feasible_when_fully_repaired()) {
        NETREC_LOG(kWarn) << "run " << run
                          << ": no feasible draw found; skipping";
        continue;
      }
    }
    out.instance.add("broken_nodes",
                     static_cast<double>(problem.graph.num_broken_nodes()));
    out.instance.add("broken_edges",
                     static_cast<double>(problem.graph.num_broken_edges()));
    out.instance.add(
        "broken_total",
        static_cast<double>(problem.graph.num_broken_nodes() +
                            problem.graph.num_broken_edges()));
    for (const auto& [name, algorithm] : algorithms) {
      const core::RecoverySolution solution = algorithm(problem);
      record_solution(solution, out.per_algorithm[name]);
    }
    ++out.completed_runs;
  }
  return out;
}

}  // namespace netrec::scenario
