#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "graph/traversal.hpp"
#include "graph/view.hpp"
#include "util/log.hpp"

namespace netrec::scenario {

std::vector<mcf::Demand> far_apart_demands(const graph::Graph& g,
                                           std::size_t pairs, double amount,
                                           util::Rng& rng,
                                           double min_distance_factor) {
  // One full-graph snapshot serves the diameter scan and the all-pairs BFS.
  const graph::GraphView view = graph::GraphView::build(g);
  const int diameter = graph::hop_diameter(view);
  if (diameter < 0) {
    throw std::invalid_argument("far_apart_demands: disconnected supply graph");
  }
  const int min_hops = static_cast<int>(
      std::ceil(diameter * min_distance_factor));

  // All admissible pairs.
  const auto hops = graph::all_pairs_hops(view);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> admissible;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::size_t j = i + 1; j < g.num_nodes(); ++j) {
      if (hops[i][j] >= min_hops) {
        admissible.emplace_back(static_cast<graph::NodeId>(i),
                                static_cast<graph::NodeId>(j));
      }
    }
  }
  std::shuffle(admissible.begin(), admissible.end(), rng);

  // Prefer pairs with fresh endpoints so demands do not collapse onto a few
  // hubs; relax the restriction when the graph runs out of fresh nodes.
  std::vector<mcf::Demand> demands;
  std::vector<char> used(g.num_nodes(), 0);
  for (int pass = 0; pass < 2 && demands.size() < pairs; ++pass) {
    for (const auto& [a, b] : admissible) {
      if (demands.size() >= pairs) break;
      if (pass == 0 && (used[static_cast<std::size_t>(a)] ||
                        used[static_cast<std::size_t>(b)])) {
        continue;
      }
      const bool duplicate =
          std::any_of(demands.begin(), demands.end(), [&](const auto& d) {
            return (d.source == a && d.target == b) ||
                   (d.source == b && d.target == a);
          });
      if (duplicate) continue;
      demands.push_back(mcf::Demand{a, b, amount});
      used[static_cast<std::size_t>(a)] = 1;
      used[static_cast<std::size_t>(b)] = 1;
    }
  }
  if (demands.size() < pairs) {
    NETREC_LOG(kWarn) << "far_apart_demands: only " << demands.size() << "/"
                      << pairs << " pairs at distance >= " << min_hops;
  }
  return demands;
}

void record_solution(const core::RecoverySolution& solution,
                     util::MetricSet& metrics) {
  metrics.add("edge_repairs",
              static_cast<double>(solution.repaired_edges.size()));
  metrics.add("node_repairs",
              static_cast<double>(solution.repaired_nodes.size()));
  metrics.add("total_repairs", static_cast<double>(solution.total_repairs()));
  metrics.add("repair_cost", solution.repair_cost);
  metrics.add("satisfied_pct", solution.satisfied_fraction * 100.0);
  metrics.add("wall_seconds", solution.wall_seconds);
}

BuiltRun build_run(const ProblemFactory& factory, bool require_feasible,
                   std::size_t max_redraws, std::size_t run,
                   std::uint64_t run_seed) {
  util::Rng run_master(run_seed);
  BuiltRun slot;
  for (std::size_t attempt = 0; attempt <= max_redraws; ++attempt) {
    util::Rng attempt_rng = run_master.fork();
    slot.problem = factory(attempt_rng);
    if (!require_feasible || slot.problem.feasible_when_fully_repaired()) {
      slot.ok = true;
      return slot;
    }
  }
  NETREC_LOG(kWarn) << "run " << run << ": no feasible draw found; skipping";
  return slot;
}

namespace {

// Odd multiplier (golden-ratio constant) decorrelating per-algorithm streams
// derived from one run seed; Rng's SplitMix64 seeding scrambles the rest.
constexpr std::uint64_t kAlgoSalt = 0x9e3779b97f4a7c15ULL;

}  // namespace

AggregateResult run_experiment(
    const ProblemFactory& factory,
    const std::vector<std::pair<std::string, Algorithm>>& algorithms,
    const RunnerOptions& options) {
  // Per-run seeds are fixed serially up front; everything downstream derives
  // from them, which is what makes the parallel schedule irrelevant to the
  // aggregated output.
  util::Rng master(options.seed);
  std::vector<std::uint64_t> run_seeds(options.runs);
  for (auto& seed : run_seeds) seed = master.next();

  std::vector<BuiltRun> slots(options.runs);
  const std::size_t num_algorithms = algorithms.size();
  std::vector<core::RecoverySolution> solutions(options.runs * num_algorithms);

  const auto build = [&](std::size_t run) {
    slots[run] = build_run(factory, options.require_feasible,
                           options.max_redraws, run, run_seeds[run]);
  };
  const auto solve = [&](std::size_t task) {
    const std::size_t run = task / num_algorithms;
    const std::size_t alg = task % num_algorithms;
    if (!slots[run].ok) return;
    RunContext ctx;
    ctx.run_index = run;
    ctx.run_seed = run_seeds[run];
    ctx.rng.reseed(run_seeds[run] +
                   kAlgoSalt * (static_cast<std::uint64_t>(alg) + 1));
    solutions[task] = algorithms[alg].second(slots[run].problem, ctx);
  };

  std::optional<util::ThreadPool> owned_pool;
  util::ThreadPool* pool =
      util::ThreadPool::acquire(owned_pool, options.threads, options.pool);
  if (pool != nullptr && pool->size() > 1) {
    // Builds are cheap relative to solves: chunk them so a large sweep pays
    // one dispatch per batch, not per run.  Solves stay grain 1 — each is a
    // full algorithm run, so finer dispatch buys load balance.
    const std::size_t build_grain =
        std::max<std::size_t>(1, options.runs / (4 * pool->size()));
    pool->parallel_for(options.runs, build_grain, build);
    pool->parallel_for(options.runs * num_algorithms, 1, solve);
  } else {
    for (std::size_t run = 0; run < options.runs; ++run) build(run);
    for (std::size_t task = 0; task < options.runs * num_algorithms; ++task) {
      solve(task);
    }
  }

  // Serial merge in (run, algorithm) order: Welford accumulation is order
  // sensitive in floating point, so the merge order must not depend on task
  // completion order.
  AggregateResult out;
  for (std::size_t run = 0; run < options.runs; ++run) {
    if (!slots[run].ok) continue;
    const auto& problem = slots[run].problem;
    out.instance.add("broken_nodes",
                     static_cast<double>(problem.graph.num_broken_nodes()));
    out.instance.add("broken_edges",
                     static_cast<double>(problem.graph.num_broken_edges()));
    out.instance.add(
        "broken_total",
        static_cast<double>(problem.graph.num_broken_nodes() +
                            problem.graph.num_broken_edges()));
    for (std::size_t alg = 0; alg < num_algorithms; ++alg) {
      record_solution(solutions[run * num_algorithms + alg],
                      out.per_algorithm[algorithms[alg].first]);
    }
    ++out.completed_runs;
  }
  return out;
}

}  // namespace netrec::scenario
