// Parallel (runs × policies × dynamics) execution of recovery timelines.
//
// The staged-recovery counterpart of run_experiment: every run draws one
// seeded problem instance, and every (policy, dynamics) cell replays the
// staged recovery of that instance on the shared deterministic seed-split
// ThreadPool.  Policies are stateful and timelines consume randomness, so
// each cell constructs fresh policy/dynamics objects from caller-supplied
// factories and derives its private RNG stream from the run seed and the
// cell index — fixed before any task is submitted, which makes the
// aggregate bit-identical at any thread count (wall_seconds excepted).
//
// Per-cell metrics: restoration_auc (padded to the options' AUC horizon so
// series of different lengths compare on one time axis), stages,
// total_repairs, repair_cost, final_pct, stages_to_90, shock_breaks,
// wall_seconds.  Instance metrics: initial broken counts and total demand.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "recovery/timeline.hpp"
#include "scenario/scenario.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace netrec::scenario {

/// Fresh policy / dynamics state per (run, cell) — timelines mutate both.
using PolicyFactory = std::function<std::unique_ptr<recovery::Policy>()>;
using DynamicsFactory = std::function<std::unique_ptr<recovery::Dynamics>()>;

struct TimelineRunnerOptions {
  std::size_t runs = 20;
  std::uint64_t seed = 42;
  /// See RunnerOptions: redraw infeasible instances.
  bool require_feasible = false;
  std::size_t max_redraws = 25;
  /// Worker threads (0 = NETREC_THREADS / hardware), or a borrowed pool.
  std::size_t threads = 0;
  util::ThreadPool* pool = nullptr;
  /// Engine configuration shared by every cell.
  recovery::TimelineOptions timeline;
  /// Stage horizon the per-cell AUC is padded to; 0 = timeline.max_stages.
  std::size_t auc_horizon = 0;
};

struct TimelineAggregate {
  /// "policy@dynamics" per registered combination, in registration order
  /// (policies outer, dynamics inner).
  std::vector<std::string> cell_names;
  std::map<std::string, util::MetricSet> per_cell;
  util::MetricSet instance;
  std::size_t completed_runs = 0;
};

/// Composes the canonical cell key.
std::string timeline_cell_name(const std::string& policy,
                               const std::string& dynamics);

/// Runs every (policy, dynamics) combination over `runs` seeded instances
/// and aggregates the restoration metrics; deterministic per master seed at
/// any thread count.
TimelineAggregate run_timelines(
    const ProblemFactory& factory,
    const std::vector<std::pair<std::string, PolicyFactory>>& policies,
    const std::vector<std::pair<std::string, DynamicsFactory>>& dynamics,
    const TimelineRunnerOptions& options = {});

}  // namespace netrec::scenario
