// Parallel scenario engine shared by the bench drivers (paper Section VII).
//
// Demand graphs follow the paper's construction: pairs sampled among nodes
// whose hop distance is at least half the supply graph's diameter, each with
// a fixed flow requirement.  The engine executes a named set of algorithms
// over N seeded runs of a scenario factory and aggregates the Fig. 4-9
// metrics (edge/node/total repairs, satisfied %, wall seconds).
//
// Parallelism and determinism: the runs x algorithms matrix executes on a
// util::ThreadPool, but every random stream is derived from per-run seeds
// fixed *before* any task is submitted (util::Rng seed-splitting), and
// metrics are merged serially in (run, algorithm) order after the matrix
// completes.  A given master seed therefore produces bit-identical
// AggregateResults at any thread count.  The only non-deterministic metric
// is wall_seconds, which measures real solver time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace netrec::scenario {

/// Demand pairs at hop distance >= ceil(diameter * min_distance_factor),
/// sampled without endpoint reuse while possible.  Throws when the graph is
/// disconnected; returns fewer pairs when not enough far-apart pairs exist.
std::vector<mcf::Demand> far_apart_demands(const graph::Graph& g,
                                           std::size_t pairs, double amount,
                                           util::Rng& rng,
                                           double min_distance_factor = 0.5);

/// Per-task context handed to every (run, algorithm) execution.  run_seed is
/// stable for the run regardless of thread count or execution order, so
/// algorithms needing run-correlated randomness (e.g. two variants that must
/// see the same samples) can derive identical streams from it; rng is a
/// private stream unique to this (run, algorithm) cell.
struct RunContext {
  std::size_t run_index = 0;
  std::uint64_t run_seed = 0;
  util::Rng rng;
};

/// One algorithm under test: takes the problem (shared across algorithms of
/// the same run) and the task context, returns a scored solution.
using Algorithm = std::function<core::RecoverySolution(
    const core::RecoveryProblem&, RunContext&)>;

/// Builds the problem for one run (seeded independently per run).
using ProblemFactory = std::function<core::RecoveryProblem(util::Rng&)>;

struct RunnerOptions {
  std::size_t runs = 20;    ///< the paper averages 20 runs
  std::uint64_t seed = 42;
  /// Redraw instances that are infeasible even under full repair (the
  /// paper's scenarios are feasible by construction; at high demand
  /// intensities random far-apart draws occasionally collide on a narrow
  /// regional cut and are re-rolled, up to `max_redraws` per run).
  bool require_feasible = false;
  std::size_t max_redraws = 25;
  /// Worker threads for the runs x algorithms matrix; 0 resolves via
  /// NETREC_THREADS / hardware_concurrency (util::ThreadPool).  Ignored
  /// when `pool` is set.
  std::size_t threads = 0;
  /// Borrowed pool to run on (not owned); lets a sweep share one pool
  /// across its points instead of re-spawning workers per point.
  util::ThreadPool* pool = nullptr;
};

struct AggregateResult {
  /// metric -> stats; metrics: edge_repairs, node_repairs, total_repairs,
  /// repair_cost, satisfied_pct, wall_seconds.
  std::map<std::string, util::MetricSet> per_algorithm;
  /// Averages of instance-level metrics (broken counts etc.).
  util::MetricSet instance;
  std::size_t completed_runs = 0;
};

/// One run's constructed problem (ok == false when no feasible draw was
/// found within the redraw budget).
struct BuiltRun {
  core::RecoveryProblem problem;
  bool ok = false;
};

/// Builds one run's problem from its fixed seed, redrawing instances that
/// are infeasible even under full repair (when `require_feasible`).  Every
/// attempt forks a child stream from the run's own seed, so the result
/// depends only on (run_seed, arguments) — never on which thread executes
/// the build.  Shared by run_experiment and run_timelines.
BuiltRun build_run(const ProblemFactory& factory, bool require_feasible,
                   std::size_t max_redraws, std::size_t run,
                   std::uint64_t run_seed);

/// Runs every algorithm on `runs` seeded instances and aggregates metrics.
/// Problem construction is parallel over runs, solving is parallel over the
/// runs x algorithms matrix; results are deterministic per master seed.
AggregateResult run_experiment(
    const ProblemFactory& factory,
    const std::vector<std::pair<std::string, Algorithm>>& algorithms,
    const RunnerOptions& options = {});

/// Records one solution's metrics into a MetricSet (used by run_experiment
/// and directly by bench drivers with custom loops).
void record_solution(const core::RecoverySolution& solution,
                     util::MetricSet& metrics);

}  // namespace netrec::scenario
