// Sweep orchestration for the figure drivers.
//
// A sweep is a named grid of x-axis points (demand pairs, demand intensity,
// disruption variance, edge probability, ...), each owning a ProblemFactory.
// SweepRunner executes run_experiment per point on one shared thread pool
// and collects the per-point AggregateResults; SweepResult renders any
// metric as a paper-style table, mirrors it to CSV, and serialises the full
// result (every metric, mean/stddev/stderr/min/max/count) as JSON for
// external tooling.  All seven bench/fig*.cpp drivers and the ISP ablation
// are thin declarative wrappers around this type.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace netrec::scenario {

/// One rendered series: a per-algorithm metric, plus optional instance-level
/// metrics appended as extra columns (e.g. Fig. 6's "broken (ALL)" line).
struct SeriesSpec {
  std::string metric;
  int precision = 1;
  std::vector<std::string> instance_metrics;
};

struct SweepResult {
  std::string name;
  std::string x_label;
  std::uint64_t seed = 0;
  std::vector<std::string> x_values;           ///< label per point, in order
  std::vector<std::string> algorithm_names;    ///< column order
  std::vector<AggregateResult> points;         ///< one per x value

  /// Mean of `metric` for `algorithm` at point `index`.  Returns 0 for a
  /// point with no completed runs; throws std::out_of_range for an unknown
  /// algorithm or metric so typos cannot render all-zero tables.
  double mean(std::size_t index, const std::string& algorithm,
              const std::string& metric) const;
  /// Mean of an instance-level metric at point `index`; same error policy.
  double instance_mean(std::size_t index, const std::string& metric) const;

  /// x column + one mean column per algorithm (+ instance extras).
  util::Table table(const SeriesSpec& spec) const;

  /// Same series as the table, written as CSV.
  void write_csv(const std::string& path, const SeriesSpec& spec) const;

  /// Full structured dump: sweep metadata, then per point / per algorithm /
  /// per metric {mean, stddev, stderr, min, max, count} plus instance stats.
  util::Json to_json() const;
  void write_json(const std::string& path) const;
};

class SweepRunner {
 public:
  /// `x_label` names the sweep axis (first table/CSV column).
  SweepRunner(std::string name, std::string x_label, RunnerOptions options);

  /// Algorithms run at every point, in registration order.
  void add_algorithm(std::string algorithm_name, Algorithm algorithm);

  /// Adds one x-axis point; `label` is the printed x value.
  void add_point(std::string label, ProblemFactory factory);

  /// Executes every point (points sequential, the runs x algorithms matrix
  /// of each point parallel on one shared pool).  Per-point master seeds are
  /// derived from options.seed and the point index, so inserting a point
  /// never perturbs the others.  Prints one progress line per point.
  SweepResult run();

 private:
  std::string name_;
  std::string x_label_;
  RunnerOptions options_;
  std::vector<std::pair<std::string, Algorithm>> algorithms_;
  std::vector<std::pair<std::string, ProblemFactory>> points_;
};

}  // namespace netrec::scenario
