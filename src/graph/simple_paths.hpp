// Bounded enumeration of simple paths, and successive-shortest-path sets.
//
// The greedy heuristics (Section VI-C) need "the set P(H,G) of all simple
// paths between the demand pairs".  That set is exponential, so — exactly as
// the paper concedes ("these heuristics can only be adopted if paths are
// pre-computed offline", and they are skipped on large topologies) — the
// enumeration takes hard limits on path count and hop length.
//
// successive_shortest_paths implements the paper's P̂*(i,j) estimate
// (Section IV-B): repeatedly take the shortest path, then remove its
// bottleneck capacity from the residual view, until accumulated path
// capacity covers the demand.
//
// The GraphView overloads are the hot path (ISP recomputes P̂* for every
// demand every iteration); build the view once per round and enumerate per
// demand pair.  The callback signatures wrap them.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "graph/view.hpp"

namespace netrec::graph {

struct ShortestPathTree;  // graph/dijkstra.hpp

struct SimplePathLimits {
  std::size_t max_paths = 10'000;  ///< stop after this many paths
  std::size_t max_hops = 32;       ///< skip longer paths
};

struct SuccessivePathsResult {
  std::vector<Path> paths;
  /// Residual capacity of each path at the time it was selected; the
  /// centrality share c(p) of eq. (3) uses exactly these values.
  std::vector<double> capacities;
  /// Sum of `capacities`; >= demand iff the demand is coverable.
  double total_capacity = 0.0;
};

// --- view-based (hot path) -------------------------------------------------

/// All simple paths s -> t in the view (DFS over the CSR arcs), subject to
/// limits.  Emitted in DFS (adjacency) order.
std::vector<Path> all_simple_paths(const GraphView& view, NodeId s, NodeId t,
                                   const SimplePathLimits& limits = {});

/// successive_shortest_paths with every Dijkstra stopped at `t` once it is
/// settled.  Selects bit-identical paths in the identical order (the
/// settle prefix up to the target matches the full run); used by the
/// session fast paths, while the unbounded variant below remains the
/// byte-for-byte reference computation.  When `first_tree` is non-null it
/// must be a shortest-path tree from `s` over the view's untouched
/// capacities — exactly what the first enumeration round computes — and
/// that round reads it instead of running its own Dijkstra (demand-based
/// centrality shares one tree across demands with a common source).
SuccessivePathsResult successive_shortest_paths_to(
    const GraphView& view, NodeId s, NodeId t, double demand,
    std::size_t max_paths, const ShortestPathTree* first_tree = nullptr);

/// P̂*(s,t) over the view: shortest paths under the view's lengths collected
/// until their combined capacity (from the view's capacities) reaches
/// `demand`, reducing each chosen path's bottleneck from an internal
/// residual copy between iterations.
SuccessivePathsResult successive_shortest_paths(const GraphView& view,
                                                NodeId s, NodeId t,
                                                double demand,
                                                std::size_t max_paths = 64);

// --- callback wrappers (historical signatures) -----------------------------

/// All simple paths between s and t (DFS), subject to limits.  Paths are
/// emitted in DFS order; callers typically re-sort by their own weight.
/// Materialises a GraphView (the target is admitted even when `node_ok`
/// rejects it, matching the historical semantics).
std::vector<Path> all_simple_paths(const Graph& g, NodeId s, NodeId t,
                                   const SimplePathLimits& limits = {},
                                   const EdgeFilter& edge_ok = {},
                                   const NodeFilter& node_ok = {});

/// P̂*(s,t): shortest paths (under `length`) collected until their combined
/// capacity reaches `demand`, reducing each chosen path's bottleneck from a
/// residual copy of `capacity` between iterations.  Stops early when s and t
/// disconnect; `max_paths` guards pathological instances.
SuccessivePathsResult successive_shortest_paths(
    const Graph& g, NodeId s, NodeId t, double demand,
    const EdgeWeight& length, const EdgeWeight& capacity,
    const EdgeFilter& edge_ok = {}, const NodeFilter& node_ok = {},
    std::size_t max_paths = 64);

}  // namespace netrec::graph
