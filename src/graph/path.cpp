#include "graph/path.hpp"

#include <algorithm>
#include <string_view>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace netrec::graph {

NodeId Path::end(const Graph& g) const {
  NodeId at = start;
  for (EdgeId e : edges) at = g.other_endpoint(e, at);
  return at;
}

std::vector<NodeId> Path::nodes(const Graph& g) const {
  std::vector<NodeId> out;
  out.reserve(edges.size() + 1);
  NodeId at = start;
  out.push_back(at);
  for (EdgeId e : edges) {
    at = g.other_endpoint(e, at);
    out.push_back(at);
  }
  return out;
}

double Path::capacity(const EdgeWeight& edge_capacity) const {
  double cap = std::numeric_limits<double>::infinity();
  for (EdgeId e : edges) cap = std::min(cap, edge_capacity(e));
  return cap;
}

double Path::length(const EdgeWeight& edge_length) const {
  double total = 0.0;
  for (EdgeId e : edges) total += edge_length(e);
  return total;
}

bool Path::is_simple(const Graph& g) const {
  std::unordered_set<NodeId> seen;
  for (NodeId n : nodes(g)) {
    if (!seen.insert(n).second) return false;
  }
  return true;
}

bool Path::connects(const Graph& g, NodeId from, NodeId to) const {
  if (edges.empty()) return from == to && start == from;
  return start == from && end(g) == to;
}

std::string Path::to_string(const Graph& g) const {
  std::ostringstream out;
  bool first = true;
  for (NodeId n : nodes(g)) {
    if (!first) out << " - ";
    first = false;
    const std::string_view name = g.node_name(n);
    if (name.empty()) {
      out << n;
    } else {
      out << name;
    }
  }
  return out.str();
}

}  // namespace netrec::graph
