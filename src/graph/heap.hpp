// 4-ary min-heap used by the view-based traversal kernels.
//
// The Dijkstra-family loops order work by (distance, node) pairs — a total
// order, so every correct min-priority-queue pops the exact same sequence
// and the choice of heap is purely a constant-factor decision.  A 4-ary
// array heap halves the tree depth of the binary std::priority_queue and
// keeps sibling comparisons inside one cache line, which measurably speeds
// up the pop-heavy traversals; the backing vector is reusable across calls
// so steady-state traversals allocate nothing.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace netrec::graph {

template <class Item>
class QuadHeap {
 public:
  void clear() { items_.clear(); }
  bool empty() const { return items_.empty(); }

  void push(Item item) {
    std::size_t i = items_.size();
    items_.push_back(item);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!(items_[i] < items_[parent])) break;
      std::swap(items_[i], items_[parent]);
      i = parent;
    }
  }

  /// Removes and returns the minimum item.  Precondition: !empty().
  Item pop() {
    Item top = items_.front();
    Item last = std::move(items_.back());
    items_.pop_back();
    if (!items_.empty()) {
      std::size_t i = 0;
      const std::size_t n = items_.size();
      for (;;) {
        const std::size_t first_child = i * 4 + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (items_[c] < items_[best]) best = c;
        }
        if (!(items_[best] < last)) break;
        items_[i] = std::move(items_[best]);
        i = best;
      }
      items_[i] = std::move(last);
    }
    return top;
  }

 private:
  std::vector<Item> items_;
};

}  // namespace netrec::graph
