// Minimal GML (Graph Modelling Language) reader/writer.
//
// The Internet Topology Zoo and CAIDA exports used by the paper ship as GML.
// This parser covers the subset those files use: a `graph [...]` block with
// `node [ id ... label ... ]` and `edge [ source ... target ... ]` records,
// scalar attributes (quoted strings, ints, floats) and nested blocks (which
// are skipped).  Unknown attributes are ignored; `Longitude`/`Latitude` (or
// `x`/`y`) populate node coordinates, `capacity`/`LinkSpeed` populate edge
// capacity, `cost` the repair cost.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace netrec::graph {

struct GmlOptions {
  double default_capacity = 1.0;
  double default_repair_cost = 1.0;
};

/// Parses GML text; throws std::runtime_error with a line-ish context on
/// malformed input (unbalanced brackets, edges naming unknown nodes, ...).
Graph parse_gml(const std::string& text, const GmlOptions& options = {});

/// Loads and parses a .gml file.
Graph load_gml_file(const std::string& path, const GmlOptions& options = {});

/// Serialises the graph (topology, coordinates, capacity, repair cost,
/// broken flags) so experiments can snapshot their inputs.
std::string to_gml(const Graph& g);

/// Writes to_gml(g) to `path`; throws on I/O failure.
void save_gml_file(const Graph& g, const std::string& path);

}  // namespace netrec::graph
