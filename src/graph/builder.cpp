#include "graph/builder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace netrec::graph {

void Builder::reserve(std::size_t nodes, std::size_t edges) {
  g_.node_x_.reserve(nodes);
  g_.node_y_.reserve(nodes);
  g_.node_repair_cost_.reserve(nodes);
  g_.node_broken_.reserve(nodes);
  g_.edge_u_.reserve(edges);
  g_.edge_v_.reserve(edges);
  g_.edge_capacity_.reserve(edges);
  g_.edge_repair_cost_.reserve(edges);
  g_.edge_broken_.reserve(edges);
}

NodeId Builder::add_node(std::string_view name, double x, double y,
                         double repair_cost) {
  if (!(repair_cost >= 0.0)) {
    throw std::invalid_argument("Builder: node repair cost must be >= 0");
  }
  if (g_.num_nodes() >= kMaxGraphElements) {
    throw std::length_error("Builder: node count exceeds 2^31 (32-bit ids)");
  }
  g_.node_x_.push_back(x);
  g_.node_y_.push_back(y);
  g_.node_repair_cost_.push_back(repair_cost);
  g_.node_broken_.push_back(0);
  g_.append_name(name);
  return static_cast<NodeId>(g_.num_nodes() - 1);
}

NodeId Builder::add_nodes(std::size_t count, double repair_cost) {
  if (!(repair_cost >= 0.0)) {
    throw std::invalid_argument("Builder: node repair cost must be >= 0");
  }
  if (count > kMaxGraphElements ||
      g_.num_nodes() > kMaxGraphElements - count) {
    throw std::length_error("Builder: node count exceeds 2^31 (32-bit ids)");
  }
  const auto first = static_cast<NodeId>(g_.num_nodes());
  const std::size_t total = g_.num_nodes() + count;
  g_.node_x_.resize(total, 0.0);
  g_.node_y_.resize(total, 0.0);
  g_.node_repair_cost_.resize(total, repair_cost);
  g_.node_broken_.resize(total, 0);
  if (!g_.name_off_.empty()) {
    g_.name_off_.resize(total + 1, g_.name_off_.back());
  }
  return first;
}

EdgeId Builder::add_edge(NodeId u, NodeId v, double capacity,
                         double repair_cost) {
  const auto n = static_cast<std::size_t>(g_.num_nodes());
  if (u < 0 || v < 0 || static_cast<std::size_t>(u) >= n ||
      static_cast<std::size_t>(v) >= n) {
    throw std::invalid_argument("Builder: edge endpoint out of range");
  }
  if (u == v) throw std::invalid_argument("Builder: self-loops not supported");
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("Builder: capacity must be >= 0 and not NaN");
  }
  if (!(repair_cost >= 0.0)) {
    throw std::invalid_argument("Builder: edge repair cost must be >= 0");
  }
  if (g_.num_edges() >= kMaxGraphElements) {
    throw std::length_error("Builder: edge count exceeds 2^31 (32-bit ids)");
  }
  g_.edge_u_.push_back(u);
  g_.edge_v_.push_back(v);
  g_.edge_capacity_.push_back(capacity);
  g_.edge_repair_cost_.push_back(repair_cost);
  g_.edge_broken_.push_back(0);
  return static_cast<EdgeId>(g_.num_edges() - 1);
}

void Builder::adopt_nodes(std::vector<double> xs, std::vector<double> ys,
                          std::vector<double> repair_costs,
                          std::vector<std::uint8_t> broken,
                          std::string name_blob,
                          std::vector<std::uint32_t> name_offsets) {
  if (xs.size() > kMaxGraphElements) {
    throw std::length_error("Builder: node count exceeds 2^31 (32-bit ids)");
  }
  if (broken.empty()) broken.assign(xs.size(), 0);
  g_.node_x_ = std::move(xs);
  g_.node_y_ = std::move(ys);
  g_.node_repair_cost_ = std::move(repair_costs);
  g_.node_broken_ = std::move(broken);
  g_.name_blob_ = std::move(name_blob);
  g_.name_off_ = std::move(name_offsets);
}

void Builder::adopt_edges(std::vector<NodeId> sources,
                          std::vector<NodeId> targets,
                          std::vector<double> capacities,
                          std::vector<double> repair_costs,
                          std::vector<std::uint8_t> broken) {
  if (sources.size() > kMaxGraphElements) {
    throw std::length_error("Builder: edge count exceeds 2^31 (32-bit ids)");
  }
  if (broken.empty()) broken.assign(sources.size(), 0);
  g_.edge_u_ = std::move(sources);
  g_.edge_v_ = std::move(targets);
  g_.edge_capacity_ = std::move(capacities);
  g_.edge_repair_cost_ = std::move(repair_costs);
  g_.edge_broken_ = std::move(broken);
}

void Builder::validate_columns() const {
  const std::size_t n = g_.node_x_.size();
  const std::size_t m = g_.edge_u_.size();
  if (g_.node_y_.size() != n || g_.node_repair_cost_.size() != n ||
      g_.node_broken_.size() != n) {
    throw std::invalid_argument("Builder: node column sizes disagree");
  }
  if (g_.edge_v_.size() != m || g_.edge_capacity_.size() != m ||
      g_.edge_repair_cost_.size() != m || g_.edge_broken_.size() != m) {
    throw std::invalid_argument("Builder: edge column sizes disagree");
  }
  if (!g_.name_off_.empty()) {
    if (g_.name_off_.size() != n + 1 || g_.name_off_.front() != 0 ||
        g_.name_off_.back() != g_.name_blob_.size() ||
        !std::is_sorted(g_.name_off_.begin(), g_.name_off_.end())) {
      throw std::invalid_argument("Builder: malformed name arena offsets");
    }
  } else if (!g_.name_blob_.empty()) {
    throw std::invalid_argument("Builder: name blob without offsets");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(g_.node_x_[i]) || !std::isfinite(g_.node_y_[i])) {
      throw std::invalid_argument("Builder: node " + std::to_string(i) +
                                  " has non-finite coordinates");
    }
    if (!(g_.node_repair_cost_[i] >= 0.0) ||
        !std::isfinite(g_.node_repair_cost_[i])) {
      throw std::invalid_argument("Builder: node " + std::to_string(i) +
                                  " has invalid repair cost");
    }
  }
  for (std::size_t e = 0; e < m; ++e) {
    const NodeId u = g_.edge_u_[e];
    const NodeId v = g_.edge_v_[e];
    if (u < 0 || v < 0 || static_cast<std::size_t>(u) >= n ||
        static_cast<std::size_t>(v) >= n) {
      throw std::invalid_argument("Builder: edge " + std::to_string(e) +
                                  " endpoint out of range");
    }
    if (u == v) {
      throw std::invalid_argument("Builder: edge " + std::to_string(e) +
                                  " is a self-loop");
    }
    if (!(g_.edge_capacity_[e] >= 0.0) ||
        !std::isfinite(g_.edge_capacity_[e]) ||
        !(g_.edge_repair_cost_[e] >= 0.0) ||
        !std::isfinite(g_.edge_repair_cost_[e])) {
      throw std::invalid_argument("Builder: edge " + std::to_string(e) +
                                  " has invalid capacity or repair cost");
    }
  }
}

void Builder::check_duplicates() const {
  const std::size_t m = g_.edge_u_.size();
  std::vector<std::uint64_t> keys(m);
  for (std::size_t e = 0; e < m; ++e) {
    const auto a = static_cast<std::uint32_t>(
        std::min(g_.edge_u_[e], g_.edge_v_[e]));
    const auto b = static_cast<std::uint32_t>(
        std::max(g_.edge_u_[e], g_.edge_v_[e]));
    keys[e] = (static_cast<std::uint64_t>(a) << 32) | b;
  }
  std::vector<std::uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    const auto u = static_cast<NodeId>(*dup >> 32);
    const auto v = static_cast<NodeId>(*dup & 0xffffffffu);
    throw std::invalid_argument("Builder: duplicate edge between " +
                                std::to_string(u) + " and " +
                                std::to_string(v));
  }
}

void Builder::apply_degree_order() {
  const std::size_t n = g_.node_x_.size();
  const std::size_t m = g_.edge_u_.size();
  std::vector<std::uint32_t> deg(n, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++deg[static_cast<std::size_t>(g_.edge_u_[e])];
    ++deg[static_cast<std::size_t>(g_.edge_v_[e])];
  }
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return deg[static_cast<std::size_t>(a)] >
           deg[static_cast<std::size_t>(b)];
  });
  permutation_.assign(n, kInvalidNode);
  for (std::size_t rank = 0; rank < n; ++rank) {
    permutation_[static_cast<std::size_t>(order[rank])] =
        static_cast<NodeId>(rank);
  }
  auto permute_doubles = [&](std::vector<double>& col) {
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(permutation_[i])] = col[i];
    }
    col = std::move(out);
  };
  permute_doubles(g_.node_x_);
  permute_doubles(g_.node_y_);
  permute_doubles(g_.node_repair_cost_);
  std::vector<std::uint8_t> broken(n);
  for (std::size_t i = 0; i < n; ++i) {
    broken[static_cast<std::size_t>(permutation_[i])] = g_.node_broken_[i];
  }
  g_.node_broken_ = std::move(broken);
  if (!g_.name_off_.empty()) {
    std::string blob;
    blob.reserve(g_.name_blob_.size());
    std::vector<std::uint32_t> offsets(n + 1, 0);
    for (std::size_t rank = 0; rank < n; ++rank) {
      const auto old_id = static_cast<std::size_t>(order[rank]);
      const std::uint32_t begin = g_.name_off_[old_id];
      const std::uint32_t end = g_.name_off_[old_id + 1];
      blob.append(g_.name_blob_, begin, end - begin);
      offsets[rank + 1] = static_cast<std::uint32_t>(blob.size());
    }
    g_.name_blob_ = std::move(blob);
    g_.name_off_ = std::move(offsets);
  }
  for (std::size_t e = 0; e < m; ++e) {
    g_.edge_u_[e] = permutation_[static_cast<std::size_t>(g_.edge_u_[e])];
    g_.edge_v_[e] = permutation_[static_cast<std::size_t>(g_.edge_v_[e])];
  }
}

Graph Builder::finalize() {
  validate_columns();
  check_duplicates();
  if (options_.degree_order) {
    apply_degree_order();
  } else {
    permutation_.resize(g_.num_nodes());
    std::iota(permutation_.begin(), permutation_.end(), 0);
  }
  // Normalise adopted flags (binary loaders may hand us arbitrary nonzero
  // bytes) and recompute the O(1) broken counters from scratch.
  for (auto& b : g_.node_broken_) b = b ? 1 : 0;
  for (auto& b : g_.edge_broken_) b = b ? 1 : 0;
  g_.broken_node_count_ = static_cast<std::size_t>(
      std::count(g_.node_broken_.begin(), g_.node_broken_.end(), 1));
  g_.broken_edge_count_ = static_cast<std::size_t>(
      std::count(g_.edge_broken_.begin(), g_.edge_broken_.end(), 1));
  g_.finalize();
  Graph out = std::move(g_);
  g_ = Graph{};
  return out;
}

}  // namespace netrec::graph
