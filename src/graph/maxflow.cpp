#include "graph/maxflow.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace netrec::graph {

namespace {

constexpr double kFlowEps = 1e-9;

/// Compact residual network for Dinic.  Arcs are stored in pairs: arc i and
/// arc i^1 are mutual reverses.
struct Dinic {
  struct Arc {
    int to;
    double cap;
    EdgeId origin;  ///< original edge id (kInvalidEdge for reverse arcs)
    bool forward;   ///< true if oriented u->v of the original edge
  };

  explicit Dinic(int n) : head(static_cast<std::size_t>(n)) {}

  void add_undirected(int u, int v, double cap, EdgeId origin) {
    // Undirected edge: two arcs with full capacity, mutually residual.
    head[static_cast<std::size_t>(u)].push_back(static_cast<int>(arcs.size()));
    arcs.push_back({v, cap, origin, true});
    head[static_cast<std::size_t>(v)].push_back(static_cast<int>(arcs.size()));
    arcs.push_back({u, cap, origin, false});
  }

  bool build_levels(int s, int t) {
    level.assign(head.size(), -1);
    level[static_cast<std::size_t>(s)] = 0;
    std::deque<int> queue{s};
    while (!queue.empty()) {
      const int at = queue.front();
      queue.pop_front();
      for (int a : head[static_cast<std::size_t>(at)]) {
        const Arc& arc = arcs[static_cast<std::size_t>(a)];
        if (arc.cap <= kFlowEps) continue;
        if (level[static_cast<std::size_t>(arc.to)] != -1) continue;
        level[static_cast<std::size_t>(arc.to)] =
            level[static_cast<std::size_t>(at)] + 1;
        queue.push_back(arc.to);
      }
    }
    return level[static_cast<std::size_t>(t)] != -1;
  }

  double push(int at, int t, double limit) {
    if (at == t) return limit;
    double pushed = 0.0;
    auto& cursor = iter[static_cast<std::size_t>(at)];
    for (; cursor < head[static_cast<std::size_t>(at)].size(); ++cursor) {
      const int a = head[static_cast<std::size_t>(at)][cursor];
      Arc& arc = arcs[static_cast<std::size_t>(a)];
      if (arc.cap <= kFlowEps) continue;
      if (level[static_cast<std::size_t>(arc.to)] !=
          level[static_cast<std::size_t>(at)] + 1) {
        continue;
      }
      const double got = push(arc.to, t, std::min(limit - pushed, arc.cap));
      if (got > 0.0) {
        arc.cap -= got;
        arcs[static_cast<std::size_t>(a ^ 1)].cap += got;
        pushed += got;
        if (pushed >= limit - kFlowEps) return pushed;
      }
    }
    return pushed;
  }

  double run(int s, int t) {
    double total = 0.0;
    while (build_levels(s, t)) {
      iter.assign(head.size(), 0);
      const double inf = std::numeric_limits<double>::infinity();
      double pushed = push(s, t, inf);
      while (pushed > kFlowEps) {
        total += pushed;
        pushed = push(s, t, inf);
      }
    }
    return total;
  }

  std::vector<std::vector<int>> head;
  std::vector<Arc> arcs;
  std::vector<int> level;
  std::vector<std::size_t> iter;
};

/// Runs Dinic over the network assembled by `add_edges(net, arc_of_edge)`
/// and extracts the net per-edge flow.
template <class AddEdges>
MaxflowResult run_max_flow(const Graph& g, NodeId source, NodeId sink,
                           bool endpoints_ok, const AddEdges& add_edges) {
  g.check_node(source);
  g.check_node(sink);
  MaxflowResult result;
  result.edge_flow.assign(g.num_edges(), 0.0);
  if (source == sink) return result;
  if (!endpoints_ok) return result;

  Dinic net(static_cast<int>(g.num_nodes()));
  std::vector<std::pair<int, double>> arc_of_edge(
      g.num_edges(), {-1, 0.0});  // (first arc index, initial cap)
  add_edges(net, arc_of_edge);

  result.value = net.run(source, sink);

  // Net per-edge flow: with both arcs starting at cap0 and acting as each
  // other's residual, a net flow f in the u->v direction leaves residuals
  // cap0 - f (forward) and cap0 + f (backward), so f = (backward - forward)/2.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto [first_arc, cap0] = arc_of_edge[e];
    if (first_arc < 0) continue;
    const double forward = net.arcs[static_cast<std::size_t>(first_arc)].cap;
    const double backward =
        net.arcs[static_cast<std::size_t>(first_arc + 1)].cap;
    result.edge_flow[e] = (backward - forward) / 2.0;
    if (std::abs(result.edge_flow[e]) > cap0 + 1e-6) {
      throw std::logic_error("max_flow: net edge flow exceeds capacity");
    }
  }
  return result;
}

}  // namespace

// --- view-based ------------------------------------------------------------

MaxflowResult max_flow(const GraphView& view, NodeId source, NodeId sink) {
  return max_flow(view, source, sink, view.edge_capacities());
}

MaxflowResult max_flow(const GraphView& view, NodeId source, NodeId sink,
                       const std::vector<double>& edge_capacity) {
  const Graph& g = view.graph();
  // Validate before the bitset lookups: an out-of-range id must throw (as
  // the callback path always did), not index node_in_view_ out of bounds.
  g.check_node(source);
  g.check_node(sink);
  const bool endpoints_ok =
      view.node_in_view(source) && view.node_in_view(sink);
  return run_max_flow(
      g, source, sink, endpoints_ok,
      [&](Dinic& net, std::vector<std::pair<int, double>>& arc_of_edge) {
        for (std::size_t e = 0; e < g.num_edges(); ++e) {
          const auto id = static_cast<EdgeId>(e);
          if (!view.edge_in_view(id)) continue;
          const double cap = edge_capacity[e];
          if (cap <= kFlowEps) continue;
          const auto [eu, ev] = g.edge_endpoints(id);
          arc_of_edge[e] = {static_cast<int>(net.arcs.size()), cap};
          net.add_undirected(eu, ev, cap, id);
        }
      });
}

MaxflowResult max_flow(const GraphView& view, NodeId source, NodeId sink,
                       const std::vector<double>& edge_capacity,
                       const std::vector<char>& node_ok) {
  const Graph& g = view.graph();
  g.check_node(source);
  g.check_node(sink);
  const bool endpoints_ok =
      view.node_in_view(source) && view.node_in_view(sink) &&
      node_ok[static_cast<std::size_t>(source)] &&
      node_ok[static_cast<std::size_t>(sink)];
  return run_max_flow(
      g, source, sink, endpoints_ok,
      [&](Dinic& net, std::vector<std::pair<int, double>>& arc_of_edge) {
        for (std::size_t e = 0; e < g.num_edges(); ++e) {
          const auto id = static_cast<EdgeId>(e);
          if (!view.edge_in_view(id)) continue;
          const auto [eu, ev] = g.edge_endpoints(id);
          if (!node_ok[static_cast<std::size_t>(eu)] ||
              !node_ok[static_cast<std::size_t>(ev)]) {
            continue;
          }
          const double cap = edge_capacity[e];
          if (cap <= kFlowEps) continue;
          arc_of_edge[e] = {static_cast<int>(net.arcs.size()), cap};
          net.add_undirected(eu, ev, cap, id);
        }
      });
}

// --- callback wrapper ------------------------------------------------------

MaxflowResult max_flow(const Graph& g, NodeId source, NodeId sink,
                       const EdgeWeight& capacity, const EdgeFilter& edge_ok,
                       const NodeFilter& node_ok) {
  ViewConfig config;
  config.edge_ok = edge_ok;
  config.node_ok = node_ok;
  config.capacity = capacity;
  return max_flow(GraphView::build(g, config), source, sink);
}

std::vector<std::pair<Path, double>> decompose_flow(
    const Graph& g, NodeId source, NodeId sink,
    const std::vector<double>& edge_flow) {
  std::vector<double> residual = edge_flow;
  std::vector<std::pair<Path, double>> out;

  // Flow on edge e leaves `from` iff sign matches orientation.
  auto outgoing = [&](EdgeId e, NodeId from) -> double {
    const auto [eu, ev] = g.edge_endpoints(e);
    if (eu == from) return residual[static_cast<std::size_t>(e)];
    return -residual[static_cast<std::size_t>(e)];
  };

  auto subtract = [&](const std::vector<EdgeId>& edges, NodeId from,
                      double amount) {
    NodeId walk = from;
    for (EdgeId e : edges) {
      const auto [eu, ev] = g.edge_endpoints(e);
      residual[static_cast<std::size_t>(e)] +=
          eu == walk ? -amount : amount;
      walk = g.other_endpoint(e, walk);
    }
  };

  auto bottleneck_of = [&](const std::vector<EdgeId>& edges,
                           NodeId from) -> double {
    double b = std::numeric_limits<double>::infinity();
    NodeId walk = from;
    for (EdgeId e : edges) {
      b = std::min(b, std::abs(outgoing(e, walk)));
      walk = g.other_endpoint(e, walk);
    }
    return b;
  };

  // Each pass either extracts an s-t path or cancels a cycle, and both zero
  // out at least one edge's flow, so 2|E|+1 passes always suffice.  The walk
  // follows positive outgoing flow; revisiting a node exposes a cycle (which
  // carries no s-t value and is cancelled); with conserved flow a walk that
  // never closes a cycle must end at the sink.
  const std::size_t max_passes = 2 * g.num_edges() + 2;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    std::vector<EdgeId> walk_edges;
    std::vector<int> seen_at(g.num_nodes(), -1);
    seen_at[static_cast<std::size_t>(source)] = 0;
    NodeId at = source;
    bool cancelled_cycle = false;
    while (at != sink) {
      EdgeId chosen = kInvalidEdge;
      for (EdgeId e : g.incident_edges(at)) {
        if (outgoing(e, at) > kFlowEps) {
          chosen = e;
          break;
        }
      }
      if (chosen == kInvalidEdge) break;  // dead end (only at source, or noise)
      const NodeId next = g.other_endpoint(chosen, at);
      const int prior = seen_at[static_cast<std::size_t>(next)];
      if (prior != -1) {
        std::vector<EdgeId> cycle(walk_edges.begin() + prior,
                                  walk_edges.end());
        cycle.push_back(chosen);
        subtract(cycle, next, bottleneck_of(cycle, next));
        cancelled_cycle = true;
        break;
      }
      walk_edges.push_back(chosen);
      at = next;
      seen_at[static_cast<std::size_t>(at)] =
          static_cast<int>(walk_edges.size());
    }
    if (cancelled_cycle) continue;
    if (at != sink || walk_edges.empty()) break;
    const double amount = bottleneck_of(walk_edges, source);
    subtract(walk_edges, source, amount);
    Path path;
    path.start = source;
    path.edges = std::move(walk_edges);
    out.emplace_back(std::move(path), amount);
  }
  return out;
}

// --- legacy reference ------------------------------------------------------

#if defined(NETREC_ENABLE_LEGACY)
namespace legacy {

MaxflowResult max_flow(const Graph& g, NodeId source, NodeId sink,
                       const EdgeWeight& capacity, const EdgeFilter& edge_ok,
                       const NodeFilter& node_ok) {
  const bool endpoints_ok =
      !node_ok || (node_ok(source) && node_ok(sink));
  return run_max_flow(
      g, source, sink, endpoints_ok,
      [&](Dinic& net, std::vector<std::pair<int, double>>& arc_of_edge) {
        for (std::size_t e = 0; e < g.num_edges(); ++e) {
          const auto id = static_cast<EdgeId>(e);
          if (edge_ok && !edge_ok(id)) continue;
          const auto [eu, ev] = g.edge_endpoints(id);
          if (node_ok && (!node_ok(eu) || !node_ok(ev))) continue;
          const double cap = capacity(id);
          if (cap <= kFlowEps) continue;
          arc_of_edge[e] = {static_cast<int>(net.arcs.size()), cap};
          net.add_undirected(eu, ev, cap, id);
        }
      });
}

}  // namespace legacy
#endif  // NETREC_ENABLE_LEGACY

}  // namespace netrec::graph
