#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netrec::graph {

void Graph::require_mutable_topology(const char* op) const {
  if (finalized_) {
    throw std::logic_error(std::string("Graph: ") + op +
                           " on a finalized graph (topology is immutable "
                           "after finalize(); state setters remain valid)");
  }
}

void Graph::append_name(std::string_view name) {
  if (name_off_.empty()) {
    if (name.empty()) return;  // stay lazy while everything is unnamed
    // First named node: materialise empty slices for every prior node.  The
    // node being named is already pushed, so node count is V_prior + 1 and
    // assign() writes exactly the V_prior + 1 slice starts (all zero); the
    // push below adds the new name's end boundary -> V + 1 offsets total.
    name_off_.assign(node_x_.size(), 0);
  }
  name_blob_.append(name.data(), name.size());
  if (name_blob_.size() > 0xffffffffull) {
    throw std::length_error("Graph: node name arena exceeds 4 GiB");
  }
  name_off_.push_back(static_cast<std::uint32_t>(name_blob_.size()));
}

NodeId Graph::add_node(std::string_view name, double x, double y,
                       double repair_cost) {
  require_mutable_topology("add_node");
  if (!(repair_cost >= 0.0)) {  // rejects NaN and negatives alike
    throw std::invalid_argument("Graph: node repair cost must be >= 0");
  }
  if (num_nodes() >= kMaxGraphElements) {
    throw std::length_error("Graph: node count exceeds 2^31 (32-bit ids)");
  }
  node_x_.push_back(x);
  node_y_.push_back(y);
  node_repair_cost_.push_back(repair_cost);
  node_broken_.push_back(0);
  dyn_adjacency_.emplace_back();
  append_name(name);
  return static_cast<NodeId>(node_x_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double capacity,
                       double repair_cost) {
  require_mutable_topology("add_edge");
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops not supported");
  if (find_edge(u, v) != kInvalidEdge) {
    throw std::invalid_argument("Graph: parallel edge between " +
                                std::to_string(u) + " and " +
                                std::to_string(v));
  }
  if (!(capacity >= 0.0)) {  // rejects NaN and negatives alike
    throw std::invalid_argument("Graph: capacity must be >= 0 and not NaN");
  }
  if (!(repair_cost >= 0.0)) {
    throw std::invalid_argument("Graph: edge repair cost must be >= 0");
  }
  if (num_edges() >= kMaxGraphElements) {
    throw std::length_error("Graph: edge count exceeds 2^31 (32-bit ids)");
  }
  edge_u_.push_back(u);
  edge_v_.push_back(v);
  edge_capacity_.push_back(capacity);
  edge_repair_cost_.push_back(repair_cost);
  edge_broken_.push_back(0);
  const auto id = static_cast<EdgeId>(edge_u_.size() - 1);
  dyn_adjacency_[static_cast<std::size_t>(u)].push_back(id);
  dyn_adjacency_[static_cast<std::size_t>(v)].push_back(id);
  return id;
}

std::string_view Graph::node_name(NodeId id) const {
  check_node(id);
  if (name_off_.empty()) return {};  // lazy arena: no node was ever named
  const std::size_t i = index(id);
  const std::uint32_t begin = name_off_[i];
  const std::uint32_t end = name_off_[i + 1];
  return std::string_view(name_blob_).substr(begin, end - begin);
}

NodeId Graph::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (node_name(static_cast<NodeId>(i)) == name) {
      return static_cast<NodeId>(i);
    }
  }
  return kInvalidNode;
}

void Graph::set_node_position(NodeId id, double x, double y) {
  const std::size_t i = index(id);
  check_node(id);
  node_x_[i] = x;
  node_y_[i] = y;
}

void Graph::set_node_repair_cost(NodeId id, double repair_cost) {
  check_node(id);
  if (!(repair_cost >= 0.0)) {
    throw std::invalid_argument("Graph: node repair cost must be >= 0");
  }
  node_repair_cost_[index(id)] = repair_cost;
}

void Graph::set_node_broken(NodeId id, bool broken) {
  check_node(id);
  std::uint8_t& flag = node_broken_[index(id)];
  if ((flag != 0) == broken) return;
  flag = broken ? 1 : 0;
  broken_node_count_ += broken ? 1 : -1;
}

void Graph::set_edge_capacity(EdgeId id, double capacity) {
  check_edge(id);
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("Graph: capacity must be >= 0 and not NaN");
  }
  edge_capacity_[index_e(id)] = capacity;
}

void Graph::set_edge_repair_cost(EdgeId id, double repair_cost) {
  check_edge(id);
  if (!(repair_cost >= 0.0)) {
    throw std::invalid_argument("Graph: edge repair cost must be >= 0");
  }
  edge_repair_cost_[index_e(id)] = repair_cost;
}

void Graph::set_edge_broken(EdgeId id, bool broken) {
  check_edge(id);
  std::uint8_t& flag = edge_broken_[index_e(id)];
  if ((flag != 0) == broken) return;
  flag = broken ? 1 : 0;
  broken_edge_count_ += broken ? 1 : -1;
}

NodeId Graph::other_endpoint(EdgeId edge_id, NodeId from) const {
  check_edge(edge_id);
  const std::size_t e = index_e(edge_id);
  if (edge_u_[e] == from) return edge_v_[e];
  if (edge_v_[e] == from) return edge_u_[e];
  throw std::invalid_argument("Graph: node " + std::to_string(from) +
                              " is not an endpoint of edge " +
                              std::to_string(edge_id));
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  // Search from the lower-degree endpoint.
  const NodeId base = degree(u) <= degree(v) ? u : v;
  const NodeId target = base == u ? v : u;
  if (finalized_) {
    // Binary search over the neighbour-sorted secondary index.
    const std::size_t lo = inc_off_[index(base)];
    const std::size_t hi = inc_off_[index(base) + 1];
    const NodeId* first = sorted_nbr_.data() + lo;
    const NodeId* last = sorted_nbr_.data() + hi;
    const NodeId* it = std::lower_bound(first, last, target);
    if (it != last && *it == target) {
      return sorted_edge_[lo + static_cast<std::size_t>(it - first)];
    }
    return kInvalidEdge;
  }
  for (EdgeId id : dyn_adjacency_[index(base)]) {
    const std::size_t e = index_e(id);
    const NodeId head = edge_u_[e] == base ? edge_v_[e] : edge_u_[e];
    if (head == target) return id;
  }
  return kInvalidEdge;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    best = std::max(best, degree(static_cast<NodeId>(i)));
  }
  return best;
}

void Graph::build_sorted_index() {
  const std::size_t arcs = inc_edge_.size();
  sorted_nbr_.resize(arcs);
  sorted_edge_.resize(arcs);
  // Per-node sort of (neighbour, edge) pairs; parallel edges are rejected at
  // construction, so neighbours within a slice are unique and the order is
  // fully determined by the neighbour id.
  std::vector<std::pair<NodeId, EdgeId>> scratch;
  for (std::size_t i = 0; i + 1 < inc_off_.size(); ++i) {
    const std::size_t lo = inc_off_[i];
    const std::size_t hi = inc_off_[i + 1];
    scratch.clear();
    scratch.reserve(hi - lo);
    for (std::size_t a = lo; a < hi; ++a) {
      const std::size_t e = index_e(inc_edge_[a]);
      const NodeId head = edge_u_[e] == static_cast<NodeId>(i) ? edge_v_[e]
                                                               : edge_u_[e];
      scratch.emplace_back(head, inc_edge_[a]);
    }
    std::sort(scratch.begin(), scratch.end());
    for (std::size_t k = 0; k < scratch.size(); ++k) {
      sorted_nbr_[lo + k] = scratch[k].first;
      sorted_edge_[lo + k] = scratch[k].second;
    }
  }
}

void Graph::finalize() {
  if (finalized_) return;
  const std::size_t n = num_nodes();
  const std::size_t m = num_edges();
  // Counting-sort the edges into CSR slices.  Appending edges in id order
  // reproduces the per-node insertion order exactly (dynamic adjacency push
  // order is edge-creation order), so iteration contracts are unchanged.
  inc_off_.assign(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++inc_off_[static_cast<std::size_t>(edge_u_[e]) + 1];
    ++inc_off_[static_cast<std::size_t>(edge_v_[e]) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) inc_off_[i + 1] += inc_off_[i];
  inc_edge_.resize(2 * m);
  std::vector<std::uint32_t> cursor(inc_off_.begin(), inc_off_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    inc_edge_[cursor[static_cast<std::size_t>(edge_u_[e])]++] =
        static_cast<EdgeId>(e);
    inc_edge_[cursor[static_cast<std::size_t>(edge_v_[e])]++] =
        static_cast<EdgeId>(e);
  }
  build_sorted_index();
  dyn_adjacency_.clear();
  dyn_adjacency_.shrink_to_fit();
  finalized_ = true;
}

void Graph::break_everything() {
  std::fill(node_broken_.begin(), node_broken_.end(), 1);
  std::fill(edge_broken_.begin(), edge_broken_.end(), 1);
  broken_node_count_ = num_nodes();
  broken_edge_count_ = num_edges();
}

void Graph::repair_everything() {
  std::fill(node_broken_.begin(), node_broken_.end(), 0);
  std::fill(edge_broken_.begin(), edge_broken_.end(), 0);
  broken_node_count_ = 0;
  broken_edge_count_ = 0;
}

std::vector<NodeId> Graph::broken_nodes() const {
  std::vector<NodeId> out;
  out.reserve(broken_node_count_);
  for (std::size_t i = 0; i < node_broken_.size(); ++i) {
    if (node_broken_[i] != 0) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<EdgeId> Graph::broken_edges() const {
  std::vector<EdgeId> out;
  out.reserve(broken_edge_count_);
  for (std::size_t i = 0; i < edge_broken_.size(); ++i) {
    if (edge_broken_[i] != 0) out.push_back(static_cast<EdgeId>(i));
  }
  return out;
}

double Graph::total_repair_cost() const {
  double cost = 0.0;
  for (std::size_t i = 0; i < node_broken_.size(); ++i) {
    if (node_broken_[i] != 0) cost += node_repair_cost_[i];
  }
  for (std::size_t e = 0; e < edge_broken_.size(); ++e) {
    if (edge_broken_[e] != 0) cost += edge_repair_cost_[e];
  }
  return cost;
}

void Graph::check_node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= num_nodes()) {
    throw std::invalid_argument("Graph: node id " + std::to_string(id) +
                                " out of range");
  }
}

void Graph::check_edge(EdgeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= num_edges()) {
    throw std::invalid_argument("Graph: edge id " + std::to_string(id) +
                                " out of range");
  }
}

EdgeFilter working_edge_filter(const Graph& g) {
  return [&g](EdgeId id) { return g.edge_usable(id); };
}

}  // namespace netrec::graph
