#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netrec::graph {

NodeId Graph::add_node(std::string name, double x, double y,
                       double repair_cost) {
  if (!(repair_cost >= 0.0)) {  // rejects NaN and negatives alike
    throw std::invalid_argument("Graph: node repair cost must be >= 0");
  }
  Node n;
  n.name = std::move(name);
  n.x = x;
  n.y = y;
  n.repair_cost = repair_cost;
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double capacity,
                       double repair_cost) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops not supported");
  if (find_edge(u, v) != kInvalidEdge) {
    throw std::invalid_argument("Graph: parallel edge between " +
                                std::to_string(u) + " and " +
                                std::to_string(v));
  }
  if (!(capacity >= 0.0)) {  // rejects NaN and negatives alike
    throw std::invalid_argument("Graph: capacity must be >= 0 and not NaN");
  }
  if (!(repair_cost >= 0.0)) {
    throw std::invalid_argument("Graph: edge repair cost must be >= 0");
  }
  Edge e;
  e.u = u;
  e.v = v;
  e.capacity = capacity;
  e.repair_cost = repair_cost;
  edges_.push_back(e);
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  adjacency_[static_cast<std::size_t>(u)].push_back(id);
  adjacency_[static_cast<std::size_t>(v)].push_back(id);
  return id;
}

NodeId Graph::other_endpoint(EdgeId edge_id, NodeId from) const {
  const Edge& e = edge(edge_id);
  if (e.u == from) return e.v;
  if (e.v == from) return e.u;
  throw std::invalid_argument("Graph: node " + std::to_string(from) +
                              " is not an endpoint of edge " +
                              std::to_string(edge_id));
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  // Search from the lower-degree endpoint.
  const NodeId base = degree(u) <= degree(v) ? u : v;
  const NodeId target = base == u ? v : u;
  for (EdgeId id : adjacency_[static_cast<std::size_t>(base)]) {
    if (other_endpoint(id, base) == target) return id;
  }
  return kInvalidEdge;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& adj : adjacency_) best = std::max(best, adj.size());
  return best;
}

void Graph::break_everything() {
  for (auto& n : nodes_) n.broken = true;
  for (auto& e : edges_) e.broken = true;
}

void Graph::repair_everything() {
  for (auto& n : nodes_) n.broken = false;
  for (auto& e : edges_) e.broken = false;
}

std::vector<NodeId> Graph::broken_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].broken) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<EdgeId> Graph::broken_edges() const {
  std::vector<EdgeId> out;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].broken) out.push_back(static_cast<EdgeId>(i));
  }
  return out;
}

std::size_t Graph::num_broken_nodes() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.broken; }));
}

std::size_t Graph::num_broken_edges() const {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [](const Edge& e) { return e.broken; }));
}

bool Graph::edge_usable(EdgeId id) const {
  const Edge& e = edge(id);
  return !e.broken && !node(e.u).broken && !node(e.v).broken;
}

double Graph::total_repair_cost() const {
  double cost = 0.0;
  for (const auto& n : nodes_) {
    if (n.broken) cost += n.repair_cost;
  }
  for (const auto& e : edges_) {
    if (e.broken) cost += e.repair_cost;
  }
  return cost;
}

void Graph::check_node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::invalid_argument("Graph: node id " + std::to_string(id) +
                                " out of range");
  }
}

void Graph::check_edge(EdgeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= edges_.size()) {
    throw std::invalid_argument("Graph: edge id " + std::to_string(id) +
                                " out of range");
  }
}

EdgeFilter working_edge_filter(const Graph& g) {
  return [&g](EdgeId id) { return g.edge_usable(id); };
}

}  // namespace netrec::graph
