// Dijkstra shortest paths with pluggable (dynamic) edge lengths.
//
// ISP's path metric (Section IV-D) changes every iteration — repaired
// elements become "short", pruned capacity raises lengths — so lengths are a
// callback rather than stored weights.  The same routine also serves column-
// generation pricing in the MCF solver (lengths = simplex duals).
//
// Two call families exist.  The GraphView overloads are the hot path: they
// traverse a flat CSR snapshot with no per-edge indirection and are what the
// algorithm consumers use.  The callback overloads keep the historical
// signatures as thin wrappers that materialise a view; the verbatim callback
// implementations survive in namespace `legacy` as the reference the
// equivalence tests and bench/perf_graph compare against.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "graph/view.hpp"

namespace netrec::graph {

struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> distance;    ///< +inf when unreachable
  std::vector<EdgeId> parent_edge; ///< kInvalidEdge at source/unreachable

  bool reached(NodeId node) const;

  /// Reconstructs source -> target; std::nullopt when unreachable.
  std::optional<Path> path_to(const Graph& g, NodeId target) const;
};

// --- view-based (hot path) -------------------------------------------------

/// Dijkstra from `source` over the view, using the view's edge lengths.
/// Lengths must be >= 0 and not NaN for every traversed edge
/// (std::invalid_argument at first encounter).
ShortestPathTree dijkstra(const GraphView& view, NodeId source);

/// Same traversal with caller-supplied per-edge-id lengths (indexed by
/// original edge id) — the MCF pricing loop refreshes these from the master
/// duals every round without rebuilding the view.
ShortestPathTree dijkstra(const GraphView& view, NodeId source,
                          const std::vector<double>& edge_length);

/// Caller-supplied lengths *and* a residual skip (entries <= 1e-9 are not
/// traversed) — the pricing loop of a PathLp running on a borrowed cached
/// view, whose arcs may include zero-capacity edges.
ShortestPathTree dijkstra(const GraphView& view, NodeId source,
                          const std::vector<double>& edge_length,
                          const std::vector<double>& edge_residual);

/// The pricing traversal above, stopped once `target` settles (exact
/// distance/path for the target, see dijkstra_residual_to) — per-demand
/// pricing in PathLpSession reads only the target's label.
ShortestPathTree dijkstra_to(const GraphView& view, NodeId source,
                             NodeId target,
                             const std::vector<double>& edge_length,
                             const std::vector<double>& edge_residual);

/// Dijkstra under the view's lengths, skipping edges whose entry in
/// `edge_residual` is <= 1e-9 — the residual-capacity loops of greedy
/// routing and successive shortest paths.
ShortestPathTree dijkstra_residual(const GraphView& view, NodeId source,
                                   const std::vector<double>& edge_residual);

/// dijkstra_residual that stops as soon as `target` is settled.  Every node
/// settled before the stop — in particular the whole source->target parent
/// chain — carries exactly the distances and parents of the full tree
/// (Dijkstra settles in a deterministic total order), so path_to(target) is
/// bit-identical to the unbounded call; entries for unsettled nodes are
/// not meaningful.  The single-pair lookups of ISP's session fast path use
/// this to skip the tail of the settle order.
ShortestPathTree dijkstra_residual_to(const GraphView& view, NodeId source,
                                      NodeId target,
                                      const std::vector<double>& edge_residual);

/// Shortest path source -> target over the view, or nullopt.
std::optional<Path> shortest_path(const GraphView& view, NodeId source,
                                  NodeId target);

/// Widest (maximum-bottleneck) path under the view's capacities.
/// Capacities must be >= 0 and not NaN (std::invalid_argument otherwise).
std::optional<Path> widest_path(const GraphView& view, NodeId source,
                                NodeId target);

// --- callback wrappers (historical signatures) -----------------------------

/// Runs Dijkstra from `source`.  `length` must be >= 0 for every usable edge
/// (negative or NaN lengths throw std::invalid_argument at first encounter).
/// Materialises a GraphView; prefer the view overloads in loops.
ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeWeight& length,
                          const EdgeFilter& edge_ok = {},
                          const NodeFilter& node_ok = {});

/// Shortest path source -> target, or nullopt if disconnected.
std::optional<Path> shortest_path(const Graph& g, NodeId source,
                                  NodeId target, const EdgeWeight& length,
                                  const EdgeFilter& edge_ok = {},
                                  const NodeFilter& node_ok = {});

/// Widest (maximum-bottleneck-capacity) path source -> target under the
/// capacity view; used by greedy routing pre-passes.  Negative or NaN
/// capacities throw std::invalid_argument at first encounter.
std::optional<Path> widest_path(const Graph& g, NodeId source, NodeId target,
                                const EdgeWeight& capacity,
                                const EdgeFilter& edge_ok = {},
                                const NodeFilter& node_ok = {});

#if defined(NETREC_ENABLE_LEGACY)
namespace legacy {

/// Reference std::function-based implementations, preserved for the
/// view-equivalence property tests and the bench/perf_graph comparison.
/// Semantically identical to the view path (bit-identical outputs).
ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeWeight& length,
                          const EdgeFilter& edge_ok = {},
                          const NodeFilter& node_ok = {});

std::optional<Path> widest_path(const Graph& g, NodeId source, NodeId target,
                                const EdgeWeight& capacity,
                                const EdgeFilter& edge_ok = {},
                                const NodeFilter& node_ok = {});

}  // namespace legacy
#endif  // NETREC_ENABLE_LEGACY

}  // namespace netrec::graph
