// Dijkstra shortest paths with pluggable (dynamic) edge lengths.
//
// ISP's path metric (Section IV-D) changes every iteration — repaired
// elements become "short", pruned capacity raises lengths — so lengths are a
// callback rather than stored weights.  The same routine also serves column-
// generation pricing in the MCF solver (lengths = simplex duals).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace netrec::graph {

struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> distance;    ///< +inf when unreachable
  std::vector<EdgeId> parent_edge; ///< kInvalidEdge at source/unreachable

  bool reached(NodeId node) const;

  /// Reconstructs source -> target; std::nullopt when unreachable.
  std::optional<Path> path_to(const Graph& g, NodeId target) const;
};

/// Runs Dijkstra from `source`.  `length` must be >= 0 for every usable edge
/// (negative lengths throw std::invalid_argument at first encounter).
ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeWeight& length,
                          const EdgeFilter& edge_ok = {},
                          const NodeFilter& node_ok = {});

/// Shortest path source -> target, or nullopt if disconnected.
std::optional<Path> shortest_path(const Graph& g, NodeId source,
                                  NodeId target, const EdgeWeight& length,
                                  const EdgeFilter& edge_ok = {},
                                  const NodeFilter& node_ok = {});

/// Widest (maximum-bottleneck-capacity) path source -> target under the
/// capacity view; used by greedy routing pre-passes.
std::optional<Path> widest_path(const Graph& g, NodeId source, NodeId target,
                                const EdgeWeight& capacity,
                                const EdgeFilter& edge_ok = {},
                                const NodeFilter& node_ok = {});

}  // namespace netrec::graph
