#include "graph/dijkstra.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/heap.hpp"

namespace netrec::graph {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kResidualEps = 1e-9;

using HeapItem = std::pair<double, NodeId>;

/// Reusable heap storage: the allocation survives across the many Dijkstra
/// calls of a betweenness pass or a pricing round.  Pop order is the same
/// as std::priority_queue's — (distance, node) is a total order, so any
/// correct min-priority-queue settles nodes in the identical sequence.
QuadHeap<HeapItem>& heap_storage() {
  thread_local QuadHeap<HeapItem> storage;
  storage.clear();
  return storage;
}

/// Shared CSR Dijkstra core.  `weight_of(ArcId, EdgeId)` and `arc_ok(EdgeId)`
/// are inlined functors, so the instantiations below compile to tight loops
/// over flat arrays.  The `!(w >= 0.0)` guard rejects negative *and* NaN
/// lengths.
template <class WeightOf, class ArcOk>
ShortestPathTree run_dijkstra(const GraphView& view, NodeId source,
                              const WeightOf& weight_of, const ArcOk& arc_ok,
                              NodeId stop_at = kInvalidNode) {
  view.graph().check_node(source);
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(view.num_nodes(), kInf);
  tree.parent_edge.assign(view.num_nodes(), kInvalidEdge);
  tree.distance[static_cast<std::size_t>(source)] = 0.0;

  QuadHeap<HeapItem>& heap = heap_storage();
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [dist, at] = heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(at)]) continue;
    // Settling `stop_at` fixes its distance and parent chain; the rest of
    // the settle order cannot change them (labels only grow).
    if (at == stop_at) break;
    const ArcId end = view.arcs_end(at);
    for (ArcId a = view.arcs_begin(at); a < end; ++a) {
      const EdgeId e = view.arc_edge(a);
      if (!arc_ok(e)) continue;
      const double w = weight_of(a, e);
      if (!(w >= 0.0)) {
        throw std::invalid_argument("dijkstra: negative or NaN edge length");
      }
      const double candidate = dist + w;
      const NodeId to = view.arc_target(a);
      if (candidate < tree.distance[static_cast<std::size_t>(to)]) {
        tree.distance[static_cast<std::size_t>(to)] = candidate;
        tree.parent_edge[static_cast<std::size_t>(to)] = e;
        heap.push({candidate, to});
      }
    }
  }
  return tree;
}

struct AllArcsOk {
  bool operator()(EdgeId) const { return true; }
};

}  // namespace

bool ShortestPathTree::reached(NodeId node) const {
  return distance[static_cast<std::size_t>(node)] < kInf;
}

std::optional<Path> ShortestPathTree::path_to(const Graph& g,
                                              NodeId target) const {
  if (!reached(target)) return std::nullopt;
  Path path;
  path.start = source;
  std::vector<EdgeId> reversed;
  NodeId at = target;
  while (at != source) {
    const EdgeId e = parent_edge[static_cast<std::size_t>(at)];
    reversed.push_back(e);
    at = g.other_endpoint(e, at);
  }
  path.edges.assign(reversed.rbegin(), reversed.rend());
  return path;
}

// --- view-based ------------------------------------------------------------

ShortestPathTree dijkstra(const GraphView& view, NodeId source) {
  return run_dijkstra(
      view, source,
      [&view](ArcId a, EdgeId) { return view.arc_length(a); }, AllArcsOk{});
}

ShortestPathTree dijkstra(const GraphView& view, NodeId source,
                          const std::vector<double>& edge_length) {
  return run_dijkstra(
      view, source,
      [&edge_length](ArcId, EdgeId e) {
        return edge_length[static_cast<std::size_t>(e)];
      },
      AllArcsOk{});
}

ShortestPathTree dijkstra(const GraphView& view, NodeId source,
                          const std::vector<double>& edge_length,
                          const std::vector<double>& edge_residual) {
  return run_dijkstra(
      view, source,
      [&edge_length](ArcId, EdgeId e) {
        return edge_length[static_cast<std::size_t>(e)];
      },
      [&edge_residual](EdgeId e) {
        return edge_residual[static_cast<std::size_t>(e)] > kResidualEps;
      });
}

ShortestPathTree dijkstra_to(const GraphView& view, NodeId source,
                             NodeId target,
                             const std::vector<double>& edge_length,
                             const std::vector<double>& edge_residual) {
  view.graph().check_node(target);
  return run_dijkstra(
      view, source,
      [&edge_length](ArcId, EdgeId e) {
        return edge_length[static_cast<std::size_t>(e)];
      },
      [&edge_residual](EdgeId e) {
        return edge_residual[static_cast<std::size_t>(e)] > kResidualEps;
      },
      target);
}

ShortestPathTree dijkstra_residual(const GraphView& view, NodeId source,
                                   const std::vector<double>& edge_residual) {
  return run_dijkstra(
      view, source,
      [&view](ArcId a, EdgeId) { return view.arc_length(a); },
      [&edge_residual](EdgeId e) {
        return edge_residual[static_cast<std::size_t>(e)] > kResidualEps;
      });
}

ShortestPathTree dijkstra_residual_to(
    const GraphView& view, NodeId source, NodeId target,
    const std::vector<double>& edge_residual) {
  view.graph().check_node(target);
  return run_dijkstra(
      view, source,
      [&view](ArcId a, EdgeId) { return view.arc_length(a); },
      [&edge_residual](EdgeId e) {
        return edge_residual[static_cast<std::size_t>(e)] > kResidualEps;
      },
      target);
}

std::optional<Path> shortest_path(const GraphView& view, NodeId source,
                                  NodeId target) {
  return dijkstra(view, source).path_to(view.graph(), target);
}

std::optional<Path> widest_path(const GraphView& view, NodeId source,
                                NodeId target) {
  const Graph& g = view.graph();
  g.check_node(source);
  g.check_node(target);
  // Max-bottleneck Dijkstra: label = best bottleneck achievable to the node.
  std::vector<double> width(view.num_nodes(), 0.0);
  std::vector<EdgeId> parent(view.num_nodes(), kInvalidEdge);
  width[static_cast<std::size_t>(source)] = kInf;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item> heap;  // max-heap on bottleneck
  heap.emplace(kInf, source);
  while (!heap.empty()) {
    const auto [w, at] = heap.top();
    heap.pop();
    if (w < width[static_cast<std::size_t>(at)]) continue;
    if (at == target) break;
    const ArcId end = view.arcs_end(at);
    for (ArcId a = view.arcs_begin(at); a < end; ++a) {
      const double cap = view.arc_capacity(a);
      if (!(cap >= 0.0)) {
        throw std::invalid_argument(
            "widest_path: negative or NaN edge capacity");
      }
      const double bottleneck = std::min(w, cap);
      const NodeId to = view.arc_target(a);
      if (bottleneck > width[static_cast<std::size_t>(to)]) {
        width[static_cast<std::size_t>(to)] = bottleneck;
        parent[static_cast<std::size_t>(to)] = view.arc_edge(a);
        heap.emplace(bottleneck, to);
      }
    }
  }
  if (width[static_cast<std::size_t>(target)] <= 0.0 && source != target) {
    return std::nullopt;
  }
  Path path;
  path.start = source;
  std::vector<EdgeId> reversed;
  NodeId at = target;
  while (at != source) {
    const EdgeId e = parent[static_cast<std::size_t>(at)];
    if (e == kInvalidEdge) return std::nullopt;
    reversed.push_back(e);
    at = g.other_endpoint(e, at);
  }
  path.edges.assign(reversed.rbegin(), reversed.rend());
  return path;
}

// --- callback wrappers -----------------------------------------------------

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeWeight& length, const EdgeFilter& edge_ok,
                          const NodeFilter& node_ok) {
  g.check_node(source);
  ViewConfig config;
  config.edge_ok = edge_ok;
  config.node_ok = node_ok;
  config.length = length;
  return dijkstra(GraphView::build(g, config), source);
}

std::optional<Path> shortest_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeWeight& length,
                                  const EdgeFilter& edge_ok,
                                  const NodeFilter& node_ok) {
  return dijkstra(g, source, length, edge_ok, node_ok).path_to(g, target);
}

std::optional<Path> widest_path(const Graph& g, NodeId source, NodeId target,
                                const EdgeWeight& capacity,
                                const EdgeFilter& edge_ok,
                                const NodeFilter& node_ok) {
  ViewConfig config;
  config.edge_ok = edge_ok;
  config.node_ok = node_ok;
  config.capacity = capacity;
  return widest_path(GraphView::build(g, config), source, target);
}

// --- legacy reference implementations --------------------------------------

#if defined(NETREC_ENABLE_LEGACY)
namespace legacy {

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeWeight& length, const EdgeFilter& edge_ok,
                          const NodeFilter& node_ok) {
  g.check_node(source);
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(g.num_nodes(), kInf);
  tree.parent_edge.assign(g.num_nodes(), kInvalidEdge);
  tree.distance[static_cast<std::size_t>(source)] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, at] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(at)]) continue;
    for (EdgeId e : g.incident_edges(at)) {
      if (edge_ok && !edge_ok(e)) continue;
      const NodeId to = g.other_endpoint(e, at);
      if (node_ok && !node_ok(to)) continue;
      const double w = length(e);
      if (!(w >= 0.0)) {
        throw std::invalid_argument("dijkstra: negative or NaN edge length");
      }
      const double candidate = dist + w;
      if (candidate < tree.distance[static_cast<std::size_t>(to)]) {
        tree.distance[static_cast<std::size_t>(to)] = candidate;
        tree.parent_edge[static_cast<std::size_t>(to)] = e;
        heap.emplace(candidate, to);
      }
    }
  }
  return tree;
}

std::optional<Path> widest_path(const Graph& g, NodeId source, NodeId target,
                                const EdgeWeight& capacity,
                                const EdgeFilter& edge_ok,
                                const NodeFilter& node_ok) {
  g.check_node(source);
  g.check_node(target);
  std::vector<double> width(g.num_nodes(), 0.0);
  std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
  width[static_cast<std::size_t>(source)] = kInf;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item> heap;  // max-heap on bottleneck
  heap.emplace(kInf, source);
  while (!heap.empty()) {
    const auto [w, at] = heap.top();
    heap.pop();
    if (w < width[static_cast<std::size_t>(at)]) continue;
    if (at == target) break;
    for (EdgeId e : g.incident_edges(at)) {
      if (edge_ok && !edge_ok(e)) continue;
      const NodeId to = g.other_endpoint(e, at);
      if (node_ok && !node_ok(to)) continue;
      const double cap = capacity(e);
      if (!(cap >= 0.0)) {
        throw std::invalid_argument(
            "widest_path: negative or NaN edge capacity");
      }
      const double bottleneck = std::min(w, cap);
      if (bottleneck > width[static_cast<std::size_t>(to)]) {
        width[static_cast<std::size_t>(to)] = bottleneck;
        parent[static_cast<std::size_t>(to)] = e;
        heap.emplace(bottleneck, to);
      }
    }
  }
  if (width[static_cast<std::size_t>(target)] <= 0.0 && source != target) {
    return std::nullopt;
  }
  Path path;
  path.start = source;
  std::vector<EdgeId> reversed;
  NodeId at = target;
  while (at != source) {
    const EdgeId e = parent[static_cast<std::size_t>(at)];
    if (e == kInvalidEdge) return std::nullopt;
    reversed.push_back(e);
    at = g.other_endpoint(e, at);
  }
  path.edges.assign(reversed.rbegin(), reversed.rend());
  return path;
}

}  // namespace legacy
#endif  // NETREC_ENABLE_LEGACY

}  // namespace netrec::graph
