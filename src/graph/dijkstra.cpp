#include "graph/dijkstra.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace netrec::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

bool ShortestPathTree::reached(NodeId node) const {
  return distance[static_cast<std::size_t>(node)] < kInf;
}

std::optional<Path> ShortestPathTree::path_to(const Graph& g,
                                              NodeId target) const {
  if (!reached(target)) return std::nullopt;
  Path path;
  path.start = source;
  std::vector<EdgeId> reversed;
  NodeId at = target;
  while (at != source) {
    const EdgeId e = parent_edge[static_cast<std::size_t>(at)];
    reversed.push_back(e);
    at = g.other_endpoint(e, at);
  }
  path.edges.assign(reversed.rbegin(), reversed.rend());
  return path;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeWeight& length, const EdgeFilter& edge_ok,
                          const NodeFilter& node_ok) {
  g.check_node(source);
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(g.num_nodes(), kInf);
  tree.parent_edge.assign(g.num_nodes(), kInvalidEdge);
  tree.distance[static_cast<std::size_t>(source)] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, at] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(at)]) continue;
    for (EdgeId e : g.incident_edges(at)) {
      if (edge_ok && !edge_ok(e)) continue;
      const NodeId to = g.other_endpoint(e, at);
      if (node_ok && !node_ok(to)) continue;
      const double w = length(e);
      if (w < 0.0) {
        throw std::invalid_argument("dijkstra: negative edge length");
      }
      const double candidate = dist + w;
      if (candidate < tree.distance[static_cast<std::size_t>(to)]) {
        tree.distance[static_cast<std::size_t>(to)] = candidate;
        tree.parent_edge[static_cast<std::size_t>(to)] = e;
        heap.emplace(candidate, to);
      }
    }
  }
  return tree;
}

std::optional<Path> shortest_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeWeight& length,
                                  const EdgeFilter& edge_ok,
                                  const NodeFilter& node_ok) {
  return dijkstra(g, source, length, edge_ok, node_ok).path_to(g, target);
}

std::optional<Path> widest_path(const Graph& g, NodeId source, NodeId target,
                                const EdgeWeight& capacity,
                                const EdgeFilter& edge_ok,
                                const NodeFilter& node_ok) {
  g.check_node(source);
  g.check_node(target);
  // Max-bottleneck Dijkstra: label = best bottleneck achievable to the node.
  std::vector<double> width(g.num_nodes(), 0.0);
  std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
  width[static_cast<std::size_t>(source)] = kInf;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item> heap;  // max-heap on bottleneck
  heap.emplace(kInf, source);
  while (!heap.empty()) {
    const auto [w, at] = heap.top();
    heap.pop();
    if (w < width[static_cast<std::size_t>(at)]) continue;
    if (at == target) break;
    for (EdgeId e : g.incident_edges(at)) {
      if (edge_ok && !edge_ok(e)) continue;
      const NodeId to = g.other_endpoint(e, at);
      if (node_ok && !node_ok(to)) continue;
      const double bottleneck = std::min(w, capacity(e));
      if (bottleneck > width[static_cast<std::size_t>(to)]) {
        width[static_cast<std::size_t>(to)] = bottleneck;
        parent[static_cast<std::size_t>(to)] = e;
        heap.emplace(bottleneck, to);
      }
    }
  }
  if (width[static_cast<std::size_t>(target)] <= 0.0 && source != target) {
    return std::nullopt;
  }
  Path path;
  path.start = source;
  std::vector<EdgeId> reversed;
  NodeId at = target;
  while (at != source) {
    const EdgeId e = parent[static_cast<std::size_t>(at)];
    if (e == kInvalidEdge) return std::nullopt;
    reversed.push_back(e);
    at = g.other_endpoint(e, at);
  }
  path.edges.assign(reversed.rbegin(), reversed.rend());
  return path;
}

}  // namespace netrec::graph
