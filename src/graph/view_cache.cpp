#include "graph/view_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace netrec::graph {

ViewCache::ViewCache(const Graph& g) : g_(&g) {}

ViewCache::SlotId ViewCache::add_config(std::string name, ViewConfig config) {
  auto slot = std::make_unique<Slot>();
  slot->name = std::move(name);
  slot->config = std::move(config);
  slot->rebuild = true;  // nothing built yet
  slot->dirty_mark.assign(g_->num_edges(), 0);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

const GraphView& ViewCache::view(SlotId slot) {
  if (slot >= slots_.size()) {
    throw std::invalid_argument("ViewCache: slot id out of range");
  }
  sync(*slots_[slot]);
  return slots_[slot]->view;
}

const GraphView& ViewCache::view(std::string_view name) {
  for (auto& slot : slots_) {
    if (slot->name == name) {
      sync(*slot);
      return slot->view;
    }
  }
  std::string message = "ViewCache: unknown slot '";
  message.append(name);
  message += '\'';
  throw std::invalid_argument(message);
}

void ViewCache::mark_edge(Slot& slot, EdgeId e) {
  if (slot.rebuild) return;  // a rebuild re-evaluates everything anyway
  // Edges may have been added to the graph (followed by bump_epoch) since
  // add_config sized the bitmap; grow it in step.
  if (static_cast<std::size_t>(e) >= slot.dirty_mark.size()) {
    slot.dirty_mark.resize(g_->num_edges(), 0);
  }
  if (slot.dirty_mark[static_cast<std::size_t>(e)]) return;
  slot.dirty_mark[static_cast<std::size_t>(e)] = 1;
  slot.dirty.push_back(e);
}

void ViewCache::invalidate_edge(EdgeId e) {
  g_->check_edge(e);
  ++epoch_;
  for (auto& slot : slots_) mark_edge(*slot, e);
  for (MutationListener* l : listeners_) l->on_edge_invalidated(e);
}

void ViewCache::invalidate_node(NodeId n) {
  g_->check_node(n);
  ++epoch_;
  for (auto& slot : slots_) {
    if (slot->rebuild) continue;
    if (slot->config.node_ok) {
      // Node verdicts shape the CSR itself; be conservative.
      slot->rebuild = true;
      continue;
    }
    for (EdgeId e : g_->incident_edges(n)) mark_edge(*slot, e);
  }
  for (MutationListener* l : listeners_) l->on_node_invalidated(n);
}

void ViewCache::bump_epoch() {
  ++epoch_;
  for (auto& slot : slots_) slot->rebuild = true;
  for (MutationListener* l : listeners_) l->on_epoch_bumped();
}

void ViewCache::add_listener(MutationListener* listener) {
  if (!listener) return;
  listeners_.push_back(listener);
}

void ViewCache::remove_listener(MutationListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void ViewCache::sync(Slot& slot) {
  // A queued dirty edge whose live filter verdict differs from the built
  // one changes arc membership: escalate to a rebuild.  So does an edge id
  // beyond the built view's range (graph grew without a bump_epoch).
  if (!slot.rebuild && !slot.dirty.empty()) {
    for (EdgeId e : slot.dirty) {
      if (static_cast<std::size_t>(e) >= slot.view.num_edges()) {
        slot.rebuild = true;
        break;
      }
      if (slot.config.edge_ok &&
          slot.config.edge_ok(e) != slot.view.edge_passes_filter(e)) {
        slot.rebuild = true;
        break;
      }
    }
  }

  if (slot.rebuild) {
    slot.view = GraphView::build(*g_, slot.config);
    slot.built = true;
    slot.rebuild = false;
    ++stats_.builds;
  } else if (!slot.dirty.empty()) {
    for (EdgeId e : slot.dirty) {
      // Edges outside the filter keep weight 0 (never evaluated), exactly
      // as at build time.
      if (!slot.view.edge_passes_filter(e)) continue;
      const double length =
          slot.config.length ? slot.config.length(e) : 1.0;
      const double capacity =
          slot.config.capacity ? slot.config.capacity(e) : g_->edge_capacity(e);
      slot.view.refresh_edge_metrics(e, length, capacity);
      ++stats_.refreshes;
    }
  } else {
    ++stats_.hits;
  }

  if (!slot.dirty.empty()) {
    for (EdgeId e : slot.dirty) {
      slot.dirty_mark[static_cast<std::size_t>(e)] = 0;
    }
    slot.dirty.clear();
  }
  slot.synced_epoch = epoch_;
}

}  // namespace netrec::graph
