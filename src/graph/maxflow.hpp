// Dinic maximum flow on the undirected supply graph.
//
// ISP uses s-t max flows in two places: the split-demand selection
// (decision 1, f*(i,j) on the full graph) and the prune amount
// (Theorem 3, max flow inside a bubble).  Undirected edges are modelled as
// opposite arc pairs each carrying the full edge capacity; the reported
// per-edge flow is net (opposite directions cancelled), so a flow
// decomposition into simple paths always exists.
//
// The GraphView overloads assemble the Dinic network from the view's flat
// usability bitset and capacity array (no per-edge callbacks); the
// residual-capacity overload lets greedy routing re-run flows against a
// mutating residual array without rebuilding the view.  The callback
// signature wraps the view path; the reference implementation survives in
// namespace `legacy` for the equivalence tests.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "graph/view.hpp"

namespace netrec::graph {

struct MaxflowResult {
  double value = 0.0;
  /// Signed net flow per original edge id; positive means u -> v.
  /// Edges excluded by the filter carry 0.
  std::vector<double> edge_flow;
};

// --- view-based (hot path) -------------------------------------------------

/// Max flow source -> sink over the view's edges and capacities.
MaxflowResult max_flow(const GraphView& view, NodeId source, NodeId sink);

/// Same network restricted to the view's edges, but with capacities read
/// from `edge_capacity` (indexed by original edge id) — the residual arrays
/// the greedy heuristics maintain between flow calls.
MaxflowResult max_flow(const GraphView& view, NodeId source, NodeId sink,
                       const std::vector<double>& edge_capacity);

/// Further restricted to edges whose endpoints both have a nonzero entry in
/// `node_ok` — ISP's bubble flows (Theorem 3) on a cached working view,
/// where the bubble's node set changes per prune attempt but the view does
/// not.  `node_ok` must have one entry per graph node.
MaxflowResult max_flow(const GraphView& view, NodeId source, NodeId sink,
                       const std::vector<double>& edge_capacity,
                       const std::vector<char>& node_ok);

// --- callback wrapper (historical signature) -------------------------------

/// Max flow from `source` to `sink`.  `capacity` supplies per-edge capacity
/// (residual capacities during ISP differ from static ones); filters restrict
/// the network (e.g. to working elements, or to a bubble's node set).
/// Materialises a GraphView.
MaxflowResult max_flow(const Graph& g, NodeId source, NodeId sink,
                       const EdgeWeight& capacity,
                       const EdgeFilter& edge_ok = {},
                       const NodeFilter& node_ok = {});

/// Decomposes a net edge flow (as produced by max_flow) into simple paths
/// with positive amounts summing to the flow value.  The input flow must be
/// conserved at every node other than source/sink.
std::vector<std::pair<Path, double>> decompose_flow(
    const Graph& g, NodeId source, NodeId sink,
    const std::vector<double>& edge_flow);

#if defined(NETREC_ENABLE_LEGACY)
namespace legacy {

/// Reference std::function-based implementation (bit-identical flows),
/// preserved for the view-equivalence tests.
MaxflowResult max_flow(const Graph& g, NodeId source, NodeId sink,
                       const EdgeWeight& capacity,
                       const EdgeFilter& edge_ok = {},
                       const NodeFilter& node_ok = {});

}  // namespace legacy
#endif  // NETREC_ENABLE_LEGACY

}  // namespace netrec::graph
