// Dinic maximum flow on the undirected supply graph.
//
// ISP uses s-t max flows in two places: the split-demand selection
// (decision 1, f*(i,j) on the full graph) and the prune amount
// (Theorem 3, max flow inside a bubble).  Undirected edges are modelled as
// opposite arc pairs each carrying the full edge capacity; the reported
// per-edge flow is net (opposite directions cancelled), so a flow
// decomposition into simple paths always exists.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace netrec::graph {

struct MaxflowResult {
  double value = 0.0;
  /// Signed net flow per original edge id; positive means u -> v.
  /// Edges excluded by the filter carry 0.
  std::vector<double> edge_flow;
};

/// Max flow from `source` to `sink`.  `capacity` supplies per-edge capacity
/// (residual capacities during ISP differ from static ones); filters restrict
/// the network (e.g. to working elements, or to a bubble's node set).
MaxflowResult max_flow(const Graph& g, NodeId source, NodeId sink,
                       const EdgeWeight& capacity,
                       const EdgeFilter& edge_ok = {},
                       const NodeFilter& node_ok = {});

/// Decomposes a net edge flow (as produced by max_flow) into simple paths
/// with positive amounts summing to the flow value.  The input flow must be
/// conserved at every node other than source/sink.
std::vector<std::pair<Path, double>> decompose_flow(
    const Graph& g, NodeId source, NodeId sink,
    const std::vector<double>& edge_flow);

}  // namespace netrec::graph
