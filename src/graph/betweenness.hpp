// Classic betweenness centrality (Brandes' algorithm, weighted variant).
//
// The paper motivates its demand-based centrality against "previous
// definitions of node centrality" (Freeman betweenness among them, refs
// [16], [13]).  This module provides that classic metric so the ablation
// bench can quantify what the demand-aware variant actually buys: Brandes
// scores nodes by shortest-path participation over *all* vertex pairs,
// ignoring both demand endpoints and capacities.
//
// Brandes runs |V| Dijkstra passes, so it is the workload that gains most
// from the CSR GraphView: the view overload touches flat arrays only.  The
// callback signature wraps it; the reference callback implementation lives
// in namespace `legacy` for the equivalence tests and bench/perf_graph.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/view.hpp"

namespace netrec::util {
class ThreadPool;
}  // namespace netrec::util

namespace netrec::graph {

/// Brandes betweenness over the view, under the view's edge lengths (>= 0).
/// Nodes outside the view score 0 and contribute no source pass.
std::vector<double> betweenness_centrality(const GraphView& view);

/// Parallel Brandes: the |V| independent source passes fan out on `pool`
/// (nullptr or a single worker falls back to the serial loop).  Each pass
/// accumulates its dependency vector into a private buffer; buffers merge
/// on the calling thread in fixed increasing-source order, and within one
/// source every touched node is updated exactly once — so the merged
/// floating-point additions are the serial kernel's additions in the serial
/// kernel's order, and the result is bit-identical to
/// betweenness_centrality(view) at any thread count.
///
/// `source_limit` restricts the passes to sources [0, source_limit) — the
/// pivot-style partial accumulation the scaling bench uses on graphs too
/// large for all |V| passes; 0 means all nodes.
std::vector<double> betweenness_centrality(const GraphView& view,
                                           util::ThreadPool* pool,
                                           std::size_t source_limit = 0);

/// Brandes betweenness for all nodes under the given edge lengths (>= 0).
/// Runs |V| Dijkstra passes: O(V * (E log V)).  Filtered elements are
/// treated as absent.  Endpoint pairs contribute to intermediate nodes only
/// (standard definition).  Materialises a GraphView.
std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok = {},
                                           const NodeFilter& node_ok = {});

#if defined(NETREC_ENABLE_LEGACY)
namespace legacy {

/// Reference std::function-based implementation (bit-identical scores),
/// preserved for the view-equivalence tests and the perf comparison.
std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok = {},
                                           const NodeFilter& node_ok = {});

}  // namespace legacy
#endif  // NETREC_ENABLE_LEGACY

}  // namespace netrec::graph
