// Classic betweenness centrality (Brandes' algorithm, weighted variant).
//
// The paper motivates its demand-based centrality against "previous
// definitions of node centrality" (Freeman betweenness among them, refs
// [16], [13]).  This module provides that classic metric so the ablation
// bench can quantify what the demand-aware variant actually buys: Brandes
// scores nodes by shortest-path participation over *all* vertex pairs,
// ignoring both demand endpoints and capacities.
//
// Brandes runs |V| Dijkstra passes, so it is the workload that gains most
// from the CSR GraphView: the view overload touches flat arrays only.  The
// callback signature wraps it; the reference callback implementation lives
// in namespace `legacy` for the equivalence tests and bench/perf_graph.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/view.hpp"

namespace netrec::graph {

/// Brandes betweenness over the view, under the view's edge lengths (>= 0).
/// Nodes outside the view score 0 and contribute no source pass.
std::vector<double> betweenness_centrality(const GraphView& view);

/// Brandes betweenness for all nodes under the given edge lengths (>= 0).
/// Runs |V| Dijkstra passes: O(V * (E log V)).  Filtered elements are
/// treated as absent.  Endpoint pairs contribute to intermediate nodes only
/// (standard definition).  Materialises a GraphView.
std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok = {},
                                           const NodeFilter& node_ok = {});

#if defined(NETREC_ENABLE_LEGACY)
namespace legacy {

/// Reference std::function-based implementation (bit-identical scores),
/// preserved for the view-equivalence tests and the perf comparison.
std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok = {},
                                           const NodeFilter& node_ok = {});

}  // namespace legacy
#endif  // NETREC_ENABLE_LEGACY

}  // namespace netrec::graph
