// Classic betweenness centrality (Brandes' algorithm, weighted variant).
//
// The paper motivates its demand-based centrality against "previous
// definitions of node centrality" (Freeman betweenness among them, refs
// [16], [13]).  This module provides that classic metric so the ablation
// bench can quantify what the demand-aware variant actually buys: Brandes
// scores nodes by shortest-path participation over *all* vertex pairs,
// ignoring both demand endpoints and capacities.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace netrec::graph {

/// Brandes betweenness for all nodes under the given edge lengths (>= 0).
/// Runs |V| Dijkstra passes: O(V * (E log V)).  Filtered elements are
/// treated as absent.  Endpoint pairs contribute to intermediate nodes only
/// (standard definition).
std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok = {},
                                           const NodeFilter& node_ok = {});

}  // namespace netrec::graph
