#include "graph/edgelist.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

namespace netrec::graph {

Graph parse_edge_list(const std::string& text,
                      const EdgeListOptions& options) {
  struct Row {
    long long u, v;
    double capacity, repair_cost;
  };
  std::vector<Row> rows;
  long long max_id = -1;

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    long long u = 0;
    long long v = 0;
    if (!(fields >> u)) continue;  // blank / comment-only line
    if (!(fields >> v)) {
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": expected 'u v [capacity [repair_cost]]'");
    }
    Row row{u, v, options.default_capacity, options.default_repair_cost};
    fields >> row.capacity >> row.repair_cost;  // optional, keep defaults
    if (fields.bad() || (!fields.eof() && fields.fail())) {
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": malformed numeric field");
    }
    if (u < 0 || v < 0) {
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": negative node id");
    }
    max_id = std::max({max_id, u, v});
    rows.push_back(row);
  }

  Builder builder;
  builder.reserve(static_cast<std::size_t>(max_id + 1), rows.size());
  builder.add_nodes(static_cast<std::size_t>(max_id + 1),
                    options.node_repair_cost);
  for (const Row& row : rows) {
    builder.add_edge(static_cast<NodeId>(row.u), static_cast<NodeId>(row.v),
                     row.capacity, row.repair_cost);
  }
  return builder.finalize();
}

Graph load_edge_list_file(const std::string& path,
                          const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_edge_list(buffer.str(), options);
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  out << "# " << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n";
  char buf[128];
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<EdgeId>(e);
    const auto [u, v] = g.edge_endpoints(id);
    std::snprintf(buf, sizeof buf, "%d %d %.17g %.17g\n", u, v,
                  g.edge_capacity(id), g.edge_repair_cost(id));
    out << buf;
  }
  return out.str();
}

void save_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write edge list: " + path);
  out << to_edge_list(g);
  if (!out) throw std::runtime_error("short write: " + path);
}

}  // namespace netrec::graph
