#include "graph/betweenness.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <stack>

namespace netrec::graph {

std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok,
                                           const NodeFilter& node_ok) {
  const std::size_t n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Brandes: one shortest-path DAG per source, accumulate dependencies.
  std::vector<double> dist(n);
  std::vector<double> sigma(n);  // number of shortest paths
  std::vector<double> delta(n);  // dependency accumulator
  std::vector<std::vector<NodeId>> predecessors(n);

  for (std::size_t s = 0; s < n; ++s) {
    const auto source = static_cast<NodeId>(s);
    if (node_ok && !node_ok(source)) continue;
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : predecessors) p.clear();

    dist[s] = 0.0;
    sigma[s] = 1.0;
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, source);
    std::stack<NodeId> order;  // nodes in non-decreasing distance
    std::vector<char> settled(n, 0);

    while (!heap.empty()) {
      const auto [d, at] = heap.top();
      heap.pop();
      if (settled[static_cast<std::size_t>(at)]) continue;
      settled[static_cast<std::size_t>(at)] = 1;
      order.push(at);
      for (EdgeId e : g.incident_edges(at)) {
        if (edge_ok && !edge_ok(e)) continue;
        const NodeId to = g.other_endpoint(e, at);
        if (node_ok && !node_ok(to)) continue;
        const double candidate = d + length(e);
        const auto ti = static_cast<std::size_t>(to);
        if (candidate < dist[ti] - 1e-12) {
          dist[ti] = candidate;
          sigma[ti] = sigma[static_cast<std::size_t>(at)];
          predecessors[ti].assign(1, at);
          heap.emplace(candidate, to);
        } else if (std::abs(candidate - dist[ti]) <= 1e-12) {
          sigma[ti] += sigma[static_cast<std::size_t>(at)];
          predecessors[ti].push_back(at);
        }
      }
    }

    // Dependency accumulation in reverse settle order.
    while (!order.empty()) {
      const NodeId w = order.top();
      order.pop();
      const auto wi = static_cast<std::size_t>(w);
      for (NodeId v : predecessors[wi]) {
        const auto vi = static_cast<std::size_t>(v);
        delta[vi] += sigma[vi] / sigma[wi] * (1.0 + delta[wi]);
      }
      if (w != source) centrality[wi] += delta[wi];
    }
  }
  // Undirected graph: each pair counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

}  // namespace netrec::graph
