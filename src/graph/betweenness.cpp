#include "graph/betweenness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stack>

#include "graph/heap.hpp"
#include "util/thread_pool.hpp"

namespace netrec::graph {

namespace {

/// Per-source Brandes state, reusable across passes.  One instance per
/// concurrent pass; the serial kernel owns a single one.  All workspaces
/// (heap included: a vector drained with std::push_heap/std::pop_heap pops
/// in the same order as std::priority_queue) persist across run() calls so
/// the |V| passes share their allocations.  Predecessor lists live in one
/// flat array aligned with the CSR arcs: node v's slots start at
/// arcs_begin(v) (a node gains at most one live predecessor per incident
/// in-view arc), so no per-relaxation vector bookkeeping is needed.
struct BrandesPass {
  std::vector<double> dist;
  std::vector<double> sigma;  // number of shortest paths
  std::vector<double> delta;  // dependency accumulator
  std::vector<NodeId> pred_flat;
  std::vector<ArcId> pred_count;
  QuadHeap<std::pair<double, NodeId>> heap;
  std::vector<NodeId> order;  // nodes in non-decreasing distance
  std::vector<char> settled;

  void bind(const GraphView& view) {
    const std::size_t n = view.num_nodes();
    dist.resize(n);
    sigma.resize(n);
    delta.resize(n);
    pred_flat.resize(view.num_arcs());
    pred_count.resize(n);
    settled.resize(n);
  }

  /// One shortest-path DAG + dependency accumulation from `source`.  After
  /// the call, `order` lists the reached nodes and delta[w] is the final
  /// dependency of every w in `order` (sources outside the view leave
  /// `order` empty).
  void run(const GraphView& view, NodeId source) {
    order.clear();
    if (!view.node_in_view(source)) return;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const auto s = static_cast<std::size_t>(source);
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    std::fill(settled.begin(), settled.end(), 0);
    std::fill(pred_count.begin(), pred_count.end(), 0);
    heap.clear();

    dist[s] = 0.0;
    sigma[s] = 1.0;
    heap.push({0.0, source});

    while (!heap.empty()) {
      const auto [d, at] = heap.pop();
      if (settled[static_cast<std::size_t>(at)]) continue;
      settled[static_cast<std::size_t>(at)] = 1;
      order.push_back(at);
      // sigma[at] is final once `at` settles (no self-loops), so hoist the
      // load the optimiser cannot prove invariant across the sigma[ti]
      // stores.
      const double sigma_at = sigma[static_cast<std::size_t>(at)];
      const ArcId arc_end = view.arcs_end(at);
      for (ArcId a = view.arcs_begin(at); a < arc_end; ++a) {
        const NodeId to = view.arc_target(a);
        const double candidate = d + view.arc_length(a);
        const auto ti = static_cast<std::size_t>(to);
        if (candidate < dist[ti] - 1e-12) {
          dist[ti] = candidate;
          sigma[ti] = sigma_at;
          pred_flat[view.arcs_begin(to)] = at;
          pred_count[ti] = 1;
          heap.push({candidate, to});
        } else if (std::abs(candidate - dist[ti]) <= 1e-12) {
          sigma[ti] += sigma_at;
          pred_flat[view.arcs_begin(to) + pred_count[ti]++] = at;
        }
      }
    }

    // Dependency accumulation in reverse settle order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      const auto wi = static_cast<std::size_t>(w);
      const double sigma_w = sigma[wi];
      const double coefficient = 1.0 + delta[wi];
      const ArcId begin = view.arcs_begin(w);
      const ArcId end = begin + pred_count[wi];
      for (ArcId p = begin; p < end; ++p) {
        const auto vi = static_cast<std::size_t>(pred_flat[p]);
        delta[vi] += sigma[vi] / sigma_w * coefficient;
      }
    }
  }

  /// Adds this pass's dependencies into `centrality`.  Every node in
  /// `order` is distinct, so the per-node addition order within one source
  /// does not affect the floating-point result — only the source order
  /// does, and callers merge in increasing source order.
  void merge_into(NodeId source, std::vector<double>& centrality) const {
    for (const NodeId w : order) {
      if (w == source) continue;
      centrality[static_cast<std::size_t>(w)] +=
          delta[static_cast<std::size_t>(w)];
    }
  }
};

std::vector<double> brandes(const GraphView& view, util::ThreadPool* pool,
                            std::size_t source_limit) {
  const std::size_t n = view.num_nodes();
  const std::size_t sources = source_limit == 0 ? n : std::min(source_limit, n);
  std::vector<double> centrality(n, 0.0);

  if (pool == nullptr || pool->size() <= 1 || sources <= 1) {
    BrandesPass pass;
    pass.bind(view);
    for (std::size_t s = 0; s < sources; ++s) {
      const auto source = static_cast<NodeId>(s);
      pass.run(view, source);
      pass.merge_into(source, centrality);
    }
  } else {
    // Window the sources so per-pass buffers stay bounded: `slots` passes
    // run concurrently, then the window merges serially in source order.
    // The window size only trades memory against barrier frequency — the
    // merge order, and with it every floating-point addition, is the same
    // at any window size and any thread count.
    const std::size_t slots = std::min(sources, 4 * pool->size());
    std::vector<BrandesPass> passes(slots);
    for (auto& pass : passes) pass.bind(view);
    for (std::size_t window = 0; window < sources; window += slots) {
      const std::size_t count = std::min(slots, sources - window);
      pool->parallel_for(count, [&](std::size_t i) {
        passes[i].run(view, static_cast<NodeId>(window + i));
      });
      for (std::size_t i = 0; i < count; ++i) {
        passes[i].merge_into(static_cast<NodeId>(window + i), centrality);
      }
    }
  }

  // Undirected graph: each pair counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

}  // namespace

std::vector<double> betweenness_centrality(const GraphView& view) {
  return brandes(view, nullptr, 0);
}

std::vector<double> betweenness_centrality(const GraphView& view,
                                           util::ThreadPool* pool,
                                           std::size_t source_limit) {
  return brandes(view, pool, source_limit);
}

std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok,
                                           const NodeFilter& node_ok) {
  ViewConfig config;
  config.edge_ok = edge_ok;
  config.node_ok = node_ok;
  config.length = length;
  return betweenness_centrality(GraphView::build(g, config));
}

#if defined(NETREC_ENABLE_LEGACY)
namespace legacy {

std::vector<double> betweenness_centrality(const Graph& g,
                                           const EdgeWeight& length,
                                           const EdgeFilter& edge_ok,
                                           const NodeFilter& node_ok) {
  const std::size_t n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> dist(n);
  std::vector<double> sigma(n);  // number of shortest paths
  std::vector<double> delta(n);  // dependency accumulator
  std::vector<std::vector<NodeId>> predecessors(n);

  for (std::size_t s = 0; s < n; ++s) {
    const auto source = static_cast<NodeId>(s);
    if (node_ok && !node_ok(source)) continue;
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : predecessors) p.clear();

    dist[s] = 0.0;
    sigma[s] = 1.0;
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, source);
    std::stack<NodeId> order;  // nodes in non-decreasing distance
    std::vector<char> settled(n, 0);

    while (!heap.empty()) {
      const auto [d, at] = heap.top();
      heap.pop();
      if (settled[static_cast<std::size_t>(at)]) continue;
      settled[static_cast<std::size_t>(at)] = 1;
      order.push(at);
      for (EdgeId e : g.incident_edges(at)) {
        if (edge_ok && !edge_ok(e)) continue;
        const NodeId to = g.other_endpoint(e, at);
        if (node_ok && !node_ok(to)) continue;
        const double candidate = d + length(e);
        const auto ti = static_cast<std::size_t>(to);
        if (candidate < dist[ti] - 1e-12) {
          dist[ti] = candidate;
          sigma[ti] = sigma[static_cast<std::size_t>(at)];
          predecessors[ti].assign(1, at);
          heap.emplace(candidate, to);
        } else if (std::abs(candidate - dist[ti]) <= 1e-12) {
          sigma[ti] += sigma[static_cast<std::size_t>(at)];
          predecessors[ti].push_back(at);
        }
      }
    }

    while (!order.empty()) {
      const NodeId w = order.top();
      order.pop();
      const auto wi = static_cast<std::size_t>(w);
      for (NodeId v : predecessors[wi]) {
        const auto vi = static_cast<std::size_t>(v);
        delta[vi] += sigma[vi] / sigma[wi] * (1.0 + delta[wi]);
      }
      if (w != source) centrality[wi] += delta[wi];
    }
  }
  // Undirected graph: each pair counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

}  // namespace legacy
#endif  // NETREC_ENABLE_LEGACY

}  // namespace netrec::graph
