// Whitespace edge-list interchange: one "u v [capacity [repair_cost]]" line
// per edge, '#' comments, node count inferred as max id + 1.  The lowest
// common denominator for importing public topology dumps (SNAP, Topology
// Zoo exports, Graph500 generators) into the binary pipeline; node
// attributes (names, coordinates) are not representable — use GML or .ntb
// when they matter.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace netrec::graph {

struct EdgeListOptions {
  double default_capacity = 1.0;
  double default_repair_cost = 1.0;
  /// Repair cost for the (implicit) nodes.
  double node_repair_cost = 1.0;
};

/// Parses edge-list text through Builder (batch duplicate detection);
/// returns a finalized Graph.  Throws std::runtime_error naming the line on
/// malformed input, std::invalid_argument on duplicate/self-loop edges.
Graph parse_edge_list(const std::string& text,
                      const EdgeListOptions& options = {});

/// Loads and parses an edge-list file.
Graph load_edge_list_file(const std::string& path,
                          const EdgeListOptions& options = {});

/// Serialises the edges as "u v capacity repair_cost" lines.
std::string to_edge_list(const Graph& g);

/// Writes to_edge_list(g) to `path`; throws on I/O failure.
void save_edge_list_file(const Graph& g, const std::string& path);

}  // namespace netrec::graph
