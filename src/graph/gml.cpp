#include "graph/gml.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <variant>
#include <vector>

namespace netrec::graph {

namespace {

struct Token {
  enum class Kind { kIdentifier, kString, kNumber, kOpen, kClose, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_whitespace_and_comments();
    if (pos_ >= text_.size()) return {Token::Kind::kEnd, "", 0.0};
    const char c = text_[pos_];
    if (c == '[') {
      ++pos_;
      return {Token::Kind::kOpen, "[", 0.0};
    }
    if (c == ']') {
      ++pos_;
      return {Token::Kind::kClose, "]", 0.0};
    }
    if (c == '"') return lex_string();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      return lex_number();
    }
    return lex_identifier();
  }

 private:
  void skip_whitespace_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token lex_string() {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      value += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      throw std::runtime_error("GML: unterminated string literal");
    }
    ++pos_;  // closing quote
    return {Token::Kind::kString, value, 0.0};
  }

  Token lex_number() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    const std::string text = text_.substr(start, pos_ - start);
    try {
      return {Token::Kind::kNumber, text, std::stod(text)};
    } catch (const std::exception&) {
      throw std::runtime_error("GML: malformed number '" + text + "'");
    }
  }

  Token lex_identifier() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw std::runtime_error(std::string("GML: unexpected character '") +
                               text_[pos_] + "'");
    }
    return {Token::Kind::kIdentifier, text_.substr(start, pos_ - start), 0.0};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

using Value = std::variant<double, std::string>;
using Record = std::multimap<std::string, Value>;

/// Parses one `[ key value ... ]` block; nested blocks are parsed
/// recursively but flattened away unless the caller asks for them.
Record parse_block(Lexer& lexer,
                   std::vector<std::pair<std::string, Record>>* nested) {
  Record record;
  while (true) {
    Token key = lexer.next();
    if (key.kind == Token::Kind::kClose) return record;
    if (key.kind == Token::Kind::kEnd) {
      throw std::runtime_error("GML: unbalanced brackets");
    }
    if (key.kind != Token::Kind::kIdentifier) {
      throw std::runtime_error("GML: expected attribute name, got '" +
                               key.text + "'");
    }
    Token value = lexer.next();
    switch (value.kind) {
      case Token::Kind::kNumber:
        record.emplace(key.text, value.number);
        break;
      case Token::Kind::kString:
      case Token::Kind::kIdentifier:
        record.emplace(key.text, value.text);
        break;
      case Token::Kind::kOpen: {
        Record child = parse_block(lexer, nested);
        if (nested) nested->emplace_back(key.text, std::move(child));
        break;
      }
      default:
        throw std::runtime_error("GML: expected value for attribute '" +
                                 key.text + "'");
    }
  }
}

std::optional<double> get_number(const Record& r, const std::string& key) {
  auto it = r.find(key);
  if (it == r.end()) return std::nullopt;
  if (const double* d = std::get_if<double>(&it->second)) return *d;
  // Topology Zoo sometimes quotes numeric values.
  try {
    return std::stod(std::get<std::string>(it->second));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::string> get_string(const Record& r,
                                      const std::string& key) {
  auto it = r.find(key);
  if (it == r.end()) return std::nullopt;
  if (const std::string* s = std::get_if<std::string>(&it->second)) return *s;
  return std::nullopt;
}

/// Guard in the Graph::add_node/add_edge style (PR 2): numeric attributes
/// that feed capacities, repair costs or coordinates must be finite, and
/// the first two nonnegative — `nan`/`inf` lex as identifiers and quoted
/// numbers pass std::stod, so without this check they would flow straight
/// into the algorithms as UB fuel.
double checked_number(double value, const char* what, const char* element,
                      long long id, bool require_nonnegative) {
  if (!std::isfinite(value) || (require_nonnegative && value < 0.0)) {
    std::ostringstream message;
    message << "GML: " << element << ' ' << id << " has invalid " << what
            << " (" << value << ')';
    throw std::runtime_error(message.str());
  }
  return value;
}

/// Node-id conversion guard: the double must be finite AND representable as
/// long long — a finite 1e19 would make the static_cast itself UB.
long long checked_id(const std::optional<double>& value, const char* what) {
  // 2^63 exactly; doubles at or beyond this bound do not fit a long long.
  constexpr double kIdBound = 9223372036854775808.0;
  if (!value || !std::isfinite(*value) || *value >= kIdBound ||
      *value < -kIdBound) {
    throw std::runtime_error(std::string("GML: ") + what);
  }
  return static_cast<long long>(*value);
}

}  // namespace

Graph parse_gml(const std::string& text, const GmlOptions& options) {
  Lexer lexer(text);

  // Find the top-level `graph [`.
  Token tok = lexer.next();
  while (tok.kind != Token::Kind::kEnd) {
    if (tok.kind == Token::Kind::kIdentifier && tok.text == "graph") break;
    tok = lexer.next();
  }
  if (tok.kind == Token::Kind::kEnd) {
    throw std::runtime_error("GML: no 'graph' block found");
  }
  if (lexer.next().kind != Token::Kind::kOpen) {
    throw std::runtime_error("GML: expected '[' after 'graph'");
  }

  std::vector<std::pair<std::string, Record>> blocks;
  parse_block(lexer, &blocks);

  Graph g;
  std::map<long long, NodeId> id_map;
  // First pass: nodes (GML allows interleaving, so collect then wire edges).
  for (const auto& [kind, record] : blocks) {
    if (kind != "node") continue;
    const auto id_key =
        checked_id(get_number(record, "id"), "node without (numeric) id");
    const std::string label =
        get_string(record, "label").value_or("n" + std::to_string(id_key));
    const double x = checked_number(
        get_number(record, "Longitude")
            .value_or(get_number(record, "x").value_or(0.0)),
        "coordinate", "node", id_key, /*require_nonnegative=*/false);
    const double y = checked_number(
        get_number(record, "Latitude")
            .value_or(get_number(record, "y").value_or(0.0)),
        "coordinate", "node", id_key, /*require_nonnegative=*/false);
    const double cost = checked_number(
        get_number(record, "cost").value_or(options.default_repair_cost),
        "cost", "node", id_key, /*require_nonnegative=*/true);
    const NodeId node = g.add_node(label, x, y, cost);
    if (!id_map.emplace(id_key, node).second) {
      throw std::runtime_error("GML: duplicate node id " +
                               std::to_string(id_key));
    }
    if (get_number(record, "broken").value_or(0.0) != 0.0) {
      g.set_node_broken(node, true);
    }
  }
  for (const auto& [kind, record] : blocks) {
    if (kind != "edge") continue;
    const auto source_key =
        checked_id(get_number(record, "source"),
                   "edge without (numeric) source/target");
    const auto target_key =
        checked_id(get_number(record, "target"),
                   "edge without (numeric) source/target");
    const auto su = id_map.find(source_key);
    const auto sv = id_map.find(target_key);
    if (su == id_map.end() || sv == id_map.end()) {
      throw std::runtime_error("GML: edge references unknown node");
    }
    if (su->second == sv->second) continue;               // drop self-loops
    // Dedupe parallel edges.
    if (g.find_edge(su->second, sv->second) != kInvalidEdge) continue;
    const double capacity = checked_number(
        get_number(record, "capacity")
            .value_or(get_number(record, "LinkSpeed")
                          .value_or(options.default_capacity)),
        "capacity", "edge from node", source_key,
        /*require_nonnegative=*/true);
    const double cost = checked_number(
        get_number(record, "cost").value_or(options.default_repair_cost),
        "cost", "edge from node", source_key, /*require_nonnegative=*/true);
    const EdgeId edge = g.add_edge(su->second, sv->second, capacity, cost);
    if (get_number(record, "broken").value_or(0.0) != 0.0) {
      g.set_edge_broken(edge, true);
    }
  }
  return g;
}

Graph load_gml_file(const std::string& path, const GmlOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("GML: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_gml(buffer.str(), options);
}

std::string to_gml(const Graph& g) {
  std::ostringstream out;
  out << "graph [\n  directed 0\n";
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    out << "  node [\n    id " << i << "\n    label \"" << g.node_name(id)
        << "\"\n    x " << g.node_x(id) << "\n    y " << g.node_y(id)
        << "\n    cost " << g.node_repair_cost(id) << "\n    broken "
        << (g.node_broken(id) ? 1 : 0) << "\n  ]\n";
  }
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const auto id = static_cast<EdgeId>(i);
    out << "  edge [\n    source " << g.edge_u(id) << "\n    target "
        << g.edge_v(id) << "\n    capacity " << g.edge_capacity(id)
        << "\n    cost " << g.edge_repair_cost(id) << "\n    broken "
        << (g.edge_broken(id) ? 1 : 0) << "\n  ]\n";
  }
  out << "]\n";
  return out.str();
}

void save_gml_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("GML: cannot write '" + path + "'");
  out << to_gml(g);
}

}  // namespace netrec::graph
