// Breadth-first traversal utilities: reachability, hop distances, connected
// components, diameter.  All routines honour optional node/edge filters so
// they can run on the working subgraph, the full graph, or ISP's bubble
// search space without copying the graph.
//
// The GraphView overloads traverse a flat CSR snapshot (no per-edge callback
// indirection) and amortise one view build over many sources — hop_diameter
// and all_pairs_hops use them internally.  The callback signatures remain as
// thin wrappers that materialise a view per call.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/view.hpp"

namespace netrec::graph {

// --- view-based (hot path) -------------------------------------------------

/// Hop distance from `source` to every node (-1 when unreachable).  The
/// source is always distance 0, even when it fails the view's node filter
/// (its outgoing arcs are preserved; see view.hpp).
std::vector<int> bfs_hops(const GraphView& view, NodeId source);

/// True iff `target` is reachable from `source` in the view.
bool reachable(const GraphView& view, NodeId source, NodeId target);

/// Reachability over arcs whose `edge_residual` entry (indexed by original
/// edge id) is > 1e-9 — the positive-capacity precheck of route_demands on
/// a cached view whose arcs may include drained edges.
bool reachable(const GraphView& view, NodeId source, NodeId target,
               const std::vector<double>& edge_residual);

/// Component label per node (-1 for nodes outside the view); labels dense.
std::vector<int> connected_components(const GraphView& view);

/// Node ids of the largest component in the view.
std::vector<NodeId> giant_component(const GraphView& view);

/// Hop diameter (max eccentricity over the view); -1 if disconnected.
int hop_diameter(const GraphView& view);

/// BFS hop distances from every source over one shared view.
std::vector<std::vector<int>> all_pairs_hops(const GraphView& view);

// --- callback wrappers (historical signatures) -----------------------------

/// Hop distance from `source` to every node (-1 when unreachable).
/// Edges failing `edge_ok` and nodes failing `node_ok` are not traversed;
/// the source itself is always distance 0 (even if `node_ok(source)` fails).
std::vector<int> bfs_hops(const Graph& g, NodeId source,
                          const EdgeFilter& edge_ok = {},
                          const NodeFilter& node_ok = {});

/// True iff `target` is reachable from `source` under the filters.
bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeFilter& edge_ok = {}, const NodeFilter& node_ok = {});

/// Component label per node (-1 for nodes failing node_ok); dense labels.
std::vector<int> connected_components(const Graph& g,
                                      const EdgeFilter& edge_ok = {},
                                      const NodeFilter& node_ok = {});

/// Node ids of the largest component under the filters.
std::vector<NodeId> giant_component(const Graph& g,
                                    const EdgeFilter& edge_ok = {},
                                    const NodeFilter& node_ok = {});

/// Hop diameter (max eccentricity over the graph); -1 if disconnected.
/// O(V * (V + E)) — fine for the paper's topologies.
int hop_diameter(const Graph& g, const EdgeFilter& edge_ok = {});

/// All-pairs hop distance from a single source, convenience for demand
/// generation (pairs at distance >= diameter/2, Section VII-A).
std::vector<std::vector<int>> all_pairs_hops(const Graph& g,
                                             const EdgeFilter& edge_ok = {});

}  // namespace netrec::graph
