#include "graph/traversal.hpp"

#include <algorithm>
#include <deque>

namespace netrec::graph {

std::vector<int> bfs_hops(const Graph& g, NodeId source,
                          const EdgeFilter& edge_ok,
                          const NodeFilter& node_ok) {
  std::vector<int> dist(g.num_nodes(), -1);
  g.check_node(source);
  dist[static_cast<std::size_t>(source)] = 0;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId at = queue.front();
    queue.pop_front();
    for (EdgeId e : g.incident_edges(at)) {
      if (edge_ok && !edge_ok(e)) continue;
      const NodeId next = g.other_endpoint(e, at);
      if (dist[static_cast<std::size_t>(next)] != -1) continue;
      if (node_ok && !node_ok(next)) continue;
      dist[static_cast<std::size_t>(next)] =
          dist[static_cast<std::size_t>(at)] + 1;
      queue.push_back(next);
    }
  }
  return dist;
}

bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeFilter& edge_ok, const NodeFilter& node_ok) {
  if (source == target) return true;
  const auto dist = bfs_hops(g, source, edge_ok, node_ok);
  return dist[static_cast<std::size_t>(target)] != -1;
}

std::vector<int> connected_components(const Graph& g,
                                      const EdgeFilter& edge_ok,
                                      const NodeFilter& node_ok) {
  std::vector<int> label(g.num_nodes(), -1);
  int next_label = 0;
  for (std::size_t start = 0; start < g.num_nodes(); ++start) {
    if (label[start] != -1) continue;
    if (node_ok && !node_ok(static_cast<NodeId>(start))) continue;
    label[start] = next_label;
    std::deque<NodeId> queue{static_cast<NodeId>(start)};
    while (!queue.empty()) {
      const NodeId at = queue.front();
      queue.pop_front();
      for (EdgeId e : g.incident_edges(at)) {
        if (edge_ok && !edge_ok(e)) continue;
        const NodeId to = g.other_endpoint(e, at);
        if (label[static_cast<std::size_t>(to)] != -1) continue;
        if (node_ok && !node_ok(to)) continue;
        label[static_cast<std::size_t>(to)] = next_label;
        queue.push_back(to);
      }
    }
    ++next_label;
  }
  return label;
}

std::vector<NodeId> giant_component(const Graph& g, const EdgeFilter& edge_ok,
                                    const NodeFilter& node_ok) {
  const auto label = connected_components(g, edge_ok, node_ok);
  int max_label = -1;
  for (int l : label) max_label = std::max(max_label, l);
  if (max_label < 0) return {};
  std::vector<std::size_t> size(static_cast<std::size_t>(max_label) + 1, 0);
  for (int l : label) {
    if (l >= 0) ++size[static_cast<std::size_t>(l)];
  }
  const auto best = static_cast<int>(
      std::max_element(size.begin(), size.end()) - size.begin());
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (label[i] == best) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

int hop_diameter(const Graph& g, const EdgeFilter& edge_ok) {
  int diameter = 0;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    const auto dist = bfs_hops(g, static_cast<NodeId>(s), edge_ok);
    for (int d : dist) {
      if (d == -1) return -1;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

std::vector<std::vector<int>> all_pairs_hops(const Graph& g,
                                             const EdgeFilter& edge_ok) {
  std::vector<std::vector<int>> out;
  out.reserve(g.num_nodes());
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    out.push_back(bfs_hops(g, static_cast<NodeId>(s), edge_ok));
  }
  return out;
}

}  // namespace netrec::graph
