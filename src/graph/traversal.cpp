#include "graph/traversal.hpp"

#include <algorithm>
#include <deque>

namespace netrec::graph {

namespace {

GraphView filtered_view(const Graph& g, const EdgeFilter& edge_ok,
                        const NodeFilter& node_ok = {}) {
  ViewConfig config;
  config.edge_ok = edge_ok;
  config.node_ok = node_ok;
  return GraphView::build(g, config);
}

}  // namespace

// --- view-based ------------------------------------------------------------

std::vector<int> bfs_hops(const GraphView& view, NodeId source) {
  view.graph().check_node(source);
  std::vector<int> dist(view.num_nodes(), -1);
  dist[static_cast<std::size_t>(source)] = 0;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId at = queue.front();
    queue.pop_front();
    const int next_dist = dist[static_cast<std::size_t>(at)] + 1;
    const ArcId end = view.arcs_end(at);
    for (ArcId a = view.arcs_begin(at); a < end; ++a) {
      const NodeId next = view.arc_target(a);
      if (dist[static_cast<std::size_t>(next)] != -1) continue;
      dist[static_cast<std::size_t>(next)] = next_dist;
      queue.push_back(next);
    }
  }
  return dist;
}

bool reachable(const GraphView& view, NodeId source, NodeId target) {
  if (source == target) return true;
  const auto dist = bfs_hops(view, source);
  return dist[static_cast<std::size_t>(target)] != -1;
}

bool reachable(const GraphView& view, NodeId source, NodeId target,
               const std::vector<double>& edge_residual) {
  constexpr double kResidualEps = 1e-9;
  view.graph().check_node(source);
  view.graph().check_node(target);
  if (source == target) return true;
  std::vector<char> seen(view.num_nodes(), 0);
  seen[static_cast<std::size_t>(source)] = 1;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId at = queue.front();
    queue.pop_front();
    const ArcId end = view.arcs_end(at);
    for (ArcId a = view.arcs_begin(at); a < end; ++a) {
      const auto e = static_cast<std::size_t>(view.arc_edge(a));
      if (edge_residual[e] <= kResidualEps) continue;
      const NodeId next = view.arc_target(a);
      if (seen[static_cast<std::size_t>(next)]) continue;
      if (next == target) return true;
      seen[static_cast<std::size_t>(next)] = 1;
      queue.push_back(next);
    }
  }
  return false;
}

std::vector<int> connected_components(const GraphView& view) {
  std::vector<int> label(view.num_nodes(), -1);
  int next_label = 0;
  for (std::size_t start = 0; start < view.num_nodes(); ++start) {
    if (label[start] != -1) continue;
    if (!view.node_in_view(static_cast<NodeId>(start))) continue;
    label[start] = next_label;
    std::deque<NodeId> queue{static_cast<NodeId>(start)};
    while (!queue.empty()) {
      const NodeId at = queue.front();
      queue.pop_front();
      const ArcId end = view.arcs_end(at);
      for (ArcId a = view.arcs_begin(at); a < end; ++a) {
        const NodeId to = view.arc_target(a);
        if (label[static_cast<std::size_t>(to)] != -1) continue;
        label[static_cast<std::size_t>(to)] = next_label;
        queue.push_back(to);
      }
    }
    ++next_label;
  }
  return label;
}

std::vector<NodeId> giant_component(const GraphView& view) {
  const auto label = connected_components(view);
  int max_label = -1;
  for (int l : label) max_label = std::max(max_label, l);
  if (max_label < 0) return {};
  std::vector<std::size_t> size(static_cast<std::size_t>(max_label) + 1, 0);
  for (int l : label) {
    if (l >= 0) ++size[static_cast<std::size_t>(l)];
  }
  const auto best = static_cast<int>(
      std::max_element(size.begin(), size.end()) - size.begin());
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (label[i] == best) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

int hop_diameter(const GraphView& view) {
  int diameter = 0;
  for (std::size_t s = 0; s < view.num_nodes(); ++s) {
    const auto dist = bfs_hops(view, static_cast<NodeId>(s));
    for (int d : dist) {
      if (d == -1) return -1;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

std::vector<std::vector<int>> all_pairs_hops(const GraphView& view) {
  std::vector<std::vector<int>> out;
  out.reserve(view.num_nodes());
  for (std::size_t s = 0; s < view.num_nodes(); ++s) {
    out.push_back(bfs_hops(view, static_cast<NodeId>(s)));
  }
  return out;
}

// --- callback wrappers -----------------------------------------------------

std::vector<int> bfs_hops(const Graph& g, NodeId source,
                          const EdgeFilter& edge_ok,
                          const NodeFilter& node_ok) {
  g.check_node(source);
  return bfs_hops(filtered_view(g, edge_ok, node_ok), source);
}

bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeFilter& edge_ok, const NodeFilter& node_ok) {
  if (source == target) return true;
  const auto dist = bfs_hops(g, source, edge_ok, node_ok);
  return dist[static_cast<std::size_t>(target)] != -1;
}

std::vector<int> connected_components(const Graph& g,
                                      const EdgeFilter& edge_ok,
                                      const NodeFilter& node_ok) {
  return connected_components(filtered_view(g, edge_ok, node_ok));
}

std::vector<NodeId> giant_component(const Graph& g, const EdgeFilter& edge_ok,
                                    const NodeFilter& node_ok) {
  return giant_component(filtered_view(g, edge_ok, node_ok));
}

int hop_diameter(const Graph& g, const EdgeFilter& edge_ok) {
  return hop_diameter(filtered_view(g, edge_ok));
}

std::vector<std::vector<int>> all_pairs_hops(const Graph& g,
                                             const EdgeFilter& edge_ok) {
  return all_pairs_hops(filtered_view(g, edge_ok));
}

}  // namespace netrec::graph
