// Immutable CSR snapshot of a Graph under a filter/weight configuration.
//
// Every traversal in the reproduction (Dijkstra, widest path, Brandes
// betweenness, Dinic max flow, the MCF pricing loop) historically paid a
// std::function call per edge for EdgeFilter / NodeFilter / EdgeWeight,
// re-evaluating usability and lengths that are constant for the duration of
// an algorithm round.  GraphView::build flattens the configured subgraph
// once, in O(V + E), into four parallel arrays (CSR offsets / arc targets /
// arc edge ids / arc weights) plus node and edge usability bitsets; the
// view-based algorithm overloads in graph/dijkstra.hpp, graph/traversal.hpp,
// graph/betweenness.hpp, graph/maxflow.hpp and graph/simple_paths.hpp then
// run on flat memory with zero per-edge indirection.
//
// Arc semantics match the callback algorithms exactly: the directed arc
// u -> v of edge e is present iff edge_ok(e) passes and node_ok(v) passes.
// Only the *head* endpoint is node-filtered — precisely the check the
// legacy traversals apply — so a node excluded by the filter can still act
// as a traversal source (its outgoing arcs exist) but is never reached
// (arcs into it are dropped).  edge_in_view() additionally requires both
// endpoints, which is the per-edge test the flow/LP layers use.  Arcs of a
// node appear in the graph's adjacency (insertion) order, so view-based
// algorithms settle ties in the same order as the callback path and produce
// bit-identical distances, parents, scores and flows.
//
// Immutability / invalidation contract:
//   * A GraphView is immutable through its public interface; all accessors
//     are const and safe to share across threads without synchronisation.
//     The one mutation path is graph::ViewCache (a friend), which may patch
//     per-edge lengths/capacities in place between algorithm rounds — see
//     view_cache.hpp for the refresh-vs-rebuild rules.
//   * The view borrows the Graph (no copy).  Any mutation of the graph —
//     add_node/add_edge, flipping broken flags, editing capacities — leaves
//     the view dangling or semantically stale; rebuild it (or route the
//     mutation through a ViewCache, which rebuilds or refreshes for you).
//     Bare views are cheap (one O(V+E) pass) and meant to be materialised
//     once per algorithm round.
//   * Filter and weight callbacks are evaluated exactly once per element at
//     build time and never retained by the view itself, so temporaries may
//     be passed freely (a ViewCache *does* retain its configs; see there).
//     Weights are evaluated only for edges passing edge_ok, matching the
//     callback algorithms' promise to consult weights on usable edges only.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace netrec::graph {

/// Arc index into a GraphView's CSR arrays.
using ArcId = std::uint32_t;

/// Sentinel arc id ("edge contributes no arc in this direction").
inline constexpr ArcId kInvalidArc = static_cast<ArcId>(-1);

/// Build-time configuration: which elements are in the view and what the
/// per-edge length / capacity metrics are.  Empty callbacks mean "accept
/// everything" / "length 1" / "static graph capacity".
struct ViewConfig {
  EdgeFilter edge_ok;
  NodeFilter node_ok;
  EdgeWeight length;
  EdgeWeight capacity;
};

class GraphView {
 public:
  /// Flattens `g` under `config` in one O(V + E) pass.
  static GraphView build(const Graph& g, const ViewConfig& config = {});

  /// View of the working subgraph G(n): broken elements excluded, unit
  /// lengths, static capacities.
  static GraphView working(const Graph& g);

  const Graph& graph() const { return *g_; }
  std::size_t num_nodes() const { return offsets_.size() - 1; }
  /// Edge-id space of the underlying graph (filtered edges included).
  std::size_t num_edges() const { return edge_in_view_.size(); }
  std::size_t num_arcs() const { return arcs_.size(); }

  // --- CSR arc traversal --------------------------------------------------
  ArcId arcs_begin(NodeId u) const {
    return offsets_[static_cast<std::size_t>(u)];
  }
  ArcId arcs_end(NodeId u) const {
    return offsets_[static_cast<std::size_t>(u) + 1];
  }
  /// Arcs are stored as one interleaved 16-byte record (head, edge id,
  /// length) so a traversal touches a single cache line per arc; capacities
  /// (used only by the flow algorithms) live in a parallel array.
  NodeId arc_target(ArcId a) const { return arcs_[a].to; }
  EdgeId arc_edge(ArcId a) const { return arcs_[a].edge; }
  double arc_length(ArcId a) const { return arcs_[a].length; }
  double arc_capacity(ArcId a) const { return arc_capacities_[a]; }

  // --- per-element lookups ------------------------------------------------
  /// Node passes the node filter (excluded nodes keep their outgoing arcs
  /// but have none incoming; see header comment).
  bool node_in_view(NodeId n) const {
    return node_in_view_[static_cast<std::size_t>(n)] != 0;
  }
  /// Edge passes the edge filter and both endpoints pass the node filter.
  bool edge_in_view(EdgeId e) const {
    return edge_in_view_[static_cast<std::size_t>(e)] != 0;
  }
  /// Raw edge-filter verdict alone (endpoint node filters not applied) —
  /// exactly the predicate that decided the edge's arcs.  ViewCache compares
  /// this against the live filter to tell weight refreshes from membership
  /// flips.
  bool edge_passes_filter(EdgeId e) const {
    return edge_pass_[static_cast<std::size_t>(e)] != 0;
  }
  double edge_length(EdgeId e) const {
    return edge_lengths_[static_cast<std::size_t>(e)];
  }
  double edge_capacity(EdgeId e) const {
    return edge_capacities_[static_cast<std::size_t>(e)];
  }
  /// Per-edge metric arrays indexed by original edge id (0 for edges
  /// failing the edge filter, whose weights were never evaluated).
  const std::vector<double>& edge_lengths() const { return edge_lengths_; }
  const std::vector<double>& edge_capacities() const {
    return edge_capacities_;
  }

 private:
  friend class ViewCache;

  GraphView() = default;

  /// In-place metric patch for one edge (ViewCache refresh path): rewrites
  /// the flat per-edge length/capacity entries and the (up to two) arc
  /// records carrying the edge.  Must only be called for edges whose filter
  /// verdict is unchanged — a membership flip needs a rebuild.
  void refresh_edge_metrics(EdgeId e, double length, double capacity);

  struct ArcRec {
    NodeId to;
    EdgeId edge;
    double length;
  };

  const Graph* g_ = nullptr;
  std::vector<ArcId> offsets_;       ///< size V+1
  std::vector<ArcRec> arcs_;         ///< interleaved per-arc record
  std::vector<double> arc_capacities_;  ///< edge capacity per arc
  std::vector<char> node_in_view_;   ///< node filter verdicts
  std::vector<char> edge_in_view_;   ///< edge usable with both endpoints
  std::vector<char> edge_pass_;      ///< raw edge filter verdicts
  std::vector<double> edge_lengths_;    ///< per original edge id
  std::vector<double> edge_capacities_;  ///< per original edge id
  /// Arc ids of each edge's (up to two) directed arcs, kInvalidArc when the
  /// direction was dropped by the head-endpoint node filter.  Lets the
  /// ViewCache refresh path patch arcs without scanning the CSR.
  std::vector<std::array<ArcId, 2>> edge_arcs_;
};

}  // namespace netrec::graph
