#include "graph/ntb.hpp"

#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NETREC_NTB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define NETREC_NTB_HAVE_MMAP 0
#endif

namespace netrec::graph {

namespace {

// Byte-level layout (docs/ntb_format.md):
//   header   : magic "NTB1" | u32 version | u32 endian tag 0x01020304 |
//              u32 section count | u64 nodes | u64 edges   (32 bytes)
//   table    : per section { u32 kind | u32 reserved | u64 offset | u64 size }
//   sections : raw little-endian column data, 8-byte aligned.
constexpr char kMagic[4] = {'N', 'T', 'B', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderSize = 32;
constexpr std::size_t kTableEntrySize = 24;

enum SectionKind : std::uint32_t {
  kSecNodeCoords = 1,      // f64 x,y interleaved, 16 * V bytes
  kSecNodeRepairCost = 2,  // f64, 8 * V
  kSecNodeBroken = 3,      // u8, V (optional; absent = none broken)
  kSecNodeNames = 4,       // u32 offsets (V + 1) then blob (optional)
  kSecEdgeEndpoints = 5,   // i32 u,v interleaved, 8 * E
  kSecEdgeCapacity = 6,    // f64, 8 * E
  kSecEdgeRepairCost = 7,  // f64, 8 * E
  kSecEdgeBroken = 8,      // u8, E (optional; absent = none broken)
};

struct Section {
  std::uint32_t kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void pad_to_8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("NTB: " + what);
}

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

template <typename T>
std::vector<T> copy_column(const unsigned char* base, const Section& s,
                           std::size_t count) {
  std::vector<T> out(count);
  if (count != 0) std::memcpy(out.data(), base + s.offset, count * sizeof(T));
  return out;
}

}  // namespace

std::string to_ntb(const Graph& g) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();

  struct Pending {
    std::uint32_t kind;
    std::string data;
  };
  std::vector<Pending> sections;

  {  // node coordinates, interleaved
    std::string data;
    data.resize(16 * n);
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(data.data() + 16 * i, &g.node_xs()[i], 8);
      std::memcpy(data.data() + 16 * i + 8, &g.node_ys()[i], 8);
    }
    sections.push_back({kSecNodeCoords, std::move(data)});
  }
  {
    std::string data(reinterpret_cast<const char*>(g.node_repair_costs().data()),
                     8 * n);
    sections.push_back({kSecNodeRepairCost, std::move(data)});
  }
  if (g.num_broken_nodes() != 0) {
    std::string data(reinterpret_cast<const char*>(g.node_broken_flags().data()),
                     n);
    sections.push_back({kSecNodeBroken, std::move(data)});
  }
  if (!g.name_offsets().empty()) {
    std::string data;
    data.reserve(4 * (n + 1) + g.name_blob().size());
    for (std::uint32_t off : g.name_offsets()) append_u32(data, off);
    data.append(g.name_blob());
    sections.push_back({kSecNodeNames, std::move(data)});
  }
  {  // edge endpoints, interleaved
    std::string data;
    data.resize(8 * m);
    for (std::size_t e = 0; e < m; ++e) {
      std::memcpy(data.data() + 8 * e, &g.edge_sources()[e], 4);
      std::memcpy(data.data() + 8 * e + 4, &g.edge_targets()[e], 4);
    }
    sections.push_back({kSecEdgeEndpoints, std::move(data)});
  }
  {
    std::string data(reinterpret_cast<const char*>(g.edge_capacities().data()),
                     8 * m);
    sections.push_back({kSecEdgeCapacity, std::move(data)});
  }
  {
    std::string data(
        reinterpret_cast<const char*>(g.edge_repair_costs().data()), 8 * m);
    sections.push_back({kSecEdgeRepairCost, std::move(data)});
  }
  if (g.num_broken_edges() != 0) {
    std::string data(reinterpret_cast<const char*>(g.edge_broken_flags().data()),
                     m);
    sections.push_back({kSecEdgeBroken, std::move(data)});
  }

  std::string out;
  out.append(kMagic, 4);
  append_u32(out, kNtbVersion);
  append_u32(out, kEndianTag);
  append_u32(out, static_cast<std::uint32_t>(sections.size()));
  append_u64(out, n);
  append_u64(out, m);

  // Section table with offsets computed section by section (8-aligned).
  std::size_t cursor = kHeaderSize + kTableEntrySize * sections.size();
  cursor = (cursor + 7) / 8 * 8;
  for (const Pending& s : sections) {
    append_u32(out, s.kind);
    append_u32(out, 0);  // reserved
    append_u64(out, cursor);
    append_u64(out, s.data.size());
    cursor += (s.data.size() + 7) / 8 * 8;
  }
  pad_to_8(out);
  for (const Pending& s : sections) {
    out.append(s.data);
    pad_to_8(out);
  }
  return out;
}

Graph parse_ntb(const void* data, std::size_t size) {
  const auto* base = static_cast<const unsigned char*>(data);
  if (size < kHeaderSize) fail("truncated header");
  if (std::memcmp(base, kMagic, 4) != 0) fail("bad magic (not an NTB file)");
  const std::uint32_t version = read_u32(base + 4);
  if (version != kNtbVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  if (read_u32(base + 8) != kEndianTag) {
    fail("endianness mismatch (file written on a big-endian host?)");
  }
  const std::uint32_t section_count = read_u32(base + 12);
  const std::uint64_t n64 = read_u64(base + 16);
  const std::uint64_t m64 = read_u64(base + 24);
  if (n64 > kMaxGraphElements || m64 > kMaxGraphElements) {
    fail("node/edge count exceeds 2^31 (32-bit ids)");
  }
  const auto n = static_cast<std::size_t>(n64);
  const auto m = static_cast<std::size_t>(m64);

  if (section_count > 64) fail("implausible section count");
  const std::size_t table_end =
      kHeaderSize + kTableEntrySize * static_cast<std::size_t>(section_count);
  if (table_end > size) fail("truncated section table");

  Section by_kind[16] = {};
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* entry = base + kHeaderSize + kTableEntrySize * i;
    Section s;
    s.kind = read_u32(entry);
    s.offset = read_u64(entry + 8);
    s.size = read_u64(entry + 16);
    if (s.offset > size || s.size > size - s.offset) {
      fail("section " + std::to_string(s.kind) + " exceeds file bounds");
    }
    if (s.kind == 0 || s.kind >= 16) continue;  // unknown: skip (forward compat)
    if (by_kind[s.kind].kind != 0) {
      fail("duplicate section " + std::to_string(s.kind));
    }
    by_kind[s.kind] = s;
  }

  auto require = [&](SectionKind kind, std::uint64_t expected_size,
                     const char* what) -> const Section& {
    const Section& s = by_kind[kind];
    if (s.kind == 0) fail(std::string("missing section: ") + what);
    if (s.size != expected_size) {
      fail(std::string("section size mismatch for ") + what + " (have " +
           std::to_string(s.size) + ", want " +
           std::to_string(expected_size) + ")");
    }
    return s;
  };

  const Section& coords = require(kSecNodeCoords, 16ull * n, "node coords");
  const Section& ncost =
      require(kSecNodeRepairCost, 8ull * n, "node repair costs");
  const Section& ends = require(kSecEdgeEndpoints, 8ull * m, "edge endpoints");
  const Section& ecap = require(kSecEdgeCapacity, 8ull * m, "edge capacities");
  const Section& ecost =
      require(kSecEdgeRepairCost, 8ull * m, "edge repair costs");

  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(&xs[i], base + coords.offset + 16 * i, 8);
    std::memcpy(&ys[i], base + coords.offset + 16 * i + 8, 8);
  }
  std::vector<double> node_costs = copy_column<double>(base, ncost, n);

  std::vector<std::uint8_t> node_broken;
  if (by_kind[kSecNodeBroken].kind != 0) {
    const Section& s = require(kSecNodeBroken, n, "node broken flags");
    node_broken = copy_column<std::uint8_t>(base, s, n);
  }

  std::string name_blob;
  std::vector<std::uint32_t> name_off;
  if (by_kind[kSecNodeNames].kind != 0) {
    const Section& s = by_kind[kSecNodeNames];
    const std::uint64_t offsets_bytes = 4ull * (n + 1);
    if (s.size < offsets_bytes) fail("truncated node name offsets");
    name_off = copy_column<std::uint32_t>(
        base, Section{s.kind, s.offset, offsets_bytes}, n + 1);
    const std::uint64_t blob_size = s.size - offsets_bytes;
    name_blob.assign(
        reinterpret_cast<const char*>(base + s.offset + offsets_bytes),
        static_cast<std::size_t>(blob_size));
    if (name_off.back() != name_blob.size()) {
      fail("name offsets disagree with name blob size");
    }
  }

  std::vector<NodeId> eu(m), ev(m);
  for (std::size_t e = 0; e < m; ++e) {
    std::memcpy(&eu[e], base + ends.offset + 8 * e, 4);
    std::memcpy(&ev[e], base + ends.offset + 8 * e + 4, 4);
  }
  std::vector<double> caps = copy_column<double>(base, ecap, m);
  std::vector<double> edge_costs = copy_column<double>(base, ecost, m);
  std::vector<std::uint8_t> edge_broken;
  if (by_kind[kSecEdgeBroken].kind != 0) {
    const Section& s = require(kSecEdgeBroken, m, "edge broken flags");
    edge_broken = copy_column<std::uint8_t>(base, s, m);
  }

  Builder builder;
  builder.adopt_nodes(std::move(xs), std::move(ys), std::move(node_costs),
                      std::move(node_broken), std::move(name_blob),
                      std::move(name_off));
  builder.adopt_edges(std::move(eu), std::move(ev), std::move(caps),
                      std::move(edge_costs), std::move(edge_broken));
  try {
    return builder.finalize();
  } catch (const std::exception& e) {
    fail(std::string("invalid topology: ") + e.what());
  }
}

void save_ntb_file(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot write '" + path + "'");
  const std::string image = to_ntb(g);
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  if (!out) fail("short write to '" + path + "'");
}

Graph load_ntb_file(const std::string& path) {
#if NETREC_NTB_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      const auto size = static_cast<std::size_t>(st.st_size);
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        try {
          Graph g = parse_ntb(map, size);
          ::munmap(map, size);
          ::close(fd);
          return g;
        } catch (...) {
          ::munmap(map, size);
          ::close(fd);
          throw;
        }
      }
    }
    ::close(fd);
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  return parse_ntb(buffer.data(), buffer.size());
}

}  // namespace netrec::graph
