#include "graph/view.hpp"

namespace netrec::graph {

GraphView GraphView::build(const Graph& g, const ViewConfig& config) {
  GraphView view;
  view.g_ = &g;
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();

  view.node_in_view_.assign(n, 1);
  if (config.node_ok) {
    for (std::size_t i = 0; i < n; ++i) {
      view.node_in_view_[i] = config.node_ok(static_cast<NodeId>(i)) ? 1 : 0;
    }
  }

  // Edge verdicts and weights, one callback evaluation per edge.  Weights
  // are consulted for edges passing the edge filter only (the callback
  // algorithms' contract); filtered edges keep 0.
  view.edge_pass_.assign(m, 1);
  view.edge_in_view_.assign(m, 0);
  view.edge_lengths_.assign(m, 0.0);
  view.edge_capacities_.assign(m, 0.0);
  for (std::size_t e = 0; e < m; ++e) {
    const auto id = static_cast<EdgeId>(e);
    if (config.edge_ok && !config.edge_ok(id)) {
      view.edge_pass_[e] = 0;
      continue;
    }
    const auto [eu, ev] = g.edge_endpoints(id);
    view.edge_in_view_[e] =
        view.node_in_view_[static_cast<std::size_t>(eu)] &&
                view.node_in_view_[static_cast<std::size_t>(ev)]
            ? 1
            : 0;
    view.edge_lengths_[e] = config.length ? config.length(id) : 1.0;
    view.edge_capacities_[e] =
        config.capacity ? config.capacity(id) : g.edge_capacity(id);
  }

  // CSR over directed arcs: u -> v present iff the edge passes and the
  // *head* endpoint passes (legacy traversal semantics; see header).
  view.offsets_.assign(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    if (!view.edge_pass_[e]) continue;
    const auto [eu, ev] = g.edge_endpoints(static_cast<EdgeId>(e));
    if (view.node_in_view_[static_cast<std::size_t>(ev)]) {
      ++view.offsets_[static_cast<std::size_t>(eu) + 1];
    }
    if (view.node_in_view_[static_cast<std::size_t>(eu)]) {
      ++view.offsets_[static_cast<std::size_t>(ev) + 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) view.offsets_[i + 1] += view.offsets_[i];

  const std::size_t arcs = view.offsets_[n];
  view.arcs_.resize(arcs);
  view.arc_capacities_.resize(arcs);
  view.edge_arcs_.assign(m, {kInvalidArc, kInvalidArc});
  // Fill per node in adjacency (insertion) order so arc order — and with it
  // every floating-point tie-break downstream — matches the callback path.
  std::vector<ArcId> cursor(view.offsets_.begin(), view.offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto u = static_cast<NodeId>(i);
    for (EdgeId e : g.incident_edges(u)) {
      if (!view.edge_pass_[static_cast<std::size_t>(e)]) continue;
      const NodeId head = g.other_endpoint(e, u);
      if (!view.node_in_view_[static_cast<std::size_t>(head)]) continue;
      const ArcId a = cursor[i]++;
      view.arcs_[a] = {head, e,
                       view.edge_lengths_[static_cast<std::size_t>(e)]};
      view.arc_capacities_[a] =
          view.edge_capacities_[static_cast<std::size_t>(e)];
      auto& slots = view.edge_arcs_[static_cast<std::size_t>(e)];
      slots[slots[0] == kInvalidArc ? 0 : 1] = a;
    }
  }
  return view;
}

void GraphView::refresh_edge_metrics(EdgeId e, double length,
                                     double capacity) {
  edge_lengths_[static_cast<std::size_t>(e)] = length;
  edge_capacities_[static_cast<std::size_t>(e)] = capacity;
  for (ArcId a : edge_arcs_[static_cast<std::size_t>(e)]) {
    if (a == kInvalidArc) continue;
    arcs_[a].length = length;
    arc_capacities_[a] = capacity;
  }
}

GraphView GraphView::working(const Graph& g) {
  ViewConfig config;
  config.edge_ok = working_edge_filter(g);
  return build(g, config);
}

}  // namespace netrec::graph
