// Path representation shared by routing, centrality and the heuristics.
//
// A path is an ordered edge list plus its start node; node order is derived.
// Capacity(p) = min edge capacity (paper Section IV-B); length is computed
// against a caller-supplied metric because ISP's metric is dynamic (IV-D).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace netrec::graph {

struct Path {
  NodeId start = kInvalidNode;
  std::vector<EdgeId> edges;

  bool empty() const { return edges.empty(); }
  std::size_t hop_count() const { return edges.size(); }

  /// End node; equals start for an empty path.
  NodeId end(const Graph& g) const;

  /// Ordered node sequence start..end (hop_count()+1 entries).
  std::vector<NodeId> nodes(const Graph& g) const;

  /// Bottleneck capacity with a caller-supplied capacity view (residual
  /// capacities differ from the static ones during ISP).  Empty path -> +inf.
  double capacity(const EdgeWeight& edge_capacity) const;

  /// Sum of metric over edges.
  double length(const EdgeWeight& edge_length) const;

  /// True if no node repeats (the paper considers acyclic paths only).
  bool is_simple(const Graph& g) const;

  /// True if the path actually connects `from` to `to` in g.
  bool connects(const Graph& g, NodeId from, NodeId to) const;

  /// Human-readable "a - b - c" node chain for logs and examples.
  std::string to_string(const Graph& g) const;
};

}  // namespace netrec::graph
