// Two-phase graph construction: Builder accumulates flat SoA columns with
// O(1) appends (no adjacency maintenance, no per-edge duplicate scan), then
// finalize() validates the whole batch at once — duplicate edges, id range,
// 32-bit overflow — and emits a finalized Graph whose incidence is already
// CSR-packed and neighbour-sorted.
//
// This is the construction path for internet-scale instances: Graph::add_edge
// pays an O(d) duplicate probe per insert (quadratic on hubs of a 10^6-node
// RMAT/Barabási–Albert draw), while Builder defers uniqueness to one
// O(E log E) sort at finalize.  The binary topology loader (ntb.hpp) and the
// scale generators (topology/generator.hpp) build exclusively through here.
//
// Options::degree_order relabels node ids by descending finalized degree
// (ties by original id) before packing — the GAPBS-style layout that puts
// hub adjacency slices at the front of the arc array for locality.  Edge ids
// keep their insertion order either way; node_permutation() exposes the
// old-id -> new-id map so callers can translate externally-held ids.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace netrec::graph {

class Builder {
 public:
  struct Options {
    /// Relabel node ids by descending degree (ties by original id) at
    /// finalize.  Off by default: id stability is part of every golden.
    bool degree_order = false;
  };

  Builder() = default;
  explicit Builder(Options options) : options_(options) {}

  void reserve(std::size_t nodes, std::size_t edges);

  /// Appends one node; returns its id (dense, 0-based, pre-relabel).
  NodeId add_node(std::string_view name = {}, double x = 0.0, double y = 0.0,
                  double repair_cost = 1.0);

  /// Appends `count` unnamed nodes at the origin; returns the first id.
  /// The bulk path for generators where names would be pure overhead.
  NodeId add_nodes(std::size_t count, double repair_cost = 1.0);

  /// Appends an edge.  Endpoints must already exist; self-loops throw here,
  /// duplicates are detected at finalize() (batch sort) rather than per call.
  EdgeId add_edge(NodeId u, NodeId v, double capacity,
                  double repair_cost = 1.0);

  // --- bulk adoption (binary loader / conversion pipelines) --------------

  /// Moves whole node columns in; any prior content is replaced.  `broken`,
  /// `name_blob`/`name_offsets` may be empty (none broken / unnamed).
  void adopt_nodes(std::vector<double> xs, std::vector<double> ys,
                   std::vector<double> repair_costs,
                   std::vector<std::uint8_t> broken, std::string name_blob,
                   std::vector<std::uint32_t> name_offsets);

  /// Moves whole edge columns in; any prior content is replaced.
  void adopt_edges(std::vector<NodeId> sources, std::vector<NodeId> targets,
                   std::vector<double> capacities,
                   std::vector<double> repair_costs,
                   std::vector<std::uint8_t> broken);

  std::size_t num_nodes() const { return g_.num_nodes(); }
  std::size_t num_edges() const { return g_.num_edges(); }

  /// Validates the batch (column sizes, endpoint ranges, finite nonnegative
  /// metrics, duplicate edges, 2^31 id ceiling) and returns the finalized
  /// graph.  Throws std::invalid_argument/std::length_error with the first
  /// offending element named; the Builder is left empty either way.
  Graph finalize();

  /// Old-id -> new-id node map of the last finalize() (identity when
  /// degree_order is off).
  const std::vector<NodeId>& node_permutation() const { return permutation_; }

 private:
  void validate_columns() const;
  void check_duplicates() const;
  void apply_degree_order();

  Options options_;
  Graph g_;  // used as an SoA column store; adjacency built at finalize only
  std::vector<NodeId> permutation_;
};

}  // namespace netrec::graph
