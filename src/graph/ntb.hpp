// NTB — netrec topology binary, the versioned on-disk graph format.
//
// GML is the interchange format (Topology Zoo, CAIDA exports) but parsing it
// is a per-character lex of the whole file: minutes for a 10^6-node
// instance.  NTB stores the Graph's SoA columns verbatim — little-endian,
// 8-byte-aligned sections described by a section table — so loading is an
// mmap plus one bulk copy per column and one CSR pack, milliseconds to
// ~a second at internet scale.  See docs/ntb_format.md for the byte-level
// spec (magic, version, endianness tag, section kinds).
//
// Contract:
//   * save_ntb/to_ntb serialise topology, coordinates, capacities, repair
//     costs, broken flags and interned names — everything to_gml carries —
//     so GML -> NTB -> Graph round-trips bit-identically.
//   * load_ntb returns a *finalized* graph (built through graph::Builder,
//     full batch validation: section bounds, endpoint ranges, finite
//     metrics, duplicate edges, 2^31 id ceiling).  Truncated or corrupt
//     input throws std::runtime_error naming the first offence.
//   * The format is strictly little-endian; a file written on a big-endian
//     host carries a mismatched endianness tag and is rejected rather than
//     misread.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace netrec::graph {

/// Current format version written by save_ntb.
inline constexpr std::uint32_t kNtbVersion = 1;

/// Serialises `g` into an in-memory NTB image.
std::string to_ntb(const Graph& g);

/// Parses an NTB image; throws std::runtime_error on malformed input.
/// The returned graph is finalized.
Graph parse_ntb(const void* data, std::size_t size);

/// Writes to_ntb(g) to `path`; throws std::runtime_error on I/O failure.
void save_ntb_file(const Graph& g, const std::string& path);

/// Loads `path` (mmap when available, buffered read otherwise) and parses.
Graph load_ntb_file(const std::string& path);

}  // namespace netrec::graph
