// Mutation-aware GraphView reuse: an epoch-based cache of named view
// configurations over one Graph.
//
// PR 2's GraphView made every traversal kernel run on flat CSR memory, but a
// consumer that *mutates* shared state mid-algorithm (ISP's residual_ /
// RepairState bookkeeping, the repair scheduler's emit loop) still had to
// rebuild an O(V + E) snapshot per call through the view-materialising
// wrappers.  ViewCache closes that gap: the consumer registers each view
// configuration once, publishes its mutations through three explicit hooks,
// and every view() call returns an up-to-date snapshot that was either
// served unchanged (hit), patched edge-by-edge (refresh) or — only when a
// filter verdict actually flipped — rebuilt from scratch.
//
// Invalidation contract (what mutations invalidate what):
//   * invalidate_edge(e) — a property of edge e changed (residual capacity
//     consumed, its broken flag repaired, a dynamic-metric input touched).
//     The edge is queued dirty in every slot; on the slot's next view() the
//     live edge filter is re-evaluated for e:
//       - verdict unchanged  -> REFRESH: the length/capacity callbacks are
//         re-evaluated for e and patched into the flat per-edge arrays and
//         the (≤ 2) arc records in place — O(dirty) total, no allocation.
//       - verdict flipped    -> REBUILD: e's arcs must appear or vanish, so
//         the CSR layout is stale; one O(V + E) build.
//     Residual-weight-only changes therefore stay refreshes for every slot
//     whose filter ignores residuals, which is why ISP keeps the residual
//     test *out* of its cached filters and in the algorithms' per-arc
//     residual skip instead.
//   * invalidate_node(n) — a property of node n changed (typically its
//     broken flag repaired).  Equivalent to invalidate_edge on every edge
//     incident to n (their filter verdicts and weights may all depend on
//     n).  Slots with a node filter rebuild conservatively: node verdicts
//     shape the CSR itself.
//   * bump_epoch() — anything may have changed (topology edits, wholesale
//     state swaps); every slot rebuilds on next use.
//
// Epochs: every published mutation advances epoch(); each slot records the
// epoch it last synced to.  Consumers that hold derived data (not the view
// itself) can compare epochs to decide staleness.
//
// Lifetime rules:
//   * Unlike GraphView::build, the cache RETAINS the ViewConfig callbacks
//     and re-evaluates them on every refresh/rebuild.  They must stay valid
//     for the cache's lifetime and read the *live* mutable state (that is
//     the point).
//   * view() returns a reference that stays address-stable for the cache's
//     lifetime, but its contents sync on each view() call; take a by-value
//     GraphView copy if a frozen snapshot is needed across mutations.
//   * Not thread-safe: one cache belongs to one solver loop.  The returned
//     views are safe to read concurrently between mutations, like any
//     GraphView.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/view.hpp"

namespace netrec::graph {

/// Receiver side of the ViewCache's mutation fan-out: consumers that hold
/// *derived* state keyed on graph elements (not a view itself — e.g. the
/// path-LP column pools in mcf::PathLpSession) register with add_listener
/// and get every published mutation forwarded verbatim, so one publisher
/// call (RepairState::publish_to, ISP's consume_residual) keeps cached
/// views and derived pools coherent alike.  Callbacks fire synchronously
/// inside the invalidate_*/bump_epoch call, before it returns; they must
/// not mutate the cache re-entrantly.
class MutationListener {
 public:
  virtual ~MutationListener() = default;
  /// A property of edge `e` changed (residual drained, broken flag
  /// repaired, a metric input touched).
  virtual void on_edge_invalidated(EdgeId e) = 0;
  /// A property of node `n` changed (typically repaired); implies every
  /// incident edge may have changed.
  virtual void on_node_invalidated(NodeId n) = 0;
  /// Anything may have changed; drop all derived state.
  virtual void on_epoch_bumped() = 0;
};

class ViewCache {
 public:
  /// Handle to a registered configuration (dense, starts at 0).
  using SlotId = std::size_t;

  explicit ViewCache(const Graph& g);

  /// Registers a named configuration; the callbacks are retained (see
  /// header).  Building is lazy — a slot that is never viewed never pays.
  SlotId add_config(std::string name, ViewConfig config);

  /// The up-to-date view of a slot: synchronises (hit / refresh / rebuild)
  /// and returns an address-stable reference.
  const GraphView& view(SlotId slot);

  /// Name-based lookup (linear in the slot count; prefer SlotId in loops).
  /// Throws std::invalid_argument for unknown names.
  const GraphView& view(std::string_view name);

  // --- mutation hooks ------------------------------------------------------

  void invalidate_edge(EdgeId e);
  void invalidate_node(NodeId n);
  void bump_epoch();

  /// Registers a mutation listener (borrowed, not owned; must outlive the
  /// cache or be removed first).  Listeners are notified after the cache's
  /// own slots are marked, in registration order.
  void add_listener(MutationListener* listener);
  /// Removes a previously registered listener; unknown pointers are a no-op.
  void remove_listener(MutationListener* listener);

  /// Monotone counter of published mutations.
  std::uint64_t epoch() const { return epoch_; }

  std::size_t num_slots() const { return slots_.size(); }
  const std::string& slot_name(SlotId slot) const {
    return slots_[slot]->name;
  }

  /// Cache effectiveness counters (cumulative).
  struct Stats {
    std::size_t builds = 0;     ///< full O(V+E) view (re)builds
    std::size_t refreshes = 0;  ///< edges patched in place
    std::size_t hits = 0;       ///< view() calls served with no work
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    std::string name;
    ViewConfig config;
    GraphView view;          ///< empty until first sync
    bool built = false;
    bool rebuild = false;    ///< a filter verdict (possibly) flipped
    std::vector<EdgeId> dirty;      ///< queued edges, deduplicated
    std::vector<char> dirty_mark;   ///< membership bitmap for `dirty`
    std::uint64_t synced_epoch = 0;
  };

  void mark_edge(Slot& slot, EdgeId e);
  void sync(Slot& slot);

  const Graph* g_;
  /// unique_ptr for address stability of the contained GraphViews.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<MutationListener*> listeners_;  ///< borrowed, fan-out targets
  std::uint64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace netrec::graph
