#include "graph/simple_paths.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "graph/dijkstra.hpp"

namespace netrec::graph {

namespace {

constexpr double kEps = 1e-9;

void dfs_paths(const GraphView& view, NodeId at, NodeId t,
               const SimplePathLimits& limits, std::vector<char>& on_path,
               Path& current, std::vector<Path>& out) {
  if (out.size() >= limits.max_paths) return;
  if (at == t) {
    out.push_back(current);
    return;
  }
  if (current.edges.size() >= limits.max_hops) return;
  const ArcId end = view.arcs_end(at);
  for (ArcId a = view.arcs_begin(at); a < end; ++a) {
    const NodeId next = view.arc_target(a);
    if (on_path[static_cast<std::size_t>(next)]) continue;
    on_path[static_cast<std::size_t>(next)] = 1;
    current.edges.push_back(view.arc_edge(a));
    dfs_paths(view, next, t, limits, on_path, current, out);
    current.edges.pop_back();
    on_path[static_cast<std::size_t>(next)] = 0;
    if (out.size() >= limits.max_paths) return;
  }
}

}  // namespace

// --- view-based ------------------------------------------------------------

std::vector<Path> all_simple_paths(const GraphView& view, NodeId s, NodeId t,
                                   const SimplePathLimits& limits) {
  const Graph& g = view.graph();
  g.check_node(s);
  g.check_node(t);
  std::vector<Path> out;
  if (s == t) return out;
  std::vector<char> on_path(view.num_nodes(), 0);
  on_path[static_cast<std::size_t>(s)] = 1;
  Path current;
  current.start = s;
  dfs_paths(view, s, t, limits, on_path, current, out);
  return out;
}

namespace {

/// Shared SSP loop; `stop_at_target` switches the per-path Dijkstra to the
/// target-settled variant (identical selected paths, see dijkstra.hpp) and
/// a non-null `first_tree` replaces the first round's Dijkstra outright.
SuccessivePathsResult run_successive_shortest_paths(
    const GraphView& view, NodeId s, NodeId t, double demand,
    std::size_t max_paths, bool stop_at_target,
    const ShortestPathTree* first_tree) {
  SuccessivePathsResult result;
  std::vector<double> residual = view.edge_capacities();
  bool first = true;
  while (result.total_capacity < demand - kEps &&
         result.paths.size() < max_paths) {
    std::optional<Path> path;
    if (first && first_tree) {
      path = first_tree->path_to(view.graph(), t);
    } else if (stop_at_target) {
      path = dijkstra_residual_to(view, s, t, residual)
                 .path_to(view.graph(), t);
    } else {
      path = dijkstra_residual(view, s, residual).path_to(view.graph(), t);
    }
    first = false;
    if (!path) break;
    double cap = std::numeric_limits<double>::infinity();
    for (EdgeId e : path->edges) {
      cap = std::min(cap, residual[static_cast<std::size_t>(e)]);
    }
    if (cap <= kEps) break;
    // Remove the chosen path's bottleneck from every edge on it (Section
    // IV-B: "reduce the capacity of p by c(p)").
    for (EdgeId e : path->edges) residual[static_cast<std::size_t>(e)] -= cap;
    result.total_capacity += cap;
    result.capacities.push_back(cap);
    result.paths.push_back(std::move(*path));
  }
  return result;
}

}  // namespace

SuccessivePathsResult successive_shortest_paths(const GraphView& view,
                                                NodeId s, NodeId t,
                                                double demand,
                                                std::size_t max_paths) {
  return run_successive_shortest_paths(view, s, t, demand, max_paths,
                                       /*stop_at_target=*/false,
                                       /*first_tree=*/nullptr);
}

SuccessivePathsResult successive_shortest_paths_to(
    const GraphView& view, NodeId s, NodeId t, double demand,
    std::size_t max_paths, const ShortestPathTree* first_tree) {
  return run_successive_shortest_paths(view, s, t, demand, max_paths,
                                       /*stop_at_target=*/true, first_tree);
}

// --- callback wrappers -----------------------------------------------------

std::vector<Path> all_simple_paths(const Graph& g, NodeId s, NodeId t,
                                   const SimplePathLimits& limits,
                                   const EdgeFilter& edge_ok,
                                   const NodeFilter& node_ok) {
  ViewConfig config;
  config.edge_ok = edge_ok;
  if (node_ok) {
    // Historical semantics: the node filter never blocks entering the
    // target itself, only intermediate nodes.
    config.node_ok = [&node_ok, t](NodeId n) { return n == t || node_ok(n); };
  }
  return all_simple_paths(GraphView::build(g, config), s, t, limits);
}

SuccessivePathsResult successive_shortest_paths(
    const Graph& g, NodeId s, NodeId t, double demand,
    const EdgeWeight& length, const EdgeWeight& capacity,
    const EdgeFilter& edge_ok, const NodeFilter& node_ok,
    std::size_t max_paths) {
  ViewConfig config;
  config.edge_ok = edge_ok;
  config.node_ok = node_ok;
  config.length = length;
  config.capacity = capacity;
  return successive_shortest_paths(GraphView::build(g, config), s, t, demand,
                                   max_paths);
}

}  // namespace netrec::graph
