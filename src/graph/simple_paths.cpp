#include "graph/simple_paths.hpp"

#include <algorithm>

#include "graph/dijkstra.hpp"

namespace netrec::graph {

namespace {

void dfs_paths(const Graph& g, NodeId at, NodeId t,
               const SimplePathLimits& limits, const EdgeFilter& edge_ok,
               const NodeFilter& node_ok, std::vector<char>& on_path,
               Path& current, std::vector<Path>& out) {
  if (out.size() >= limits.max_paths) return;
  if (at == t) {
    out.push_back(current);
    return;
  }
  if (current.edges.size() >= limits.max_hops) return;
  for (EdgeId e : g.incident_edges(at)) {
    if (edge_ok && !edge_ok(e)) continue;
    const NodeId next = g.other_endpoint(e, at);
    if (on_path[static_cast<std::size_t>(next)]) continue;
    if (node_ok && !node_ok(next) && next != t) continue;
    on_path[static_cast<std::size_t>(next)] = 1;
    current.edges.push_back(e);
    dfs_paths(g, next, t, limits, edge_ok, node_ok, on_path, current, out);
    current.edges.pop_back();
    on_path[static_cast<std::size_t>(next)] = 0;
    if (out.size() >= limits.max_paths) return;
  }
}

}  // namespace

std::vector<Path> all_simple_paths(const Graph& g, NodeId s, NodeId t,
                                   const SimplePathLimits& limits,
                                   const EdgeFilter& edge_ok,
                                   const NodeFilter& node_ok) {
  g.check_node(s);
  g.check_node(t);
  std::vector<Path> out;
  if (s == t) return out;
  std::vector<char> on_path(g.num_nodes(), 0);
  on_path[static_cast<std::size_t>(s)] = 1;
  Path current;
  current.start = s;
  dfs_paths(g, s, t, limits, edge_ok, node_ok, on_path, current, out);
  return out;
}

SuccessivePathsResult successive_shortest_paths(
    const Graph& g, NodeId s, NodeId t, double demand,
    const EdgeWeight& length, const EdgeWeight& capacity,
    const EdgeFilter& edge_ok, const NodeFilter& node_ok,
    std::size_t max_paths) {
  SuccessivePathsResult result;
  std::vector<double> residual(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    residual[e] = capacity(static_cast<EdgeId>(e));
  }
  constexpr double kEps = 1e-9;
  auto usable = [&](EdgeId e) {
    if (residual[static_cast<std::size_t>(e)] <= kEps) return false;
    return !edge_ok || edge_ok(e);
  };
  while (result.total_capacity < demand - kEps &&
         result.paths.size() < max_paths) {
    auto path = shortest_path(g, s, t, length, usable, node_ok);
    if (!path) break;
    const double cap = path->capacity(
        [&](EdgeId e) { return residual[static_cast<std::size_t>(e)]; });
    if (cap <= kEps) break;
    // Remove the chosen path's bottleneck from every edge on it (Section
    // IV-B: "reduce the capacity of p by c(p)").
    for (EdgeId e : path->edges) residual[static_cast<std::size_t>(e)] -= cap;
    result.total_capacity += cap;
    result.capacities.push_back(cap);
    result.paths.push_back(std::move(*path));
  }
  return result;
}

}  // namespace netrec::graph
