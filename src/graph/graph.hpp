// Undirected capacitated multigraph — the supply-network substrate.
//
// Matches the paper's model (Section III): the supply graph G = (V, E) has
// per-edge capacities c_ij and per-element repair costs k^v_i / k^e_ij;
// disruption marks subsets V_B / E_B broken.  Nodes carry coordinates so the
// geographically-correlated disruption models (Section VII-A3) can be applied.
//
// The class stores full topology including broken elements: ISP's centrality
// (eq. 3) is computed on the complete graph, while routing runs on the
// working subgraph.  Algorithms therefore take explicit usability filters
// rather than operating on a mutated copy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace netrec::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

struct Node {
  std::string name;
  double x = 0.0;  ///< geographic coordinate (used by disruption models)
  double y = 0.0;
  double repair_cost = 1.0;  ///< k^v_i
  bool broken = false;       ///< i in V_B
};

struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double capacity = 0.0;     ///< c_ij
  double repair_cost = 1.0;  ///< k^e_ij
  bool broken = false;       ///< (i,j) in E_B
};

class Graph {
 public:
  Graph() = default;

  /// Adds an isolated node; returns its id (ids are dense, 0-based).
  NodeId add_node(std::string name = {}, double x = 0.0, double y = 0.0,
                  double repair_cost = 1.0);

  /// Adds an undirected edge; parallel edges and self-loops are rejected
  /// (the paper's model has neither).  Returns the new edge id.
  EdgeId add_edge(NodeId u, NodeId v, double capacity,
                  double repair_cost = 1.0);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Edge& edge(EdgeId id) const {
    return edges_[static_cast<std::size_t>(id)];
  }
  Edge& edge(EdgeId id) { return edges_[static_cast<std::size_t>(id)]; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids incident to `node`, in insertion order.
  const std::vector<EdgeId>& incident_edges(NodeId node) const {
    return adjacency_[static_cast<std::size_t>(node)];
  }

  /// The endpoint of `edge` that is not `from`.
  NodeId other_endpoint(EdgeId edge, NodeId from) const;

  /// First edge between u and v (either orientation), or kInvalidEdge.
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// Degree counting all incident edges (broken included).
  std::size_t degree(NodeId node) const {
    return adjacency_[static_cast<std::size_t>(node)].size();
  }

  /// Maximum degree over all nodes (the paper's eta_max).
  std::size_t max_degree() const;

  // --- disruption bookkeeping -------------------------------------------

  /// Marks every node and edge broken (the "complete destruction" scenario).
  void break_everything();

  /// Restores every element to working state.
  void repair_everything();

  std::vector<NodeId> broken_nodes() const;
  std::vector<EdgeId> broken_edges() const;
  std::size_t num_broken_nodes() const;
  std::size_t num_broken_edges() const;

  /// An edge is usable iff itself and both endpoints are working.
  bool edge_usable(EdgeId id) const;

  /// Sum of repair costs over all broken elements (cost of the ALL policy).
  double total_repair_cost() const;

  /// Throws std::invalid_argument if any id is out of range (debug aid).
  void check_node(NodeId id) const;
  void check_edge(EdgeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

/// Predicate types used by the traversal/flow algorithms.  A default-
/// constructed filter accepts everything.
using NodeFilter = std::function<bool(NodeId)>;
using EdgeFilter = std::function<bool(EdgeId)>;
using EdgeWeight = std::function<double(EdgeId)>;

/// Filter matching the working subgraph G(n): broken elements excluded.
EdgeFilter working_edge_filter(const Graph& g);

}  // namespace netrec::graph
