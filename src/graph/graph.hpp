// Undirected capacitated multigraph — the supply-network substrate.
//
// Matches the paper's model (Section III): the supply graph G = (V, E) has
// per-edge capacities c_ij and per-element repair costs k^v_i / k^e_ij;
// disruption marks subsets V_B / E_B broken.  Nodes carry coordinates so the
// geographically-correlated disruption models (Section VII-A3) can be applied.
//
// Storage is flat SoA: every per-node and per-edge attribute lives in its own
// contiguous vector (coordinates, repair costs, capacities, broken flags,
// edge endpoints), and node names are interned in a side arena — no
// std::string, no per-element allocation in the hot structure.  The class
// stores full topology including broken elements: ISP's centrality (eq. 3)
// is computed on the complete graph, while routing runs on the working
// subgraph.  Algorithms therefore take explicit usability filters rather
// than operating on a mutated copy.
//
// Two topology phases exist:
//   * dynamic — add_node/add_edge grow per-node adjacency vectors; this is
//     the historical construction path every generator and loader uses.
//   * finalized — finalize() (or graph::Builder, see builder.hpp) packs the
//     incidence lists into a CSR pair (offsets + edge ids, insertion order
//     preserved) plus a neighbour-sorted secondary index, making degree O(1)
//     and find_edge O(log d).  The topology becomes immutable (add_* throws)
//     while element *state* — broken flags, costs, capacities — stays
//     mutable.  GraphView::build takes a no-callback fast path over the
//     packed arrays, so snapshotting a finalized graph is a flat copy rather
//     than an adjacency re-flatten.
//
// Iteration order contracts are identical in both phases: incident_edges
// yields edge ids in insertion order, so every downstream floating-point
// tie-break (Dijkstra, Brandes, the LP column order) is bit-identical
// whether or not the graph was finalized.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace netrec::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Id-space ceiling: ids are signed 32-bit, so any construction path must
/// reject the 2^31-th node or edge with a clear error instead of wrapping.
inline constexpr std::size_t kMaxGraphElements =
    static_cast<std::size_t>(1) << 31;

/// Non-owning view over a node's incident edge ids (insertion order).  Backed
/// by the per-node adjacency vector in the dynamic phase and by the packed
/// CSR slice after finalize(); either way it is a contiguous [begin, end).
class EdgeSpan {
 public:
  EdgeSpan() = default;
  EdgeSpan(const EdgeId* first, const EdgeId* last)
      : first_(first), last_(last) {}

  const EdgeId* begin() const { return first_; }
  const EdgeId* end() const { return last_; }
  std::size_t size() const { return static_cast<std::size_t>(last_ - first_); }
  bool empty() const { return first_ == last_; }
  EdgeId operator[](std::size_t i) const { return first_[i]; }

 private:
  const EdgeId* first_ = nullptr;
  const EdgeId* last_ = nullptr;
};

class Builder;

class Graph {
 public:
  Graph() = default;

  /// Adds an isolated node; returns its id (ids are dense, 0-based).
  /// Throws std::logic_error on a finalized graph.
  NodeId add_node(std::string_view name = {}, double x = 0.0, double y = 0.0,
                  double repair_cost = 1.0);

  /// Adds an undirected edge; parallel edges and self-loops are rejected
  /// (the paper's model has neither).  Returns the new edge id.
  /// Throws std::logic_error on a finalized graph.
  EdgeId add_edge(NodeId u, NodeId v, double capacity,
                  double repair_cost = 1.0);

  std::size_t num_nodes() const { return node_x_.size(); }
  std::size_t num_edges() const { return edge_u_.size(); }

  // --- per-node attributes ----------------------------------------------

  /// Interned name ("" for unnamed nodes); the view stays valid until the
  /// next add_node call.
  std::string_view node_name(NodeId id) const;
  double node_x(NodeId id) const { return node_x_[index(id)]; }
  double node_y(NodeId id) const { return node_y_[index(id)]; }
  double node_repair_cost(NodeId id) const {
    return node_repair_cost_[index(id)];
  }
  bool node_broken(NodeId id) const { return node_broken_[index(id)] != 0; }

  void set_node_position(NodeId id, double x, double y);
  void set_node_repair_cost(NodeId id, double repair_cost);
  void set_node_broken(NodeId id, bool broken);

  /// First node whose name equals `name`, or kInvalidNode (linear scan —
  /// a convenience for examples and loaders, not a hot path).
  NodeId find_node(std::string_view name) const;

  // --- per-edge attributes ----------------------------------------------

  NodeId edge_u(EdgeId id) const { return edge_u_[index_e(id)]; }
  NodeId edge_v(EdgeId id) const { return edge_v_[index_e(id)]; }
  std::pair<NodeId, NodeId> edge_endpoints(EdgeId id) const {
    return {edge_u_[index_e(id)], edge_v_[index_e(id)]};
  }
  double edge_capacity(EdgeId id) const { return edge_capacity_[index_e(id)]; }
  double edge_repair_cost(EdgeId id) const {
    return edge_repair_cost_[index_e(id)];
  }
  bool edge_broken(EdgeId id) const { return edge_broken_[index_e(id)] != 0; }

  void set_edge_capacity(EdgeId id, double capacity);
  void set_edge_repair_cost(EdgeId id, double repair_cost);
  void set_edge_broken(EdgeId id, bool broken);

  // --- topology queries --------------------------------------------------

  /// Edge ids incident to `node`, in insertion order.
  EdgeSpan incident_edges(NodeId node) const {
    const std::size_t i = index(node);
    if (finalized_) {
      return {inc_edge_.data() + inc_off_[i], inc_edge_.data() + inc_off_[i + 1]};
    }
    const auto& adj = dyn_adjacency_[i];
    return {adj.data(), adj.data() + adj.size()};
  }

  /// The endpoint of `edge` that is not `from`.
  NodeId other_endpoint(EdgeId edge, NodeId from) const;

  /// The edge between u and v (either orientation), or kInvalidEdge.
  /// O(log d) on a finalized graph (binary search over the neighbour-sorted
  /// index), O(d) linear scan in the dynamic phase.
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// Degree counting all incident edges (broken included).  O(1).
  std::size_t degree(NodeId node) const {
    const std::size_t i = index(node);
    if (finalized_) return inc_off_[i + 1] - inc_off_[i];
    return dyn_adjacency_[i].size();
  }

  /// Maximum degree over all nodes (the paper's eta_max).
  std::size_t max_degree() const;

  // --- finalization ------------------------------------------------------

  bool finalized() const { return finalized_; }

  /// Packs the incidence structure into the immutable CSR core (idempotent).
  /// Preserves ids and per-node insertion order exactly; only the lookup
  /// complexity changes.  After this call add_node/add_edge throw.
  void finalize();

  // --- disruption bookkeeping -------------------------------------------

  /// Marks every node and edge broken (the "complete destruction" scenario).
  void break_everything();

  /// Restores every element to working state.
  void repair_everything();

  std::vector<NodeId> broken_nodes() const;
  std::vector<EdgeId> broken_edges() const;
  std::size_t num_broken_nodes() const { return broken_node_count_; }
  std::size_t num_broken_edges() const { return broken_edge_count_; }

  /// An edge is usable iff itself and both endpoints are working.
  bool edge_usable(EdgeId id) const {
    const std::size_t e = index_e(id);
    return edge_broken_[e] == 0 &&
           node_broken_[static_cast<std::size_t>(edge_u_[e])] == 0 &&
           node_broken_[static_cast<std::size_t>(edge_v_[e])] == 0;
  }

  /// Sum of repair costs over all broken elements (cost of the ALL policy).
  double total_repair_cost() const;

  /// Throws std::invalid_argument if any id is out of range (debug aid).
  void check_node(NodeId id) const;
  void check_edge(EdgeId id) const;

  // --- raw SoA access (serialisation & bulk pipelines) -------------------

  const std::vector<double>& node_xs() const { return node_x_; }
  const std::vector<double>& node_ys() const { return node_y_; }
  const std::vector<double>& node_repair_costs() const {
    return node_repair_cost_;
  }
  const std::vector<std::uint8_t>& node_broken_flags() const {
    return node_broken_;
  }
  const std::vector<NodeId>& edge_sources() const { return edge_u_; }
  const std::vector<NodeId>& edge_targets() const { return edge_v_; }
  const std::vector<double>& edge_capacities() const { return edge_capacity_; }
  const std::vector<double>& edge_repair_costs() const {
    return edge_repair_cost_;
  }
  const std::vector<std::uint8_t>& edge_broken_flags() const {
    return edge_broken_;
  }
  /// Name arena (offsets are empty when every node is unnamed).
  const std::string& name_blob() const { return name_blob_; }
  const std::vector<std::uint32_t>& name_offsets() const { return name_off_; }

 private:
  friend class Builder;

  std::size_t index(NodeId id) const { return static_cast<std::size_t>(id); }
  std::size_t index_e(EdgeId id) const { return static_cast<std::size_t>(id); }

  void require_mutable_topology(const char* op) const;
  void append_name(std::string_view name);
  void build_sorted_index();

  // node SoA
  std::vector<double> node_x_;
  std::vector<double> node_y_;
  std::vector<double> node_repair_cost_;
  std::vector<std::uint8_t> node_broken_;
  // Name arena: name of node i is name_blob_[name_off_[i], name_off_[i+1]).
  // Offsets stay empty while every node is unnamed (the bulk-built case).
  std::string name_blob_;
  std::vector<std::uint32_t> name_off_;

  // edge SoA
  std::vector<NodeId> edge_u_;
  std::vector<NodeId> edge_v_;
  std::vector<double> edge_capacity_;
  std::vector<double> edge_repair_cost_;
  std::vector<std::uint8_t> edge_broken_;

  std::size_t broken_node_count_ = 0;
  std::size_t broken_edge_count_ = 0;

  // dynamic-phase incidence
  std::vector<std::vector<EdgeId>> dyn_adjacency_;

  // finalized core: CSR incidence (insertion order) + neighbour-sorted
  // secondary index sharing the same offsets (find_edge binary search).
  bool finalized_ = false;
  std::vector<std::uint32_t> inc_off_;  ///< size V+1
  std::vector<EdgeId> inc_edge_;        ///< size 2E
  std::vector<NodeId> sorted_nbr_;      ///< size 2E
  std::vector<EdgeId> sorted_edge_;     ///< size 2E
};

/// Predicate types used by the traversal/flow algorithms.  A default-
/// constructed filter accepts everything.
using NodeFilter = std::function<bool(NodeId)>;
using EdgeFilter = std::function<bool(EdgeId)>;
using EdgeWeight = std::function<double(EdgeId)>;

/// Filter matching the working subgraph G(n): broken elements excluded.
EdgeFilter working_edge_filter(const Graph& g);

}  // namespace netrec::graph
