// Unified topology generation: one entry point, `make_topology`, that takes
// a family-tagged parameter struct plus a seed (or an existing Rng stream)
// and returns a Graph.  Fig drivers and scenario factories select topologies
// uniformly — by params value or by family name via params_for() — instead
// of hard-wiring one of the ad-hoc free functions.
//
// The per-family free functions (bell_canada_like, erdos_renyi, caida_like,
// rmat, barabasi_albert) survive as thin deprecated wrappers for one
// release; they call the same detail:: implementations as make_topology, so
// the two paths are bit-identical stream-for-stream.
//
// The scale families (rmat, barabasi_albert) construct through
// graph::Builder — O(1) appends, batch dedup at finalize — and are the feed
// for bench/fig_scale's n=10^6 sweep.  Their nodes are unnamed and sit at
// the origin: at a million nodes, names and geography are pure overhead,
// and the scale experiments use random (not geographic) failures.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "topology/topologies.hpp"

namespace netrec::topology {

struct RmatOptions {
  std::size_t nodes = 1024;
  /// Target edge draws = edge_factor * nodes; duplicate draws are discarded
  /// (Graph500 style), so the finalized edge count lands a little below.
  double edge_factor = 8.0;
  /// Recursive-partition probabilities (Graph500 defaults); d = 1 - a-b-c.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double capacity = 40.0;
  double repair_cost = 1.0;
  /// Hub-first node relabeling (Builder degree_order): the default for this
  /// family — RMAT ids carry no meaning and the skewed degrees profit most.
  bool degree_order = true;
};

struct BarabasiAlbertOptions {
  std::size_t nodes = 1024;
  /// Edges added per arriving node (the model's m); nodes > attach required.
  std::size_t attach = 2;
  double capacity = 40.0;
  double repair_cost = 1.0;
};

/// Family-tagged parameter set; the variant alternative selects the family.
using GeneratorOptions =
    std::variant<BellCanadaOptions, ErdosRenyiOptions, CaidaLikeOptions,
                 RmatOptions, BarabasiAlbertOptions>;

struct GeneratorParams {
  GeneratorOptions options = BellCanadaOptions{};
  std::uint64_t seed = 1;
};

/// The unified generator: params + seed in, Graph out.  Deterministic —
/// identical params produce identical graphs.
graph::Graph make_topology(const GeneratorParams& params);

/// Same, drawing from a caller-owned stream: for scenario factories that
/// thread one Rng through problem construction.  Consumes exactly the same
/// variates as the deprecated per-family functions did.
graph::Graph make_topology(const GeneratorOptions& options, util::Rng& rng);

/// Family name of the selected alternative: "bell_canada", "erdos_renyi",
/// "caida", "rmat" or "barabasi_albert".
std::string family_name(const GeneratorOptions& options);

/// Default params for a family name (the names family_name emits, plus the
/// shorthands "er" and "ba").  Throws std::invalid_argument on unknown.
GeneratorParams params_for(std::string_view family);

/// R-MAT (recursive matrix) graph with heavy-tailed degrees.
/// \deprecated Use make_topology(); kept for one release.
[[deprecated("use topology::make_topology")]] graph::Graph rmat(
    const RmatOptions& options, util::Rng& rng);

/// Barabási–Albert preferential attachment, connected by construction.
/// \deprecated Use make_topology(); kept for one release.
[[deprecated("use topology::make_topology")]] graph::Graph barabasi_albert(
    const BarabasiAlbertOptions& options, util::Rng& rng);

namespace detail {
graph::Graph rmat_impl(const RmatOptions& options, util::Rng& rng);
graph::Graph barabasi_albert_impl(const BarabasiAlbertOptions& options,
                                  util::Rng& rng);
}  // namespace detail

}  // namespace netrec::topology
