#include <stdexcept>

#include "topology/topologies.hpp"

namespace netrec::topology {

namespace {

struct City {
  const char* name;
  double lon;
  double lat;
};

// 48 nodes.  Coordinates are approximate city locations (degrees); the
// disruption models only use relative geometry.
constexpr City kCities[] = {
    {"Victoria", -123.37, 48.43},       // 0
    {"Vancouver", -123.12, 49.28},      // 1
    {"Whistler", -122.96, 50.12},       // 2
    {"Kamloops", -120.33, 50.67},       // 3
    {"Kelowna", -119.49, 49.89},        // 4
    {"PrinceGeorge", -122.75, 53.92},   // 5
    {"Edmonton", -113.49, 53.55},       // 6
    {"RedDeer", -113.81, 52.27},        // 7
    {"Calgary", -114.07, 51.05},        // 8
    {"Lethbridge", -112.84, 49.69},     // 9
    {"MedicineHat", -110.68, 50.04},    // 10
    {"Saskatoon", -106.67, 52.13},      // 11
    {"Regina", -104.62, 50.45},         // 12
    {"PrinceAlbert", -105.75, 53.20},   // 13
    {"Brandon", -99.95, 49.85},         // 14
    {"Winnipeg", -97.14, 49.90},        // 15
    {"Kenora", -94.49, 49.77},          // 16
    {"ThunderBay", -89.25, 48.38},      // 17
    {"SaultSteMarie", -84.33, 46.52},   // 18
    {"Sudbury", -80.99, 46.49},         // 19
    {"Timmins", -81.33, 48.48},         // 20
    {"NorthBay", -79.46, 46.31},        // 21
    {"Barrie", -79.69, 44.39},          // 22
    {"Toronto", -79.38, 43.65},         // 23
    {"Hamilton", -79.87, 43.26},        // 24
    {"Kitchener", -80.49, 43.45},       // 25
    {"London", -81.25, 42.98},          // 26
    {"Windsor", -83.04, 42.32},         // 27
    {"NiagaraFalls", -79.07, 43.09},    // 28
    {"Peterborough", -78.32, 44.30},    // 29
    {"Kingston", -76.48, 44.23},        // 30
    {"Ottawa", -75.70, 45.42},          // 31
    {"Montreal", -73.57, 45.50},        // 32
    {"TroisRivieres", -72.54, 46.34},   // 33
    {"Sherbrooke", -71.89, 45.40},      // 34
    {"QuebecCity", -71.21, 46.81},      // 35
    {"Chicoutimi", -71.06, 48.43},      // 36
    {"Rimouski", -68.52, 48.45},        // 37
    {"Bathurst", -65.65, 47.62},        // 38
    {"Fredericton", -66.64, 45.96},     // 39
    {"SaintJohn", -66.06, 45.27},       // 40
    {"Moncton", -64.80, 46.09},         // 41
    {"Charlottetown", -63.13, 46.24},   // 42
    {"Halifax", -63.57, 44.65},         // 43
    {"Sydney", -60.18, 46.14},          // 44
    {"StJohns", -52.71, 47.56},         // 45
    {"CornerBrook", -57.95, 48.95},     // 46
    {"Yarmouth", -66.12, 43.84},        // 47
};

struct Link {
  int u;
  int v;
  int tier;  ///< 0 = primary backbone, 1 = secondary backbone, 2 = access
};

// 64 edges: 11 primary + 17 secondary + 36 access.
constexpr Link kLinks[] = {
    // Primary west-east backbone (capacity 50).
    {1, 8, 0},   {8, 12, 0},  {12, 15, 0}, {15, 17, 0}, {17, 19, 0},
    {19, 23, 0}, {23, 31, 0}, {31, 32, 0}, {32, 35, 0}, {35, 39, 0},
    {39, 43, 0},
    // Secondary backbone (capacity 30).  Includes the prairie and northern
    // Ontario reliefs (12-14, 16-17, 20-31) that keep every west-east cut at
    // 80+ units, so the paper's heaviest sweeps (7 pairs x 10 units, 4 pairs
    // x 18 units) stay feasible exactly as on the real Bell Canada network.
    {1, 3, 1},   {3, 4, 1},   {4, 8, 1},   {6, 8, 1},   {6, 11, 1},
    {11, 12, 1}, {23, 24, 1}, {24, 26, 1}, {26, 27, 1}, {23, 30, 1},
    {30, 31, 1}, {32, 34, 1}, {34, 35, 1}, {35, 37, 1}, {37, 38, 1},
    {38, 41, 1}, {41, 43, 1}, {12, 14, 1}, {16, 17, 1}, {20, 31, 1},
    {23, 32, 1},
    // Access links (capacity 20).
    {0, 1, 2},   {1, 2, 2},   {3, 5, 2},   {5, 6, 2},   {6, 7, 2},
    {7, 8, 2},   {8, 9, 2},   {9, 10, 2},  {10, 12, 2}, {11, 13, 2},
    {14, 15, 2}, {15, 16, 2}, {17, 18, 2},
    {18, 19, 2}, {19, 20, 2}, {19, 21, 2}, {21, 22, 2}, {22, 23, 2},
    {23, 25, 2}, {25, 26, 2}, {24, 28, 2}, {29, 30, 2},
    {31, 21, 2}, {32, 33, 2}, {35, 36, 2}, {39, 40, 2},
    {40, 41, 2}, {41, 42, 2}, {43, 44, 2}, {44, 45, 2}, {45, 46, 2},
    {43, 47, 2},
};

}  // namespace

namespace detail {

graph::Graph bell_canada_impl(const BellCanadaOptions& options) {
  graph::Graph g;
  for (const City& city : kCities) {
    g.add_node(city.name, city.lon, city.lat, options.repair_cost);
  }
  for (const Link& link : kLinks) {
    double capacity = options.access_capacity;
    if (link.tier == 0) capacity = options.backbone_capacity;
    if (link.tier == 1) capacity = options.secondary_capacity;
    g.add_edge(link.u, link.v, capacity, options.repair_cost);
  }
  if (g.num_nodes() != 48 || g.num_edges() != 64) {
    throw std::logic_error("bell_canada_like: node/edge table corrupted");
  }
  return g;
}

}  // namespace detail

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

graph::Graph bell_canada_like(const BellCanadaOptions& options) {
  return detail::bell_canada_impl(options);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace netrec::topology
