// Topology suite for the paper's three experiment scenarios (Section VII).
//
//  * bell_canada_like(): 48 nodes / 64 edges with geographic coordinates
//    over Canadian cities and the paper's capacity plan — two backbones at
//    50 and 30 units, access links at 20, unit repair costs.  The Internet
//    Topology Zoo original is not distributable offline; this synthetic
//    stand-in preserves size, the backbone+access structure and rough
//    planarity (see DESIGN.md substitution #2).  Real Topology Zoo GML files
//    load through graph::load_gml_file when available.
//  * erdos_renyi(): G(n, p) with uniform capacities (Section VII-B).
//  * caida_like(): preferential-attachment AS-style graph trimmed to exactly
//    825 nodes / 1018 edges — the size of CAIDA AS28717's giant component
//    (Section VII-C, substitution #3).
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace netrec::topology {

struct BellCanadaOptions {
  double backbone_capacity = 50.0;
  double secondary_capacity = 30.0;
  double access_capacity = 20.0;
  double repair_cost = 1.0;
};

/// 48-node / 64-edge Bell-Canada-like topology (deterministic).
/// \deprecated Use make_topology() (topology/generator.hpp).
[[deprecated("use topology::make_topology")]] graph::Graph bell_canada_like(
    const BellCanadaOptions& options = {});

struct ErdosRenyiOptions {
  std::size_t nodes = 100;
  double edge_probability = 0.5;
  double capacity = 1000.0;
  double repair_cost = 1.0;
};

/// G(n, p); node coordinates uniform in [0, 100]^2.
/// \deprecated Use make_topology() (topology/generator.hpp).
[[deprecated("use topology::make_topology")]] graph::Graph erdos_renyi(
    const ErdosRenyiOptions& options, util::Rng& rng);

struct CaidaLikeOptions {
  std::size_t nodes = 825;
  std::size_t edges = 1018;
  double capacity = 40.0;
  double repair_cost = 1.0;
};

/// AS-like sparse graph with heavy-tailed degrees, connected by
/// construction, trimmed to exactly the requested node/edge counts.
/// \deprecated Use make_topology() (topology/generator.hpp).
[[deprecated("use topology::make_topology")]] graph::Graph caida_like(
    const CaidaLikeOptions& options, util::Rng& rng);

namespace detail {
// Shared implementations behind make_topology and the deprecated wrappers
// (bit-identical streams either way).
graph::Graph bell_canada_impl(const BellCanadaOptions& options);
graph::Graph erdos_renyi_impl(const ErdosRenyiOptions& options,
                              util::Rng& rng);
graph::Graph caida_like_impl(const CaidaLikeOptions& options, util::Rng& rng);
}  // namespace detail

}  // namespace netrec::topology
