#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/traversal.hpp"
#include "topology/topologies.hpp"
#include "util/log.hpp"

namespace netrec::topology {

namespace detail {

graph::Graph erdos_renyi_impl(const ErdosRenyiOptions& options,
                              util::Rng& rng) {
  graph::Graph g;
  for (std::size_t i = 0; i < options.nodes; ++i) {
    g.add_node("n" + std::to_string(i), rng.uniform(0.0, 100.0),
               rng.uniform(0.0, 100.0), options.repair_cost);
  }
  for (std::size_t i = 0; i < options.nodes; ++i) {
    for (std::size_t j = i + 1; j < options.nodes; ++j) {
      if (rng.chance(options.edge_probability)) {
        g.add_edge(static_cast<graph::NodeId>(i),
                   static_cast<graph::NodeId>(j), options.capacity,
                   options.repair_cost);
      }
    }
  }
  return g;
}

graph::Graph caida_like_impl(const CaidaLikeOptions& options,
                             util::Rng& rng) {
  if (options.edges + 1 < options.nodes) {
    throw std::invalid_argument("caida_like: too few edges to connect");
  }
  graph::Graph g;
  // Geographic embedding: a handful of metro clusters, AS routers scattered
  // around them (only the disruption models look at coordinates).
  const std::size_t clusters = 8;
  std::vector<std::pair<double, double>> centers;
  for (std::size_t c = 0; c < clusters; ++c) {
    centers.emplace_back(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0));
  }
  for (std::size_t i = 0; i < options.nodes; ++i) {
    const auto& [cx, cy] =
        centers[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(clusters) - 1))];
    g.add_node("as" + std::to_string(i), cx + rng.normal(0.0, 6.0),
               cy + rng.normal(0.0, 6.0), options.repair_cost);
  }

  // Preferential attachment on a growing prefix keeps the graph connected
  // and the degree distribution heavy-tailed, like AS-level topologies.
  std::vector<graph::NodeId> attachment_pool;  // node repeated per degree
  g.add_edge(0, 1, options.capacity, options.repair_cost);
  attachment_pool.insert(attachment_pool.end(), {0, 0, 1, 1});
  for (std::size_t i = 2; i < options.nodes; ++i) {
    const auto node = static_cast<graph::NodeId>(i);
    // Mostly single-homed stubs (m/n ratio must end near 1018/825 ~ 1.23).
    const auto pool_max =
        static_cast<std::int64_t>(attachment_pool.size()) - 1;
    graph::NodeId target = attachment_pool[static_cast<std::size_t>(
        rng.uniform_int(0, pool_max))];
    g.add_edge(node, target, options.capacity, options.repair_cost);
    attachment_pool.push_back(node);
    attachment_pool.push_back(target);
  }
  // Extra peering links up to the exact edge budget.
  std::size_t guard = 0;
  while (g.num_edges() < options.edges && guard++ < options.edges * 200) {
    const auto a = attachment_pool[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(attachment_pool.size()) - 1))];
    const auto b = static_cast<graph::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.nodes) - 1));
    if (a == b || g.find_edge(a, b) != graph::kInvalidEdge) continue;
    g.add_edge(a, b, options.capacity, options.repair_cost);
    attachment_pool.push_back(a);
    attachment_pool.push_back(b);
  }
  if (g.num_edges() != options.edges) {
    NETREC_LOG(kWarn) << "caida_like: produced " << g.num_edges()
                      << " edges instead of " << options.edges;
  }
  return g;
}

}  // namespace detail

// Deprecated wrappers: one release of grace for out-of-tree callers.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

graph::Graph erdos_renyi(const ErdosRenyiOptions& options, util::Rng& rng) {
  return detail::erdos_renyi_impl(options, rng);
}

graph::Graph caida_like(const CaidaLikeOptions& options, util::Rng& rng) {
  return detail::caida_like_impl(options, rng);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace netrec::topology
