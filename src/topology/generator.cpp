#include "topology/generator.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

namespace netrec::topology {

namespace detail {

graph::Graph rmat_impl(const RmatOptions& options, util::Rng& rng) {
  if (options.nodes < 2) {
    throw std::invalid_argument("rmat: need at least 2 nodes");
  }
  const double d = 1.0 - options.a - options.b - options.c;
  if (options.a < 0.0 || options.b < 0.0 || options.c < 0.0 || d < 0.0) {
    throw std::invalid_argument("rmat: partition probabilities must be a "
                                "sub-distribution (a+b+c <= 1, all >= 0)");
  }
  const std::size_t n = options.nodes;
  // Smallest power-of-two quadrant grid covering n; draws landing outside
  // [0, n) are rejected so any n works, not just powers of two.
  std::size_t top_bit = 1;
  while (top_bit < n) top_bit <<= 1;
  top_bit >>= 1;

  const auto target =
      static_cast<std::size_t>(options.edge_factor *
                               static_cast<double>(n));
  const double ab = options.a + options.b;
  const double abc = ab + options.c;

  // Draw undirected pairs as packed min<<32|max keys, then sort+unique:
  // the Graph500 idiom — duplicates of a skewed draw are discarded rather
  // than probed per insert.
  std::vector<std::uint64_t> keys;
  keys.reserve(target);
  for (std::size_t k = 0; k < target; ++k) {
    std::size_t u = 0;
    std::size_t v = 0;
    for (std::size_t bit = top_bit; bit > 0; bit >>= 1) {
      const double r = rng.uniform();
      if (r < options.a) {
        // top-left: neither bit set
      } else if (r < ab) {
        v |= bit;
      } else if (r < abc) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    if (u >= n || v >= n || u == v) continue;  // rejected draw
    const std::uint64_t lo = std::min(u, v);
    const std::uint64_t hi = std::max(u, v);
    keys.push_back(lo << 32 | hi);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  graph::Builder builder(graph::Builder::Options{options.degree_order});
  builder.reserve(n, keys.size());
  builder.add_nodes(n, options.repair_cost);
  for (const std::uint64_t key : keys) {
    builder.add_edge(static_cast<graph::NodeId>(key >> 32),
                     static_cast<graph::NodeId>(key & 0xffffffffu),
                     options.capacity, options.repair_cost);
  }
  return builder.finalize();
}

graph::Graph barabasi_albert_impl(const BarabasiAlbertOptions& options,
                                  util::Rng& rng) {
  if (options.attach == 0) {
    throw std::invalid_argument("barabasi_albert: attach must be >= 1");
  }
  if (options.nodes <= options.attach) {
    throw std::invalid_argument("barabasi_albert: need nodes > attach");
  }
  const std::size_t n = options.nodes;
  const std::size_t m = options.attach;

  graph::Builder builder;
  builder.reserve(n, m * n);
  builder.add_nodes(n, options.repair_cost);

  // Seed core: a path over the first m+1 nodes keeps the graph connected
  // and gives every early node nonzero degree in the attachment pool.
  std::vector<graph::NodeId> pool;  // node id repeated once per degree
  pool.reserve(2 * m * n);
  for (std::size_t i = 1; i <= m; ++i) {
    builder.add_edge(static_cast<graph::NodeId>(i - 1),
                     static_cast<graph::NodeId>(i), options.capacity,
                     options.repair_cost);
    pool.push_back(static_cast<graph::NodeId>(i - 1));
    pool.push_back(static_cast<graph::NodeId>(i));
  }

  std::vector<graph::NodeId> picked;
  picked.reserve(m);
  for (std::size_t i = m + 1; i < n; ++i) {
    const auto node = static_cast<graph::NodeId>(i);
    picked.clear();
    std::size_t guard = 0;
    while (picked.size() < m && guard++ < 100 * m) {
      const graph::NodeId target = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      if (std::find(picked.begin(), picked.end(), target) != picked.end()) {
        continue;  // already attached this round
      }
      picked.push_back(target);
    }
    // Pathological pools (tiny m+1 cores) can starve the sampler; fall back
    // to the lowest ids not yet picked so every node attaches m times.
    for (graph::NodeId fallback = 0; picked.size() < m; ++fallback) {
      if (fallback == node) continue;
      if (std::find(picked.begin(), picked.end(), fallback) ==
          picked.end()) {
        picked.push_back(fallback);
      }
    }
    for (const graph::NodeId target : picked) {
      builder.add_edge(node, target, options.capacity, options.repair_cost);
      pool.push_back(node);
      pool.push_back(target);
    }
  }
  return builder.finalize();
}

}  // namespace detail

graph::Graph make_topology(const GeneratorOptions& options, util::Rng& rng) {
  return std::visit(
      [&rng](const auto& opt) -> graph::Graph {
        using T = std::decay_t<decltype(opt)>;
        if constexpr (std::is_same_v<T, BellCanadaOptions>) {
          return detail::bell_canada_impl(opt);
        } else if constexpr (std::is_same_v<T, ErdosRenyiOptions>) {
          return detail::erdos_renyi_impl(opt, rng);
        } else if constexpr (std::is_same_v<T, CaidaLikeOptions>) {
          return detail::caida_like_impl(opt, rng);
        } else if constexpr (std::is_same_v<T, RmatOptions>) {
          return detail::rmat_impl(opt, rng);
        } else {
          return detail::barabasi_albert_impl(opt, rng);
        }
      },
      options);
}

graph::Graph make_topology(const GeneratorParams& params) {
  util::Rng rng(params.seed);
  return make_topology(params.options, rng);
}

std::string family_name(const GeneratorOptions& options) {
  return std::visit(
      [](const auto& opt) -> std::string {
        using T = std::decay_t<decltype(opt)>;
        if constexpr (std::is_same_v<T, BellCanadaOptions>) {
          return "bell_canada";
        } else if constexpr (std::is_same_v<T, ErdosRenyiOptions>) {
          return "erdos_renyi";
        } else if constexpr (std::is_same_v<T, CaidaLikeOptions>) {
          return "caida";
        } else if constexpr (std::is_same_v<T, RmatOptions>) {
          return "rmat";
        } else {
          return "barabasi_albert";
        }
      },
      options);
}

GeneratorParams params_for(std::string_view family) {
  GeneratorParams params;
  if (family == "bell_canada") {
    params.options = BellCanadaOptions{};
  } else if (family == "erdos_renyi" || family == "er") {
    params.options = ErdosRenyiOptions{};
  } else if (family == "caida") {
    params.options = CaidaLikeOptions{};
  } else if (family == "rmat") {
    params.options = RmatOptions{};
  } else if (family == "barabasi_albert" || family == "ba") {
    params.options = BarabasiAlbertOptions{};
  } else {
    throw std::invalid_argument("unknown topology family: " +
                                std::string(family));
  }
  return params;
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

graph::Graph rmat(const RmatOptions& options, util::Rng& rng) {
  return detail::rmat_impl(options, rng);
}

graph::Graph barabasi_albert(const BarabasiAlbertOptions& options,
                             util::Rng& rng) {
  return detail::barabasi_albert_impl(options, rng);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace netrec::topology
