#include "core/problem.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/repair_state.hpp"
#include "mcf/routing.hpp"

namespace netrec::core {

bool RecoveryProblem::feasible_when_fully_repaired() const {
  return mcf::is_routable(graph, demands, /*edge_ok=*/{},
                          mcf::static_capacity(graph));
}

void score_solution(const RecoveryProblem& problem,
                    RecoverySolution& solution) {
  RepairState state(problem.graph);
  solution.repair_cost = 0.0;
  for (graph::NodeId n : solution.repaired_nodes) {
    state.repair_node(n);
    solution.repair_cost += problem.graph.node_repair_cost(n);
  }
  for (graph::EdgeId e : solution.repaired_edges) {
    state.repair_edge(e);
    solution.repair_cost += problem.graph.edge_repair_cost(e);
  }
  solution.routing = mcf::max_routed_flow(
      problem.graph, problem.demands, state.edge_filter(),
      mcf::static_capacity(problem.graph));
  const double total = problem.total_demand();
  solution.satisfied_fraction =
      total > 0.0 ? solution.routing.total_routed / total : 1.0;
  // Clamp tiny LP overshoot.
  solution.satisfied_fraction = std::min(solution.satisfied_fraction, 1.0);
}

std::string validate_solution(const RecoveryProblem& problem,
                              const RecoverySolution& solution) {
  std::unordered_set<graph::NodeId> nodes;
  for (graph::NodeId n : solution.repaired_nodes) {
    if (n < 0 || static_cast<std::size_t>(n) >= problem.graph.num_nodes()) {
      return "repaired node id out of range";
    }
    if (!problem.graph.node_broken(n)) return "repaired node was not broken";
    if (!nodes.insert(n).second) return "node repaired twice";
  }
  std::unordered_set<graph::EdgeId> edges;
  for (graph::EdgeId e : solution.repaired_edges) {
    if (e < 0 || static_cast<std::size_t>(e) >= problem.graph.num_edges()) {
      return "repaired edge id out of range";
    }
    if (!problem.graph.edge_broken(e)) return "repaired edge was not broken";
    if (!edges.insert(e).second) return "edge repaired twice";
  }

  RepairState state(problem.graph);
  for (graph::NodeId n : solution.repaired_nodes) state.repair_node(n);
  for (graph::EdgeId e : solution.repaired_edges) state.repair_edge(e);

  if (!mcf::routing_is_valid(problem.graph, problem.demands,
                             solution.routing.flows, state.edge_filter(),
                             mcf::static_capacity(problem.graph))) {
    return "routing invalid on the repaired subgraph";
  }
  const double total = problem.total_demand();
  if (total > 0.0) {
    const double fraction = solution.routing.total_routed / total;
    if (std::abs(std::min(fraction, 1.0) - solution.satisfied_fraction) >
        1e-4) {
      return "satisfied_fraction inconsistent with routing";
    }
  }
  return {};
}

}  // namespace netrec::core
