#include "core/centrality.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "graph/dijkstra.hpp"
#include "graph/simple_paths.hpp"
#include "graph/view.hpp"
#include "util/thread_pool.hpp"

namespace netrec::core {

CentralityResult::CentralityResult(std::size_t num_nodes,
                                   std::size_t num_demands)
    : score_(num_nodes, 0.0),
      contributors_(num_nodes),
      demand_paths_(num_demands) {}

double CentralityResult::capacity_through(int demand, graph::NodeId v,
                                          const graph::Graph& g) const {
  const DemandPathSet& set = demand_paths_[static_cast<std::size_t>(demand)];
  double total = 0.0;
  for (std::size_t p = 0; p < set.paths.size(); ++p) {
    for (graph::NodeId n : set.paths[p].nodes(g)) {
      if (n == v) {
        total += set.capacities[p];
        break;
      }
    }
  }
  return total;
}

std::vector<graph::NodeId> CentralityResult::ranking() const {
  std::vector<graph::NodeId> order(score_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](graph::NodeId a, graph::NodeId b) {
                     return score_[static_cast<std::size_t>(a)] >
                            score_[static_cast<std::size_t>(b)];
                   });
  return order;
}

CentralityResult demand_based_centrality(
    const graph::Graph& g, const std::vector<mcf::Demand>& demands,
    const graph::EdgeWeight& length, const graph::EdgeWeight& residual,
    const CentralityOptions& options) {
  // The dynamic metric and residual capacities are constant for the duration
  // of one centrality evaluation (one ISP iteration), so flatten them into a
  // CSR snapshot once and collect every demand's P̂* on flat arrays.
  graph::ViewConfig config;
  config.length = length;
  config.capacity = residual;
  return demand_based_centrality(graph::GraphView::build(g, config), demands,
                                 options);
}

CentralityResult demand_based_centrality(
    const graph::GraphView& view, const std::vector<mcf::Demand>& demands,
    const CentralityOptions& options) {
  const graph::Graph& g = view.graph();
  CentralityResult result(g.num_nodes(), demands.size());
  util::ThreadPool* pool =
      options.pool != nullptr && options.pool->size() > 1 ? options.pool
                                                          : nullptr;

  // Fast path bookkeeping: one shared first-path tree per source that two
  // or more demands start from (their first Dijkstras see identical
  // inputs).  Each tree is a pure function of (view, source), so the set is
  // built up front — in first-appearance order, fanning out on the pool
  // when one is available — before the demand sweep reads it.
  std::unordered_map<graph::NodeId, graph::ShortestPathTree> source_trees;
  if (options.share_source_trees) {
    std::unordered_map<graph::NodeId, int> source_count;
    std::vector<graph::NodeId> shared_sources;
    for (const mcf::Demand& d : demands) {
      if (d.amount <= 1e-9 || d.source == d.target) continue;
      if (++source_count[d.source] == 2) shared_sources.push_back(d.source);
    }
    std::vector<graph::ShortestPathTree> trees(shared_sources.size());
    const auto build_tree = [&](std::size_t i) {
      trees[i] = graph::dijkstra_residual(view, shared_sources[i],
                                          view.edge_capacities());
    };
    if (pool != nullptr && shared_sources.size() > 1) {
      pool->parallel_for(shared_sources.size(), build_tree);
    } else {
      for (std::size_t i = 0; i < shared_sources.size(); ++i) build_tree(i);
    }
    for (std::size_t i = 0; i < shared_sources.size(); ++i) {
      source_trees.emplace(shared_sources[i], std::move(trees[i]));
    }
  }

  // Per-demand P̂* enumeration into pre-assigned slots: each demand's
  // successive-shortest-path sweep reads only the view and the (now
  // immutable) shared trees, so the slots are independent and the fan-out
  // changes nothing about any slot's content.
  std::vector<graph::SuccessivePathsResult> selected(demands.size());
  const auto enumerate = [&](std::size_t h) {
    const mcf::Demand& d = demands[h];
    if (d.amount <= 1e-9 || d.source == d.target) return;
    if (options.share_source_trees) {
      const graph::ShortestPathTree* tree = nullptr;
      auto it = source_trees.find(d.source);
      if (it != source_trees.end()) tree = &it->second;
      selected[h] = graph::successive_shortest_paths_to(
          view, d.source, d.target, d.amount, options.max_paths_per_demand,
          tree);
    } else {
      selected[h] = graph::successive_shortest_paths(
          view, d.source, d.target, d.amount, options.max_paths_per_demand);
    }
  };
  if (pool != nullptr && demands.size() > 1) {
    pool->parallel_for(demands.size(), enumerate);
  } else {
    for (std::size_t h = 0; h < demands.size(); ++h) enumerate(h);
  }

  // Serial merge in demand order: the eq.-(3) score additions happen in
  // exactly the order the all-serial evaluation performs them.
  for (std::size_t h = 0; h < demands.size(); ++h) {
    const mcf::Demand& d = demands[h];
    if (d.amount <= 1e-9 || d.source == d.target) continue;
    graph::SuccessivePathsResult& sp = selected[h];
    if (sp.paths.empty() || sp.total_capacity <= 1e-12) continue;

    DemandPathSet& set =
        result.mutable_demand_paths()[static_cast<std::size_t>(h)];
    set.paths = std::move(sp.paths);
    set.capacities = std::move(sp.capacities);
    set.total_capacity = sp.total_capacity;

    // Eq. (3): share of d proportional to each path's selection capacity.
    std::vector<char> counted(g.num_nodes(), 0);
    std::vector<graph::NodeId> touched;
    for (std::size_t p = 0; p < set.paths.size(); ++p) {
      const double share =
          set.capacities[p] / set.total_capacity * d.amount;
      for (graph::NodeId v : set.paths[p].nodes(g)) {
        result.mutable_scores()[static_cast<std::size_t>(v)] += share;
        if (!counted[static_cast<std::size_t>(v)]) {
          counted[static_cast<std::size_t>(v)] = 1;
          touched.push_back(v);
        }
      }
    }
    for (graph::NodeId v : touched) {
      result.mutable_contributors()[static_cast<std::size_t>(v)].push_back(
          static_cast<int>(h));
    }
  }
  return result;
}

}  // namespace netrec::core
