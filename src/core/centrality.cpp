#include "core/centrality.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "graph/dijkstra.hpp"
#include "graph/simple_paths.hpp"
#include "graph/view.hpp"

namespace netrec::core {

CentralityResult::CentralityResult(std::size_t num_nodes,
                                   std::size_t num_demands)
    : score_(num_nodes, 0.0),
      contributors_(num_nodes),
      demand_paths_(num_demands) {}

double CentralityResult::capacity_through(int demand, graph::NodeId v,
                                          const graph::Graph& g) const {
  const DemandPathSet& set = demand_paths_[static_cast<std::size_t>(demand)];
  double total = 0.0;
  for (std::size_t p = 0; p < set.paths.size(); ++p) {
    for (graph::NodeId n : set.paths[p].nodes(g)) {
      if (n == v) {
        total += set.capacities[p];
        break;
      }
    }
  }
  return total;
}

std::vector<graph::NodeId> CentralityResult::ranking() const {
  std::vector<graph::NodeId> order(score_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](graph::NodeId a, graph::NodeId b) {
                     return score_[static_cast<std::size_t>(a)] >
                            score_[static_cast<std::size_t>(b)];
                   });
  return order;
}

CentralityResult demand_based_centrality(
    const graph::Graph& g, const std::vector<mcf::Demand>& demands,
    const graph::EdgeWeight& length, const graph::EdgeWeight& residual,
    const CentralityOptions& options) {
  // The dynamic metric and residual capacities are constant for the duration
  // of one centrality evaluation (one ISP iteration), so flatten them into a
  // CSR snapshot once and collect every demand's P̂* on flat arrays.
  graph::ViewConfig config;
  config.length = length;
  config.capacity = residual;
  return demand_based_centrality(graph::GraphView::build(g, config), demands,
                                 options);
}

CentralityResult demand_based_centrality(
    const graph::GraphView& view, const std::vector<mcf::Demand>& demands,
    const CentralityOptions& options) {
  const graph::Graph& g = view.graph();
  CentralityResult result(g.num_nodes(), demands.size());

  // Fast path bookkeeping: one shared first-path tree per source that two
  // or more demands start from (their first Dijkstras see identical
  // inputs), built lazily.
  std::unordered_map<graph::NodeId, graph::ShortestPathTree> source_trees;
  std::unordered_map<graph::NodeId, int> source_count;
  if (options.share_source_trees) {
    for (const mcf::Demand& d : demands) {
      if (d.amount <= 1e-9 || d.source == d.target) continue;
      ++source_count[d.source];
    }
  }

  for (std::size_t h = 0; h < demands.size(); ++h) {
    const mcf::Demand& d = demands[h];
    if (d.amount <= 1e-9 || d.source == d.target) continue;
    graph::SuccessivePathsResult sp;
    if (options.share_source_trees) {
      const graph::ShortestPathTree* tree = nullptr;
      if (source_count[d.source] > 1) {
        auto it = source_trees.find(d.source);
        if (it == source_trees.end()) {
          it = source_trees
                   .emplace(d.source,
                            graph::dijkstra_residual(view, d.source,
                                                     view.edge_capacities()))
                   .first;
        }
        tree = &it->second;
      }
      sp = graph::successive_shortest_paths_to(
          view, d.source, d.target, d.amount, options.max_paths_per_demand,
          tree);
    } else {
      sp = graph::successive_shortest_paths(
          view, d.source, d.target, d.amount, options.max_paths_per_demand);
    }
    if (sp.paths.empty() || sp.total_capacity <= 1e-12) continue;

    DemandPathSet& set =
        result.mutable_demand_paths()[static_cast<std::size_t>(h)];
    set.paths = std::move(sp.paths);
    set.capacities = std::move(sp.capacities);
    set.total_capacity = sp.total_capacity;

    // Eq. (3): share of d proportional to each path's selection capacity.
    std::vector<char> counted(g.num_nodes(), 0);
    std::vector<graph::NodeId> touched;
    for (std::size_t p = 0; p < set.paths.size(); ++p) {
      const double share =
          set.capacities[p] / set.total_capacity * d.amount;
      for (graph::NodeId v : set.paths[p].nodes(g)) {
        result.mutable_scores()[static_cast<std::size_t>(v)] += share;
        if (!counted[static_cast<std::size_t>(v)]) {
          counted[static_cast<std::size_t>(v)] = 1;
          touched.push_back(v);
        }
      }
    }
    for (graph::NodeId v : touched) {
      result.mutable_contributors()[static_cast<std::size_t>(v)].push_back(
          static_cast<int>(h));
    }
  }
  return result;
}

}  // namespace netrec::core
