#include "core/repair_state.hpp"

#include "graph/view_cache.hpp"

namespace netrec::core {

RepairState::RepairState(const graph::Graph& g)
    : g_(g),
      node_repaired_(g.num_nodes(), 0),
      edge_repaired_(g.num_edges(), 0) {}

bool RepairState::repair_node(graph::NodeId n) {
  g_.check_node(n);
  if (!g_.node_broken(n) || node_repaired(n)) return false;
  node_repaired_[static_cast<std::size_t>(n)] = 1;
  repaired_node_list_.push_back(n);
  cost_ += g_.node_repair_cost(n);
  if (cache_) cache_->invalidate_node(n);
  return true;
}

bool RepairState::repair_edge(graph::EdgeId e) {
  g_.check_edge(e);
  if (!g_.edge_broken(e) || edge_repaired(e)) return false;
  edge_repaired_[static_cast<std::size_t>(e)] = 1;
  repaired_edge_list_.push_back(e);
  cost_ += g_.edge_repair_cost(e);
  if (cache_) cache_->invalidate_edge(e);
  return true;
}

void RepairState::repair_path(const graph::Path& path) {
  if (path.start != graph::kInvalidNode) repair_node(path.start);
  graph::NodeId at = path.start;
  for (graph::EdgeId e : path.edges) {
    repair_edge(e);
    at = g_.other_endpoint(e, at);
    repair_node(at);
  }
}

bool RepairState::node_ok(graph::NodeId n) const {
  return !g_.node_broken(n) || node_repaired(n);
}

bool RepairState::edge_ok(graph::EdgeId e) const {
  if (g_.edge_broken(e) && !edge_repaired(e)) return false;
  const auto [eu, ev] = g_.edge_endpoints(e);
  return node_ok(eu) && node_ok(ev);
}

graph::EdgeFilter RepairState::edge_filter() const {
  return [this](graph::EdgeId e) { return edge_ok(e); };
}

graph::NodeFilter RepairState::node_filter() const {
  return [this](graph::NodeId n) { return node_ok(n); };
}

}  // namespace netrec::core
