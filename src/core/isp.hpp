// Iterative Split and Prune (paper Section IV) — the primary contribution.
//
// ISP repeatedly:
//   1. tests routability of the current demand over the working-or-repaired
//      subgraph G(n) (termination condition);
//   2. PRUNES demands routable over working "bubbles" (Theorem 3), consuming
//      residual capacity and shrinking the instance;
//   3. repairs broken supply edges that directly connect still-unsatisfiable
//      demand endpoints (Section IV-E);
//   4. otherwise SPLITS: picks the node v_BC with highest demand-based
//      centrality (repairing it if broken), selects the contributing demand
//      hardest to route elsewhere (decision 1) and splits the LP-maximal
//      amount dx through v_BC (decision 2).
//
// Invariant maintained by every action: the (rewritten) demand stays
// routable on the full graph with current residual capacities — i.e. the
// instance stays solvable if everything remaining were repaired (Theorem 4's
// premise).  The implementation adds a watchdog that force-repairs along a
// cheapest path when an iteration makes no progress; it never fires on the
// paper's scenario families (asserted in tests) but guarantees termination
// on adversarial input.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/centrality.hpp"
#include "core/problem.hpp"
#include "mcf/path_lp.hpp"
#include "mcf/path_lp_session.hpp"
#include "util/timer.hpp"

namespace netrec::core {

/// Thrown by IspSolver::solve when IspOptions::deadline expires (or the
/// "isp.deadline" fault site fires).  serve::PlanningEngine catches it and
/// degrades to the heuristic fallback plan instead of hanging the worker.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which graph-query machinery the ISP engine drives its inner loop with.
enum class IspBackend {
  /// Cached GraphViews (graph::ViewCache): the working/full/metric snapshots
  /// persist across iterations and sync through RepairState/residual
  /// mutation events — refresh on residual-weight changes, rebuild on
  /// repairs.  The default and the fast path.
  kViewCache,
  /// The pre-ViewCache reference: graph::legacy kernels for the direct
  /// dijkstra/max-flow call sites and the view-materialising callback entry
  /// points for the composite ones (routability, PathLp, centrality) — a
  /// fresh snapshot or callback sweep per call.  Kept so the differential
  /// test harness can pin bit-identical behaviour between the two paths.
  kLegacy,
};

struct IspOptions {
  double tolerance = 1e-7;
  std::size_t max_iterations = 5000;
  /// Dynamic metric `const` (length of a working link, Section IV-D).
  double metric_const = 1.0;
  std::size_t centrality_max_paths = 64;
  /// Candidate v_BC nodes tried per iteration before the watchdog fires.
  std::size_t split_candidates = 8;
  /// Ablation toggles (see bench/ablation).
  bool enable_prune = true;
  bool enable_direct_edge_repair = true;
  /// Rank split candidates by classic Brandes betweenness instead of the
  /// paper's demand-based centrality (Section IV-B ablation).
  bool use_classic_betweenness = false;
  /// Multiplicative random perturbation of the dynamic metric in
  /// [1, 1 + length_jitter] per edge; 0 disables.  Used by OPT's randomised
  /// ISP restarts to diversify solutions on instances too large for MILP.
  double length_jitter = 0.0;
  std::uint64_t jitter_seed = 1;
  mcf::PathLpOptions lp;
  /// See IspBackend; kLegacy exists for the differential harness and the
  /// perf_isp before/after bench.
  IspBackend backend = IspBackend::kViewCache;
  /// Path-LP state reuse across iterations (mcf::PathLpSession): the
  /// routability probe and the split probes keep their column pools and
  /// warm bases for the whole solve, synced through the same ViewCache
  /// mutation events the snapshots consume.  kNone is the one-shot
  /// PathLp-per-call reference the differential harness compares against.
  /// Sessions need cached views, so the option only takes effect with
  /// backend == kViewCache (kLegacy always runs one-shot LPs).
  mcf::LpReuse lp_reuse = mcf::LpReuse::kSession;
  /// Intra-solve parallelism: fans the hot kernels of ONE solve — Brandes
  /// source passes, per-demand centrality path enumeration, per-binding LP
  /// pricing Dijkstras — out on a thread pool.  Every parallel kernel
  /// merges its per-task results serially in a fixed order, so the solve
  /// is bit-identical to the serial one at any thread count.  `pool`
  /// borrows a caller-owned pool (must outlive the solve; scenario runners
  /// share one across solves); when null and solve_threads != 1 the solver
  /// owns a private pool for the solve's duration (0 = auto: NETREC_THREADS
  /// or hardware concurrency).  The default, solve_threads == 1 with no
  /// pool, is the all-serial reference; kLegacy ignores both knobs.
  util::ThreadPool* pool = nullptr;
  std::size_t solve_threads = 1;
  /// Cooperative solve deadline, checked once at the top of every ISP
  /// iteration (the phases themselves run to completion, so the overshoot
  /// is one iteration's work).  Non-owning — the caller's Deadline must
  /// outlive the solve; null means no limit.  On expiry solve() throws
  /// DeadlineExceeded.
  const util::Deadline* deadline = nullptr;
};

/// One algorithm action, for tracing/examples.
struct IspEvent {
  enum class Kind {
    kPrune,
    kRepairNode,
    kRepairEdge,
    kSplit,
    kWatchdog,
  };
  Kind kind;
  int demand = -1;           ///< dynamic demand index (kPrune/kSplit)
  graph::NodeId node = graph::kInvalidNode;
  graph::EdgeId edge = graph::kInvalidEdge;
  double amount = 0.0;

  std::string to_string() const;
};

struct IspStats {
  std::size_t iterations = 0;
  std::size_t prunes = 0;
  std::size_t splits = 0;
  std::size_t direct_edge_repairs = 0;
  std::size_t watchdog_activations = 0;
  std::vector<IspEvent> events;  ///< populated when options trace enabled
};

class IspSolver {
 public:
  IspSolver(const RecoveryProblem& problem, IspOptions options = {});

  /// Runs ISP to completion and returns the scored solution.
  RecoverySolution solve();

  /// Statistics of the last solve() call.
  const IspStats& stats() const { return stats_; }

  /// Enables event tracing (off by default; events cost memory).
  void set_trace(bool on) { trace_ = on; }

 private:
  const RecoveryProblem& problem_;
  IspOptions opt_;
  IspStats stats_;
  bool trace_ = false;
};

}  // namespace netrec::core
