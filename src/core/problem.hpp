// MinR problem instance and solution types (paper Section III).
//
// A RecoveryProblem couples a supply graph (whose nodes/edges carry broken
// flags and repair costs) with the demand graph H, represented as a list of
// (source, target, amount) demands.  Every algorithm in src/heuristics and
// ISP itself consumes this type and produces a RecoverySolution, so the
// bench drivers can score them uniformly.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mcf/types.hpp"

namespace netrec::core {

struct RecoveryProblem {
  graph::Graph graph;
  std::vector<mcf::Demand> demands;

  double total_demand() const { return mcf::total_demand(demands); }

  /// True iff the demand would be routable with every element repaired —
  /// the feasibility premise of the paper's algorithms (Theorem 4).
  bool feasible_when_fully_repaired() const;
};

struct RecoverySolution {
  std::string algorithm;

  std::vector<graph::NodeId> repaired_nodes;
  std::vector<graph::EdgeId> repaired_edges;

  /// Sum of repair costs of the elements above (the MinR objective).
  double repair_cost = 0.0;

  /// Referee routing of the *original* demands over the repaired graph
  /// (static capacities); `routing.routed` measures per-demand satisfaction.
  mcf::RoutingResult routing;

  /// routed volume / total demand, in [0, 1]; the paper's Fig. 4(d) metric.
  double satisfied_fraction = 0.0;

  double wall_seconds = 0.0;
  std::size_t iterations = 0;

  /// False when even full repair cannot route the demand (the algorithms
  /// then do best effort and demand loss is expected).
  bool instance_feasible = true;

  std::size_t total_repairs() const {
    return repaired_nodes.size() + repaired_edges.size();
  }
};

/// Scores `repaired_*` against the problem: recomputes the referee routing,
/// satisfaction and repair cost.  Shared by all algorithms so no solver
/// grades its own homework.
void score_solution(const RecoveryProblem& problem, RecoverySolution& solution);

/// Validates a solution: repairs reference broken elements only, no
/// duplicates, routing is feasible on the repaired subgraph, and the claimed
/// satisfaction matches the routing.  Returns an empty string when valid,
/// else a diagnostic.
std::string validate_solution(const RecoveryProblem& problem,
                              const RecoverySolution& solution);

}  // namespace netrec::core
