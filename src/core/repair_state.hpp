// Incremental repair bookkeeping shared by ISP and the greedy heuristics.
//
// Matches the paper's repair list L(n): once an element enters the list it
// is treated as working for every subsequent test ("thereafter considered by
// the algorithm as if it were already repaired", Section IV-C).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace netrec::graph {
class ViewCache;
}  // namespace netrec::graph

namespace netrec::core {

class RepairState {
 public:
  explicit RepairState(const graph::Graph& g);

  /// Publishes every successful repair into `cache` (invalidate_node /
  /// invalidate_edge), so cached views over filters reading this state stay
  /// coherent without the solver sprinkling invalidation calls by hand.
  /// Pass nullptr to detach.  The cache is borrowed, not owned.
  void publish_to(graph::ViewCache* cache) { cache_ = cache; }

  /// Marks a broken node repaired; returns true if it changed state.
  bool repair_node(graph::NodeId n);
  /// Marks a broken edge repaired; returns true if it changed state.
  bool repair_edge(graph::EdgeId e);

  /// Repairs everything on a path (both elements and endpoints).
  void repair_path(const graph::Path& path);

  bool node_repaired(graph::NodeId n) const {
    return node_repaired_[static_cast<std::size_t>(n)] != 0;
  }
  bool edge_repaired(graph::EdgeId e) const {
    return edge_repaired_[static_cast<std::size_t>(e)] != 0;
  }

  /// Working-or-repaired test for nodes (the paper's V(n) membership).
  bool node_ok(graph::NodeId n) const;
  /// Edge usable: itself and both endpoints working-or-repaired (E(n)).
  bool edge_ok(graph::EdgeId e) const;

  /// Filter adapters for the graph algorithms.
  graph::EdgeFilter edge_filter() const;
  graph::NodeFilter node_filter() const;

  /// Repair lists in the order the decisions were made.
  const std::vector<graph::NodeId>& repaired_nodes() const {
    return repaired_node_list_;
  }
  const std::vector<graph::EdgeId>& repaired_edges() const {
    return repaired_edge_list_;
  }

  double repair_cost() const { return cost_; }
  std::size_t total_repairs() const {
    return repaired_node_list_.size() + repaired_edge_list_.size();
  }

 private:
  const graph::Graph& g_;
  graph::ViewCache* cache_ = nullptr;
  std::vector<char> node_repaired_;
  std::vector<char> edge_repaired_;
  std::vector<graph::NodeId> repaired_node_list_;
  std::vector<graph::EdgeId> repaired_edge_list_;
  double cost_ = 0.0;
};

}  // namespace netrec::core
