// Demand-based centrality (paper Section IV-B, eq. 3).
//
// The runtime estimate ĉd(v): for each demand (i,j) collect successive
// shortest paths (under the dynamic length metric) on the full supply graph
// with residual capacities until their combined capacity covers d_ij; each
// selected path p contributes  c(p)/sum_q c(q) * d_ij  to every node it
// touches.  The result also exposes the per-demand path sets P̂*(i,j), which
// ISP's split decisions 1 and 2 reuse (C(v_BC) membership and the capacity
// routable through v_BC).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "graph/view.hpp"
#include "mcf/types.hpp"

namespace netrec::util {
class ThreadPool;
}  // namespace netrec::util

namespace netrec::core {

struct CentralityOptions {
  /// `const` term of the dynamic metric — the length of a working link.
  double metric_const = 1.0;
  /// Cap on successive shortest paths collected per demand.
  std::size_t max_paths_per_demand = 64;
  /// Fast path (bit-identical results): demands sharing a source reuse one
  /// shortest-path tree for their first selected path — the tree is a pure
  /// function of (view, source) since every demand's successive-shortest
  /// enumeration starts from the same untouched residuals — and all
  /// remaining single-pair lookups stop at their target instead of
  /// settling the whole graph.  Enabled by ISP's session (LpReuse::kSession)
  /// engine; off by default so the reference path stays byte-for-byte the
  /// historical computation.
  bool share_source_trees = false;
  /// Intra-evaluation parallelism: the per-demand successive-shortest-path
  /// enumerations (and, with share_source_trees, the shared first-path
  /// trees) are pure functions of (view, demand), so they fan out on this
  /// pool into per-demand slots; the eq.-(3) score accumulation then runs
  /// serially in demand order.  Fixed merge order means the result is
  /// bit-identical to the serial evaluation at any thread count.  nullptr
  /// (the default) keeps the whole evaluation on the calling thread.
  util::ThreadPool* pool = nullptr;
};

struct DemandPathSet {
  std::vector<graph::Path> paths;
  std::vector<double> capacities;  ///< residual c(p) when selected
  double total_capacity = 0.0;
};

class CentralityResult {
 public:
  CentralityResult(std::size_t num_nodes, std::size_t num_demands);

  const std::vector<double>& scores() const { return score_; }
  double score(graph::NodeId v) const {
    return score_[static_cast<std::size_t>(v)];
  }

  /// Demand indices whose P̂* passes through v — the paper's C(n)(v).
  const std::vector<int>& contributors(graph::NodeId v) const {
    return contributors_[static_cast<std::size_t>(v)];
  }

  const DemandPathSet& demand_paths(int demand) const {
    return demand_paths_[static_cast<std::size_t>(demand)];
  }

  /// sum of c(p) over P̂*(demand)|v — capacity routable through v.
  double capacity_through(int demand, graph::NodeId v,
                          const graph::Graph& g) const;

  /// Nodes ordered by decreasing score (ties: smaller id first).
  std::vector<graph::NodeId> ranking() const;

  // Builder access (used by demand_based_centrality).
  std::vector<double>& mutable_scores() { return score_; }
  std::vector<std::vector<int>>& mutable_contributors() {
    return contributors_;
  }
  std::vector<DemandPathSet>& mutable_demand_paths() { return demand_paths_; }

 private:
  std::vector<double> score_;
  std::vector<std::vector<int>> contributors_;
  std::vector<DemandPathSet> demand_paths_;
};

/// Computes ĉd over the *full* graph (broken elements included — centrality
/// ranks repair candidates) with the supplied dynamic length metric and
/// residual capacities.
CentralityResult demand_based_centrality(
    const graph::Graph& g, const std::vector<mcf::Demand>& demands,
    const graph::EdgeWeight& length, const graph::EdgeWeight& residual,
    const CentralityOptions& options = {});

/// Same estimate on a borrowed (typically ViewCache-owned) snapshot whose
/// lengths are the dynamic metric and capacities the residuals — ISP's
/// per-iteration call without the per-call view build.
CentralityResult demand_based_centrality(
    const graph::GraphView& view, const std::vector<mcf::Demand>& demands,
    const CentralityOptions& options = {});

}  // namespace netrec::core
