#include "core/isp.hpp"

// The kLegacy backend's call sites vanish from builds without the reference
// kernels; the backend itself is rejected at construction below.
#if defined(NETREC_ENABLE_LEGACY)
#define NETREC_ISP_SELECT(view_expr, legacy_expr) \
  (cached() ? (view_expr) : (legacy_expr))
#else
#define NETREC_ISP_SELECT(view_expr, legacy_expr) (view_expr)
#endif

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/repair_state.hpp"
#include "graph/betweenness.hpp"
#include "graph/dijkstra.hpp"
#include "graph/maxflow.hpp"
#include "graph/traversal.hpp"
#include "graph/view_cache.hpp"
#include "mcf/routing.hpp"
#include "mcf/split.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace netrec::core {

namespace {
constexpr double kEps = 1e-9;
}

std::string IspEvent::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kPrune:
      out << "prune demand#" << demand << " amount " << amount;
      break;
    case Kind::kRepairNode:
      out << "repair node " << node;
      break;
    case Kind::kRepairEdge:
      out << "repair edge " << edge;
      break;
    case Kind::kSplit:
      out << "split demand#" << demand << " via node " << node << " amount "
          << amount;
      break;
    case Kind::kWatchdog:
      out << "watchdog repair along path for demand#" << demand;
      break;
  }
  return out.str();
}

namespace {

/// All mutable ISP state, so helpers can share it without long parameter
/// lists.  Lives for one solve() call.
class Engine {
 public:
  struct DynDemand {
    graph::NodeId source;
    graph::NodeId target;
    double amount;
    int origin;  ///< original demand index
    int uid;     ///< stable identity for PathLpSession row binding
  };

  Engine(const RecoveryProblem& problem, const IspOptions& opt,
         IspStats& stats, bool trace)
      : g_(problem.graph),
        opt_(opt),
        stats_(stats),
        trace_(trace),
        state_(problem.graph),
        residual_(problem.graph.num_edges()) {
#if !defined(NETREC_ENABLE_LEGACY)
    if (opt_.backend == IspBackend::kLegacy) {
      throw std::logic_error(
          "IspBackend::kLegacy requires a build with NETREC_ENABLE_LEGACY");
    }
#endif
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      residual_[e] = g_.edge_capacity(e);
    }
    jitter_.assign(g_.num_edges(), 1.0);
    if (opt.length_jitter > 0.0) {
      util::Rng jitter_rng(opt.jitter_seed);
      for (auto& j : jitter_) {
        j = 1.0 + jitter_rng.uniform(0.0, opt.length_jitter);
      }
    }
    for (std::size_t h = 0; h < problem.demands.size(); ++h) {
      const mcf::Demand& d = problem.demands[h];
      if (d.amount <= kEps || d.source == d.target) continue;
      demands_.push_back(
          {d.source, d.target, d.amount, static_cast<int>(h), next_uid_++});
    }
    if (opt_.backend == IspBackend::kViewCache) {
      // Cached snapshots for the whole solve.  Residual tests stay OUT of
      // the filters (the algorithms skip drained arcs per call) so residual
      // consumption is a weight refresh; repairs flip working-filter
      // verdicts and rebuild exactly the slots whose membership changed.
      cache_.emplace(g_);
      graph::ViewConfig working_config;
      working_config.edge_ok = [this](graph::EdgeId e) {
        return state_.edge_ok(e);
      };
      working_config.capacity = residual_view();
      slot_working_ =
          cache_->add_config("working", std::move(working_config));
      graph::ViewConfig full_config;
      full_config.capacity = residual_view();
      slot_full_ = cache_->add_config("full", std::move(full_config));
      graph::ViewConfig metric_config;
      metric_config.length = dynamic_length();
      metric_config.capacity = residual_view();
      slot_metric_ = cache_->add_config("metric", std::move(metric_config));
      if (opt_.use_classic_betweenness) {
        // Residual-positive membership: a residual hitting zero flips the
        // verdict and the cache escalates the refresh to a rebuild.
        graph::ViewConfig usable_config;
        usable_config.edge_ok = full_filter();
        usable_config.length = dynamic_length();
        slot_usable_ = cache_->add_config("usable", std::move(usable_config));
      }
      state_.publish_to(&*cache_);
      // Intra-solve worker pool (kLegacy stays the all-serial reference).
      // Borrowed or privately owned, every kernel below receives the same
      // pool; results are thread-count-invariant by the kernels' fixed
      // merge orders.
      pool_ = util::ThreadPool::acquire(owned_pool_, opt_.solve_threads,
                                        opt_.pool);
      if (opt_.lp_reuse == mcf::LpReuse::kSession) {
        // Persistent path-LP state for the per-iteration probes: the
        // routability test (kMaxRouted on the working view) and the split
        // probes (kMaxSplit on the full view).  Registered on the cache so
        // the same repair/residual events that refresh the snapshots also
        // invalidate columns and capacity rows.
        lp_working_.emplace(g_, mcf::PathLpMode::kMaxRouted, opt_.lp);
        lp_split_.emplace(g_, mcf::PathLpMode::kMaxSplit, opt_.lp);
        lp_working_->set_thread_pool(pool_);
        lp_split_->set_thread_pool(pool_);
        cache_->add_listener(&*lp_working_);
        cache_->add_listener(&*lp_split_);
      }
    }
  }

  RepairState& state() { return state_; }

  // --- cached views --------------------------------------------------------

  bool cached() const { return cache_.has_value(); }
  const graph::GraphView& working_view() {
    return cache_->view(slot_working_);
  }
  const graph::GraphView& full_view() { return cache_->view(slot_full_); }
  const graph::GraphView& metric_view() { return cache_->view(slot_metric_); }
  const graph::GraphView& usable_view() { return cache_->view(slot_usable_); }

  /// Consumes residual capacity and publishes the (weight-only) mutation.
  void consume_residual(graph::EdgeId e, double amount) {
    auto& r = residual_[static_cast<std::size_t>(e)];
    r = std::max(0.0, r - amount);
    ++residual_epoch_;
    if (cache_) cache_->invalidate_edge(e);
  }

  // --- capacity / filter views -------------------------------------------

  graph::EdgeWeight residual_view() const {
    return [this](graph::EdgeId e) {
      return residual_[static_cast<std::size_t>(e)];
    };
  }

  /// Edge filter of G(n): working-or-repaired with positive residual.
  graph::EdgeFilter working_filter() const {
    return [this](graph::EdgeId e) {
      return state_.edge_ok(e) && residual_[static_cast<std::size_t>(e)] > kEps;
    };
  }

  /// Full-graph filter: only positive residual required (broken usable).
  graph::EdgeFilter full_filter() const {
    return [this](graph::EdgeId e) {
      return residual_[static_cast<std::size_t>(e)] > kEps;
    };
  }

  /// The dynamic length metric (Section IV-D): repair costs of still-broken,
  /// not-yet-listed elements, normalised by residual capacity.
  graph::EdgeWeight dynamic_length() const {
    return [this](graph::EdgeId e) {
      const auto [eu, ev] = g_.edge_endpoints(e);
      double k = opt_.metric_const;
      if (g_.edge_broken(e) && !state_.edge_repaired(e)) {
        k += g_.edge_repair_cost(e);
      }
      if (g_.node_broken(eu) && !state_.node_repaired(eu)) {
        k += g_.node_repair_cost(eu) / 2.0;
      }
      if (g_.node_broken(ev) && !state_.node_repaired(ev)) {
        k += g_.node_repair_cost(ev) / 2.0;
      }
      const double c = residual_[static_cast<std::size_t>(e)];
      return k * jitter_[static_cast<std::size_t>(e)] / std::max(c, 1e-6);
    };
  }

  std::vector<mcf::Demand> current_demands() const {
    std::vector<mcf::Demand> out;
    out.reserve(demands_.size());
    for (const auto& d : demands_) {
      out.push_back(mcf::Demand{d.source, d.target, d.amount});
    }
    return out;
  }

  std::vector<mcf::PathLpSession::DemandSpec> current_demand_specs() const {
    std::vector<mcf::PathLpSession::DemandSpec> out;
    out.reserve(demands_.size());
    for (const auto& d : demands_) {
      out.push_back({d.uid, mcf::Demand{d.source, d.target, d.amount}});
    }
    return out;
  }

  bool lp_sessions() const { return lp_working_.has_value(); }

  bool demands_empty() const { return demands_.empty(); }

  // --- termination test ----------------------------------------------------

  bool routable_on_working() {
    if (demands_.empty()) return true;
    if (lp_sessions()) {
      return mcf::is_routable(*lp_working_, working_view(),
                              current_demand_specs());
    }
    if (cached()) {
      return mcf::is_routable(working_view(), current_demands(), opt_.lp);
    }
    return mcf::is_routable(g_, current_demands(), working_filter(),
                            residual_view(), opt_.lp);
  }

  bool routable_on_full() {
    if (demands_.empty()) return true;
    if (cached()) {
      return mcf::is_routable(full_view(), current_demands(), opt_.lp);
    }
    return mcf::is_routable(g_, current_demands(), full_filter(),
                            residual_view(), opt_.lp);
  }

  // --- prune ---------------------------------------------------------------

  /// Demand-graph nodes that may not appear in the bubble interior: every
  /// demand endpoint except this demand's own s and t (Definition 2 requires
  /// S ∩ V_H = {s, t}, so s and t themselves are always admissible).
  std::vector<char> bubble_walls(std::size_t h) const {
    std::vector<char> mark(g_.num_nodes(), 0);
    for (const auto& d : demands_) {
      mark[static_cast<std::size_t>(d.source)] = 1;
      mark[static_cast<std::size_t>(d.target)] = 1;
    }
    mark[static_cast<std::size_t>(demands_[h].source)] = 0;
    mark[static_cast<std::size_t>(demands_[h].target)] = 0;
    return mark;
  }

  /// Attempts a bubble prune of demand `h`; returns pruned amount.
  double try_prune(std::size_t h) {
    auto& dem = demands_[h];
    if (!state_.node_ok(dem.source) || !state_.node_ok(dem.target)) return 0.0;

    const auto blocked = bubble_walls(h);

    // Modified BFS from s over working edges with residual capacity; other
    // demands' endpoints are walls; t is absorbed but not expanded.
    std::vector<char> in_s(g_.num_nodes(), 0);
    in_s[static_cast<std::size_t>(dem.source)] = 1;
    std::deque<graph::NodeId> queue{dem.source};
    bool reached_t = false;
    if (cached()) {
      // Cached working arcs (state-usable edges); the residual test the
      // callback filter folded in is applied per arc.
      const graph::GraphView& wv = working_view();
      while (!queue.empty()) {
        const graph::NodeId at = queue.front();
        queue.pop_front();
        if (at == dem.target) continue;  // do not grow the bubble past t
        const graph::ArcId end = wv.arcs_end(at);
        for (graph::ArcId a = wv.arcs_begin(at); a < end; ++a) {
          const graph::EdgeId e = wv.arc_edge(a);
          if (residual_[static_cast<std::size_t>(e)] <= kEps) continue;
          const graph::NodeId to = wv.arc_target(a);
          if (in_s[static_cast<std::size_t>(to)]) continue;
          if (blocked[static_cast<std::size_t>(to)]) continue;  // wall
          in_s[static_cast<std::size_t>(to)] = 1;
          if (to == dem.target) reached_t = true;
          queue.push_back(to);
        }
      }
    } else {
      const auto usable = working_filter();
      while (!queue.empty()) {
        const graph::NodeId at = queue.front();
        queue.pop_front();
        if (at == dem.target) continue;  // do not grow the bubble past t
        for (graph::EdgeId e : g_.incident_edges(at)) {
          if (!usable(e)) continue;
          const graph::NodeId to = g_.other_endpoint(e, at);
          if (in_s[static_cast<std::size_t>(to)]) continue;
          if (blocked[static_cast<std::size_t>(to)]) continue;  // wall
          in_s[static_cast<std::size_t>(to)] = 1;
          if (to == dem.target) reached_t = true;
          queue.push_back(to);
        }
      }
    }
    if (!reached_t) return 0.0;

    // Bubble boundary condition over the FULL edge set (Definition 2): any
    // edge leaving S must be incident to s or t.  With a single remaining
    // demand no conflict exists and the check is unnecessary.
    if (demands_.size() > 1) {
      for (std::size_t v = 0; v < g_.num_nodes(); ++v) {
        if (!in_s[v]) continue;
        const auto node = static_cast<graph::NodeId>(v);
        if (node == dem.source || node == dem.target) continue;
        for (graph::EdgeId e : g_.incident_edges(node)) {
          if (!in_s[static_cast<std::size_t>(g_.other_endpoint(e, node))]) {
            return 0.0;  // interior node leaks out of the bubble
          }
        }
      }
    }

    // Max flow inside the bubble on working edges and residual capacities.
    const auto flow = NETREC_ISP_SELECT(
        graph::max_flow(working_view(), dem.source, dem.target, residual_,
                        in_s),
        graph::legacy::max_flow(g_, dem.source, dem.target, residual_view(),
                                working_filter(), [&in_s](graph::NodeId n) {
                                  return in_s[static_cast<std::size_t>(n)] !=
                                         0;
                                }));
    const double k = std::min(flow.value, dem.amount);
    if (k <= opt_.tolerance) return 0.0;

    // Route k units along the decomposition, consuming residual capacity.
    auto paths = graph::decompose_flow(g_, dem.source, dem.target,
                                       flow.edge_flow);
    double remaining = k;
    for (auto& [path, amount] : paths) {
      if (remaining <= kEps) break;
      const double take = std::min(amount, remaining);
      for (graph::EdgeId e : path.edges) consume_residual(e, take);
      mcf::PathFlow pf;
      pf.demand_index = dem.origin;
      pf.path = std::move(path);
      pf.amount = take;
      pruned_flows_.push_back(std::move(pf));
      remaining -= take;
    }
    const double pruned = k - remaining;
    dem.amount -= pruned;
    ++stats_.prunes;
    if (trace_) {
      stats_.events.push_back(IspEvent{IspEvent::Kind::kPrune,
                                       static_cast<int>(h),
                                       graph::kInvalidNode,
                                       graph::kInvalidEdge, pruned});
    }
    return pruned;
  }

  /// Full prune sweep; returns true if anything was pruned.
  bool prune_phase() {
    bool any = false;
    bool progress = true;
    std::size_t guard = 0;
    const std::size_t guard_limit = 4 * (g_.num_edges() + demands_.size()) + 16;
    while (progress && guard++ < guard_limit) {
      progress = false;
      for (std::size_t h = 0; h < demands_.size(); ++h) {
        if (demands_[h].amount <= opt_.tolerance) continue;
        if (try_prune(h) > 0.0) {
          progress = true;
          any = true;
        }
      }
      compact_demands();
    }
    return any;
  }

  // --- direct demand-edge repair (Section IV-E) ---------------------------

  bool direct_edge_repairs() {
    bool any = false;
    const auto length = dynamic_length();
    for (const auto& dem : demands_) {
      if (dem.amount <= opt_.tolerance) continue;
      const graph::EdgeId e = g_.find_edge(dem.source, dem.target);
      if (e == graph::kInvalidEdge) continue;
      if (!g_.edge_broken(e) || state_.edge_repaired(e)) continue;
      // "cannot be satisfied by any working path (including L(n))".
      // (Views re-fetched per demand: a repair below invalidates them.)
      const auto flow = NETREC_ISP_SELECT(
          graph::max_flow(working_view(), dem.source, dem.target, residual_),
          graph::legacy::max_flow(g_, dem.source, dem.target, residual_view(),
                                  working_filter()));
      if (flow.value >= dem.amount - opt_.tolerance) continue;
      // Interpretation choice (documented in DESIGN.md): only repair the
      // direct edge when it is also a cheapest dynamic-metric route — with
      // the paper's homogeneous costs this always holds, but it stops the
      // rule from buying an expensive shortcut past a cheap corridor.
      const auto tree = NETREC_ISP_SELECT(
          graph::dijkstra_residual(metric_view(), dem.source, residual_),
          graph::legacy::dijkstra(g_, dem.source, length, full_filter()));
      if (tree.reached(dem.target) &&
          tree.distance[static_cast<std::size_t>(dem.target)] <
              length(e) - 1e-12) {
        continue;
      }
      state_.repair_edge(e);
      ++stats_.direct_edge_repairs;
      if (trace_) {
        stats_.events.push_back(IspEvent{IspEvent::Kind::kRepairEdge, -1,
                                         graph::kInvalidNode, e, 0.0});
      }
      any = true;
    }
    return any;
  }

  // --- split ---------------------------------------------------------------

  bool split_phase() {
    // Session mode turns on the result-preserving centrality shortcuts
    // (shared source trees, target-stopped lookups); kNone keeps the
    // byte-for-byte historical computation as the differential reference.
    // The pool fans the per-demand enumerations out either way (fixed-order
    // merge: bit-identical).
    CentralityOptions copt;
    copt.metric_const = opt_.metric_const;
    copt.max_paths_per_demand = opt_.centrality_max_paths;
    copt.share_source_trees = lp_sessions();
    copt.pool = pool_;
    const auto centrality = NETREC_ISP_SELECT(
        demand_based_centrality(metric_view(), current_demands(), copt),
        demand_based_centrality(g_, current_demands(), dynamic_length(),
                                residual_view(), copt));
    std::vector<graph::NodeId> ranking;
    std::vector<double> ranking_score;
    if (opt_.use_classic_betweenness) {
      // Ablation: classic betweenness ignores demands and capacities; the
      // demand path sets are still needed for split-candidate selection.
      ranking_score = NETREC_ISP_SELECT(
          graph::betweenness_centrality(usable_view(), pool_),
          graph::legacy::betweenness_centrality(g_, dynamic_length(),
                                                full_filter()));
      ranking.resize(g_.num_nodes());
      std::iota(ranking.begin(), ranking.end(), 0);
      std::stable_sort(ranking.begin(), ranking.end(),
                       [&](graph::NodeId a, graph::NodeId b) {
                         return ranking_score[static_cast<std::size_t>(a)] >
                                ranking_score[static_cast<std::size_t>(b)];
                       });
    } else {
      ranking = centrality.ranking();
      ranking_score = centrality.scores();
    }

    std::size_t tried = 0;
    for (graph::NodeId vbc : ranking) {
      if (tried >= opt_.split_candidates) break;
      if (ranking_score[static_cast<std::size_t>(vbc)] <= opt_.tolerance) {
        break;
      }
      ++tried;

      // Candidate demands: contributors whose endpoints differ from v_BC,
      // ranked by decision 1.
      struct Candidate {
        std::size_t demand;
        double ratio;
      };
      std::vector<Candidate> candidates;
      for (int h : centrality.contributors(vbc)) {
        const auto& dem = demands_[static_cast<std::size_t>(h)];
        if (dem.source == vbc || dem.target == vbc) continue;
        if (dem.amount <= opt_.tolerance) continue;
        const double through =
            centrality.capacity_through(h, vbc, g_);
        if (through <= kEps) continue;
        double flow_value;
        if (lp_sessions()) {
          // The full view has no filters, so its max flows depend only on
          // the residual capacities: one value per demand uid stays exact
          // until the next consume_residual (value-identical reuse across
          // candidate nodes *and* across prune-free iterations).
          auto [it, fresh] = full_flow_cache_.try_emplace(dem.uid);
          if (fresh || it->second.first != residual_epoch_) {
            it->second = {residual_epoch_,
                          graph::max_flow(full_view(), dem.source, dem.target,
                                          residual_)
                              .value};
          }
          flow_value = it->second.second;
        } else {
          flow_value = NETREC_ISP_SELECT(
                           graph::max_flow(full_view(), dem.source,
                                           dem.target, residual_),
                           graph::legacy::max_flow(g_, dem.source, dem.target,
                                                   residual_view(),
                                                   full_filter()))
                           .value;
        }
        if (flow_value <= kEps) continue;  // infeasible even on full graph
        candidates.push_back(
            {static_cast<std::size_t>(h),
             std::min(dem.amount, through) / flow_value});
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.ratio > b.ratio;
                       });

      // Faithful to the paper: the selected v_BC is repaired *before* the
      // split decision.  High-centrality demand endpoints (which never admit
      // a split through themselves) are repaired exactly this way.
      const bool repaired_vbc = repair_node_listed(vbc);

      for (const Candidate& cand : candidates) {
        const auto& dem = demands_[cand.demand];
        // full_view() re-fetched per candidate: repairing v_BC above only
        // refreshed weights, but staying synced is the cache's job, not
        // this loop's.
        const double dx =
            lp_sessions()
                ? mcf::max_splittable_amount(
                      *lp_split_, full_view(), current_demand_specs(),
                      static_cast<int>(cand.demand), vbc)
                : NETREC_ISP_SELECT(
                      mcf::max_splittable_amount(
                          full_view(), current_demands(),
                          static_cast<int>(cand.demand), vbc, opt_.lp),
                      mcf::max_splittable_amount(
                          g_, current_demands(),
                          static_cast<int>(cand.demand), vbc, full_filter(),
                          residual_view(), opt_.lp));
        if (dx <= opt_.tolerance) continue;
        apply_split(cand.demand, vbc, std::min(dx, dem.amount));
        return true;
      }
      // No demand could be split here; repairing v_BC alone still counts as
      // progress (it changes the metric and the working graph), otherwise
      // move on to the next-ranked node.
      if (repaired_vbc) return true;
    }
    return false;
  }

  bool repair_node_listed(graph::NodeId v) {
    if (!state_.repair_node(v)) return false;
    if (trace_) {
      stats_.events.push_back(IspEvent{IspEvent::Kind::kRepairNode, -1, v,
                                       graph::kInvalidEdge, 0.0});
    }
    return true;
  }

  void apply_split(std::size_t h, graph::NodeId via, double dx) {
    auto& dem = demands_[h];
    const auto source = dem.source;
    const auto target = dem.target;
    const int origin = dem.origin;
    dem.amount -= dx;
    demands_.push_back({source, via, dx, origin, next_uid_++});
    demands_.push_back({via, target, dx, origin, next_uid_++});
    ++stats_.splits;
    if (trace_) {
      stats_.events.push_back(IspEvent{IspEvent::Kind::kSplit,
                                       static_cast<int>(h), via,
                                       graph::kInvalidEdge, dx});
    }
    compact_demands();
  }

  void compact_demands() {
    demands_.erase(
        std::remove_if(demands_.begin(), demands_.end(),
                       [this](const auto& d) {
                         return d.amount <= opt_.tolerance ||
                                d.source == d.target;
                       }),
        demands_.end());
  }

  // --- watchdog -------------------------------------------------------------

  /// Forces progress when an iteration made none.  First tries repairing
  /// every broken element on a cheapest dynamic-metric path of the hardest
  /// unsatisfied demand (cheap, concentrating).  If that path carries no
  /// broken element — the stall is a capacity conflict, not missing
  /// elements — falls back to an *exact completion*: solve the residual
  /// instance's eq.-(8) LP on the full graph (minimising not-yet-repaired
  /// cost) and repair everything its witness routing touches.  The
  /// completion either proves infeasibility or leaves the instance routable
  /// on the working graph, preserving ISP's no-demand-loss guarantee.
  bool watchdog() {
    ++stats_.watchdog_activations;
    // Hardest = largest unroutable amount on the working graph.
    std::size_t worst = demands_.size();
    double worst_gap = opt_.tolerance;
    for (std::size_t h = 0; h < demands_.size(); ++h) {
      const auto& dem = demands_[h];
      const auto flow = NETREC_ISP_SELECT(
          graph::max_flow(working_view(), dem.source, dem.target, residual_),
          graph::legacy::max_flow(g_, dem.source, dem.target, residual_view(),
                                  working_filter()));
      const double gap = dem.amount - flow.value;
      if (gap > worst_gap) {
        worst_gap = gap;
        worst = h;
      }
    }
    if (worst == demands_.size()) {
      // Every demand fits individually yet the joint test failed: a pure
      // capacity conflict, resolvable only by the exact completion.
      return exact_completion();
    }
    const auto& dem = demands_[worst];
    const auto path = NETREC_ISP_SELECT(
        graph::dijkstra_residual(metric_view(), dem.source, residual_)
            .path_to(g_, dem.target),
        graph::legacy::dijkstra(g_, dem.source, dynamic_length(),
                                full_filter())
            .path_to(g_, dem.target));
    bool repaired = false;
    if (path) {
      graph::NodeId at = path->start;
      repaired |= state_.repair_node(at);
      for (graph::EdgeId e : path->edges) {
        repaired |= state_.repair_edge(e);
        at = g_.other_endpoint(e, at);
        repaired |= state_.repair_node(at);
      }
    }
    if (!repaired) repaired = exact_completion();
    if (trace_) {
      stats_.events.push_back(IspEvent{IspEvent::Kind::kWatchdog,
                                       static_cast<int>(worst),
                                       graph::kInvalidNode,
                                       graph::kInvalidEdge, 0.0});
    }
    return repaired;
  }

  /// Routes the residual demand on the full graph with an LP that prices
  /// still-broken elements by repair cost, then repairs everything the
  /// witness routing uses.  Returns false iff the residual instance is
  /// infeasible even with every remaining element repaired.
  bool exact_completion() {
    auto pending_cost = [this](graph::EdgeId e) {
      const auto [eu, ev] = g_.edge_endpoints(e);
      double c = 0.0;
      if (g_.edge_broken(e) && !state_.edge_repaired(e)) {
        c += g_.edge_repair_cost(e);
      }
      if (g_.node_broken(eu) && !state_.node_repaired(eu)) {
        c += g_.node_repair_cost(eu) / 2.0;
      }
      if (g_.node_broken(ev) && !state_.node_repaired(ev)) {
        c += g_.node_repair_cost(ev) / 2.0;
      }
      return c;
    };
    const mcf::PathLpResult result = [&] {
      if (lp_sessions()) {
        // Per-call session context: the completion re-prices every column
        // against the live repair state and its witness support drives
        // discrete repair choices, so nothing is carried across calls —
        // the session API is used for the shared machinery (pool install,
        // warm rounds within this one converging solve), not persistence.
        mcf::PathLpSession lp(g_, mcf::PathLpMode::kMinCost, opt_.lp);
        lp.set_min_cost_objective(pending_cost);
        lp.set_thread_pool(pool_);
        return lp.solve(full_view(), current_demand_specs());
      }
      if (cached()) {
        mcf::PathLp lp(full_view(), current_demands(), opt_.lp);
        lp.set_min_cost(pending_cost);
        return lp.solve();
      }
      mcf::PathLp lp(g_, current_demands(), full_filter(), residual_view(),
                     opt_.lp);
      lp.set_min_cost(pending_cost);
      return lp.solve();
    }();
    if (!result.routing.fully_routed) return false;

    // Candidate repairs: every pending element the witness routing touches.
    // The LP prices flow linearly, so it happily spreads across parallel
    // broken paths (the paper's own eq.-(8) critique); a one-pass minimal-
    // subset filter keeps only the candidates routability actually needs.
    std::vector<char> cand_node(g_.num_nodes(), 0);
    std::vector<char> cand_edge(g_.num_edges(), 0);
    for (const mcf::PathFlow& flow : result.routing.flows) {
      if (flow.amount <= opt_.tolerance) continue;
      for (graph::NodeId n : flow.path.nodes(g_)) {
        if (g_.node_broken(n) && !state_.node_repaired(n)) {
          cand_node[static_cast<std::size_t>(n)] = 1;
        }
      }
      for (graph::EdgeId e : flow.path.edges) {
        if (g_.edge_broken(e) && !state_.edge_repaired(e)) {
          cand_edge[static_cast<std::size_t>(e)] = 1;
        }
      }
    }
    auto hypothetical = [&](graph::EdgeId e) {
      if (residual_[static_cast<std::size_t>(e)] <= kEps) return false;
      const auto [eu, ev] = g_.edge_endpoints(e);
      auto node_ok = [&](graph::NodeId n) {
        return state_.node_ok(n) || cand_node[static_cast<std::size_t>(n)];
      };
      const bool edge_fixed = !g_.edge_broken(e) || state_.edge_repaired(e) ||
                              cand_edge[static_cast<std::size_t>(e)];
      return edge_fixed && node_ok(eu) && node_ok(ev);
    };
    auto still_routable = [&]() {
      if (lp_sessions()) {
        // One snapshot instead of the callback pipeline's three (reach
        // view, greedy view, PathLp owned view); owned-vs-borrowed PathLp
        // equivalence makes the verdict identical.
        graph::ViewConfig config;
        config.edge_ok = hypothetical;
        config.capacity = residual_view();
        return mcf::is_routable(graph::GraphView::build(g_, config),
                                current_demands(), opt_.lp);
      }
      return mcf::is_routable(g_, current_demands(), hypothetical,
                              residual_view(), opt_.lp);
    };
    // Drop candidates greedily (most expensive first) while routability
    // holds; each keep/drop decision is one exact test.
    struct Cand {
      bool is_node;
      int id;
      double cost;
    };
    std::vector<Cand> order;
    for (std::size_t n = 0; n < g_.num_nodes(); ++n) {
      if (cand_node[n]) {
        order.push_back({true, static_cast<int>(n),
                         g_.node_repair_cost(static_cast<graph::NodeId>(n))});
      }
    }
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      if (cand_edge[e]) {
        order.push_back({false, static_cast<int>(e),
                         g_.edge_repair_cost(static_cast<graph::EdgeId>(e))});
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Cand& a, const Cand& b) {
                       return a.cost > b.cost;
                     });
    for (const Cand& c : order) {
      auto& flag = c.is_node ? cand_node[static_cast<std::size_t>(c.id)]
                             : cand_edge[static_cast<std::size_t>(c.id)];
      flag = 0;
      if (!still_routable()) flag = 1;
    }

    bool repaired = false;
    for (std::size_t n = 0; n < g_.num_nodes(); ++n) {
      if (cand_node[n]) {
        repaired |= state_.repair_node(static_cast<graph::NodeId>(n));
      }
    }
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      if (cand_edge[e]) {
        repaired |= state_.repair_edge(static_cast<graph::EdgeId>(e));
      }
    }
    // Nothing broken on the witness routing means the demand is already
    // routable on the working graph; report progress so the main loop
    // re-tests and terminates.
    return repaired || result.routing.fully_routed;
  }

  const std::vector<mcf::PathFlow>& pruned_flows() const {
    return pruned_flows_;
  }

  std::vector<DynDemand> demands_;

 private:
  const graph::Graph& g_;
  const IspOptions& opt_;
  IspStats& stats_;
  bool trace_;
  RepairState state_;
  std::vector<double> residual_;
  std::vector<double> jitter_;
  std::vector<mcf::PathFlow> pruned_flows_;
  /// Engaged iff opt_.backend == kViewCache; RepairState publishes repairs
  /// into it and consume_residual publishes capacity updates.
  std::optional<graph::ViewCache> cache_;
  graph::ViewCache::SlotId slot_working_ = 0;
  graph::ViewCache::SlotId slot_full_ = 0;
  graph::ViewCache::SlotId slot_metric_ = 0;
  graph::ViewCache::SlotId slot_usable_ = 0;
  /// Intra-solve worker pool: owned_pool_ engages only when the options
  /// request threads without lending a pool; pool_ is null for the serial
  /// reference.  Declared before the sessions that borrow it (reverse
  /// destruction keeps the pool alive past its borrowers).
  std::optional<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
  /// Engaged iff additionally opt_.lp_reuse == kSession: persistent path-LP
  /// masters, fed by the cache's mutation fan-out.  Declared after cache_
  /// (they are registered listeners; both die with the Engine, cache last).
  std::optional<mcf::PathLpSession> lp_working_;
  std::optional<mcf::PathLpSession> lp_split_;
  int next_uid_ = 0;
  /// Bumped by consume_residual; versions the full-graph flow memo below.
  std::uint64_t residual_epoch_ = 0;
  /// uid -> (residual epoch, full-view max-flow value); session mode only.
  std::unordered_map<int, std::pair<std::uint64_t, double>> full_flow_cache_;
};

}  // namespace

IspSolver::IspSolver(const RecoveryProblem& problem, IspOptions options)
    : problem_(problem), opt_(options) {}

RecoverySolution IspSolver::solve() {
  util::Timer timer;
  stats_ = IspStats{};

  RecoverySolution solution;
  solution.algorithm = "ISP";
  solution.instance_feasible = true;

  Engine engine(problem_, opt_, stats_, trace_);

  // Theorem 4 premise: demand routable once everything is repaired.  When it
  // fails we still run (the watchdog-backed loop degrades gracefully) but
  // flag the instance.
  if (!engine.routable_on_full()) {
    solution.instance_feasible = false;
    NETREC_LOG(kWarn) << "ISP: instance infeasible even with full repair";
  }

  while (stats_.iterations < opt_.max_iterations) {
    if ((opt_.deadline != nullptr && opt_.deadline->expired()) ||
        FAULT_POINT("isp.deadline")) {
      throw DeadlineExceeded("isp: solve deadline exceeded after " +
                             std::to_string(stats_.iterations) +
                             " iterations");
    }
    ++stats_.iterations;
    if (opt_.enable_prune) {
      engine.prune_phase();
      engine.compact_demands();
    }
    if (engine.demands_empty() || engine.routable_on_working()) break;

    if (opt_.enable_direct_edge_repair && engine.direct_edge_repairs()) {
      continue;
    }
    if (engine.split_phase()) continue;
    if (!engine.watchdog()) break;  // nothing more can be done
  }

  solution.repaired_nodes = engine.state().repaired_nodes();
  solution.repaired_edges = engine.state().repaired_edges();
  solution.iterations = stats_.iterations;
  score_solution(problem_, solution);
  solution.wall_seconds = timer.elapsed_seconds();
  return solution;
}

}  // namespace netrec::core
