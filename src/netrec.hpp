// netrec — network recovery after massive failures.
//
// Umbrella header for the public API.  Reproduces Bartolini, Ciavarella,
// La Porta & Silvestri, "Network Recovery After Massive Failures", DSN 2016.
//
// Typical flow:
//   core::RecoveryProblem problem;            // supply graph + demand graph
//   ... build problem.graph, problem.demands, mark broken elements ...
//   core::RecoverySolution plan = core::IspSolver(problem).solve();
//
// Baselines (heuristics::solve_srt / solve_grd_com / solve_grd_nc /
// solve_all / solve_opt) consume the same problem type and return the same
// solution type, scored by the shared LP referee.
#pragma once

#include "core/centrality.hpp"
#include "core/isp.hpp"
#include "core/problem.hpp"
#include "core/repair_state.hpp"
#include "disruption/disruption.hpp"
#include "graph/dijkstra.hpp"
#include "graph/gml.hpp"
#include "graph/graph.hpp"
#include "graph/maxflow.hpp"
#include "graph/path.hpp"
#include "graph/simple_paths.hpp"
#include "graph/traversal.hpp"
#include "heuristics/baselines.hpp"
#include "heuristics/local_search.hpp"
#include "heuristics/multicommodity.hpp"
#include "heuristics/opt.hpp"
#include "heuristics/schedule.hpp"
#include "mcf/broken_usage.hpp"
#include "mcf/routing.hpp"
#include "mcf/split.hpp"
#include "mcf/types.hpp"
#include "recovery/dynamics.hpp"
#include "recovery/policies.hpp"
#include "recovery/timeline.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "scenario/timeline_runner.hpp"
#include "steiner/steiner.hpp"
#include "topology/generator.hpp"
#include "topology/topologies.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
