#include "disruption/disruption.hpp"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.hpp"
#include "graph/view.hpp"

namespace netrec::disruption {

void complete_destruction(graph::Graph& g) { g.break_everything(); }

std::pair<double, double> barycenter(const graph::Graph& g) {
  double sx = 0.0;
  double sy = 0.0;
  if (g.num_nodes() == 0) return {0.0, 0.0};
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    sx += g.node_x(static_cast<graph::NodeId>(i));
    sy += g.node_y(static_cast<graph::NodeId>(i));
  }
  const double inv = 1.0 / static_cast<double>(g.num_nodes());
  return {sx * inv, sy * inv};
}

DisruptionReport gaussian_disaster(graph::Graph& g,
                                   const GaussianDisasterOptions& options,
                                   util::Rng& rng) {
  DisruptionReport report;
  if (g.num_nodes() == 0) return report;
  const auto [ex, ey] = options.epicenter.value_or(barycenter(g));

  // Scene normalisation: farthest node -> distance scene_radius.
  double max_dist = 0.0;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto id = static_cast<graph::NodeId>(i);
    max_dist =
        std::max(max_dist, std::hypot(g.node_x(id) - ex, g.node_y(id) - ey));
  }
  const double scale = max_dist > 0.0 ? options.scene_radius / max_dist : 0.0;

  // "Scaled the probability accordingly": the Gaussian's peak grows linearly
  // with the variance, so wider disasters are also more intense.
  const double peak = options.variance / options.reference_variance;
  auto failure_probability = [&](double x, double y) {
    const double d = std::hypot(x - ex, y - ey) * scale;
    return std::min(1.0, peak * std::exp(-d * d / (2.0 * options.variance)));
  };

  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto id = static_cast<graph::NodeId>(i);
    if (!g.node_broken(id) &&
        rng.chance(failure_probability(g.node_x(id), g.node_y(id)))) {
      g.set_node_broken(id, true);
      ++report.broken_nodes;
    }
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    const auto [eu, ev] = g.edge_endpoints(id);
    const double mx = (g.node_x(eu) + g.node_x(ev)) / 2.0;
    const double my = (g.node_y(eu) + g.node_y(ev)) / 2.0;
    if (!g.edge_broken(id) && rng.chance(failure_probability(mx, my))) {
      g.set_edge_broken(id, true);
      ++report.broken_edges;
    }
  }
  return report;
}

DisruptionReport circular_disaster(graph::Graph& g, double cx, double cy,
                                   double radius) {
  DisruptionReport report;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto id = static_cast<graph::NodeId>(i);
    if (!g.node_broken(id) &&
        std::hypot(g.node_x(id) - cx, g.node_y(id) - cy) <= radius) {
      g.set_node_broken(id, true);
      ++report.broken_nodes;
    }
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    const auto [eu, ev] = g.edge_endpoints(id);
    const double mx = (g.node_x(eu) + g.node_x(ev)) / 2.0;
    const double my = (g.node_y(eu) + g.node_y(ev)) / 2.0;
    if (!g.edge_broken(id) && std::hypot(mx - cx, my - cy) <= radius) {
      g.set_edge_broken(id, true);
      ++report.broken_edges;
    }
  }
  return report;
}

DisruptionReport random_failures(graph::Graph& g, double node_probability,
                                 double edge_probability, util::Rng& rng) {
  DisruptionReport report;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto id = static_cast<graph::NodeId>(i);
    if (!g.node_broken(id) && rng.chance(node_probability)) {
      g.set_node_broken(id, true);
      ++report.broken_nodes;
    }
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto id = static_cast<graph::EdgeId>(e);
    if (!g.edge_broken(id) && rng.chance(edge_probability)) {
      g.set_edge_broken(id, true);
      ++report.broken_edges;
    }
  }
  return report;
}

AftershockProcess::AftershockProcess(AftershockOptions options)
    : opt_(std::move(options)), variance_(opt_.first.variance) {}

bool AftershockProcess::exhausted() const {
  return fired_ >= opt_.max_shocks || variance_ < opt_.min_variance;
}

DisruptionReport AftershockProcess::next(graph::Graph& g, util::Rng& rng) {
  if (exhausted()) return {};
  GaussianDisasterOptions shock = opt_.first;
  shock.variance = variance_;
  const DisruptionReport report = gaussian_disaster(g, shock, rng);
  variance_ *= opt_.decay;
  ++fired_;
  return report;
}

CascadeModel::CascadeModel(CascadeOptions options) : opt_(options) {}

DisruptionReport CascadeModel::advance(
    graph::Graph& g, const std::vector<mcf::Demand>& demands) {
  DisruptionReport report;
  if (demands.empty()) return report;
  std::vector<double> load(g.num_edges(), 0.0);
  for (std::size_t round = 0; round < opt_.max_rounds; ++round) {
    // Working subgraph, unit hop lengths: the re-routing model, not the
    // capacity-feasible referee.
    const graph::GraphView view = graph::GraphView::working(g);
    std::fill(load.begin(), load.end(), 0.0);
    for (const mcf::Demand& d : demands) {
      if (d.amount <= 0.0 || d.source == d.target) continue;
      const auto path = graph::shortest_path(view, d.source, d.target);
      if (!path) continue;  // demand cut off: no load contributed
      for (graph::EdgeId e : path->edges) {
        load[static_cast<std::size_t>(e)] += d.amount;
      }
    }
    std::size_t broke = 0;
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const auto id = static_cast<graph::EdgeId>(e);
      if (g.edge_broken(id)) continue;
      if (load[e] >
          opt_.overload_factor * g.edge_capacity(id) + opt_.tolerance) {
        g.set_edge_broken(id, true);
        ++broke;
      }
    }
    if (broke == 0) break;
    report.broken_edges += broke;
  }
  return report;
}

}  // namespace netrec::disruption
