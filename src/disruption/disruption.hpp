// Disruption models (paper Section VII).
//
// Complete destruction is the stress case of Sections VII-A1/A2; the
// geographically-correlated bi-variate Gaussian model drives Section VII-A3:
// elements fail with probability that decays with distance from the
// epicentre, with the variance sweep scaled so larger variance produces
// strictly larger disasters — at the top of the paper's sweep (variance
// ~150) the network is almost completely destroyed.
//
// The Gaussian model normalises the scene so the farthest node sits at
// distance `scene_radius` from the barycentre; failure probability is
//   p(d) = min(1, (variance / reference_variance) * exp(-d^2 / 2 variance)).
// The first factor is the paper's "scaled the probability accordingly";
// DESIGN.md records this interpretation.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "mcf/types.hpp"
#include "util/rng.hpp"

namespace netrec::disruption {

/// Marks every node and edge broken.
void complete_destruction(graph::Graph& g);

struct GaussianDisasterOptions {
  double variance = 50.0;
  double reference_variance = 50.0;
  /// Normalised distance of the farthest node from the barycentre.
  double scene_radius = 15.0;
  /// Epicentre in original coordinates; defaults to the node barycentre.
  std::optional<std::pair<double, double>> epicenter;
};

struct DisruptionReport {
  std::size_t broken_nodes = 0;
  std::size_t broken_edges = 0;
  std::size_t total() const { return broken_nodes + broken_edges; }
};

/// Applies the Gaussian disaster; returns how much broke.  Existing broken
/// flags are preserved (failures accumulate).
DisruptionReport gaussian_disaster(graph::Graph& g,
                                   const GaussianDisasterOptions& options,
                                   util::Rng& rng);

/// Deterministic circular disaster: everything within `radius` of the
/// centre (original coordinates) breaks; edges break when their midpoint is
/// inside the circle.
DisruptionReport circular_disaster(graph::Graph& g, double cx, double cy,
                                   double radius);

/// Uniformly random failures: each element breaks independently.
DisruptionReport random_failures(graph::Graph& g, double node_probability,
                                 double edge_probability, util::Rng& rng);

/// Barycentre of the node coordinates (the paper's default epicentre).
std::pair<double, double> barycenter(const graph::Graph& g);

// --- recovery-time dynamics --------------------------------------------------
//
// The paper applies one disaster and plans once; the recovery::Timeline
// engine keeps the disaster evolving while crews repair.  AftershockProcess
// and CascadeModel are the two stochastic-process building blocks it plugs
// in: a decaying sequence of gaussian_disaster draws (Omori-style magnitude
// decay) and a capacity-overload cascade in the style of Motter & Lai,
// where surviving traffic concentrates on the remaining edges and breaks
// the overloaded ones.

struct AftershockOptions {
  /// Parameters of the first aftershock.  `first.variance` is the initial
  /// magnitude; keep `first.reference_variance` fixed across the sequence
  /// so a decaying variance also decays the failure-probability peak (the
  /// gaussian_disaster scaling rule) — shocks shrink in both radius and
  /// intensity.
  GaussianDisasterOptions first;
  /// Variance multiplier per shock (magnitude decay), in (0, 1].
  double decay = 0.5;
  /// The sequence ends after this many shocks...
  std::size_t max_shocks = 3;
  /// ...or earlier, once the decayed variance drops below this floor.
  double min_variance = 1e-3;
};

/// A decaying-magnitude sequence of gaussian_disaster draws.  Each next()
/// call applies one aftershock to the graph (failures accumulate; existing
/// broken flags are never cleared) and decays the magnitude.  Stateful and
/// single-sequence: construct one process per disaster scenario.
class AftershockProcess {
 public:
  explicit AftershockProcess(AftershockOptions options = {});

  /// True once the sequence has ended; next() is a no-op from then on.
  bool exhausted() const;

  /// Magnitude (variance) the next shock would use.
  double current_variance() const { return variance_; }
  std::size_t shocks_fired() const { return fired_; }

  /// Applies the next aftershock; returns what broke (empty when
  /// exhausted).
  DisruptionReport next(graph::Graph& g, util::Rng& rng);

 private:
  AftershockOptions opt_;
  double variance_ = 0.0;
  std::size_t fired_ = 0;
};

struct CascadeOptions {
  /// An edge breaks when its re-routed load exceeds
  /// overload_factor * capacity (strictly, beyond `tolerance`).
  double overload_factor = 1.0;
  /// Re-route/break rounds per advance() call; the cascade usually settles
  /// far earlier.
  std::size_t max_rounds = 8;
  double tolerance = 1e-9;
};

/// Capacity-overload cascade: each round routes every demand fully along
/// its shortest operational path — capacity-*oblivious*, modelling traffic
/// that concentrates on the surviving infrastructure instead of being
/// admission-controlled — sums per-edge loads, and breaks every operational
/// edge whose load exceeds overload_factor * capacity.  Broken edges force
/// re-routing, which may overload further edges; rounds repeat until no
/// edge breaks (or max_rounds).  Deterministic given graph and demands;
/// only edges break (a broken edge is equipment overload, a node outage is
/// not this model's failure mode).
class CascadeModel {
 public:
  explicit CascadeModel(CascadeOptions options = {});

  /// Runs the cascade to quiescence; returns the total breakage.
  DisruptionReport advance(graph::Graph& g,
                           const std::vector<mcf::Demand>& demands);

 private:
  CascadeOptions opt_;
};

}  // namespace netrec::disruption
