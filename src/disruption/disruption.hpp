// Disruption models (paper Section VII).
//
// Complete destruction is the stress case of Sections VII-A1/A2; the
// geographically-correlated bi-variate Gaussian model drives Section VII-A3:
// elements fail with probability that decays with distance from the
// epicentre, with the variance sweep scaled so larger variance produces
// strictly larger disasters — at the top of the paper's sweep (variance
// ~150) the network is almost completely destroyed.
//
// The Gaussian model normalises the scene so the farthest node sits at
// distance `scene_radius` from the barycentre; failure probability is
//   p(d) = min(1, (variance / reference_variance) * exp(-d^2 / 2 variance)).
// The first factor is the paper's "scaled the probability accordingly";
// DESIGN.md records this interpretation.
#pragma once

#include <optional>
#include <utility>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace netrec::disruption {

/// Marks every node and edge broken.
void complete_destruction(graph::Graph& g);

struct GaussianDisasterOptions {
  double variance = 50.0;
  double reference_variance = 50.0;
  /// Normalised distance of the farthest node from the barycentre.
  double scene_radius = 15.0;
  /// Epicentre in original coordinates; defaults to the node barycentre.
  std::optional<std::pair<double, double>> epicenter;
};

struct DisruptionReport {
  std::size_t broken_nodes = 0;
  std::size_t broken_edges = 0;
  std::size_t total() const { return broken_nodes + broken_edges; }
};

/// Applies the Gaussian disaster; returns how much broke.  Existing broken
/// flags are preserved (failures accumulate).
DisruptionReport gaussian_disaster(graph::Graph& g,
                                   const GaussianDisasterOptions& options,
                                   util::Rng& rng);

/// Deterministic circular disaster: everything within `radius` of the
/// centre (original coordinates) breaks; edges break when their midpoint is
/// inside the circle.
DisruptionReport circular_disaster(graph::Graph& g, double cx, double cy,
                                   double radius);

/// Uniformly random failures: each element breaks independently.
DisruptionReport random_failures(graph::Graph& g, double node_probability,
                                 double edge_probability, util::Rng& rng);

/// Barycentre of the node coordinates (the paper's default epicentre).
std::pair<double, double> barycenter(const graph::Graph& g);

}  // namespace netrec::disruption
