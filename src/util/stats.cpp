#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace netrec::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  n_ += other.n_;
}

double restoration_auc(const std::vector<double>& restored, double total) {
  // Degenerate input — no measurements, or nothing to restore — must not
  // score as "fully restored": a failed solve that produced no series would
  // otherwise report a perfect recovery (user-facing once netrecd serves
  // these numbers).  Callers that know an empty series means "already
  // healthy" pad the series first (TimelineResult::restoration_auc).
  if (restored.empty() || total <= 0.0) return 0.0;
  double area = 0.0;
  for (double x : restored) area += x / total;
  return area / static_cast<double>(restored.size());
}

std::size_t steps_to_fraction(const std::vector<double>& restored,
                              double total, double fraction) {
  const double target = fraction * total - 1e-9;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    if (restored[i] >= target) return i + 1;
  }
  return restored.size() + 1;
}

void MetricSet::add(const std::string& metric, double value) {
  metrics_[metric].add(value);
}

const RunningStats& MetricSet::get(const std::string& metric) const {
  auto it = metrics_.find(metric);
  if (it == metrics_.end()) {
    throw std::out_of_range("MetricSet: unknown metric '" + metric + "'");
  }
  return it->second;
}

bool MetricSet::has(const std::string& metric) const {
  return metrics_.count(metric) > 0;
}

std::vector<std::string> MetricSet::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, stats] : metrics_) out.push_back(name);
  return out;
}

}  // namespace netrec::util
