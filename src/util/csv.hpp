// Minimal CSV emission for bench outputs.
//
// Every bench driver prints a human-readable table to stdout and, when
// --csv <path> is given, the same series as CSV so figures can be re-plotted
// externally.  Quoting follows RFC 4180 (fields containing comma, quote or
// newline are quoted; embedded quotes doubled).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace netrec::util {

class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; each cell is escaped as needed.
  void row(const std::vector<std::string>& cells);

  /// Convenience: header row.
  void header(const std::vector<std::string>& cells) { row(cells); }

  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

/// Formats a double compactly (fixed, trimming trailing zeros).
std::string format_double(double value, int max_precision = 6);

}  // namespace netrec::util
