// Deterministic fault injection for chaos testing the serving stack.
//
// A fault *site* is a named program point — `FAULT_POINT("serve.recv")` —
// that normally does nothing: when the site is disarmed the macro compiles
// down to one relaxed atomic load (no counters, no locks), so sites can sit
// on hot paths permanently.  Arming happens from a spec string
// (`--faults` / the NETREC_FAULTS environment variable):
//
//   serve.recv=p0.1,engine.solve=every8,isp.deadline=once3
//
//   name=p<float>   fire each hit independently with probability <float>
//   name=every<N>   fire every Nth hit (N >= 1)
//   name=once<N>    fire exactly once, on the Nth hit
//
// Decisions are *deterministic*: a probability site hashes (seed, site
// name, per-site hit index), so a given spec + seed produces the same
// fire pattern on every run regardless of wall clock or scheduling of
// unrelated sites — the property the chaos bench's identity checks and the
// fault-matrix tests rely on.
//
// What a firing site does is the call site's choice.  The serving stack
// uses two conventions:
//   * throw InjectedFault — a recoverable failure (derives
//     std::runtime_error; the server maps it to 503 + Retry-After so
//     clients retry);
//   * throw InjectedCrash — a worker-killing failure.  Deliberately NOT a
//     std::exception: it flies past the generic catch(const std::exception&)
//     handlers in the request path and unwinds the whole worker, which is
//     exactly what the supervisor's respawn logic needs to see.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace netrec::util::fault {

/// Recoverable injected failure (see file header for the convention).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at " + site) {}
};

/// Worker-killing injected failure; intentionally not a std::exception so
/// generic handlers cannot swallow it (only catch(...) sees it).
struct InjectedCrash {
  const char* site;
};

/// One named fault site.  Obtained via site(); never destroyed.
class Site {
 public:
  explicit Site(std::string name) : name_(std::move(name)) {}
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const { return name_; }

  /// Trigger kind (see the spec grammar in the file header).
  enum class Mode { kProbability, kEveryN, kOnceAt };

  /// True when this hit should fail.  Disarmed: one relaxed load, nothing
  /// else (hits are not even counted, so a disarmed site costs the same as
  /// a branch on a cached bool).
  bool fire() noexcept {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return fire_armed();
  }

  /// Hits observed while armed / hits that fired.  Approximate under
  /// concurrent traffic (relaxed counters), exact once traffic stops.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  friend void arm(const std::string&, std::uint64_t);
  friend void disarm_all();

  bool fire_armed() noexcept;

  std::string name_;
  std::atomic<bool> armed_{false};
  // Trigger parameters; written by arm() (armed_ false during the write,
  // release-published by the armed_ store), read by fire_armed() behind an
  // acquire load.
  Mode mode_ = Mode::kProbability;
  double probability_ = 0.0;
  std::uint64_t n_ = 1;
  std::uint64_t seed_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fired_{0};
};

/// Finds or creates the site with this name.  References stay valid forever
/// (sites are never destroyed), so call sites cache them in function-local
/// statics — that is what FAULT_POINT does.
Site& site(const char* name);

/// Parses and arms a spec (grammar in the file header).  Sites named in the
/// spec are (re)armed with fresh counters; sites not named keep their
/// current state.  Throws std::invalid_argument on malformed specs without
/// arming anything.
void arm(const std::string& spec, std::uint64_t seed = 1);

/// Disarms every site (counters are left readable for post-mortems).
void disarm_all();

/// Arms from NETREC_FAULTS / NETREC_FAULT_SEED; returns true when a spec
/// was present.  Throws like arm() on a malformed value.
bool arm_from_env();

struct SiteStats {
  std::string name;
  bool armed = false;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

/// Snapshot of every site ever touched, in creation order.
std::vector<SiteStats> stats();

/// RAII arming for tests: arms the spec on construction, disarms every
/// site on destruction.
class ScopedArm {
 public:
  explicit ScopedArm(const std::string& spec, std::uint64_t seed = 1) {
    arm(spec, seed);
  }
  ~ScopedArm() { disarm_all(); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;
};

}  // namespace netrec::util::fault

/// The canonical fault-site check: true when the named site fires this hit.
/// The Site lookup happens once per call site (function-local static); the
/// steady-state disarmed cost is a single relaxed atomic load.
#define FAULT_POINT(name_literal)                                  \
  ([]() noexcept -> bool {                                         \
    static ::netrec::util::fault::Site& fault_point_site =         \
        ::netrec::util::fault::site(name_literal);                 \
    return fault_point_site.fire();                                \
  }())
