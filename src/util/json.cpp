#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace netrec::util {

namespace {

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull:
      return "null";
    case Json::Type::kBool:
      return "bool";
    case Json::Type::kNumber:
      return "number";
    case Json::Type::kString:
      return "string";
    case Json::Type::kArray:
      return "array";
    case Json::Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want + ", have " +
                           type_name(got));
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; emit null like most lenient writers.
    out += "null";
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 15; precision <= 16; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("Json::parse: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    return parse_number();
  }

  /// Four hex digits of a \u escape; advances past them.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          // One \uXXXX names a BMP code point; an astral code point arrives
          // as a UTF-16 surrogate pair.  Lone surrogates are not code points
          // — decoding them would emit invalid UTF-8, so they are rejected
          // (this parser reads untrusted netrecd client input).
          const unsigned first = parse_hex4();
          unsigned code = first;
          if (first >= 0xd800 && first <= 0xdbff) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned second = parse_hex4();
            if (second < 0xdc00 || second > 0xdfff) {
              fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
          } else if (first >= 0xdc00 && first <= 0xdfff) {
            fail("unpaired low surrogate in \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out.set(key, parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_keys_.size();
  type_error("array or object", type_);
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_.at(index);
}

void Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  if (object_.find(key) == object_.end()) object_keys_.push_back(key);
  object_[key] = std::move(value);
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.find(key) != object_.end();
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  const auto it = object_.find(key);
  if (it == object_.end()) {
    throw std::runtime_error("Json: missing key '" + key + "'");
  }
  return it->second;
}

const std::vector<std::string>& Json::keys() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_keys_;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      append_number(out, number_);
      return;
    case Type::kString:
      append_escaped(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_keys_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_keys_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        append_escaped(out, object_keys_[i]);
        out += ':';
        if (indent > 0) out += ' ';
        object_.at(object_keys_[i]).dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      return;
    }
  }
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_keys_ == other.object_keys_ && object_ == other.object_;
  }
  return false;
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json_file: cannot open " + path);
  out << value.dump(2);
  if (!out) throw std::runtime_error("write_json_file: write failed: " + path);
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_json_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::parse(buffer.str());
}

}  // namespace netrec::util
