#include "util/flags.hpp"

#include <sstream>
#include <stdexcept>

namespace netrec::util {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  specs_[name] = Spec{default_value, help};
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    if (!specs_.count(name)) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    values_[name] = value;
  }
  return true;
}

std::string Flags::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  auto spec = specs_.find(name);
  if (spec == specs_.end()) {
    throw std::invalid_argument("undeclared flag --" + name);
  }
  return spec->second.default_value;
}

int Flags::get_int(const std::string& name) const {
  try {
    return std::stoi(get(name));
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got '" + get(name) +
                                "'");
  }
}

double Flags::get_double(const std::string& name) const {
  try {
    return std::stod(get(name));
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                get(name) + "'");
  }
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<double> Flags::get_double_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  return out;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [--flag value]...\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name << " (default: " << spec.default_value << ")\n"
        << "      " << spec.help << "\n";
  }
  return out.str();
}

}  // namespace netrec::util
