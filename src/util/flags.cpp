#include "util/flags.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace netrec::util {

namespace {

// std::stoi / std::stod accept trailing garbage ("7x" -> 7) and the sweep
// scripts these flags drive must fail loudly on typos instead, so both
// parsers insist the whole value was consumed.

int parse_int_strict(const std::string& name, const std::string& value) {
  std::size_t consumed = 0;
  int out = 0;
  try {
    out = std::stoi(value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got '" + value + "'");
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got '" + value +
                                "' (trailing garbage)");
  }
  return out;
}

double parse_double_strict(const std::string& name, const std::string& value) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                value + "'");
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                value + "' (trailing garbage)");
  }
  return out;
}

}  // namespace

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  specs_[name] = Spec{default_value, help};
}

bool Flags::parse(int argc, const char* const* argv) {
  // A flag given twice on one command line is almost always an editing
  // mistake in a sweep script, and silently letting the last value win
  // makes the first one a lie; fail loudly instead (mirrors the strict
  // numeric parsing below).
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    if (!specs_.count(name)) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    if (!seen.insert(name).second) {
      throw std::invalid_argument("duplicate flag --" + name);
    }
    values_[name] = value;
  }
  return true;
}

std::string Flags::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  auto spec = specs_.find(name);
  if (spec == specs_.end()) {
    throw std::invalid_argument("undeclared flag --" + name);
  }
  return spec->second.default_value;
}

int Flags::get_int(const std::string& name) const {
  return parse_int_strict(name, get(name));
}

double Flags::get_double(const std::string& name) const {
  return parse_double_strict(name, get(name));
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  // Anything else used to read as false — "--verbose ture" silently
  // disabling the thing it was meant to enable.  Strict like the numerics.
  throw std::invalid_argument("flag --" + name +
                              " expects a boolean (true/false/1/0/yes/no/"
                              "on/off), got '" +
                              v + "'");
}

std::vector<double> Flags::get_double_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(parse_double_strict(name, tok));
  }
  return out;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [--flag value]...\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name << " (default: " << spec.default_value << ")\n"
        << "      " << spec.help << "\n";
  }
  return out.str();
}

}  // namespace netrec::util
