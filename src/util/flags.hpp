// Tiny command-line flag parser shared by bench drivers and examples.
//
// Supports "--name value" and "--name=value"; unknown flags are an error so
// typos in sweep scripts fail loudly.  Not a general-purpose CLI library —
// just enough for reproducible experiment invocation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace netrec::util {

class Flags {
 public:
  /// Declares a flag with a default value and help text.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv; throws std::invalid_argument on unknown, duplicated or
  /// malformed flags.  Recognises --help by returning false (caller should
  /// print usage()).
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  /// Strict numeric accessors: the whole value must parse (empty values and
  /// trailing garbage like "7x" or "1.5 " throw std::invalid_argument
  /// instead of silently truncating).
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  /// Strict boolean: true/false/1/0/yes/no/on/off; anything else throws
  /// std::invalid_argument (a typo'd "--verbose ture" must not read false).
  bool get_bool(const std::string& name) const;

  /// Comma-separated list of doubles, e.g. "--sweep 2,4,6"; every element
  /// is parsed strictly (see get_double), empty elements are skipped.
  std::vector<double> get_double_list(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace netrec::util
