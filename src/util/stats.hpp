// Streaming statistics used to aggregate experiment runs.
//
// Experiments in the paper average 20 runs per data point; RunningStats
// accumulates those samples with Welford's algorithm (numerically stable,
// single pass) and exposes mean / stddev / standard error / extrema.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace netrec::util {

/// Single-variable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n).
  double stderr_mean() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A named collection of RunningStats, keyed by metric name.  Each bench
/// data point (e.g. "x=4 pairs") keeps one MetricSet across runs.
class MetricSet {
 public:
  void add(const std::string& metric, double value);
  const RunningStats& get(const std::string& metric) const;
  bool has(const std::string& metric) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, RunningStats> metrics_;
};

}  // namespace netrec::util
