// Streaming statistics used to aggregate experiment runs.
//
// Experiments in the paper average 20 runs per data point; RunningStats
// accumulates those samples with Welford's algorithm (numerically stable,
// single pass) and exposes mean / stddev / standard error / extrema.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace netrec::util {

/// Single-variable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n).
  double stderr_mean() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// --- restoration time series -----------------------------------------------
//
// Shared by heuristics::RecoverySchedule (restored demand per repair step)
// and recovery::Timeline (routed demand per stage): both measure how fast a
// repair process brings service back, with unit-time steps (the objective of
// Wang, Qiao & Yu, INFOCOM 2011).

/// Area under the restoration curve, normalised to [0, 1]: the mean of
/// restored[i] / total over the series.  1 means everything was restored
/// instantly.  An empty series or non-positive total scores 0 — degenerate
/// input must not read as "fully restored" (it would mask a failed solve);
/// callers that know an empty series means "already healthy" pad the series
/// before scoring (TimelineResult::restoration_auc).
double restoration_auc(const std::vector<double>& restored, double total);

/// Steps until `fraction` of `total` is restored: 1-based index of the
/// first entry reaching fraction * total (within 1e-9 slack);
/// restored.size() + 1 when the series never gets there.
std::size_t steps_to_fraction(const std::vector<double>& restored,
                              double total, double fraction);

/// A named collection of RunningStats, keyed by metric name.  Each bench
/// data point (e.g. "x=4 pairs") keeps one MetricSet across runs.
class MetricSet {
 public:
  void add(const std::string& metric, double value);
  const RunningStats& get(const std::string& metric) const;
  bool has(const std::string& metric) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, RunningStats> metrics_;
};

}  // namespace netrec::util
