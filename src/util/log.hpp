// Leveled stderr logging.
//
// Solvers log convergence diagnostics at kDebug; bench drivers run at kInfo
// by default so tables stay clean.  The level is process-global (set once in
// main); the hot paths guard with enabled() so formatting cost is skipped.
#pragma once

#include <sstream>
#include <string>

namespace netrec::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

bool log_enabled(LogLevel level);

/// Emits a single line to stderr with a level prefix.
void log_line(LogLevel level, const std::string& message);

}  // namespace netrec::util

// Usage: NETREC_LOG(kInfo) << "solved in " << iters << " pivots";
#define NETREC_LOG(level)                                              \
  for (bool netrec_log_once =                                          \
           ::netrec::util::log_enabled(::netrec::util::LogLevel::level); \
       netrec_log_once; netrec_log_once = false)                       \
  ::netrec::util::LogStream(::netrec::util::LogLevel::level)

namespace netrec::util {

/// Collects one log line and flushes it on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace netrec::util
