// Console table rendering for bench drivers.
//
// Each bench prints the same rows/series the paper's figures plot; Table
// aligns columns so the output reads like the paper's data tables.
#pragma once

#include <string>
#include <vector>

namespace netrec::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a separator under the header, columns padded to content.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netrec::util
