// Minimal JSON value type with serialisation and parsing.
//
// Backs the scenario engine's structured emission (SweepRunner --json) so
// sweep results can be consumed by external plotting/analysis tooling, and
// parsed back for round-trip tests.  Deliberately small: objects keep
// insertion order (emission is deterministic), numbers are doubles, and the
// parser accepts exactly the JSON this writer produces plus standard
// whitespace — enough for our own artefacts, not a general validator.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace netrec::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(int value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(std::size_t value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  Json(std::string value)  // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access; push_back switches a null value to an array.
  void push_back(Json value);
  std::size_t size() const;
  const Json& at(std::size_t index) const;

  /// Object access; set() switches a null value to an object and keeps
  /// first-insertion key order for deterministic emission.
  void set(const std::string& key, Json value);
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;
  const std::vector<std::string>& keys() const;

  /// Compact serialisation (no spaces); `indent > 0` pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parses a JSON document; throws std::runtime_error on malformed input.
  static Json parse(const std::string& text);

  /// Structural equality (numbers compared exactly).
  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::string> object_keys_;
  std::map<std::string, Json> object_;
};

/// Writes `value.dump(2)` to `path`; throws std::runtime_error on failure.
void write_json_file(const std::string& path, const Json& value);

/// Reads and parses a JSON file; throws std::runtime_error on failure.
Json read_json_file(const std::string& path);

}  // namespace netrec::util
