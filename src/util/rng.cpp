#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace netrec::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  // Box-Muller; draws until the radius is usable.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, fine at our scale.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace netrec::util
