#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace netrec::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open '" + path + "'");
  }
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string format_double(double value, int max_precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace netrec::util
