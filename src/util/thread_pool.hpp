// Fixed-size worker pool behind the parallel scenario engine and the
// intra-solve kernels (parallel Brandes, batched SSP trees, concurrent LP
// pricing).
//
// The pool is a plain task queue (no work stealing: tasks are coarse — one
// (run, algorithm) solve, one Brandes source, one pricing Dijkstra — so a
// single mutex-protected queue never becomes the bottleneck).  Determinism
// is the caller's job: tasks must write to pre-assigned slots and derive
// randomness from seeds fixed before submission, never from execution
// order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace netrec::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means default_threads().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; runs on some worker at an unspecified time.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs fn(i) for i in [0, n).  Blocks until all iterations complete and
  /// rethrows the first exception any iteration produced (every other
  /// iteration still runs; later exceptions are dropped).  The caller
  /// participates in draining the queue while it waits, so nesting — a
  /// parallel kernel inside a task that itself runs on this pool — cannot
  /// deadlock, and concurrent parallel_for calls from different threads are
  /// safe.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked parallel_for: iterations are submitted in batches of `grain`,
  /// so V-sized kernel loops pay one std::function dispatch per chunk
  /// instead of per element.  Completion and rethrow semantics match the
  /// per-element overload, except that an exception skips the remainder of
  /// its own chunk (other chunks still run).  Grain 0 is treated as 1.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// Thread count resolution used across the project: the explicit request
  /// if positive, else the NETREC_THREADS environment variable if set and
  /// positive, else std::thread::hardware_concurrency() (minimum 1).
  /// Throws std::invalid_argument above kMaxThreads (typo guard).
  static std::size_t resolve_threads(std::size_t requested = 0);

  static std::size_t default_threads() { return resolve_threads(0); }

  /// Upper bound on worker counts; requests beyond it are almost certainly
  /// flag typos and fail fast instead of exhausting the process.
  static constexpr std::size_t kMaxThreads = 512;

  /// Pool-selection policy shared by run_experiment and SweepRunner:
  /// returns `existing` when the caller already has a pool, spawns one in
  /// `storage` when the resolved count warrants parallelism, and returns
  /// nullptr for serial execution.
  static ThreadPool* acquire(std::optional<ThreadPool>& storage,
                             std::size_t threads, ThreadPool* existing);

 private:
  void worker_loop();
  /// Pops and runs one queued task on the calling thread; false when the
  /// queue was empty.  Lets parallel_for callers help drain while waiting.
  bool try_run_one();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace netrec::util
