// Monotonic wall-clock timing for the execution-time experiments (Fig. 7a).
#pragma once

#include <chrono>

namespace netrec::util {

/// Starts on construction; elapsed_*() may be read repeatedly.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Simple deadline helper for solver time limits.
class Deadline {
 public:
  /// A non-positive budget means "no limit".
  explicit Deadline(double budget_seconds)
      : enabled_(budget_seconds > 0.0), budget_(budget_seconds) {}

  bool expired() const {
    return enabled_ && timer_.elapsed_seconds() >= budget_;
  }

  double remaining_seconds() const {
    if (!enabled_) return 1e18;
    return budget_ - timer_.elapsed_seconds();
  }

 private:
  bool enabled_;
  double budget_;
  Timer timer_;
};

}  // namespace netrec::util
