#include "util/fault.hpp"

#include <cstdlib>
#include <deque>
#include <mutex>

namespace netrec::util::fault {

namespace {

/// SplitMix64 — the same portable mixer Rng seeds with; good avalanche, so
/// (seed, hit) -> uniform double is safe even for sequential hit indices.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Sites live forever in a deque (stable addresses, no relocation on
/// growth) so FAULT_POINT can cache references in function-local statics.
struct Registry {
  std::mutex mutex;
  std::deque<Site> sites;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives statics
  return *instance;
}

struct ParsedTrigger {
  Site::Mode mode = Site::Mode::kProbability;
  double probability = 0.0;
  std::uint64_t n = 1;
};

}  // namespace

bool Site::fire_armed() noexcept {
  // Re-load with acquire to synchronise with arm()'s release publish of the
  // trigger parameters; the relaxed fast path in fire() already returned
  // for the (overwhelmingly common) disarmed case.
  if (!armed_.load(std::memory_order_acquire)) return false;
  const std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed);
  bool fail = false;
  switch (mode_) {
    case Mode::kProbability: {
      const std::uint64_t bits = splitmix64(seed_ ^ splitmix64(hit));
      const double u =
          static_cast<double>(bits >> 11) * 0x1.0p-53;  // uniform [0,1)
      fail = u < probability_;
      break;
    }
    case Mode::kEveryN:
      fail = (hit + 1) % n_ == 0;
      break;
    case Mode::kOnceAt:
      fail = (hit + 1) == n_;
      break;
  }
  if (fail) fired_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

Site& site(const char* name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Site& s : reg.sites) {
    if (s.name() == name) return s;
  }
  return reg.sites.emplace_back(std::string(name));
}

namespace {

ParsedTrigger parse_trigger(const std::string& site_name,
                            const std::string& value) {
  auto fail = [&](const std::string& why) -> ParsedTrigger {
    throw std::invalid_argument("fault spec '" + site_name + "=" + value +
                                "': " + why);
  };
  if (value.empty()) return fail("empty trigger");
  ParsedTrigger trigger;
  std::size_t consumed = 0;
  try {
    if (value[0] == 'p') {
      trigger.mode = Site::Mode::kProbability;
      trigger.probability = std::stod(value.substr(1), &consumed);
      consumed += 1;
      if (trigger.probability < 0.0 || trigger.probability > 1.0) {
        return fail("probability must be in [0, 1]");
      }
    } else if (value.rfind("every", 0) == 0) {
      trigger.mode = Site::Mode::kEveryN;
      trigger.n = std::stoull(value.substr(5), &consumed);
      consumed += 5;
    } else if (value.rfind("once", 0) == 0) {
      trigger.mode = Site::Mode::kOnceAt;
      trigger.n = std::stoull(value.substr(4), &consumed);
      consumed += 4;
    } else {
      return fail("expected p<float>, every<N> or once<N>");
    }
  } catch (const std::invalid_argument&) {
    return fail("malformed number");
  } catch (const std::out_of_range&) {
    return fail("number out of range");
  }
  if (consumed != value.size()) return fail("trailing characters");
  if (trigger.mode != Site::Mode::kProbability && trigger.n == 0) {
    return fail("N must be >= 1");
  }
  return trigger;
}

}  // namespace

void arm(const std::string& spec, std::uint64_t seed) {
  // Parse the whole spec before touching any site so a malformed tail
  // cannot leave a half-armed registry.
  std::vector<std::pair<std::string, ParsedTrigger>> parsed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault spec token '" + token +
                                  "': expected <site>=<trigger>");
    }
    const std::string name = token.substr(0, eq);
    parsed.emplace_back(name, parse_trigger(name, token.substr(eq + 1)));
  }

  for (const auto& [name, trigger] : parsed) {
    Site& s = site(name.c_str());
    // Disarm while rewriting the trigger so a concurrent fire() either sees
    // the old armed state or the new one, never a torn mix.
    s.armed_.store(false, std::memory_order_release);
    s.mode_ = trigger.mode;
    s.probability_ = trigger.probability;
    s.n_ = trigger.n;
    s.seed_ = splitmix64(seed ^ fnv1a(name));
    s.hits_.store(0, std::memory_order_relaxed);
    s.fired_.store(0, std::memory_order_relaxed);
    s.armed_.store(true, std::memory_order_release);
  }
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Site& s : reg.sites) {
    s.armed_.store(false, std::memory_order_release);
  }
}

bool arm_from_env() {
  const char* spec = std::getenv("NETREC_FAULTS");
  if (spec == nullptr || *spec == '\0') return false;
  std::uint64_t seed = 1;
  if (const char* env_seed = std::getenv("NETREC_FAULT_SEED")) {
    seed = std::strtoull(env_seed, nullptr, 10);
  }
  arm(spec, seed);
  return true;
}

std::vector<SiteStats> stats() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<SiteStats> out;
  out.reserve(reg.sites.size());
  for (const Site& s : reg.sites) {
    out.push_back({s.name(), s.armed(), s.hits(), s.fired()});
  }
  return out;
}

}  // namespace netrec::util::fault
