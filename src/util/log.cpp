#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace netrec::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarn:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
    default:
      return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "%s%s\n", prefix(level), message.c_str());
}

}  // namespace netrec::util
