#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/fault.hpp"

namespace netrec::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  try {
    for (std::size_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A failed spawn (std::system_error under resource limits) must not
    // destroy joinable threads — that would call std::terminate.  Shut the
    // partial pool down and let the caller see the original exception.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, 1, fn);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t chunks = (n + grain - 1) / grain;
  // First exception wins; later ones are dropped (iterations still run).
  std::exception_ptr first_error = nullptr;
  std::mutex error_mutex;
  // Completion state lives under one mutex: the finishing worker must still
  // hold it when it observes zero, so the caller cannot wake, return and
  // destroy these locals while the worker is mid-notify.
  std::size_t remaining = chunks;
  std::mutex done_mutex;
  std::condition_variable done;
  auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    try {
      // Inside the try so an injected failure behaves exactly like a kernel
      // exception: captured into first_error, completion counting intact,
      // rethrown at the caller — never a stuck parallel_for.
      if (FAULT_POINT("pool.task")) {
        throw fault::InjectedFault("pool.task");
      }
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done.notify_all();
    }
  };
  for (std::size_t c = 0; c < chunks; ++c) {
    submit([&run_chunk, c] { run_chunk(c); });
  }
  // Help drain the queue while waiting: nested parallel_for (a kernel
  // inside a task running on this very pool) would otherwise block a worker
  // forever; with help-draining the caller itself executes queued chunks —
  // possibly unrelated ones, which is harmless — until its own are done.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      if (remaining == 0) break;
    }
    if (!try_run_one()) {
      // Queue empty: every outstanding chunk of this call is running on
      // some thread already, so there is nothing left to help with.
      std::unique_lock<std::mutex> lock(done_mutex);
      done.wait(lock, [&] { return remaining == 0; });
      break;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
  }
  task();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
  return true;
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  std::size_t resolved = requested;
  if (resolved == 0) {
    if (const char* env = std::getenv("NETREC_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) resolved = static_cast<std::size_t>(parsed);
    }
  }
  if (resolved == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    resolved = hw > 0 ? hw : 1;
  }
  if (resolved > kMaxThreads) {
    throw std::invalid_argument(
        "thread count " + std::to_string(resolved) + " exceeds the maximum " +
        std::to_string(kMaxThreads) + " (typo?)");
  }
  return resolved;
}

ThreadPool* ThreadPool::acquire(std::optional<ThreadPool>& storage,
                                std::size_t threads, ThreadPool* existing) {
  if (existing != nullptr) return existing;
  if (resolve_threads(threads) <= 1) return nullptr;
  storage.emplace(threads);
  return &*storage;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace netrec::util
