// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of netrec (topology generators, disruption
// models, demand sampling, optimal-face exploration) draw from util::Rng so
// that a (seed, run-index) pair fully determines an experiment.  The
// generator is xoshiro256**, seeded via SplitMix64, so results are identical
// across platforms and standard-library implementations (std::mt19937
// distributions are not portable across vendors).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace netrec::util {

/// Portable xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the generator; equivalent to constructing Rng(seed).
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box-Muller, stateless between calls).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Derives an independent child generator; used to give each experiment
  /// run its own stream so runs stay reproducible when executed in any order.
  Rng fork();

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4]{};
};

}  // namespace netrec::util
