#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace netrec::milp {

namespace {

struct BoundChange {
  int var;
  double lower;
  double upper;
};

struct Node {
  std::vector<BoundChange> changes;  ///< path from root
  double parent_bound;               ///< LP bound of the parent (ordering)
  long id;                           ///< tie-break: older nodes first (DFS-ish)
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.parent_bound != b.parent_bound) {
      return a.parent_bound > b.parent_bound;  // best bound first
    }
    return a.id < b.id;  // newer (deeper) first -> dive
  }
};

}  // namespace

MilpSolver::MilpSolver(lp::Model model, std::vector<int> integer_vars,
                       MilpOptions options)
    : model_(std::move(model)),
      integer_vars_(std::move(integer_vars)),
      opt_(options) {
  if (model_.goal != lp::Goal::kMinimize) {
    throw std::invalid_argument("MilpSolver: minimisation models only");
  }
  for (int v : integer_vars_) {
    if (v < 0 || v >= model_.num_variables()) {
      throw std::invalid_argument("MilpSolver: integer var out of range");
    }
  }
}

void MilpSolver::set_cutoff(double objective) {
  has_cutoff_ = true;
  cutoff_ = objective;
}

void MilpSolver::set_incumbent(const std::vector<double>& x) {
  if (static_cast<int>(x.size()) != model_.num_variables()) {
    throw std::invalid_argument("MilpSolver: incumbent size mismatch");
  }
  has_incumbent_ = true;
  incumbent_ = x;
  incumbent_objective_ = model_.objective_value(x);
  set_cutoff(incumbent_objective_);
}

MilpResult MilpSolver::solve() {
  util::Timer timer;
  MilpResult result;
  result.bound = -lp::kInfinity;

  double best_obj = has_cutoff_ ? cutoff_ : lp::kInfinity;
  std::vector<double> best_x;
  bool have_solution = false;
  if (has_incumbent_) {
    best_x = incumbent_;
    best_obj = incumbent_objective_;
    have_solution = true;
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  long next_id = 0;
  open.push(Node{{}, -lp::kInfinity, next_id++});
  lp::Basis shared_basis;

  auto apply = [&](const std::vector<BoundChange>& changes, bool redo) {
    // redo=true applies node bounds; redo=false restores root bounds.
    for (const BoundChange& c : changes) {
      auto& var = model_.variable(c.var);
      if (redo) {
        var.lower = c.lower;
        var.upper = c.upper;
      }
    }
  };
  // Root bounds snapshot for restoration.
  std::vector<std::pair<double, double>> root_bounds(
      static_cast<std::size_t>(model_.num_variables()));
  for (int v = 0; v < model_.num_variables(); ++v) {
    root_bounds[static_cast<std::size_t>(v)] = {model_.variable(v).lower,
                                                model_.variable(v).upper};
  }
  auto restore = [&]() {
    for (int v = 0; v < model_.num_variables(); ++v) {
      model_.variable(v).lower = root_bounds[static_cast<std::size_t>(v)].first;
      model_.variable(v).upper =
          root_bounds[static_cast<std::size_t>(v)].second;
    }
  };

  while (!open.empty()) {
    if (timer.elapsed_seconds() > opt_.time_limit_seconds ||
        result.nodes_explored >= opt_.max_nodes) {
      break;  // budget exhausted; the open frontier bounds the optimum
    }
    Node node = open.top();
    open.pop();

    // Bound-based prune without solving (resolved: cannot beat incumbent).
    if (have_solution && node.parent_bound >= best_obj - opt_.gap_abs) {
      continue;
    }

    ++result.nodes_explored;
    apply(node.changes, true);
    // Warm-start from the last node's basis; the simplex cold-starts by
    // itself when the basis is infeasible under this node's bounds.
    const lp::Solution relax = lp::solve(model_, opt_.lp, &shared_basis);
    restore();

    if (relax.status == lp::SolveStatus::kInfeasible) continue;
    if (relax.status == lp::SolveStatus::kUnbounded) {
      throw std::logic_error("MilpSolver: relaxation unbounded");
    }
    if (relax.status == lp::SolveStatus::kIterationLimit) {
      // Unresolved: push it back so the frontier bound stays sound, stop.
      open.push(node);
      break;
    }
    const double lp_obj = relax.objective;
    if (have_solution && lp_obj >= best_obj - opt_.gap_abs) continue;

    // Find most fractional integer variable.
    int branch_var = -1;
    double branch_score = opt_.integrality_tol;
    for (int v : integer_vars_) {
      const double value = relax.x[static_cast<std::size_t>(v)];
      const double frac = value - std::floor(value);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > branch_score) {
        branch_score = dist;
        branch_var = v;
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      if (!have_solution || lp_obj < best_obj) {
        best_obj = lp_obj;
        best_x = relax.x;
        // Snap integer values exactly.
        for (int v : integer_vars_) {
          best_x[static_cast<std::size_t>(v)] =
              std::round(best_x[static_cast<std::size_t>(v)]);
        }
        have_solution = true;
      }
      continue;
    }

    const double value = relax.x[static_cast<std::size_t>(branch_var)];
    const double floor_val = std::floor(value);
    // Apply node bounds relative to the ROOT bounds (changes accumulate).
    auto current_bounds = [&](int var) {
      double lo = root_bounds[static_cast<std::size_t>(var)].first;
      double hi = root_bounds[static_cast<std::size_t>(var)].second;
      for (const BoundChange& c : node.changes) {
        if (c.var == var) {
          lo = c.lower;
          hi = c.upper;
        }
      }
      return std::pair<double, double>{lo, hi};
    };
    const auto [lo, hi] = current_bounds(branch_var);

    Node down = node;
    down.changes.push_back(
        BoundChange{branch_var, lo, std::min(hi, floor_val)});
    down.parent_bound = lp_obj;
    down.id = next_id++;
    Node up = node;
    up.changes.push_back(
        BoundChange{branch_var, std::max(lo, floor_val + 1.0), hi});
    up.parent_bound = lp_obj;
    up.id = next_id++;
    // Push the side nearer the fractional value last so it pops first among
    // equal bounds (diving heuristic).
    const bool prefer_up = value - floor_val > 0.5;
    if (prefer_up) {
      open.push(down);
      open.push(up);
    } else {
      open.push(up);
      open.push(down);
    }
  }

  result.feasible = have_solution;
  result.objective = best_obj;
  result.x = std::move(best_x);
  if (open.empty()) {
    // Tree closed: every node was resolved against the incumbent.
    result.proven_optimal = have_solution;
    result.bound = have_solution ? best_obj : lp::kInfinity;
  } else {
    // Best-first order: the top of the open queue is the least lower bound.
    result.bound = open.top().parent_bound;
    result.proven_optimal =
        have_solution && result.bound >= best_obj - opt_.gap_abs;
  }
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace netrec::milp
