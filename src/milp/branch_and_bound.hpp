// Mixed-integer LP via branch and bound — the engine behind OPT.
//
// The paper solves MinR (eq. 1) with Gurobi; offline we bring our own MILP:
// LP relaxations from lp::solve, best-bound node selection, most-fractional
// branching, and incumbent cutoffs (seeded from ISP + local search so the
// tree prunes hard).  OPT results are exact when the tree closes within the
// budget; otherwise the best incumbent plus a proven lower bound is
// reported — mirroring how the paper treats its own 27-hour Gurobi runs.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace netrec::milp {

struct MilpOptions {
  double time_limit_seconds = 10.0;
  long max_nodes = 200'000;
  double integrality_tol = 1e-6;
  /// Stop when (incumbent - bound) <= gap_abs or relative gap <= gap_rel.
  double gap_abs = 1e-6;
  double gap_rel = 1e-9;
  lp::SolveOptions lp;
};

struct MilpResult {
  bool feasible = false;        ///< an integral incumbent exists
  bool proven_optimal = false;  ///< tree closed within budget
  double objective = 0.0;       ///< incumbent objective (min orientation)
  double bound = 0.0;           ///< global lower bound (min orientation)
  std::vector<double> x;        ///< incumbent assignment
  long nodes_explored = 0;
  double wall_seconds = 0.0;
};

class MilpSolver {
 public:
  /// `integer_vars` lists variable indices constrained to integrality
  /// (binaries are just integer vars with bounds [0,1]).  Only minimisation
  /// models are accepted; callers maximise by negating costs.
  MilpSolver(lp::Model model, std::vector<int> integer_vars,
             MilpOptions options = {});

  /// Seeds an upper cutoff (e.g. a heuristic solution's objective); nodes
  /// with LP bound above it are pruned immediately.
  void set_cutoff(double objective);

  /// Seeds a full incumbent assignment (stronger than a cutoff: the solver
  /// returns it if nothing better is found).  Must be integral-feasible.
  void set_incumbent(const std::vector<double>& x);

  MilpResult solve();

 private:
  lp::Model model_;
  std::vector<int> integer_vars_;
  MilpOptions opt_;
  bool has_cutoff_ = false;
  double cutoff_ = 0.0;
  bool has_incumbent_ = false;
  std::vector<double> incumbent_;
  double incumbent_objective_ = 0.0;
};

}  // namespace netrec::milp
