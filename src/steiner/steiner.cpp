#include "steiner/steiner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "graph/view.hpp"
#include "util/log.hpp"

namespace netrec::steiner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dreyfus-Wagner table with reconstruction choices.
struct DwTable {
  int n = 0;
  int t = 0;
  std::vector<double> dp;  ///< dp[mask * n + v]

  enum class Choice : unsigned char { kNone, kRoot, kGrow, kMerge };
  struct Step {
    Choice choice = Choice::kNone;
    int param = -1;  ///< edge id for kGrow, submask for kMerge
  };
  std::vector<Step> step;  ///< parallel to dp

  double& at(int mask, int v) {
    return dp[static_cast<std::size_t>(mask) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(v)];
  }
  double get(int mask, int v) const {
    return dp[static_cast<std::size_t>(mask) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(v)];
  }
  Step& step_at(int mask, int v) {
    return step[static_cast<std::size_t>(mask) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
  }
  const Step& step_get(int mask, int v) const {
    return step[static_cast<std::size_t>(mask) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
  }
};

/// Builds the full DW table over all terminals.  Path costs count edge costs
/// plus the node cost of every path node (so trees price nodes exactly once).
///
/// The 2^t grow passes historically paid an edge_ok/edge_cost std::function
/// call per relaxation; one CSR snapshot (filter + edge costs flattened) and
/// a flat node-cost array now serve every mask — the same amortisation the
/// ISP loop gets from its ViewCache, without mutations to invalidate over.
DwTable build_table(const graph::Graph& g,
                    const std::vector<graph::NodeId>& terminals,
                    const graph::EdgeWeight& edge_cost,
                    const NodeCost& node_cost,
                    const graph::EdgeFilter& edge_ok) {
  graph::ViewConfig view_config;
  view_config.edge_ok = edge_ok;
  view_config.length = edge_cost;
  const graph::GraphView view = graph::GraphView::build(g, view_config);
  std::vector<double> flat_node_cost(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    flat_node_cost[v] = node_cost(static_cast<graph::NodeId>(v));
  }

  DwTable table;
  table.n = static_cast<int>(g.num_nodes());
  table.t = static_cast<int>(terminals.size());
  const int masks = 1 << table.t;
  table.dp.assign(
      static_cast<std::size_t>(masks) * static_cast<std::size_t>(table.n),
      kInf);
  table.step.assign(table.dp.size(), DwTable::Step{});

  for (int i = 0; i < table.t; ++i) {
    const int mask = 1 << i;
    table.at(mask, terminals[static_cast<std::size_t>(i)]) =
        flat_node_cost[static_cast<std::size_t>(
            terminals[static_cast<std::size_t>(i)])];
    table.step_at(mask, terminals[static_cast<std::size_t>(i)]).choice =
        DwTable::Choice::kRoot;
  }

  using Item = std::pair<double, graph::NodeId>;
  for (int mask = 1; mask < masks; ++mask) {
    // Merge step: combine two subtrees anchored at the same node.
    for (int sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      if (sub < (mask ^ sub)) continue;  // each split once
      for (int v = 0; v < table.n; ++v) {
        const double a = table.get(sub, v);
        const double b = table.get(mask ^ sub, v);
        if (a >= kInf || b >= kInf) continue;
        const double cost =
            a + b - flat_node_cost[static_cast<std::size_t>(v)];
        if (cost < table.at(mask, v)) {
          table.at(mask, v) = cost;
          table.step_at(mask, v) = {DwTable::Choice::kMerge, sub};
        }
      }
    }
    // Grow step: extend the anchor along shortest paths (multi-source
    // Dijkstra seeded with the current dp row) over the flat CSR arcs.
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (int v = 0; v < table.n; ++v) {
      if (table.get(mask, v) < kInf) {
        heap.emplace(table.get(mask, v), static_cast<graph::NodeId>(v));
      }
    }
    while (!heap.empty()) {
      const auto [dist, at] = heap.top();
      heap.pop();
      if (dist > table.get(mask, at)) continue;
      const graph::ArcId end = view.arcs_end(at);
      for (graph::ArcId a = view.arcs_begin(at); a < end; ++a) {
        const graph::NodeId to = view.arc_target(a);
        const double candidate =
            dist + view.arc_length(a) +
            flat_node_cost[static_cast<std::size_t>(to)];
        if (candidate < table.at(mask, to)) {
          table.at(mask, to) = candidate;
          table.step_at(mask, to) = {DwTable::Choice::kGrow,
                                     static_cast<int>(view.arc_edge(a))};
          heap.emplace(candidate, to);
        }
      }
    }
  }
  return table;
}

/// Walks the reconstruction steps, collecting tree edges.
void collect_edges(const graph::Graph& g, const DwTable& table, int mask,
                   graph::NodeId v, std::set<graph::EdgeId>& edges) {
  while (true) {
    const DwTable::Step& step = table.step_get(mask, v);
    switch (step.choice) {
      case DwTable::Choice::kRoot:
      case DwTable::Choice::kNone:
        return;
      case DwTable::Choice::kGrow: {
        const auto e = static_cast<graph::EdgeId>(step.param);
        edges.insert(e);
        v = g.other_endpoint(e, v);
        break;  // continue walking within the same mask
      }
      case DwTable::Choice::kMerge: {
        collect_edges(g, table, step.param, v, edges);
        mask ^= step.param;
        break;  // continue with the complement subtree at the same anchor
      }
    }
  }
}

SteinerForestResult extract(const graph::Graph& g, const DwTable& table,
                            const std::vector<int>& group_masks) {
  SteinerForestResult result;
  std::set<graph::EdgeId> edges;
  std::set<graph::NodeId> nodes;
  double cost = 0.0;
  for (int mask : group_masks) {
    int best_v = -1;
    double best = kInf;
    for (int v = 0; v < table.n; ++v) {
      if (table.get(mask, v) < best) {
        best = table.get(mask, v);
        best_v = v;
      }
    }
    if (best_v < 0 || best >= kInf) return result;  // disconnected
    cost += best;
    collect_edges(g, table, mask, static_cast<graph::NodeId>(best_v), edges);
    nodes.insert(static_cast<graph::NodeId>(best_v));
  }
  for (graph::EdgeId e : edges) {
    nodes.insert(g.edge_u(e));
    nodes.insert(g.edge_v(e));
  }
  result.solved = true;
  result.cost = cost;
  result.edges.assign(edges.begin(), edges.end());
  result.nodes.assign(nodes.begin(), nodes.end());
  return result;
}

}  // namespace

SteinerForestResult steiner_tree(const graph::Graph& g,
                                 const std::vector<graph::NodeId>& terminals,
                                 const graph::EdgeWeight& edge_cost,
                                 const NodeCost& node_cost,
                                 const graph::EdgeFilter& edge_ok,
                                 const SteinerOptions& options) {
  SteinerForestResult empty;
  if (terminals.empty()) {
    empty.solved = true;
    return empty;
  }
  std::vector<graph::NodeId> unique = terminals;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  if (unique.size() > options.max_terminals) {
    NETREC_LOG(kWarn) << "steiner_tree: " << unique.size()
                      << " terminals exceed the DP limit";
    return empty;
  }
  if (unique.size() == 1) {
    empty.solved = true;
    empty.cost = node_cost(unique[0]);
    empty.nodes = {unique[0]};
    return empty;
  }
  const DwTable table = build_table(g, unique, edge_cost, node_cost, edge_ok);
  return extract(g, table, {(1 << unique.size()) - 1});
}

SteinerForestResult steiner_forest(
    const graph::Graph& g,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs,
    const graph::EdgeWeight& edge_cost, const NodeCost& node_cost,
    const graph::EdgeFilter& edge_ok, const SteinerOptions& options) {
  SteinerForestResult result;
  if (pairs.empty()) {
    result.solved = true;
    return result;
  }

  // Distinct terminals, and each pair's terminal-index pair.
  std::vector<graph::NodeId> terminals;
  std::map<graph::NodeId, int> index_of;
  auto intern = [&](graph::NodeId v) {
    auto it = index_of.find(v);
    if (it != index_of.end()) return it->second;
    const int idx = static_cast<int>(terminals.size());
    terminals.push_back(v);
    index_of.emplace(v, idx);
    return idx;
  };
  std::vector<std::pair<int, int>> pair_idx;
  for (const auto& [a, b] : pairs) {
    if (a == b) continue;
    pair_idx.emplace_back(intern(a), intern(b));
  }
  if (pair_idx.empty()) {
    result.solved = true;
    return result;
  }
  if (terminals.size() > options.max_terminals) {
    NETREC_LOG(kWarn) << "steiner_forest: " << terminals.size()
                      << " terminals exceed the DP limit";
    return result;
  }

  const DwTable table =
      build_table(g, terminals, edge_cost, node_cost, edge_ok);

  // Terminal mask of a pair-group.
  const int p = static_cast<int>(pair_idx.size());
  std::vector<int> terminal_mask(static_cast<std::size_t>(1) << p, 0);
  for (int gm = 1; gm < (1 << p); ++gm) {
    const int low = gm & -gm;
    const int bit = static_cast<int>(std::log2(low));
    terminal_mask[static_cast<std::size_t>(gm)] =
        terminal_mask[static_cast<std::size_t>(gm ^ low)] |
        (1 << pair_idx[static_cast<std::size_t>(bit)].first) |
        (1 << pair_idx[static_cast<std::size_t>(bit)].second);
  }
  auto group_cost = [&](int gm) {
    const int tm = terminal_mask[static_cast<std::size_t>(gm)];
    double best = kInf;
    for (int v = 0; v < table.n; ++v) best = std::min(best, table.get(tm, v));
    return best;
  };

  // Partition DP over pair masks.
  std::vector<double> f(static_cast<std::size_t>(1) << p, kInf);
  std::vector<int> choice(static_cast<std::size_t>(1) << p, 0);
  f[0] = 0.0;
  for (int mask = 1; mask < (1 << p); ++mask) {
    const int low = mask & -mask;
    for (int sub = mask; sub > 0; sub = (sub - 1) & mask) {
      if (!(sub & low)) continue;  // group must contain the lowest pair
      const double c = group_cost(sub);
      if (c >= kInf) continue;
      const double rest = f[static_cast<std::size_t>(mask ^ sub)];
      if (rest >= kInf) continue;
      if (c + rest < f[static_cast<std::size_t>(mask)]) {
        f[static_cast<std::size_t>(mask)] = c + rest;
        choice[static_cast<std::size_t>(mask)] = sub;
      }
    }
  }
  const int full = (1 << p) - 1;
  if (f[static_cast<std::size_t>(full)] >= kInf) return result;

  std::vector<int> groups;
  for (int mask = full; mask != 0;) {
    const int sub = choice[static_cast<std::size_t>(mask)];
    groups.push_back(terminal_mask[static_cast<std::size_t>(sub)]);
    mask ^= sub;
  }
  result = extract(g, table, groups);
  return result;
}

}  // namespace netrec::steiner
