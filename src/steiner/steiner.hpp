// Exact node-and-edge-weighted Steiner trees and forests (Dreyfus-Wagner).
//
// Theorem 1 reduces Steiner Forest to MinR; the reverse direction is used
// computationally: when every demand fits on a single path (sum of demands
// <= minimum usable capacity), MinR *is* the node-weighted Steiner Forest on
// the broken-cost metric, and Dreyfus-Wagner solves it exactly — that is how
// the Fig. 7 (Erdős–Rényi, connectivity-only) OPT curve is produced without
// a commercial MILP solver.
//
// One DP over all 2t terminals prices every terminal subset, so the forest
// layer (partition DP over demand pairs) reads group costs from the same
// table.  Complexity O(3^t n + 2^t m log n); practical to ~16 terminals.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace netrec::steiner {

using NodeCost = std::function<double(graph::NodeId)>;

struct SteinerForestResult {
  bool solved = false;  ///< false if terminals disconnected or too many
  double cost = 0.0;    ///< total edge + node cost of the forest
  std::vector<graph::EdgeId> edges;
  std::vector<graph::NodeId> nodes;  ///< all nodes touched by the forest
};

struct SteinerOptions {
  /// Hard cap on distinct terminals (DP is exponential in this).
  std::size_t max_terminals = 16;
};

/// Minimum-cost tree spanning `terminals`.  Cost = sum of edge_cost over
/// tree edges + sum of node_cost over tree nodes (terminals included).
SteinerForestResult steiner_tree(const graph::Graph& g,
                                 const std::vector<graph::NodeId>& terminals,
                                 const graph::EdgeWeight& edge_cost,
                                 const NodeCost& node_cost,
                                 const graph::EdgeFilter& edge_ok = {},
                                 const SteinerOptions& options = {});

/// Minimum-cost forest connecting each pair; optimises over all partitions
/// of the pairs into connected groups (Bell-number many, read from one DP).
SteinerForestResult steiner_forest(
    const graph::Graph& g,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs,
    const graph::EdgeWeight& edge_cost, const NodeCost& node_cost,
    const graph::EdgeFilter& edge_ok = {}, const SteinerOptions& options = {});

}  // namespace netrec::steiner
