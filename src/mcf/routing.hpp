// Routability tests and demand routing (paper Section IV-A).
//
// `route_demands` is the workhorse: it answers "can demand graph H be routed
// over this (sub)graph with these capacities?" and, when the answer is yes,
// produces a witness routing.  A greedy successive-shortest-path pre-pass
// settles most YES instances without touching the LP; the column-generation
// LP (PathLp, exact) decides the rest.  `max_routed_flow` is the referee
// used to score demand loss for heuristics that cannot guarantee full
// routing (SRT, GRD-COM).
#pragma once

#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "mcf/path_lp.hpp"
#include "mcf/path_lp_session.hpp"
#include "mcf/types.hpp"

namespace netrec::mcf {

// --- session-based (persistent hot path) -------------------------------------

/// The paper's routability test (eq. 2) on a persistent PathLpSession
/// (kMaxRouted mode, pooled columns, warm basis).  Unlike the one-shot
/// overloads there are no reachability/greedy prechecks: the warm master
/// re-solve with the pricing early-stop *is* the fast path, and its
/// verdict equals the precheck pipeline's by LP exactness — which the ISP
/// differential harness pins exactly.
bool is_routable(PathLpSession& session, const graph::GraphView& view,
                 const std::vector<PathLpSession::DemandSpec>& demands);

// --- view-based (hot path) ---------------------------------------------------
//
// These overloads run on a borrowed (typically ViewCache-owned) snapshot
// instead of materialising one per call.  The routable network is the
// view's edges with capacity > 1e-9 — views cached across residual updates
// keep drained edges as arcs, and every algorithm below skips them exactly
// where the callback path's filter excluded them, so results are
// bit-identical.  The view's lengths must be the unit/hop metric (the
// callback entry points never configure lengths).

/// Greedy sufficient check on a borrowed view; initial residuals are the
/// view's capacities.
RoutingResult greedy_route(const graph::GraphView& view,
                           const std::vector<Demand>& demands);

/// Exact maximum total routed flow (PathLp on the borrowed view).
RoutingResult max_routed_flow(const graph::GraphView& view,
                              const std::vector<Demand>& demands,
                              const PathLpOptions& options = {});

/// Routability with witness: reachability precheck, greedy, exact fallback.
RoutingResult route_demands(const graph::GraphView& view,
                            const std::vector<Demand>& demands,
                            const PathLpOptions& options = {});

/// The paper's routability test (eq. 2) on a borrowed view.
bool is_routable(const graph::GraphView& view,
                 const std::vector<Demand>& demands,
                 const PathLpOptions& options = {});

// --- callback entry points (materialise a view per call) ---------------------

/// Greedy sufficient check: routes demands one by one (largest first) with
/// successive shortest paths on residual capacities.  fully_routed == true
/// is a proof of routability; false proves nothing.
RoutingResult greedy_route(const graph::Graph& g,
                           const std::vector<Demand>& demands,
                           const graph::EdgeFilter& edge_ok,
                           const graph::EdgeWeight& capacity);

/// Exact maximum total routed flow (LP optimum over all paths).
RoutingResult max_routed_flow(const graph::Graph& g,
                              const std::vector<Demand>& demands,
                              const graph::EdgeFilter& edge_ok,
                              const graph::EdgeWeight& capacity,
                              const PathLpOptions& options = {});

/// Routability with witness: greedy first, exact LP fallback.
RoutingResult route_demands(const graph::Graph& g,
                            const std::vector<Demand>& demands,
                            const graph::EdgeFilter& edge_ok,
                            const graph::EdgeWeight& capacity,
                            const PathLpOptions& options = {});

/// The paper's routability test (eq. 2): true iff the whole demand fits.
bool is_routable(const graph::Graph& g, const std::vector<Demand>& demands,
                 const graph::EdgeFilter& edge_ok,
                 const graph::EdgeWeight& capacity,
                 const PathLpOptions& options = {});

/// Static capacities of the graph's edges (the default capacity view).
graph::EdgeWeight static_capacity(const graph::Graph& g);

}  // namespace netrec::mcf
