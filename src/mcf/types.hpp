// Shared multi-commodity flow types.
//
// A Demand mirrors the paper's demand-graph edge (s_h, t_h, d_h); PathFlow
// is one routed path with an amount, and RoutingResult aggregates a flow
// assignment — ISP's final output routing, the referee that measures demand
// loss for SRT/GRD-COM, and the eq. (8) relaxation all speak this type.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace netrec::mcf {

struct Demand {
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId target = graph::kInvalidNode;
  double amount = 0.0;
};

struct PathFlow {
  int demand_index = -1;
  graph::Path path;
  double amount = 0.0;
};

struct RoutingResult {
  bool fully_routed = false;
  double total_routed = 0.0;
  std::vector<double> routed;  ///< per demand, same order as input
  std::vector<PathFlow> flows;
};

/// Sums routed amounts per edge; index = EdgeId.  Used by verification and
/// by the residual-capacity bookkeeping after pruning.
std::vector<double> edge_loads(const graph::Graph& g,
                               const std::vector<PathFlow>& flows);

/// Checks a routing end to end: every flow path connects its demand's
/// endpoints, uses only edges passing `edge_ok`, and no edge load exceeds
/// `capacity(e) + tol`.  Returns false with no diagnostics (callers log).
bool routing_is_valid(const graph::Graph& g, const std::vector<Demand>& demands,
                      const std::vector<PathFlow>& flows,
                      const graph::EdgeFilter& edge_ok,
                      const graph::EdgeWeight& capacity, double tol = 1e-6);

/// Total demand volume.
double total_demand(const std::vector<Demand>& demands);

}  // namespace netrec::mcf
