// Persistent path-LP sessions: column-pool + warm-basis reuse across the
// nearly identical master LPs ISP solves every iteration.
//
// One ISP solve issues hundreds of PathLp instances — a routability probe
// per iteration, a kMaxSplit probe per (demand, v_BC) candidate — and
// consecutive instances differ only by one repair and a few residual
// updates.  The one-shot mcf::PathLp re-enumerates seed columns and
// cold-starts the simplex for every one of them.  PathLpSession is the
// warm counterpart, mirroring what graph::ViewCache did for snapshots:
//
//   * the column (path) pool persists — paths are stored once, keyed by
//     their endpoint pair, and installed as master columns per demand row;
//     a demand created by a split immediately inherits every pooled path
//     between its endpoints instead of re-running seed enumeration;
//   * per-column arc incidence persists — every edge knows the columns
//     whose paths cross it, so a mutation event invalidates exactly those
//     columns and a lazily created capacity row back-fills exactly those
//     coefficients;
//   * the lp::Basis persists — re-solves warm-start from the previous
//     optimum, and appended rows/columns degrade to a partial (not full)
//     cold start via lp::SolveOptions::warm_append.
//
// Invalidation contract (the same mutation events graph::ViewCache
// consumes; a session registers as a graph::MutationListener on the
// cache so RepairState / residual publishers need no extra calls):
//   * on_edge_invalidated(e) — e is queued dirty.  At the next solve the
//     session re-reads e from the borrowed view: its capacity row (if any)
//     gets the live rhs, an eagerly managed row is appended if e just
//     became usable, kMinCost column costs crossing e are re-priced, and
//     every pooled column whose path crosses e is re-validated — a path
//     with a dead edge (drained or out of view) deactivates its column
//     (variable fixed to 0), never to return (ISP usability is monotone:
//     repairs only add edges, residuals only drain).
//   * on_node_invalidated(n) — every incident edge is queued dirty.
//   * on_epoch_bumped() — anything may have changed: the session drops
//     the model, pool and basis and rebuilds from scratch on next use.
//
// Demand identity: callers tag each demand with a stable uid (ISP's
// dynamic demands carry one across prune/split rewrites).  A uid binds to
// one master row for the session's lifetime — amounts update the rhs and
// the shortfall bound in place, a vanished uid zeroes its row, a new uid
// appends one.  kMaxSplit probes reuse two dedicated half rows and one dx
// variable, rewired per (split demand, via) probe, so probing every
// centrality candidate against the same demand set shares one master.
//
// The session is an accelerator, not a new algorithm: it converges by the
// same exact pricing rule as PathLp, so objectives, routability verdicts
// and split amounts agree with the one-shot path (LpReuse::kNone) — the
// ISP differential harness pins the two bit-identical across seeded
// scenario families.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "graph/view_cache.hpp"
#include "mcf/path_lp.hpp"
#include "mcf/types.hpp"

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace netrec::util {
class ThreadPool;
}  // namespace netrec::util

namespace netrec::mcf {

/// How a solver loop reuses path-LP state across its iterations.
enum class LpReuse {
  /// One-shot mcf::PathLp per call: fresh seeds, cold simplex — the
  /// reference path (and the only choice for callback-backed solvers).
  kNone,
  /// Persistent PathLpSession per call site: pooled columns, warm basis.
  kSession,
};

class PathLpSession : public graph::MutationListener {
 public:
  /// A demand plus the caller's stable identity for it (see header).
  struct DemandSpec {
    int uid = -1;
    Demand demand;
  };

  /// The session prices and routes on borrowed views over `g` (passed per
  /// solve; typically ViewCache slots).  `mode` is fixed for the session's
  /// lifetime; kMinCost additionally needs set_min_cost_objective().
  PathLpSession(const graph::Graph& g, PathLpMode mode,
                PathLpOptions options = {});

  /// kMinCost objective callback; retained, must outlive the session.
  void set_min_cost_objective(graph::EdgeWeight edge_cost);

  /// Intra-round pricing parallelism.  Within one pricing round every
  /// binding's threshold and target-stopped Dijkstra read only that
  /// round's duals, the borrowed view and the reduced-cost weights —
  /// installing a column never changes another binding's compute — so the
  /// per-binding shortest paths fan out on `pool` and the resulting
  /// columns install serially in the serial sweep's binding order (demand
  /// rows ascending, then the split half rows).  Same install order means
  /// the same pool indices, master columns and simplex trajectory: results
  /// are bit-identical to the serial session at any thread count.
  /// nullptr (the default) restores the all-serial sweep; the pool must
  /// outlive the session or a later set_thread_pool(nullptr).
  void set_thread_pool(util::ThreadPool* pool) { thread_pool_ = pool; }

  /// Solves the session's master for the current demand set (kMaxRouted /
  /// kMinCost modes).  `view` must be freshly synced (ViewCache::view).
  PathLpResult solve(const graph::GraphView& view,
                     const std::vector<DemandSpec>& demands);

  /// kMaxRouted only: stops as soon as a master solution routes the whole
  /// demand over a capacity-feasible load (every violated edge has been
  /// given its row), skipping the pricing sweep that would merely certify
  /// LP optimality.  The routability verdict is identical — pricing can
  /// only confirm a full routing — but a YES probe costs one warm
  /// re-solve instead of one re-solve plus a Dijkstra per demand.  The
  /// returned routing is a witness, not necessarily an LP optimum
  /// (`converged` reports whether optimality was actually proven).
  PathLpResult solve_routability(const graph::GraphView& view,
                                 const std::vector<DemandSpec>& demands);

  /// kMaxSplit probe: max dx of demand `split_index` (into `demands`)
  /// splittable through `via`.
  PathLpResult solve_split(const graph::GraphView& view,
                           const std::vector<DemandSpec>& demands,
                           int split_index, graph::NodeId via);

  // --- graph::MutationListener ---------------------------------------------
  void on_edge_invalidated(graph::EdgeId e) override;
  void on_node_invalidated(graph::NodeId n) override;
  void on_epoch_bumped() override;

  /// Session effectiveness counters (cumulative).
  struct Stats {
    std::size_t solves = 0;            ///< solve()/solve_split() calls
    std::size_t rounds = 0;            ///< master LP solves
    std::size_t columns_installed = 0; ///< master columns created
    std::size_t columns_reused = 0;    ///< pool paths installed without SSP
    std::size_t columns_deactivated = 0;
    std::size_t duplicates_skipped = 0;  ///< pricing re-derived a live column
    std::size_t seed_runs = 0;         ///< successive-shortest-path sweeps
    std::size_t resets = 0;            ///< epoch bumps (full rebuilds)
  };
  const Stats& stats() const { return stats_; }

 private:
  /// One pooled path (stored once; columns reference it by index).
  struct PoolPath {
    graph::Path path;
    bool dead = false;  ///< an edge died; can never come back (monotone)
  };

  /// Column bindings: a demand row (index into demand_rows_) or one of the
  /// two split half rows.
  static constexpr int kHalfA = -1;
  static constexpr int kHalfB = -2;

  struct Column {
    int binding = 0;     ///< demand_rows_ index, or kHalfA / kHalfB
    int pool_index = -1;
    int var = -1;
    bool active = false;
  };

  struct DemandRow {
    int uid = -1;
    Demand demand;
    int row = -1;
    int shortfall_var = -1;
    int spec_index = -1;  ///< position in the current call's spec vector
    bool seeded = false;
    bool retired = false;  ///< uid vanished; row zeroed, columns parked
  };

  void reset();
  bool edge_usable(const graph::GraphView& view, graph::EdgeId e) const;
  bool path_alive(const graph::GraphView& view, const graph::Path& p) const;
  void mark_dirty(graph::EdgeId e);
  void process_dirty(const graph::GraphView& view);
  void sync_demands(const std::vector<DemandSpec>& specs);
  void wire_split(const graph::GraphView& view, int split_index,
                  graph::NodeId via);
  void add_capacity_row(const graph::GraphView& view, graph::EdgeId e);
  double column_cost(const graph::Path& path) const;
  int model_row(int binding) const;
  std::uint64_t pair_key(graph::NodeId s, graph::NodeId t) const;
  std::uint64_t column_key(int binding, const graph::Path& path) const;
  int pool_add(graph::NodeId s, graph::NodeId t, graph::Path path);
  /// Installs (or reactivates) the column (binding, pool_index); returns
  /// its column index, or -1 when it already exists active (duplicate) or
  /// the pooled path is dead.
  int install_column(const graph::GraphView& view, int binding,
                     int pool_index);
  /// Seeds a binding from the pool, running successive-shortest-path
  /// enumeration only when the endpoint pair has no pooled paths yet.
  void seed_binding(const graph::GraphView& view, int binding,
                    graph::NodeId s, graph::NodeId t, double amount);
  void seed_row(const graph::GraphView& view, int row_index);
  void deactivate_column(int column_index);
  PathLpResult run_master(const graph::GraphView& view,
                          const std::vector<DemandSpec>& specs);

  const graph::Graph& g_;
  PathLpMode mode_;
  PathLpOptions opt_;
  graph::EdgeWeight objective_edge_cost_;
  util::ThreadPool* thread_pool_ = nullptr;  ///< borrowed; see set_thread_pool

  bool initialized_ = false;
  bool eager_ = false;
  lp::Model model_;
  lp::Basis basis_;
  lp::SolveOptions lp_options_;

  std::vector<DemandRow> demand_rows_;
  std::unordered_map<int, int> row_of_uid_;
  std::vector<int> row_of_spec_;  ///< per current-call spec index

  std::vector<PoolPath> pool_;
  std::unordered_map<std::uint64_t, std::vector<int>> pool_by_pair_;

  std::vector<Column> columns_;
  std::unordered_map<std::uint64_t, std::vector<int>> columns_by_key_;
  std::vector<std::vector<int>> columns_of_edge_;
  std::vector<std::vector<int>> columns_of_row_;  ///< per demand_rows_ index
  std::vector<int> half_columns_;                 ///< bound to either half row

  std::vector<int> capacity_row_;  ///< per edge id, -1 = none

  // kMaxSplit probe wiring (rewired per solve_split call).
  int half_row_[2] = {-1, -1};
  int dx_var_ = -1;
  int split_row_index_ = -1;  ///< demand_rows_ index of the probed demand
  graph::NodeId half_via_ = graph::kInvalidNode;
  int pending_split_index_ = -1;          ///< staged by solve_split
  graph::NodeId pending_split_via_ = graph::kInvalidNode;
  bool stop_when_fully_routed_ = false;   ///< staged by solve_routability

  std::vector<graph::EdgeId> dirty_;
  std::vector<char> dirty_mark_;

  Stats stats_;
};

}  // namespace netrec::mcf
