#include "mcf/split.hpp"

#include <algorithm>

namespace netrec::mcf {

double max_splittable_amount(const graph::Graph& g,
                             const std::vector<Demand>& demands,
                             int split_index, graph::NodeId via,
                             const graph::EdgeFilter& edge_ok,
                             const graph::EdgeWeight& capacity,
                             const PathLpOptions& options) {
  PathLp lp(g, demands, edge_ok, capacity, options);
  lp.set_max_split(split_index, via);
  const PathLpResult result = lp.solve();
  if (!result.routing.fully_routed) return 0.0;
  const double cap = demands[static_cast<std::size_t>(split_index)].amount;
  return std::clamp(result.objective, 0.0, cap);
}

double max_splittable_amount(const graph::GraphView& view,
                             const std::vector<Demand>& demands,
                             int split_index, graph::NodeId via,
                             const PathLpOptions& options) {
  PathLp lp(view, demands, options);
  lp.set_max_split(split_index, via);
  const PathLpResult result = lp.solve();
  if (!result.routing.fully_routed) return 0.0;
  const double cap = demands[static_cast<std::size_t>(split_index)].amount;
  return std::clamp(result.objective, 0.0, cap);
}

double max_splittable_amount(
    PathLpSession& session, const graph::GraphView& view,
    const std::vector<PathLpSession::DemandSpec>& demands, int split_index,
    graph::NodeId via) {
  const PathLpResult result =
      session.solve_split(view, demands, split_index, via);
  if (!result.routing.fully_routed) return 0.0;
  const double cap =
      demands[static_cast<std::size_t>(split_index)].demand.amount;
  return std::clamp(result.objective, 0.0, cap);
}

}  // namespace netrec::mcf
