#include "mcf/routing.hpp"

#include <algorithm>
#include <numeric>

#include "graph/dijkstra.hpp"
#include "graph/traversal.hpp"
#include "graph/view.hpp"

namespace netrec::mcf {

namespace {
constexpr double kEps = 1e-9;
}

graph::EdgeWeight static_capacity(const graph::Graph& g) {
  return [&g](graph::EdgeId e) { return g.edge_capacity(e); };
}

RoutingResult greedy_route(const graph::GraphView& view,
                           const std::vector<Demand>& demands) {
  const graph::Graph& g = view.graph();
  RoutingResult result;
  result.routed.assign(demands.size(), 0.0);

  // One CSR snapshot for the whole greedy pass: hop lengths, the view's
  // capacities, usability narrowed per iteration by the residual array.
  std::vector<double> residual = view.edge_capacities();
  auto residual_view = [&](graph::EdgeId e) {
    return residual[static_cast<std::size_t>(e)];
  };

  // Largest demands first: they are the hardest to place.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a].amount > demands[b].amount;
  });

  for (std::size_t idx : order) {
    const Demand& d = demands[idx];
    if (d.amount <= kEps || d.source == d.target) {
      result.routed[idx] = d.amount;
      result.total_routed += d.amount;
      continue;
    }
    double remaining = d.amount;
    while (remaining > kEps) {
      auto sp = graph::dijkstra_residual(view, d.source, residual)
                    .path_to(g, d.target);
      if (!sp) break;
      const double cap = sp->capacity(residual_view);
      if (cap <= kEps) break;
      const double amount = std::min(cap, remaining);
      for (graph::EdgeId e : sp->edges) {
        residual[static_cast<std::size_t>(e)] -= amount;
      }
      PathFlow flow;
      flow.demand_index = static_cast<int>(idx);
      flow.path = std::move(*sp);
      flow.amount = amount;
      result.flows.push_back(std::move(flow));
      remaining -= amount;
    }
    result.routed[idx] = d.amount - remaining;
    result.total_routed += result.routed[idx];
  }
  result.fully_routed =
      result.total_routed >= total_demand(demands) - 1e-6;
  return result;
}

RoutingResult greedy_route(const graph::Graph& g,
                           const std::vector<Demand>& demands,
                           const graph::EdgeFilter& edge_ok,
                           const graph::EdgeWeight& capacity) {
  graph::ViewConfig config;
  config.edge_ok = edge_ok;
  config.capacity = capacity;
  return greedy_route(graph::GraphView::build(g, config), demands);
}

RoutingResult max_routed_flow(const graph::GraphView& view,
                              const std::vector<Demand>& demands,
                              const PathLpOptions& options) {
  PathLp lp(view, demands, options);
  lp.set_max_routed();
  PathLpResult r = lp.solve();
  return std::move(r.routing);
}

RoutingResult route_demands(const graph::GraphView& view,
                            const std::vector<Demand>& demands,
                            const PathLpOptions& options) {
  // Necessary condition, fast: endpoints connected over positive-residual
  // arcs of the borrowed view.
  for (const Demand& d : demands) {
    if (d.amount <= kEps || d.source == d.target) continue;
    if (!graph::reachable(view, d.source, d.target,
                          view.edge_capacities())) {
      RoutingResult result;
      result.routed.assign(demands.size(), 0.0);
      result.fully_routed = false;
      return result;
    }
  }
  RoutingResult greedy = greedy_route(view, demands);
  if (greedy.fully_routed) return greedy;
  return max_routed_flow(view, demands, options);
}

bool is_routable(const graph::GraphView& view,
                 const std::vector<Demand>& demands,
                 const PathLpOptions& options) {
  return route_demands(view, demands, options).fully_routed;
}

bool is_routable(PathLpSession& session, const graph::GraphView& view,
                 const std::vector<PathLpSession::DemandSpec>& demands) {
  // Keep the O(V+E) reachability precheck — early ISP iterations probe a
  // working graph where some endpoint pair is simply disconnected, and a
  // BFS answers that for less than a master re-solve.  The greedy pass is
  // dropped: it exists to spare a *cold* LP, but a warm session master
  // answers a YES probe in one re-solve (pricing skipped via the early
  // stop) and a NO probe needs the exact LP anyway.  The verdict is the
  // same boolean on every branch because the LP is exact.
  for (const PathLpSession::DemandSpec& spec : demands) {
    const Demand& d = spec.demand;
    if (d.amount <= kEps || d.source == d.target) continue;
    if (!graph::reachable(view, d.source, d.target,
                          view.edge_capacities())) {
      return false;
    }
  }
  return session.solve_routability(view, demands).routing.fully_routed;
}

RoutingResult max_routed_flow(const graph::Graph& g,
                              const std::vector<Demand>& demands,
                              const graph::EdgeFilter& edge_ok,
                              const graph::EdgeWeight& capacity,
                              const PathLpOptions& options) {
  PathLp lp(g, demands, edge_ok, capacity, options);
  lp.set_max_routed();
  PathLpResult r = lp.solve();
  return std::move(r.routing);
}

RoutingResult route_demands(const graph::Graph& g,
                            const std::vector<Demand>& demands,
                            const graph::EdgeFilter& edge_ok,
                            const graph::EdgeWeight& capacity,
                            const PathLpOptions& options) {
  // Necessary condition, fast: endpoints connected under the filter.  One
  // positive-capacity snapshot answers every pair.
  graph::ViewConfig reach_config;
  reach_config.edge_ok = [&](graph::EdgeId e) {
    if (edge_ok && !edge_ok(e)) return false;
    return capacity(e) > kEps;
  };
  const graph::GraphView reach_view = graph::GraphView::build(g, reach_config);
  for (const Demand& d : demands) {
    if (d.amount <= kEps || d.source == d.target) continue;
    if (!graph::reachable(reach_view, d.source, d.target)) {
      RoutingResult result;
      result.routed.assign(demands.size(), 0.0);
      result.fully_routed = false;
      return result;
    }
  }
  RoutingResult greedy = greedy_route(g, demands, edge_ok, capacity);
  if (greedy.fully_routed) return greedy;
  return max_routed_flow(g, demands, edge_ok, capacity, options);
}

bool is_routable(const graph::Graph& g, const std::vector<Demand>& demands,
                 const graph::EdgeFilter& edge_ok,
                 const graph::EdgeWeight& capacity,
                 const PathLpOptions& options) {
  return route_demands(g, demands, edge_ok, capacity, options).fully_routed;
}

}  // namespace netrec::mcf
