#include "mcf/broken_usage.hpp"

#include <algorithm>
#include <unordered_set>

namespace netrec::mcf {

namespace {

/// Eq. (8) edge cost: the paper weights flow only by broken-*edge* repair
/// cost (k^e_ij per unit of flow); broken nodes are not priced by the
/// relaxation, which is part of why its optimal face is so wide.
graph::EdgeWeight broken_cost_view(const graph::Graph& g) {
  return [&g](graph::EdgeId e) {
    return g.edge_broken(e) ? g.edge_repair_cost(e) : 0.0;
  };
}

}  // namespace

BrokenUsageResult min_broken_usage(const graph::Graph& g,
                                   const std::vector<Demand>& demands,
                                   const PathLpOptions& options) {
  PathLp lp(g, demands, /*edge_ok=*/{},
            [&g](graph::EdgeId e) { return g.edge_capacity(e); }, options);
  lp.set_min_cost(broken_cost_view(g));
  PathLpResult r = lp.solve();
  BrokenUsageResult result;
  result.feasible = r.routing.fully_routed;
  result.cost = r.objective;
  result.routing = std::move(r.routing);
  return result;
}

ImpliedRepairs implied_repairs(const graph::Graph& g,
                               const std::vector<PathFlow>& flows,
                               double tol) {
  std::unordered_set<graph::EdgeId> edges;
  std::unordered_set<graph::NodeId> nodes;
  for (const PathFlow& f : flows) {
    if (f.amount <= tol) continue;
    for (graph::NodeId n : f.path.nodes(g)) {
      if (g.node_broken(n)) nodes.insert(n);
    }
    for (graph::EdgeId e : f.path.edges) {
      if (g.edge_broken(e)) edges.insert(e);
    }
  }
  ImpliedRepairs out;
  out.edges.assign(edges.begin(), edges.end());
  out.nodes.assign(nodes.begin(), nodes.end());
  std::sort(out.edges.begin(), out.edges.end());
  std::sort(out.nodes.begin(), out.nodes.end());
  return out;
}

OptimalFaceBand explore_optimal_face(const graph::Graph& g,
                                     const std::vector<Demand>& demands,
                                     std::size_t samples, util::Rng& rng,
                                     const PathLpOptions& options) {
  OptimalFaceBand band;
  const BrokenUsageResult base = min_broken_usage(g, demands, options);
  if (!base.feasible) return band;
  band.feasible = true;

  const auto base_cost = broken_cost_view(g);
  const std::size_t base_repairs =
      implied_repairs(g, base.routing.flows).total();
  band.samples.push_back(base_repairs);

  for (std::size_t s = 0; s + 1 < std::max<std::size_t>(samples, 1); ++s) {
    // Random positive secondary costs pick different vertices of the pinned
    // face.  Alternate between two regimes: broken edges expensive (flow
    // concentrates on few repaired elements — the MCB direction) and broken
    // edges cheap relative to working ones (flow wanders through many broken
    // elements — the MCW direction).
    const bool concentrate = s % 2 == 0;
    std::vector<double> noise(g.num_edges(), 0.0);
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const auto id = static_cast<graph::EdgeId>(e);
      const bool touches_broken = base_cost(id) > 0.0 ||
                                  g.node_broken(g.edge_u(id)) ||
                                  g.node_broken(g.edge_v(id));
      if (concentrate) {
        noise[e] = touches_broken ? rng.uniform(0.1, 1.0)
                                  : rng.uniform(0.0, 0.01);
      } else {
        noise[e] = touches_broken ? rng.uniform(0.0, 0.05)
                                  : rng.uniform(0.5, 1.0);
      }
    }
    PathLp lp(g, demands, /*edge_ok=*/{},
              [&g](graph::EdgeId e) { return g.edge_capacity(e); }, options);
    lp.set_min_cost([&noise](graph::EdgeId e) {
      return noise[static_cast<std::size_t>(e)];
    });
    // Pin eq. (8)'s objective to its optimum (small slack for tolerance).
    lp.add_cost_bound(PathCostBound{base_cost, base.cost + 1e-6});
    const PathLpResult r = lp.solve();
    if (!r.routing.fully_routed) continue;
    band.samples.push_back(implied_repairs(g, r.routing.flows).total());
  }

  band.best_repairs =
      *std::min_element(band.samples.begin(), band.samples.end());
  band.worst_repairs =
      *std::max_element(band.samples.begin(), band.samples.end());
  return band;
}

}  // namespace netrec::mcf
